//! Quickstart: the paper's running example (Fig. 2), end to end.
//!
//! Builds the five-sequence database D_ex with the hierarchy a1/a2 → A,
//! compiles the example constraint πex, and mines it with the distributed
//! D-SEQ and D-CAND algorithms as well as the sequential DESQ-DFS.
//!
//! Run with: `cargo run --release --example quickstart`

use desq::bsp::Engine;
use desq::core::{DictionaryBuilder, Fst, PatEx, SequenceDb};
use desq::dist::{d_cand, d_seq, DCandConfig, DSeqConfig};
use desq::miner::desq_dfs;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Vocabulary and hierarchy: a1 ⇒ A, a2 ⇒ A (Fig. 2b).
    let mut builder = DictionaryBuilder::new();
    for item in ["a1", "a2", "b", "c", "d", "e", "A"] {
        builder.item(item);
    }
    builder.edge("a1", "A");
    builder.edge("a2", "A");

    // 2. The sequence database D_ex (Fig. 2a), written with provisional ids.
    let id = |name: &str| builder.id_of(name).unwrap();
    let raw = SequenceDb::new(vec![
        vec![id("a1"), id("c"), id("d"), id("c"), id("b")],
        vec![
            id("e"),
            id("e"),
            id("a1"),
            id("e"),
            id("a1"),
            id("e"),
            id("b"),
        ],
        vec![id("c"), id("d"), id("c"), id("b")],
        vec![id("a2"), id("d"), id("b")],
        vec![id("a1"), id("a1"), id("b")],
    ]);

    // 3. Freeze: compute the f-list and recode items by frequency rank.
    let (dict, db) = builder.freeze(&raw)?;
    println!("f-list (item: frequency):");
    for fid in 1..=dict.max_fid() {
        println!("  {:>3}: {}", dict.name(fid), dict.doc_freq(fid));
    }

    // 4. Compile the subsequence constraint πex: candidate subsequences
    //    start with a descendant of A and end with b; items in between may
    //    be captured (generalized) or skipped.
    let pexp = PatEx::parse(".*(A)[(.^)|.]*(b).*")?;
    let fst = Fst::compile(&pexp, &dict)?;
    println!(
        "\nconstraint πex compiled to an FST with {} states",
        fst.num_states()
    );

    // 5. Mine with σ = 2, distributed across 2 workers.
    let sigma = 2;
    let engine = Engine::new(2);
    let parts = db.partition(2);

    let dseq = d_seq(&engine, &parts, &fst, &dict, DSeqConfig::new(sigma))?;
    println!("\nD-SEQ frequent sequences (σ = {sigma}):");
    for (pattern, freq) in &dseq.patterns {
        println!("  {:<10} {freq}", dict.render(pattern));
    }
    println!(
        "  [map {:.1} ms, mine {:.1} ms, shuffle {} B]",
        dseq.metrics.map_secs() * 1e3,
        dseq.metrics.reduce_secs() * 1e3,
        dseq.metrics.shuffle_bytes
    );

    let dcand = d_cand(&engine, &parts, &fst, &dict, DCandConfig::new(sigma))?;
    println!("\nD-CAND frequent sequences (σ = {sigma}):");
    for (pattern, freq) in &dcand.patterns {
        println!("  {:<10} {freq}", dict.render(pattern));
    }

    // 6. Sequential reference (DESQ-DFS) agrees exactly.
    let sequential = desq_dfs(&db, &fst, &dict, sigma);
    assert_eq!(dseq.patterns, sequential);
    assert_eq!(dcand.patterns, sequential);
    println!("\nAll three algorithms agree — expected: a1 b (3), a1 A b (2), a1 a1 b (2).");
    Ok(())
}
