//! Quickstart: the paper's running example (Fig. 2), end to end, through
//! the unified `MiningSession` API.
//!
//! Builds the five-sequence database D_ex with the hierarchy a1/a2 → A,
//! declares the example constraint πex as a pattern expression, and mines
//! it with sequential DESQ-DFS and the distributed D-SEQ and D-CAND
//! algorithms — same builder, same uniform `MiningResult`, different
//! `AlgorithmSpec`.
//!
//! Run with: `cargo run --release --example quickstart`

use desq::core::{DictionaryBuilder, SequenceDb};
use desq::session::{AlgorithmSpec, MiningSession};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Vocabulary and hierarchy: a1 ⇒ A, a2 ⇒ A (Fig. 2b).
    let mut builder = DictionaryBuilder::new();
    for item in ["a1", "a2", "b", "c", "d", "e", "A"] {
        builder.item(item);
    }
    builder.edge("a1", "A");
    builder.edge("a2", "A");

    // 2. The sequence database D_ex (Fig. 2a), written with provisional ids.
    let id = |name: &str| builder.id_of(name).unwrap();
    let raw = SequenceDb::new(vec![
        vec![id("a1"), id("c"), id("d"), id("c"), id("b")],
        vec![
            id("e"),
            id("e"),
            id("a1"),
            id("e"),
            id("a1"),
            id("e"),
            id("b"),
        ],
        vec![id("c"), id("d"), id("c"), id("b")],
        vec![id("a2"), id("d"), id("b")],
        vec![id("a1"), id("a1"), id("b")],
    ]);

    // 3. Freeze: compute the f-list and recode items by frequency rank.
    let (dict, db) = builder.freeze(&raw)?;
    println!("f-list (item: frequency):");
    for fid in 1..=dict.max_fid() {
        println!("  {:>3}: {}", dict.name(fid), dict.doc_freq(fid));
    }

    // 4. One session = database + constraint + σ, validated once. The
    //    constraint πex: candidate subsequences start with a descendant of
    //    A and end with b; items in between may be captured (generalized)
    //    or skipped.
    let session = MiningSession::builder()
        .dictionary(dict)
        .database(db)
        .pattern(".*(A)[(.^)|.]*(b).*")
        .sigma(2)
        .algorithm(AlgorithmSpec::DesqDfs)
        .workers(2)
        .build()?;

    // 5. Sequential DESQ-DFS.
    let sequential = session.run()?;
    println!("\nDESQ-DFS frequent sequences (σ = {}):", session.sigma());
    for (pattern, freq) in &sequential.patterns {
        println!("  {:<10} {freq}", session.dictionary().render(pattern));
    }

    // 6. The distributed algorithms ride the same session — only the
    //    AlgorithmSpec changes; the MiningResult keeps the same shape and
    //    additionally reports shuffle volume.
    let dseq = session.with_algorithm(AlgorithmSpec::d_seq())?.run()?;
    println!(
        "\nD-SEQ agrees and shuffled {} bytes:",
        dseq.metrics.shuffle_bytes
    );
    println!(
        "  [map {:.1} ms, mine {:.1} ms, {} workers]",
        dseq.metrics.map_secs() * 1e3,
        dseq.metrics.reduce_secs() * 1e3,
        dseq.metrics.workers
    );
    let dcand = session.with_algorithm(AlgorithmSpec::d_cand())?.run()?;
    println!(
        "D-CAND agrees and shuffled {} bytes.",
        dcand.metrics.shuffle_bytes
    );

    assert_eq!(dseq.patterns, sequential.patterns);
    assert_eq!(dcand.patterns, sequential.patterns);

    // 7. Streaming output: patterns arrive as they are discovered, without
    //    the eager sort — useful when the result set is large.
    let mut stream = session.stream();
    let first = stream.next().expect("at least one pattern");
    println!(
        "\nfirst streamed pattern: {} ({})",
        session.dictionary().render(&first.0),
        first.1
    );
    let metrics = stream.finish()?;
    assert_eq!(metrics.output_records, sequential.patterns.len() as u64);

    println!("\nAll three algorithms agree — expected: a1 b (3), a1 A b (2), a1 a1 b (2).");
    Ok(())
}
