//! Mining protein sequences that exhibit a given motif — one of the
//! motivating applications for regular-expression constraints cited by the
//! paper (Trasarti et al., ICDM '08).
//!
//! Amino-acid sequences have no item hierarchy; a *motif* constrains which
//! subsequences are of interest, e.g. "an N-glycosylation-like site:
//! N, anything but P, then S or T" — and we mine which concrete residues
//! fill the variable positions frequently.
//!
//! Run with: `cargo run --release --example protein_motifs`

use desq::core::{DictionaryBuilder, SequenceDb};
use desq::session::{AlgorithmSpec, MiningSession};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const AMINO_ACIDS: &[&str] = &[
    "A", "R", "N", "D", "C", "Q", "E", "G", "H", "I", "L", "K", "M", "F", "P", "S", "T", "W", "Y",
    "V",
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Synthetic proteome: random residue chains with an embedded
    // N-x-S/T-rich family.
    let mut b = DictionaryBuilder::new();
    let ids: Vec<u32> = AMINO_ACIDS.iter().map(|a| b.item(a)).collect();
    let n_id = b.id_of("N").unwrap();
    let s_id = b.id_of("S").unwrap();
    let t_id = b.id_of("T").unwrap();
    let g_id = b.id_of("G").unwrap();

    let mut rng = StdRng::seed_from_u64(7);
    let mut proteins = Vec::new();
    for _ in 0..20_000 {
        let len = rng.gen_range(20..60usize);
        let mut p: Vec<u32> = (0..len).map(|_| ids[rng.gen_range(0..ids.len())]).collect();
        // 40% of proteins carry the motif N-G-S or N-G-T somewhere.
        if rng.gen_bool(0.4) {
            let at = rng.gen_range(0..len - 3);
            p[at] = n_id;
            p[at + 1] = g_id;
            p[at + 2] = if rng.gen_bool(0.5) { s_id } else { t_id };
        }
        proteins.push(p);
    }
    let (dict, db) = b.freeze(&SequenceDb::new(proteins))?;

    // The motif constraint: N, one arbitrary (captured) residue, then S or T
    // — mined with exact-match items (no hierarchy to generalize along).
    // `pattern_unanchored` wraps the motif in `.*` context so it matches
    // anywhere in a protein.
    let motif = "N=(.)[S=|T=]";
    let session = MiningSession::builder()
        .dictionary(dict)
        .database(db)
        .pattern_unanchored(motif)
        .sigma(50)
        .algorithm(AlgorithmSpec::d_cand())
        .workers(4)
        .partitions(8)
        .build()?;
    let res = session.run()?;
    let dict = session.dictionary();
    println!(
        "motif `{motif}` across {} proteins:",
        session.database().len()
    );
    let mut top: Vec<_> = res.patterns.iter().collect();
    top.sort_by_key(|(_, f)| std::cmp::Reverse(*f));
    for (pattern, freq) in top.iter().take(10) {
        println!("  N-{}-[S/T]   {freq}", dict.render(pattern));
    }
    // The planted G should dominate the variable position.
    assert_eq!(dict.render(&top[0].0), "G");
    println!("\nthe planted glycine dominates, as designed — motif mining works.");
    Ok(())
}
