//! Order-aware recommendation on purchase sequences (constraints A1–A4 of
//! Tab. III).
//!
//! Generates an AMZN-like database (products generalize to categories and
//! departments along a DAG) and mines recommendation patterns, e.g. "what
//! do customers buy within a few purchases after a digital camera?" (A3),
//! with one `MiningSession` per constraint dispatching to D-SEQ.
//!
//! Run with: `cargo run --release --example market_basket`

use std::sync::Arc;

use desq::datagen::{amzn_like, AmznConfig};
use desq::dist::patterns;
use desq::session::{AlgorithmSpec, MiningSession};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let customers = 30_000;
    println!("generating AMZN-like purchase data ({customers} customers)...");
    let (dict, db) = amzn_like(&AmznConfig::new(customers));
    println!(
        "  {} sequences, {} items, vocabulary {}, mean ancestors {:.1}",
        db.len(),
        db.total_items(),
        dict.len(),
        dict.mean_ancestors()
    );
    let (dict, db) = (Arc::new(dict), Arc::new(db));
    let sigma = 30;

    for c in patterns::amzn_constraints() {
        let session = MiningSession::builder()
            .dictionary(dict.clone())
            .database(db.clone())
            .pattern_unanchored(&c.expr)
            .sigma(sigma)
            .algorithm(AlgorithmSpec::d_seq())
            .workers(4)
            .partitions(8)
            .build()?;
        let res = session.run()?;
        println!(
            "\n{} `{}` (σ = {sigma}): {} frequent sequences, {:.0} ms, {} B shuffled",
            c.name,
            c.expr,
            res.patterns.len(),
            res.metrics.total_secs() * 1e3,
            res.metrics.shuffle_bytes
        );
        let mut top: Vec<_> = res.patterns.iter().collect();
        top.sort_by_key(|(_, f)| std::cmp::Reverse(*f));
        for (pattern, freq) in top.iter().take(6) {
            println!("  {:<50} {freq}", dict.render(pattern));
        }
    }
    Ok(())
}
