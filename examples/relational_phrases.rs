//! Text mining: relational phrases between entities (the paper's motivating
//! application, constraints N1–N3 of Tab. III).
//!
//! Generates an NYT-like corpus (words generalize to lemmas and POS tags,
//! entities to their types) and mines:
//!
//! * N1 — relational phrases between entities,
//! * N2 — *typed* relational phrases (entities generalized to their type),
//! * N3 — copular relations ("X is a Y").
//!
//! Run with: `cargo run --release --example relational_phrases`

use std::sync::Arc;

use desq::datagen::{nyt_like, NytConfig};
use desq::dist::patterns;
use desq::session::{AlgorithmSpec, MiningSession};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sentences = 20_000;
    println!("generating NYT-like corpus ({sentences} sentences)...");
    let (dict, db) = nyt_like(&NytConfig::new(sentences));
    println!(
        "  {} sequences, {} items, vocabulary {}, mean ancestors {:.1}",
        db.len(),
        db.total_items(),
        dict.len(),
        dict.mean_ancestors()
    );
    let (dict, db) = (Arc::new(dict), Arc::new(db));
    let sigma = 25;

    for c in [patterns::n1(), patterns::n2(), patterns::n3()] {
        // These constraints are selective: D-CAND is the right algorithm
        // (cf. Fig. 9a of the paper).
        let session = MiningSession::builder()
            .dictionary(dict.clone())
            .database(db.clone())
            .pattern_unanchored(&c.expr)
            .sigma(sigma)
            .algorithm(AlgorithmSpec::d_cand())
            .workers(4)
            .partitions(8)
            .build()?;
        let res = session.run()?;
        println!(
            "\n{} `{}` (σ = {sigma}): {} frequent sequences, {:.0} ms, {} B shuffled",
            c.name,
            c.expr,
            res.patterns.len(),
            res.metrics.total_secs() * 1e3,
            res.metrics.shuffle_bytes
        );
        let mut top: Vec<_> = res.patterns.iter().collect();
        top.sort_by_key(|(_, f)| std::cmp::Reverse(*f));
        for (pattern, freq) in top.iter().take(8) {
            println!("  {:<40} {freq}", dict.render(pattern));
        }
    }
    Ok(())
}
