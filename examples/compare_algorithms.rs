//! Head-to-head comparison of the four distributed algorithms on one
//! workload — a miniature of the paper's Fig. 9.
//!
//! Runs NAÏVE, SEMI-NAÏVE, D-SEQ and D-CAND on an NYT-like corpus under a
//! selective (N1) and a looser (N4) constraint, and prints run times and
//! shuffle sizes. All four produce identical results; they differ in what
//! they communicate. One `MiningSession` per workload drives all four.
//!
//! Run with: `cargo run --release --example compare_algorithms`

use std::sync::Arc;

use desq::core::MiningResult;
use desq::datagen::{nyt_like, NytConfig};
use desq::session::{AlgorithmSpec, MiningSession};

fn run(base: &MiningSession, spec: AlgorithmSpec) -> Option<MiningResult> {
    match base.with_algorithm(spec).and_then(|s| s.run()) {
        Ok(res) => {
            println!(
                "  {:<12} {:>8.0} ms   {:>10} B shuffled   {:>6} patterns",
                spec.name(),
                res.metrics.total_secs() * 1e3,
                res.metrics.shuffle_bytes,
                res.patterns.len()
            );
            Some(res)
        }
        Err(e) => {
            println!("  {:<12} n/a ({e})", spec.name());
            None
        }
    }
}

fn compare(base: &MiningSession) {
    let outcomes = [
        AlgorithmSpec::Naive,
        AlgorithmSpec::SemiNaive,
        AlgorithmSpec::d_seq(),
        AlgorithmSpec::d_cand(),
    ]
    .map(|spec| run(base, spec));
    // Whatever completed must agree.
    let mut results: Vec<MiningResult> = outcomes.into_iter().flatten().collect();
    if let Some(first) = results.pop() {
        for other in &results {
            assert_eq!(first.patterns, other.patterns, "algorithms disagree!");
        }
        println!("  -> all completed algorithms returned identical results");
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (dict, db) = nyt_like(&NytConfig::new(10_000));
    let (dict, db) = (Arc::new(dict), Arc::new(db));
    let session = |expr: &str, sigma: u64| {
        MiningSession::builder()
            .dictionary(dict.clone())
            .database(db.clone())
            .pattern_unanchored(expr)
            .sigma(sigma)
            .workers(4)
            .partitions(8)
            .budget(2_000_000)
            .build()
    };

    // Selective constraint: few candidates per sequence — candidate
    // representation (D-CAND) shines.
    let n1 = desq::dist::patterns::n1();
    println!("{} `{}` (σ = 10):", n1.name, n1.expr);
    compare(&session(&n1.expr, 10)?);

    // Looser constraint: two orders of magnitude more candidates — sequence
    // representation (D-SEQ) is the robust choice.
    let n4 = desq::dist::patterns::n4();
    println!("\n{} `{}` (σ = 500):", n4.name, n4.expr);
    compare(&session(&n4.expr, 500)?);

    Ok(())
}
