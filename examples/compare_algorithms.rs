//! Head-to-head comparison of the four distributed algorithms on one
//! workload — a miniature of the paper's Fig. 9.
//!
//! Runs NAÏVE, SEMI-NAÏVE, D-SEQ and D-CAND on an NYT-like corpus under a
//! selective (N1) and a looser (N4) constraint, and prints run times and
//! shuffle sizes. All four produce identical results; they differ in what
//! they communicate.
//!
//! Run with: `cargo run --release --example compare_algorithms`

use desq::bsp::Engine;
use desq::core::{Dictionary, Fst, SequenceDb};
use desq::datagen::{nyt_like, NytConfig};
use desq::dist::{
    d_cand, d_seq, naive, patterns, DCandConfig, DSeqConfig, MiningResult, NaiveConfig,
};

fn run(name: &str, f: impl FnOnce() -> desq::core::Result<MiningResult>) -> Option<MiningResult> {
    match f() {
        Ok(res) => {
            println!(
                "  {name:<12} {:>8.0} ms   {:>10} B shuffled   {:>6} patterns",
                res.metrics.total_secs() * 1e3,
                res.metrics.shuffle_bytes,
                res.patterns.len()
            );
            Some(res)
        }
        Err(e) => {
            println!("  {name:<12} n/a ({e})");
            None
        }
    }
}

fn compare(engine: &Engine, db: &SequenceDb, dict: &Dictionary, fst: &Fst, sigma: u64) {
    let parts = db.partition(8);
    let budget = 2_000_000;
    let nv = run("NAIVE", || {
        naive(
            engine,
            &parts,
            fst,
            dict,
            NaiveConfig::naive(sigma).with_budget(budget),
        )
    });
    let sn = run("SEMI-NAIVE", || {
        naive(
            engine,
            &parts,
            fst,
            dict,
            NaiveConfig::semi_naive(sigma).with_budget(budget),
        )
    });
    let ds = run("D-SEQ", || {
        d_seq(engine, &parts, fst, dict, DSeqConfig::new(sigma))
    });
    let dc = run("D-CAND", || {
        d_cand(
            engine,
            &parts,
            fst,
            dict,
            DCandConfig::new(sigma).with_run_budget(budget),
        )
    });
    // Whatever completed must agree.
    let mut results: Vec<MiningResult> = [nv, sn, ds, dc].into_iter().flatten().collect();
    if let Some(first) = results.pop() {
        for other in &results {
            assert_eq!(first.patterns, other.patterns, "algorithms disagree!");
        }
        println!("  -> all completed algorithms returned identical results");
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (dict, db) = nyt_like(&NytConfig::new(10_000));
    let engine = Engine::new(4);

    // Selective constraint: few candidates per sequence — candidate
    // representation (D-CAND) shines.
    let n1 = patterns::n1();
    println!("{} `{}` (σ = 10):", n1.name, n1.expr);
    let fst = n1.compile(&dict)?;
    compare(&engine, &db, &dict, &fst, 10);

    // Looser constraint: two orders of magnitude more candidates — sequence
    // representation (D-SEQ) is the robust choice.
    let n4 = patterns::n4();
    println!("\n{} `{}` (σ = 500):", n4.name, n4.expr);
    let fst = n4.compile(&dict)?;
    compare(&engine, &db, &dict, &fst, 500);

    Ok(())
}
