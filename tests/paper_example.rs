//! End-to-end walk through every worked example of the paper on the
//! running-example database (Fig. 2 – Fig. 8), plus the session-level
//! cross-algorithm equivalence and result-ordering invariants.

use desq::baselines::LashConfig;
use desq::core::fst::candidates;
use desq::core::{toy, Sequence};
use desq::dist::PivotSearch;
use desq::session::{AlgorithmSpec, MiningSession};

fn toy_session(sigma: u64) -> MiningSession {
    let fx = toy::fixture();
    MiningSession::builder()
        .dictionary(fx.dict)
        .database(fx.db)
        .pattern(toy::PATTERN)
        .sigma(sigma)
        .workers(2)
        .partitions(2)
        .build()
        .unwrap()
}

/// Sec. II: the problem-statement result for σ = 2, through every
/// FST-based algorithm of the unified API.
#[test]
fn frequent_sequences_of_the_running_example() {
    let fx = toy::fixture();
    let session = toy_session(2);
    let expect: Vec<(Sequence, u64)> = vec![
        (vec![fx.a1, fx.b], 3),
        (vec![fx.a1, fx.big_a, fx.b], 2),
        (vec![fx.a1, fx.a1, fx.b], 2),
    ];
    for spec in [
        AlgorithmSpec::Naive,
        AlgorithmSpec::SemiNaive,
        AlgorithmSpec::d_seq(),
        AlgorithmSpec::d_cand(),
    ] {
        let res = session.with_algorithm(spec).unwrap().run().unwrap();
        assert_eq!(res.patterns, expect, "{}", spec.name());
    }
}

/// The session-level equivalence property on the Fig. 2 toy database,
/// parameterized over σ and over *all* `AlgorithmSpec` variants: within
/// each group of algorithms that implement the same constraint semantics,
/// the mined pattern sets are identical — and every result upholds the
/// documented `MiningResult` ordering invariant (sorted lexicographically),
/// asserted here in one place for all algorithms.
#[test]
fn all_algorithm_specs_agree_within_their_constraint_groups() {
    let fx = toy::fixture();
    let max_gap = fx.db.max_len(); // "arbitrary gaps" for the gap miners
    for sigma in 1..=3u64 {
        // Group 1 — the πex constraint: all six FST-based algorithms.
        let pi_ex = toy_session(sigma);
        let pi_specs = [
            AlgorithmSpec::DesqDfs,
            AlgorithmSpec::DesqCount,
            AlgorithmSpec::Naive,
            AlgorithmSpec::SemiNaive,
            AlgorithmSpec::d_seq(),
            AlgorithmSpec::d_cand(),
        ];
        check_group(&pi_ex, &pi_specs, "πex", sigma);

        // Group 2 — T1(σ, 3) semantics: PrefixSpan and MLlib-PrefixSpan
        // natively, DESQ via the T1 pattern expression.
        let t1 = session_for_expr(&desq::dist::patterns::t1(3).expr, sigma);
        let t1_specs = [
            AlgorithmSpec::PrefixSpan { max_len: 3 },
            AlgorithmSpec::Mllib { max_len: 3 },
            AlgorithmSpec::DesqCount,
            AlgorithmSpec::d_seq(),
        ];
        check_group(&t1, &t1_specs, "T1", sigma);

        // Group 3 — T3(σ, γ, 3) semantics with arbitrary-gap γ: the gap
        // miner and LASH natively, DESQ via the T3 pattern expression.
        let t3 = session_for_expr(&desq::dist::patterns::t3(max_gap, 3).expr, sigma);
        let t3_specs = [
            AlgorithmSpec::GapMiner {
                gamma: max_gap,
                max_len: 3,
                min_len: 2,
                generalize: true,
            },
            AlgorithmSpec::Lash(LashConfig::new(sigma, max_gap, 3)),
            AlgorithmSpec::DesqCount,
            AlgorithmSpec::d_cand(),
        ];
        check_group(&t3, &t3_specs, "T3", sigma);
    }
}

fn session_for_expr(expr: &str, sigma: u64) -> MiningSession {
    let fx = toy::fixture();
    MiningSession::builder()
        .dictionary(fx.dict)
        .database(fx.db)
        .pattern_unanchored(expr)
        .sigma(sigma)
        .workers(2)
        .partitions(3)
        .build()
        .unwrap()
}

fn check_group(base: &MiningSession, specs: &[AlgorithmSpec], what: &str, sigma: u64) {
    let mut reference: Option<(&'static str, Vec<(Sequence, u64)>)> = None;
    for spec in specs {
        let res = base.with_algorithm(*spec).unwrap().run().unwrap();
        // The documented MiningResult invariant, checked for every
        // algorithm in one place.
        assert!(
            res.is_sorted(),
            "{what}/σ={sigma}: {} violated the sort invariant",
            spec.name()
        );
        match &reference {
            None => reference = Some((spec.name(), res.patterns)),
            Some((rname, rpatterns)) => assert_eq!(
                &res.patterns,
                rpatterns,
                "{what}/σ={sigma}: {} vs {rname}",
                spec.name()
            ),
        }
    }
}

/// Fig. 3: the item-based partitioning of the example — K(T) per sequence
/// and the candidate subsequences each partition is responsible for.
#[test]
fn fig3_item_based_partitioning() {
    let fx = toy::fixture();
    let search = PivotSearch::new(&fx.fst, &fx.dict, fx.dict.last_frequent(2));
    let expected_pivots: [Vec<u32>; 5] = [
        vec![fx.a1, fx.c], // T1
        vec![fx.a1],       // T2 (e is infrequent at σ=2)
        vec![],            // T3
        vec![],            // T4 (a2 infrequent)
        vec![fx.a1],       // T5
    ];
    for (t, expect) in fx.db.sequences.iter().zip(&expected_pivots) {
        let got: Vec<u32> = search.pivots(t).iter().map(|p| p.item).collect();
        assert_eq!(&got, expect, "K({t:?})");
    }
}

/// Fig. 3 right column: the candidate representation content of P_c and
/// P_a1 for T1.
#[test]
fn fig3_candidate_representation_for_t1() {
    let fx = toy::fixture();
    let t1 = &fx.db.sequences[0];
    let cands = candidates::generate(&fx.fst, &fx.dict, t1, Some(2), usize::MAX).unwrap();
    let (pc, pa1): (Vec<Sequence>, Vec<Sequence>) = cands
        .into_iter()
        .partition(|s| desq::core::sequence::pivot(s) == fx.c);
    let mut pc: Vec<String> = pc.iter().map(|s| fx.dict.render(s)).collect();
    pc.sort();
    assert_eq!(
        pc,
        vec!["a1 c b", "a1 c c b", "a1 c d b", "a1 c d c b", "a1 d c b"]
    );
    let mut pa1: Vec<String> = pa1.iter().map(|s| fx.dict.render(s)).collect();
    pa1.sort();
    assert_eq!(pa1, vec!["a1 b", "a1 d b"]);
}

/// Sec. V-B: ρ_a1(T2) = a1 e a1 e b (two leading irrelevant e's dropped).
#[test]
fn rewriting_example() {
    let fx = toy::fixture();
    let search = PivotSearch::new(&fx.fst, &fx.dict, fx.dict.last_frequent(2));
    let t2 = &fx.db.sequences[1];
    let pr = search.pivots(t2);
    assert_eq!(pr.len(), 1);
    let rewritten = &t2[pr[0].first as usize..=pr[0].last as usize];
    assert_eq!(fx.dict.render(rewritten), "a1 e a1 e b");
}

/// Sec. VII intuition: D-SEQ's rewriting and D-CAND's NFA compression both
/// beat the naive candidate lists in shuffle volume on the toy database
/// (the toy is tiny, so compare against NAIVE which ships G_π(T) verbatim).
#[test]
fn representations_are_compact() {
    let session = toy_session(2);
    let shuffle = |spec: AlgorithmSpec| {
        session
            .with_algorithm(spec)
            .unwrap()
            .run()
            .unwrap()
            .metrics
            .shuffle_bytes
    };
    let nv = shuffle(AlgorithmSpec::Naive);
    assert!(shuffle(AlgorithmSpec::d_seq()) < nv);
    assert!(shuffle(AlgorithmSpec::d_cand()) < nv);
}

/// The partition-balance property of item-based partitioning (Sec. III-B):
/// frequent items head many partitions but the per-partition data stays
/// bounded; here we just assert every partition key is a frequent item.
#[test]
fn partitions_only_for_frequent_pivots() {
    let fx = toy::fixture();
    let search = PivotSearch::new(&fx.fst, &fx.dict, fx.dict.last_frequent(2));
    for t in &fx.db.sequences {
        for p in search.pivots(t) {
            assert!(
                fx.dict.is_frequent(p.item, 2),
                "pivot {} infrequent",
                p.item
            );
        }
    }
}
