//! End-to-end walk through every worked example of the paper on the
//! running-example database (Fig. 2 – Fig. 8).

use desq::bsp::Engine;
use desq::core::fst::candidates;
use desq::core::{toy, Sequence};
use desq::dist::{d_cand, d_seq, naive, DCandConfig, DSeqConfig, NaiveConfig, PivotSearch};

/// Sec. II: the problem-statement result for σ = 2.
#[test]
fn frequent_sequences_of_the_running_example() {
    let fx = toy::fixture();
    let engine = Engine::new(2);
    let parts = fx.db.partition(2);
    let expect: Vec<(Sequence, u64)> = vec![
        (vec![fx.a1, fx.b], 3),
        (vec![fx.a1, fx.big_a, fx.b], 2),
        (vec![fx.a1, fx.a1, fx.b], 2),
    ];
    for (name, res) in [
        (
            "NAIVE",
            naive(&engine, &parts, &fx.fst, &fx.dict, NaiveConfig::naive(2)).unwrap(),
        ),
        (
            "SEMI-NAIVE",
            naive(
                &engine,
                &parts,
                &fx.fst,
                &fx.dict,
                NaiveConfig::semi_naive(2),
            )
            .unwrap(),
        ),
        (
            "D-SEQ",
            d_seq(&engine, &parts, &fx.fst, &fx.dict, DSeqConfig::new(2)).unwrap(),
        ),
        (
            "D-CAND",
            d_cand(&engine, &parts, &fx.fst, &fx.dict, DCandConfig::new(2)).unwrap(),
        ),
    ] {
        assert_eq!(res.patterns, expect, "{name}");
    }
}

/// Fig. 3: the item-based partitioning of the example — K(T) per sequence
/// and the candidate subsequences each partition is responsible for.
#[test]
fn fig3_item_based_partitioning() {
    let fx = toy::fixture();
    let search = PivotSearch::new(&fx.fst, &fx.dict, fx.dict.last_frequent(2));
    let expected_pivots: [Vec<u32>; 5] = [
        vec![fx.a1, fx.c], // T1
        vec![fx.a1],       // T2 (e is infrequent at σ=2)
        vec![],            // T3
        vec![],            // T4 (a2 infrequent)
        vec![fx.a1],       // T5
    ];
    for (t, expect) in fx.db.sequences.iter().zip(&expected_pivots) {
        let got: Vec<u32> = search.pivots(t).iter().map(|p| p.item).collect();
        assert_eq!(&got, expect, "K({t:?})");
    }
}

/// Fig. 3 right column: the candidate representation content of P_c and
/// P_a1 for T1.
#[test]
fn fig3_candidate_representation_for_t1() {
    let fx = toy::fixture();
    let t1 = &fx.db.sequences[0];
    let cands = candidates::generate(&fx.fst, &fx.dict, t1, Some(2), usize::MAX).unwrap();
    let (pc, pa1): (Vec<Sequence>, Vec<Sequence>) = cands
        .into_iter()
        .partition(|s| desq::core::sequence::pivot(s) == fx.c);
    let mut pc: Vec<String> = pc.iter().map(|s| fx.dict.render(s)).collect();
    pc.sort();
    assert_eq!(
        pc,
        vec!["a1 c b", "a1 c c b", "a1 c d b", "a1 c d c b", "a1 d c b"]
    );
    let mut pa1: Vec<String> = pa1.iter().map(|s| fx.dict.render(s)).collect();
    pa1.sort();
    assert_eq!(pa1, vec!["a1 b", "a1 d b"]);
}

/// Sec. V-B: ρ_a1(T2) = a1 e a1 e b (two leading irrelevant e's dropped).
#[test]
fn rewriting_example() {
    let fx = toy::fixture();
    let search = PivotSearch::new(&fx.fst, &fx.dict, fx.dict.last_frequent(2));
    let t2 = &fx.db.sequences[1];
    let pr = search.pivots(t2);
    assert_eq!(pr.len(), 1);
    let rewritten = &t2[pr[0].first as usize..=pr[0].last as usize];
    assert_eq!(fx.dict.render(rewritten), "a1 e a1 e b");
}

/// Sec. VII intuition: D-SEQ's rewriting and D-CAND's NFA compression both
/// beat the naive candidate lists in shuffle volume on the toy database
/// (the toy is tiny, so compare against NAIVE which ships G_π(T) verbatim).
#[test]
fn representations_are_compact() {
    let fx = toy::fixture();
    let engine = Engine::new(1);
    let parts: Vec<&[Sequence]> = vec![&fx.db.sequences];
    let nv = naive(&engine, &parts, &fx.fst, &fx.dict, NaiveConfig::naive(2)).unwrap();
    let ds = d_seq(&engine, &parts, &fx.fst, &fx.dict, DSeqConfig::new(2)).unwrap();
    let dc = d_cand(&engine, &parts, &fx.fst, &fx.dict, DCandConfig::new(2)).unwrap();
    assert!(ds.metrics.shuffle_bytes < nv.metrics.shuffle_bytes);
    assert!(dc.metrics.shuffle_bytes < nv.metrics.shuffle_bytes);
}

/// The partition-balance property of item-based partitioning (Sec. III-B):
/// frequent items head many partitions but the per-partition data stays
/// bounded; here we just assert every partition key is a frequent item.
#[test]
fn partitions_only_for_frequent_pivots() {
    let fx = toy::fixture();
    let search = PivotSearch::new(&fx.fst, &fx.dict, fx.dict.last_frequent(2));
    for t in &fx.db.sequences {
        for p in search.pivots(t) {
            assert!(
                fx.dict.is_frequent(p.item, 2),
                "pivot {} infrequent",
                p.item
            );
        }
    }
}
