//! The master correctness property of this reproduction: every mining path
//! — NAÏVE, SEMI-NAÏVE, D-SEQ (all ablations), D-CAND (all ablations),
//! sequential DESQ-DFS and the brute-force DESQ-COUNT reference — produces
//! the *identical* set of frequent sequences with identical frequencies,
//! on every dataset and constraint. All paths run through the unified
//! `MiningSession` API.

use std::sync::Arc;

use desq::baselines::LashConfig;
use desq::core::{Dictionary, Sequence, SequenceDb};
use desq::datagen::{amzn_like, cw_like, nyt_like, to_forest, AmznConfig, CwConfig, NytConfig};
use desq::dist::{patterns, DCandConfig, DSeqConfig};
use desq::session::{AlgorithmSpec, MiningSession};

fn shared((dict, db): (Dictionary, SequenceDb)) -> (Arc<Dictionary>, Arc<SequenceDb>) {
    (Arc::new(dict), Arc::new(db))
}

fn base_session(
    dict: &Arc<Dictionary>,
    db: &Arc<SequenceDb>,
    expr: &str,
    sigma: u64,
) -> MiningSession {
    MiningSession::builder()
        .dictionary(dict.clone())
        .database(db.clone())
        .pattern_unanchored(expr)
        .sigma(sigma)
        .workers(3)
        .partitions(5)
        .build()
        .unwrap()
}

/// Runs `spec` on `base` and returns the mined patterns.
fn mine(base: &MiningSession, spec: AlgorithmSpec) -> Vec<(Sequence, u64)> {
    base.with_algorithm(spec).unwrap().run().unwrap().patterns
}

fn check_all(dict: &Arc<Dictionary>, db: &Arc<SequenceDb>, expr: &str, sigma: u64, what: &str) {
    let base = base_session(dict, db, expr, sigma);
    let reference = mine(&base, AlgorithmSpec::DesqCount);
    assert_eq!(
        mine(&base, AlgorithmSpec::DesqDfs),
        reference,
        "{what}: DESQ-DFS vs DESQ-COUNT"
    );

    for spec in [AlgorithmSpec::Naive, AlgorithmSpec::SemiNaive] {
        assert_eq!(mine(&base, spec), reference, "{what}: {}", spec.name());
    }

    for use_grid in [true, false] {
        for rewrite in [true, false] {
            for early_stop in [true, false] {
                let cfg = DSeqConfig {
                    use_grid,
                    rewrite,
                    early_stop,
                    ..DSeqConfig::new(1)
                };
                assert_eq!(
                    mine(&base, AlgorithmSpec::DSeq(cfg)),
                    reference,
                    "{what}: d_seq grid={use_grid} rewrite={rewrite} stop={early_stop}"
                );
            }
        }
    }

    for minimize in [true, false] {
        for aggregate in [true, false] {
            let cfg = DCandConfig {
                minimize,
                aggregate,
                ..DCandConfig::new(1)
            };
            assert_eq!(
                mine(&base, AlgorithmSpec::DCand(cfg)),
                reference,
                "{what}: d_cand min={minimize} agg={aggregate}"
            );
        }
    }
}

#[test]
fn all_algorithms_agree_on_nyt_constraints() {
    let (dict, db) = shared(nyt_like(&NytConfig::new(300)));
    for c in patterns::nyt_constraints() {
        let sigma = if matches!(c.name.as_str(), "N4" | "N5") {
            20
        } else {
            2
        };
        check_all(&dict, &db, &c.expr, sigma, &c.name);
    }
}

#[test]
fn all_algorithms_agree_on_amzn_constraints() {
    let (dict, db) = shared(amzn_like(&AmznConfig::new(250)));
    for c in patterns::amzn_constraints() {
        check_all(&dict, &db, &c.expr, 3, &c.name);
    }
}

#[test]
fn all_algorithms_agree_on_traditional_constraints() {
    let (dict, db) = amzn_like(&AmznConfig::new(200));
    let (fdict, fdb) = shared(to_forest(&dict, &db));
    let (dict, db) = shared((dict, db));
    for (c, d, database) in [
        (patterns::t1(4), &dict, &db),
        (patterns::t2(1, 4), &fdict, &fdb),
        (patterns::t3(1, 4), &fdict, &fdb),
    ] {
        for sigma in [2, 5, 20] {
            check_all(
                d,
                database,
                &c.expr,
                sigma,
                &format!("{}/σ={sigma}", c.name),
            );
        }
    }
}

#[test]
fn all_algorithms_agree_on_cw() {
    let (dict, db) = shared(cw_like(&CwConfig::new(300)));
    check_all(&dict, &db, &patterns::t2(0, 4).expr, 4, "T2(0,4)");
}

#[test]
fn specialized_baselines_agree_with_general_algorithms() {
    let (dict, db) = amzn_like(&AmznConfig::new(300));
    let (fdict, fdb) = shared(to_forest(&dict, &db));

    // LASH == DESQ under T3, and == the sequential gap miner.
    for (sigma, gamma, lambda) in [(2, 1, 4), (5, 0, 3), (3, 2, 5)] {
        let base = base_session(&fdict, &fdb, &patterns::t3(gamma, lambda).expr, sigma);
        let reference = mine(&base, AlgorithmSpec::DesqCount);
        assert_eq!(
            mine(
                &base,
                AlgorithmSpec::Lash(LashConfig::new(sigma, gamma, lambda))
            ),
            reference,
            "LASH T3({sigma},{gamma},{lambda})"
        );
        assert_eq!(
            mine(
                &base,
                AlgorithmSpec::GapMiner {
                    gamma,
                    max_len: lambda,
                    min_len: 2,
                    generalize: true,
                }
            ),
            reference,
            "GapMiner T3({sigma},{gamma},{lambda})"
        );
    }

    // MLlib == DESQ under T1 == sequential PrefixSpan (hierarchy-free data).
    let (flat_dict, flat_db) = shared(cw_like(&CwConfig::new(250)));
    for sigma in [3, 8] {
        let base = base_session(&flat_dict, &flat_db, &patterns::t1(4).expr, sigma);
        let reference = mine(&base, AlgorithmSpec::DesqCount);
        assert_eq!(
            mine(&base, AlgorithmSpec::Mllib { max_len: 4 }),
            reference,
            "MLlib T1({sigma},4)"
        );
        assert_eq!(
            mine(&base, AlgorithmSpec::PrefixSpan { max_len: 4 }),
            reference,
            "PrefixSpan T1({sigma},4)"
        );
    }
}

/// Mines `expr` at both FST optimization levels and asserts identical
/// patterns and supports — plus the recorded size counters showing the
/// optimizer never grew the machine.
fn check_opt_levels(
    dict: &Arc<Dictionary>,
    db: &Arc<SequenceDb>,
    expr: &str,
    sigma: u64,
    what: &str,
) {
    let run = |level: desq::OptLevel| {
        MiningSession::builder()
            .dictionary(dict.clone())
            .database(db.clone())
            .pattern_unanchored(expr)
            .sigma(sigma)
            .opt_level(level)
            .build()
            .unwrap()
            .run()
            .unwrap()
    };
    let oracle = run(desq::OptLevel::None);
    let optimized = run(desq::OptLevel::Full);
    assert_eq!(
        optimized.patterns, oracle.patterns,
        "{what}: Full diverged from the None oracle"
    );
    let m = &optimized.metrics;
    assert!(
        m.fst_states_after <= m.fst_states_before
            && m.fst_transitions_after <= m.fst_transitions_before,
        "{what}: optimizer grew the FST ({}→{} states, {}→{} transitions)",
        m.fst_states_before,
        m.fst_states_after,
        m.fst_transitions_before,
        m.fst_transitions_after
    );
}

#[test]
fn opt_levels_agree_on_tab3_constraints() {
    let (dict, db) = shared(nyt_like(&NytConfig::new(300)));
    for c in patterns::nyt_constraints() {
        let sigma = if matches!(c.name.as_str(), "N4" | "N5") {
            20
        } else {
            2
        };
        check_opt_levels(&dict, &db, &c.expr, sigma, &c.name);
    }
    let (adict, adb) = amzn_like(&AmznConfig::new(250));
    let (fdict, fdb) = shared(to_forest(&adict, &adb));
    let (adict, adb) = shared((adict, adb));
    for c in patterns::amzn_constraints() {
        check_opt_levels(&adict, &adb, &c.expr, 3, &c.name);
    }
    for c in [patterns::t1(4), patterns::t2(1, 4), patterns::t3(1, 4)] {
        check_opt_levels(&fdict, &fdb, &c.expr, 5, &c.name);
    }
}

#[test]
fn results_stable_across_workers_and_partitionings() {
    let (dict, db) = shared(nyt_like(&NytConfig::new(200)));
    let mut results: Vec<Vec<(Sequence, u64)>> = Vec::new();
    for workers in [1, 2, 7] {
        for nparts in [1, 3, 11] {
            let session = MiningSession::builder()
                .dictionary(dict.clone())
                .database(db.clone())
                .pattern_unanchored(&patterns::n2().expr)
                .sigma(2)
                .algorithm(AlgorithmSpec::d_seq())
                .workers(workers)
                .partitions(nparts)
                .build()
                .unwrap();
            results.push(session.run().unwrap().patterns);
        }
    }
    for r in &results[1..] {
        assert_eq!(r, &results[0]);
    }
}
