//! The master correctness property of this reproduction: every mining path
//! — NAÏVE, SEMI-NAÏVE, D-SEQ (all ablations), D-CAND (all ablations),
//! sequential DESQ-DFS and the brute-force DESQ-COUNT reference — produces
//! the *identical* set of frequent sequences with identical frequencies,
//! on every dataset and constraint.

use desq::baselines::{lash, mllib_prefixspan, LashConfig, MllibConfig};
use desq::bsp::Engine;
use desq::core::{Dictionary, Fst, Sequence, SequenceDb};
use desq::datagen::{amzn_like, cw_like, nyt_like, to_forest, AmznConfig, CwConfig, NytConfig};
use desq::dist::{d_cand, d_seq, naive, patterns, DCandConfig, DSeqConfig, NaiveConfig};
use desq::miner::{desq_count, desq_dfs, GapMiner, PrefixSpan};

fn check_all(dict: &Dictionary, db: &SequenceDb, fst: &Fst, sigma: u64, what: &str) {
    let reference = desq_count(db, fst, dict, sigma, usize::MAX).unwrap();
    let dfs = desq_dfs(db, fst, dict, sigma);
    assert_eq!(dfs, reference, "{what}: DESQ-DFS vs DESQ-COUNT");

    let engine = Engine::new(3);
    let parts = db.partition(5);

    for filter in [false, true] {
        let cfg = if filter {
            NaiveConfig::semi_naive(sigma)
        } else {
            NaiveConfig::naive(sigma)
        };
        let res = naive(&engine, &parts, fst, dict, cfg).unwrap();
        assert_eq!(res.patterns, reference, "{what}: naive(filter={filter})");
    }

    for use_grid in [true, false] {
        for rewrite in [true, false] {
            for early_stop in [true, false] {
                let cfg = DSeqConfig {
                    sigma,
                    use_grid,
                    rewrite,
                    early_stop,
                    run_budget: usize::MAX,
                };
                let res = d_seq(&engine, &parts, fst, dict, cfg).unwrap();
                assert_eq!(
                    res.patterns, reference,
                    "{what}: d_seq grid={use_grid} rewrite={rewrite} stop={early_stop}"
                );
            }
        }
    }

    for minimize in [true, false] {
        for aggregate in [true, false] {
            let cfg = DCandConfig {
                sigma,
                minimize,
                aggregate,
                run_budget: usize::MAX,
            };
            let res = d_cand(&engine, &parts, fst, dict, cfg).unwrap();
            assert_eq!(
                res.patterns, reference,
                "{what}: d_cand min={minimize} agg={aggregate}"
            );
        }
    }
}

#[test]
fn all_algorithms_agree_on_nyt_constraints() {
    let (dict, db) = nyt_like(&NytConfig::new(300));
    for c in patterns::nyt_constraints() {
        let fst = c.compile(&dict).unwrap();
        let sigma = if matches!(c.name.as_str(), "N4" | "N5") {
            20
        } else {
            2
        };
        check_all(&dict, &db, &fst, sigma, &c.name);
    }
}

#[test]
fn all_algorithms_agree_on_amzn_constraints() {
    let (dict, db) = amzn_like(&AmznConfig::new(250));
    for c in patterns::amzn_constraints() {
        let fst = c.compile(&dict).unwrap();
        check_all(&dict, &db, &fst, 3, &c.name);
    }
}

#[test]
fn all_algorithms_agree_on_traditional_constraints() {
    let (dict, db) = amzn_like(&AmznConfig::new(200));
    let (fdict, fdb) = to_forest(&dict, &db);
    for (c, d, database) in [
        (patterns::t1(4), &dict, &db),
        (patterns::t2(1, 4), &fdict, &fdb),
        (patterns::t3(1, 4), &fdict, &fdb),
    ] {
        let fst = c.compile(d).unwrap();
        for sigma in [2, 5, 20] {
            check_all(d, database, &fst, sigma, &format!("{}/σ={sigma}", c.name));
        }
    }
}

#[test]
fn all_algorithms_agree_on_cw() {
    let (dict, db) = cw_like(&CwConfig::new(300));
    let c = patterns::t2(0, 4);
    let fst = c.compile(&dict).unwrap();
    check_all(&dict, &db, &fst, 4, &c.name);
}

#[test]
fn specialized_baselines_agree_with_general_algorithms() {
    let (dict, db) = amzn_like(&AmznConfig::new(300));
    let (fdict, fdb) = to_forest(&dict, &db);
    let engine = Engine::new(3);
    let parts = fdb.partition(4);

    // LASH == DESQ under T3, and == the sequential gap miner.
    for (sigma, gamma, lambda) in [(2, 1, 4), (5, 0, 3), (3, 2, 5)] {
        let fst = patterns::t3(gamma, lambda).compile(&fdict).unwrap();
        let reference = desq_count(&fdb, &fst, &fdict, sigma, usize::MAX).unwrap();
        let l = lash(
            &engine,
            &parts,
            &fdict,
            LashConfig::new(sigma, gamma, lambda),
        )
        .unwrap();
        assert_eq!(l.patterns, reference, "LASH T3({sigma},{gamma},{lambda})");
        let g = GapMiner::new(sigma, gamma, lambda, true).mine(&fdb, &fdict);
        assert_eq!(g, reference, "GapMiner T3({sigma},{gamma},{lambda})");
    }

    // MLlib == DESQ under T1 == sequential PrefixSpan (hierarchy-free data).
    let (flat_dict, flat_db) = cw_like(&CwConfig::new(250));
    let flat_parts = flat_db.partition(3);
    for sigma in [3, 8] {
        let fst = patterns::t1(4).compile(&flat_dict).unwrap();
        let reference = desq_count(&flat_db, &fst, &flat_dict, sigma, usize::MAX).unwrap();
        let ml = mllib_prefixspan(&engine, &flat_parts, MllibConfig::new(sigma, 4)).unwrap();
        assert_eq!(ml.patterns, reference, "MLlib T1({sigma},4)");
        let ps = PrefixSpan::new(sigma, 4).mine(&flat_db);
        assert_eq!(ps, reference, "PrefixSpan T1({sigma},4)");
    }
}

#[test]
fn results_stable_across_workers_and_partitionings() {
    let (dict, db) = nyt_like(&NytConfig::new(200));
    let fst = patterns::n2().compile(&dict).unwrap();
    let mut results: Vec<Vec<(Sequence, u64)>> = Vec::new();
    for workers in [1, 2, 7] {
        for nparts in [1, 3, 11] {
            let engine = Engine::new(workers);
            let parts = db.partition(nparts);
            let res = d_seq(&engine, &parts, &fst, &dict, DSeqConfig::new(2)).unwrap();
            results.push(res.patterns);
        }
    }
    for r in &results[1..] {
        assert_eq!(r, &results[0]);
    }
}
