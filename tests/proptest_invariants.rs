//! Property-based tests of the core invariants, on random hierarchies,
//! databases and pattern expressions.

use proptest::prelude::*;

use desq::core::fst::candidates;
use desq::core::{Dictionary, DictionaryBuilder, Error, Fst, ItemId, PatEx, Sequence, SequenceDb};
use desq::dist::dcand::merge_pivots;
use desq::dist::dcand::nfa::TrieBuilder;
use desq::dist::PivotSearch;
use desq::miner::{LocalMiner, MinerConfig, SchedConfig, WeightedInput};
use desq::session::{AlgorithmSpec, MiningSession};
use desq::ExecutionPolicy;

const BUDGET: usize = 100_000;

/// A session over a random world and a pre-compiled FST, with the
/// property-test work budget.
fn world_session(
    world: &World,
    fst: &Fst,
    sigma: u64,
    workers: usize,
    parts: usize,
) -> MiningSession {
    MiningSession::builder()
        .dictionary(world.dict.clone())
        .database(world.db.clone())
        .fst(fst.clone())
        .sigma(sigma)
        .budget(BUDGET)
        .workers(workers)
        .partitions(parts)
        .build()
        .unwrap()
}

/// A random DAG dictionary over items `i0..i{n-1}` (edges only from later to
/// earlier items — acyclic by construction), frozen over a random database.
#[derive(Debug, Clone)]
struct World {
    dict: Dictionary,
    db: SequenceDb,
}

fn arb_world() -> impl Strategy<Value = World> {
    (3usize..7)
        .prop_flat_map(|n| {
            let edges = proptest::collection::vec((1..n, 0..n), 0..n);
            let seqs =
                proptest::collection::vec(proptest::collection::vec(1..=n as ItemId, 0..7), 1..6);
            (Just(n), edges, seqs)
        })
        .prop_map(|(n, edges, seqs)| {
            let mut b = DictionaryBuilder::new();
            for i in 0..n {
                b.item(&format!("i{i}"));
            }
            for (child, parent) in edges {
                if parent < child {
                    b.edge(&format!("i{child}"), &format!("i{parent}"));
                }
            }
            let (dict, db) = b.freeze(&SequenceDb::new(seqs)).unwrap();
            World { dict, db }
        })
}

fn arb_pexp(items: usize) -> impl Strategy<Value = PatEx> {
    let leaf = prop_oneof![
        (0..items).prop_map(|i| PatEx::Item {
            name: format!("i{i}"),
            exact: false,
            up: false
        }),
        (0..items).prop_map(|i| PatEx::Item {
            name: format!("i{i}"),
            exact: true,
            up: false
        }),
        (0..items).prop_map(|i| PatEx::Item {
            name: format!("i{i}"),
            exact: false,
            up: true
        }),
        Just(PatEx::Dot { up: false }),
        Just(PatEx::Dot { up: true }),
    ];
    leaf.prop_recursive(3, 12, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| PatEx::Capture(Box::new(e))),
            inner.clone().prop_map(|e| PatEx::Star(Box::new(e))),
            inner.clone().prop_map(|e| PatEx::Plus(Box::new(e))),
            inner.clone().prop_map(|e| PatEx::Optional(Box::new(e))),
            proptest::collection::vec(inner.clone(), 2..3).prop_map(PatEx::Concat),
            proptest::collection::vec(inner.clone(), 2..3).prop_map(PatEx::Alt),
            (inner, 0u32..2, 1u32..3).prop_map(|(e, mn, extra)| PatEx::Range {
                inner: Box::new(e),
                min: mn,
                max: Some(mn + extra),
            }),
        ]
    })
}

/// Brute-force pivot set of a run: pivots of every candidate in the
/// Cartesian product of the output sets.
fn pivots_by_product(sets: &[Vec<ItemId>]) -> Vec<ItemId> {
    let mut out: Vec<ItemId> = Vec::new();
    let mut idx = vec![0usize; sets.len()];
    loop {
        let max = idx.iter().zip(sets).map(|(&i, s)| s[i]).max().unwrap();
        if !out.contains(&max) {
            out.push(max);
        }
        // odometer
        let mut d = 0;
        loop {
            if d == sets.len() {
                out.sort_unstable();
                return out;
            }
            idx[d] += 1;
            if idx[d] < sets[d].len() {
                break;
            }
            idx[d] = 0;
            d += 1;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Th. 1: the ⊕ merge equals the brute-force pivot computation.
    #[test]
    fn pivot_merge_matches_cartesian_product(
        sets in proptest::collection::vec(
            proptest::collection::btree_set(1u32..12, 1..4), 1..5)
    ) {
        let sets: Vec<Vec<ItemId>> = sets
            .into_iter()
            .map(|s| s.into_iter().collect::<Vec<_>>())
            .collect();
        prop_assert_eq!(merge_pivots(&sets), pivots_by_product(&sets));
    }

    /// Pattern expressions render and re-parse to the same AST.
    #[test]
    fn pexp_display_parse_roundtrip(e in arb_pexp(4)) {
        let shown = e.to_string();
        let back = PatEx::parse(&shown).unwrap();
        prop_assert_eq!(back, e, "display form: {}", shown);
    }

    /// The flat pivot DP (bit-packed reachability + ⊕ merges over sorted
    /// arrays, per-thread scratch) returns exactly the pivot *ranges* of
    /// the run-enumeration oracle on random dictionaries, FSTs and
    /// sequences — items and rewritten bounds alike — and scratch reuse
    /// across sequences leaks no state.
    #[test]
    fn flat_pivot_dp_matches_enumeration(
        world in arb_world(), e in arb_pexp(4), sigma in 1u64..3
    ) {
        let fst = match Fst::compile(&e, &world.dict) {
            Ok(f) => f,
            Err(_) => return Ok(()), // pattern references an absent item
        };
        let search = PivotSearch::new(&fst, &world.dict, world.dict.last_frequent(sigma));
        let mut scratch = desq::dist::pivots::PivotScratch::default();
        for seq in &world.db.sequences {
            let oracle = match search.pivots_enumerated_ranges(seq, BUDGET) {
                Ok(r) => r,
                Err(_) => continue, // run explosion: oracle unavailable
            };
            let dp = search.pivots_with(seq, &mut scratch);
            prop_assert_eq!(&dp, &oracle, "seq {:?}", seq);
        }
    }

    /// The flat counting path (run walker + interned candidate counter)
    /// is observationally equivalent to the `candidates::generate` oracle
    /// on random dictionaries, pattern expressions and databases:
    /// identical pattern sets and counts (byte-identical after sorting),
    /// identical work metrics, and budget-exhaustion parity —
    /// `Error::ResourceExhausted` fires at the same effective work bound,
    /// with and without the σ filter.
    #[test]
    fn flat_counting_matches_generate(
        world in arb_world(), e in arb_pexp(4), sigma in 0u64..3, small_budget in 1usize..40
    ) {
        use desq::core::fst::{CandidateCounter, FstIndex, RunScratch, RunWalker};
        use desq::core::fx::FxHashMap;

        let fst = match Fst::compile(&e, &world.dict) {
            Ok(f) => f,
            Err(_) => return Ok(()), // pattern references an absent item
        };
        // σ = 0 exercises the unfiltered (NAÏVE) configuration.
        let sigma_opt = (sigma > 0).then_some(sigma);

        let oracle = |budget: usize| -> Result<(Vec<(Sequence, u64)>, u64), Error> {
            let mut counts: FxHashMap<Sequence, u64> = FxHashMap::default();
            let mut work = 0u64;
            for seq in &world.db.sequences {
                let cands = candidates::generate(&fst, &world.dict, seq, sigma_opt, budget)?;
                work += cands.len() as u64;
                for c in cands {
                    *counts.entry(c).or_insert(0) += 1;
                }
            }
            let mut out: Vec<(Sequence, u64)> = counts.into_iter().collect();
            out.sort();
            Ok((out, work))
        };
        let index = FstIndex::new(&fst);
        let flat = |budget: usize| -> Result<(Vec<(Sequence, u64)>, u64), Error> {
            let walker = match sigma_opt {
                Some(s) => RunWalker::new(&fst, &world.dict, &index, world.dict.last_frequent(s)),
                None => RunWalker::unfiltered(&fst, &world.dict, &index),
            };
            let mut scratch = RunScratch::default();
            let mut counter = CandidateCounter::new();
            for seq in &world.db.sequences {
                walker.count_candidates(seq, 1, budget, &mut scratch, &mut counter, |_, _| {})?;
            }
            let mut out = counter.patterns(0);
            out.sort();
            Ok((out, counter.observed()))
        };

        for budget in [BUDGET, small_budget] {
            match (oracle(budget), flat(budget)) {
                (Ok((a, aw)), Ok((b, bw))) => {
                    prop_assert_eq!(&b, &a, "budget {}", budget);
                    prop_assert_eq!(bw, aw, "work metric, budget {}", budget);
                }
                (Err(Error::ResourceExhausted(_)), Err(Error::ResourceExhausted(_))) => {}
                (a, b) => prop_assert!(
                    false,
                    "budget parity violated at {}: oracle {:?} vs flat {:?}",
                    budget,
                    a.map(|(p, _)| p.len()),
                    b.map(|(p, _)| p.len())
                ),
            }
        }
    }

    /// The FST optimizer is observationally invisible: `OptLevel::Full`
    /// yields identical per-sequence candidate sets, pattern sets,
    /// supports and `count_candidates` work as the `OptLevel::None`
    /// oracle (work is first-per-sequence observations, which merging
    /// duplicate runs cannot change), and never grows the machine.
    #[test]
    fn optimized_fst_matches_oracle(
        world in arb_world(), e in arb_pexp(4), sigma in 0u64..3
    ) {
        use desq::core::fst::{CandidateCounter, FstIndex, RunScratch, RunWalker};
        use desq::core::OptLevel;
        use std::collections::BTreeSet;

        let full = match Fst::compile_with(&e, &world.dict, OptLevel::Full) {
            Ok(f) => f,
            Err(_) => return Ok(()), // pattern references an absent item
        };
        let none = Fst::compile_with(&e, &world.dict, OptLevel::None).unwrap();
        prop_assert!(full.num_states() <= none.num_states());
        prop_assert!(full.num_transitions() <= none.num_transitions());
        prop_assert_eq!(full.states_before_opt(), none.num_states());
        prop_assert_eq!(full.transitions_before_opt(), none.num_transitions());
        prop_assert_eq!(full.accepts_empty(), none.accepts_empty());

        let sigma_opt = (sigma > 0).then_some(sigma);
        for seq in &world.db.sequences {
            let a = candidates::generate(&none, &world.dict, seq, sigma_opt, BUDGET);
            let b = candidates::generate(&full, &world.dict, seq, sigma_opt, BUDGET);
            match (a, b) {
                (Ok(a), Ok(b)) => {
                    let a: BTreeSet<Sequence> = a.into_iter().collect();
                    let b: BTreeSet<Sequence> = b.into_iter().collect();
                    prop_assert_eq!(b, a, "candidate set diverged on {:?}", seq);
                }
                // Run explosion on either side: the enumeration oracle is
                // unavailable (the optimized side may legitimately finish
                // where the oracle exhausts).
                _ => return Ok(()),
            }
        }

        let count = |fst: &Fst| -> Result<(Vec<(Sequence, u64)>, u64), Error> {
            let index = FstIndex::new(fst);
            let walker = match sigma_opt {
                Some(s) => RunWalker::new(fst, &world.dict, &index, world.dict.last_frequent(s)),
                None => RunWalker::unfiltered(fst, &world.dict, &index),
            };
            let mut scratch = RunScratch::default();
            let mut counter = CandidateCounter::new();
            for seq in &world.db.sequences {
                walker.count_candidates(seq, 1, BUDGET, &mut scratch, &mut counter, |_, _| {})?;
            }
            let mut out = counter.patterns(0);
            out.sort();
            Ok((out, counter.observed()))
        };
        match (count(&none), count(&full)) {
            (Ok((a, aw)), Ok((b, bw))) => {
                prop_assert_eq!(&b, &a, "pattern sets or supports diverged");
                prop_assert_eq!(bw, aw, "counting work diverged");
            }
            // The optimized machine does no more work than the oracle, so
            // exhaustion on the oracle side alone is the optimizer winning.
            (Err(Error::ResourceExhausted(_)), _) => {}
            (a, b) => prop_assert!(
                false,
                "oracle {:?} vs optimized {:?}",
                a.map(|(p, _)| p.len()),
                b.map(|(p, _)| p.len())
            ),
        }
    }

    /// The grid pivot search equals the definition (pivots of G^σ_π(T)),
    /// and run-enumerated pivot search agrees.
    #[test]
    fn pivot_search_matches_definition(world in arb_world(), e in arb_pexp(4), sigma in 1u64..3) {
        let fst = match Fst::compile(&e, &world.dict) {
            Ok(f) => f,
            Err(_) => return Ok(()), // pattern references an absent item
        };
        let last = world.dict.last_frequent(sigma);
        let search = PivotSearch::new(&fst, &world.dict, last);
        for seq in &world.db.sequences {
            let cands = match candidates::generate(&fst, &world.dict, seq, Some(sigma), BUDGET) {
                Ok(c) => c,
                Err(_) => continue, // exploded: skip this sequence
            };
            let mut expect: Vec<ItemId> =
                cands.iter().map(|s| desq::core::sequence::pivot(s)).collect();
            expect.sort_unstable();
            expect.dedup();
            let got: Vec<ItemId> = search.pivots(seq).iter().map(|p| p.item).collect();
            prop_assert_eq!(&got, &expect, "seq {:?}", seq);
            if let Ok(en) = search.pivots_enumerated(seq, BUDGET) {
                prop_assert_eq!(&en, &expect, "enumerated, seq {:?}", seq);
            }
        }
    }

    /// D-SEQ's per-pivot rewriting preserves the pivot-k candidate sets
    /// exactly (including the safety clamps for adversarial FSTs).
    #[test]
    fn rewriting_preserves_pivot_candidates(
        world in arb_world(), e in arb_pexp(4), sigma in 1u64..3
    ) {
        let fst = match Fst::compile(&e, &world.dict) {
            Ok(f) => f,
            Err(_) => return Ok(()),
        };
        let last = world.dict.last_frequent(sigma);
        let search = PivotSearch::new(&fst, &world.dict, last);
        for seq in &world.db.sequences {
            let full = match candidates::generate(&fst, &world.dict, seq, Some(sigma), BUDGET) {
                Ok(c) => c,
                Err(_) => continue,
            };
            for pr in search.pivots(seq) {
                let trimmed = seq[pr.first as usize..=pr.last as usize].to_vec();
                let cut = match candidates::generate(
                    &fst, &world.dict, &trimmed, Some(sigma), BUDGET,
                ) {
                    Ok(c) => c,
                    Err(_) => continue,
                };
                let fk: std::collections::BTreeSet<&Sequence> = full
                    .iter()
                    .filter(|s| desq::core::sequence::pivot(s) == pr.item)
                    .collect();
                let ck: std::collections::BTreeSet<&Sequence> = cut
                    .iter()
                    .filter(|s| desq::core::sequence::pivot(s) == pr.item)
                    .collect();
                prop_assert_eq!(fk, ck, "pivot {} of {:?} (range {}..={})",
                    pr.item, seq, pr.first, pr.last);
            }
        }
    }

    /// The full distributed algorithms agree with the brute-force reference
    /// on random worlds and patterns — all dispatched through the session.
    #[test]
    fn distributed_matches_reference(
        world in arb_world(), e in arb_pexp(4), sigma in 1u64..3
    ) {
        let fst = match Fst::compile(&e, &world.dict) {
            Ok(f) => f,
            Err(_) => return Ok(()),
        };
        let base = world_session(&world, &fst, sigma, 2, 2);
        let reference = match base.with_algorithm(AlgorithmSpec::DesqCount).unwrap().run() {
            Ok(r) => r.patterns,
            Err(_) => return Ok(()), // candidate explosion: skip
        };
        let ds = base.with_algorithm(AlgorithmSpec::d_seq()).unwrap().run().unwrap();
        prop_assert_eq!(&ds.patterns, &reference, "d_seq");
        if let Ok(dc) = base.with_algorithm(AlgorithmSpec::d_cand()).unwrap().run() {
            prop_assert_eq!(&dc.patterns, &reference, "d_cand");
        }
    }

    /// Session-level invariants on random worlds: results are sorted (the
    /// documented `MiningResult` invariant), stable across worker/partition
    /// counts, metrics are non-trivial, and σ = 0 is rejected with
    /// `Error::Invalid` regardless of the algorithm.
    #[test]
    fn session_invariants_hold_on_random_worlds(
        world in arb_world(), e in arb_pexp(4), sigma in 1u64..3,
        workers in 1usize..4, parts in 1usize..5,
    ) {
        let fst = match Fst::compile(&e, &world.dict) {
            Ok(f) => f,
            Err(_) => return Ok(()),
        };
        let base = world_session(&world, &fst, sigma, workers, parts);
        let reference = match base.with_algorithm(AlgorithmSpec::d_seq()).unwrap().run() {
            Ok(r) => r,
            Err(_) => return Ok(()),
        };
        prop_assert!(reference.is_sorted());
        prop_assert_eq!(reference.metrics.input_sequences, world.db.len() as u64);
        prop_assert_eq!(reference.metrics.output_records, reference.patterns.len() as u64);
        prop_assert_eq!(reference.metrics.workers, workers as u64);
        // Stability: a different parallelism yields the identical result.
        let other = world_session(&world, &fst, sigma, 1, 3)
            .with_algorithm(AlgorithmSpec::d_seq()).unwrap().run().unwrap();
        prop_assert_eq!(&other.patterns, &reference.patterns);
        // The shared validator rejects σ = 0 for every algorithm.
        let zero = MiningSession::builder()
            .dictionary(world.dict.clone())
            .database(world.db.clone())
            .fst(fst)
            .sigma(0)
            .build();
        prop_assert!(matches!(zero, Err(Error::Invalid(_))));
    }

    /// Parallel local mining (sharded first-level children) is
    /// result-identical to sequential mining on random worlds, for the
    /// eager, streaming, and pivot-restricted entry points.
    #[test]
    fn parallel_local_mining_matches_sequential(
        world in arb_world(), e in arb_pexp(4), sigma in 1u64..3,
    ) {
        let fst = match Fst::compile(&e, &world.dict) {
            Ok(f) => f,
            Err(_) => return Ok(()),
        };
        let inputs: Vec<WeightedInput<'_>> = world
            .db
            .sequences
            .iter()
            .map(|s| (s.as_slice(), 1))
            .collect();
        let miner = LocalMiner::new(&fst, &world.dict, MinerConfig::sequential(sigma));
        let sequential = miner.mine(&inputs).unwrap();
        for workers in 2usize..=4 {
            let (parallel, timings) = miner.mine_with_workers(&inputs, workers, None).unwrap();
            prop_assert_eq!(&parallel, &sequential, "workers = {}", workers);
            prop_assert_eq!(timings.len(), workers);
            // Streaming shards agree as a set.
            let mut streamed = Vec::new();
            let completed = miner.mine_each_with_workers(&inputs, workers, None, &mut |p, f| {
                streamed.push((p, f));
                true
            }).unwrap();
            prop_assert!(completed);
            streamed.sort_unstable();
            prop_assert_eq!(&streamed, &sequential, "streamed, workers = {}", workers);
        }
        // Pivot-restricted parallel mining agrees with its sequential twin.
        for k in 1..=world.dict.max_fid() {
            let miner =
                LocalMiner::new(&fst, &world.dict, MinerConfig::for_pivot(sigma, k, true));
            let sequential = miner.mine(&inputs).unwrap();
            let (parallel, _) = miner.mine_with_workers(&inputs, 3, None).unwrap();
            prop_assert_eq!(parallel, sequential, "pivot {}", k);
        }
    }

    /// Work stealing under a steal-forcing configuration
    /// ([`SchedConfig::aggressive`]: every search-tree node becomes a
    /// stealable task) is result-identical to sequential mining on random
    /// worlds — eager and streaming — and the scheduler accounts one stats
    /// entry per worker with every executed task counted.
    #[test]
    fn forced_stealing_matches_sequential(
        world in arb_world(), e in arb_pexp(4), sigma in 1u64..3,
    ) {
        let fst = match Fst::compile(&e, &world.dict) {
            Ok(f) => f,
            Err(_) => return Ok(()),
        };
        let inputs: Vec<WeightedInput<'_>> = world
            .db
            .sequences
            .iter()
            .map(|s| (s.as_slice(), 1))
            .collect();
        let miner = LocalMiner::new(&fst, &world.dict, MinerConfig::sequential(sigma))
            .with_sched(SchedConfig::aggressive());
        let sequential = miner.mine(&inputs).unwrap();
        for workers in 2usize..=4 {
            let (parallel, stats) = miner.mine_with_workers(&inputs, workers, None).unwrap();
            prop_assert_eq!(&parallel, &sequential, "workers = {}", workers);
            prop_assert_eq!(stats.len(), workers);
            let tasks: u64 = stats.iter().map(|s| s.tasks).sum();
            if !sequential.is_empty() {
                prop_assert!(tasks > 0, "non-empty result must run tasks");
            }
            let mut streamed = Vec::new();
            let completed = miner.mine_each_with_workers(&inputs, workers, None, &mut |p, f| {
                streamed.push((p, f));
                true
            }).unwrap();
            prop_assert!(completed);
            streamed.sort_unstable();
            prop_assert_eq!(&streamed, &sequential, "streamed, workers = {}", workers);
        }
    }

    /// The hybrid execution paths agree on random worlds: `Flat` (forced
    /// table materialization), `Lean` (forced counting path) and `Auto`
    /// (the cost model) produce identical patterns through the session,
    /// at 1 and 3 workers. A forced `Lean` may exhaust a tiny budget
    /// (`ResourceExhausted` propagates); `Auto` must transparently fall
    /// back to the flat path instead and still match it.
    #[test]
    fn execution_policies_agree_on_random_worlds(
        world in arb_world(), e in arb_pexp(4), sigma in 1u64..3,
        small_budget in 1usize..40,
    ) {
        let fst = match Fst::compile(&e, &world.dict) {
            Ok(f) => f,
            Err(_) => return Ok(()),
        };
        let build = |exec: ExecutionPolicy, budget: usize, workers: usize| {
            MiningSession::builder()
                .dictionary(world.dict.clone())
                .database(world.db.clone())
                .fst(fst.clone())
                .sigma(sigma)
                .budget(budget)
                .workers(workers)
                .algorithm(AlgorithmSpec::DesqDfs)
                .execution_policy(exec)
                .build()
                .unwrap()
        };
        let flat = build(ExecutionPolicy::Flat, BUDGET, 1).run().unwrap();
        for workers in [1usize, 3] {
            for budget in [BUDGET, small_budget] {
                let auto = build(ExecutionPolicy::Auto, budget, workers).run().unwrap();
                prop_assert_eq!(
                    &auto.patterns, &flat.patterns,
                    "auto, workers = {}, budget = {}", workers, budget
                );
                match build(ExecutionPolicy::Lean, budget, workers).run() {
                    Ok(lean) => prop_assert_eq!(
                        &lean.patterns, &flat.patterns,
                        "lean, workers = {}, budget = {}", workers, budget
                    ),
                    Err(Error::ResourceExhausted(_)) => {}
                    Err(err) => prop_assert!(false, "lean failed unexpectedly: {}", err),
                }
            }
        }
    }

    /// The naive distributed baselines agree with the reference on random
    /// worlds, and pivot search returns well-formed, frequent pivot ranges.
    #[test]
    fn naive_baselines_and_pivot_ranges_are_sound(
        world in arb_world(), e in arb_pexp(4), sigma in 1u64..3
    ) {
        let fst = match Fst::compile(&e, &world.dict) {
            Ok(f) => f,
            Err(_) => return Ok(()),
        };
        let reference = match world_session(&world, &fst, sigma, 1, 1)
            .with_algorithm(AlgorithmSpec::DesqCount).unwrap().run() {
            Ok(r) => r.patterns,
            Err(_) => return Ok(()), // candidate explosion: skip
        };
        let base = world_session(&world, &fst, sigma, 2, 3);
        if let Ok(nv) = base.with_algorithm(AlgorithmSpec::Naive).unwrap().run() {
            prop_assert_eq!(&nv.patterns, &reference, "naive");
        }
        if let Ok(sn) = base.with_algorithm(AlgorithmSpec::SemiNaive).unwrap().run() {
            prop_assert_eq!(&sn.patterns, &reference, "semi-naive");
        }
        let search = PivotSearch::new(&fst, &world.dict, world.dict.last_frequent(sigma));
        for seq in &world.db.sequences {
            for pr in search.pivots(seq) {
                prop_assert!(pr.first <= pr.last, "range of {:?}", seq);
                prop_assert!((pr.last as usize) < seq.len(), "range end of {:?}", seq);
                prop_assert!(
                    world.dict.is_frequent(pr.item, sigma),
                    "infrequent pivot {} of {:?}", pr.item, seq
                );
            }
        }
    }

    /// NFA tries: minimization preserves the language and never grows;
    /// serialization round-trips.
    #[test]
    fn nfa_invariants(
        paths in proptest::collection::vec(
            proptest::collection::vec(
                proptest::collection::btree_set(1u32..9, 1..3), 1..5),
            1..6)
    ) {
        let paths: Vec<Vec<Vec<ItemId>>> = paths
            .into_iter()
            .map(|p| p.into_iter().map(|s| s.into_iter().collect()).collect())
            .collect();
        let mut trie = TrieBuilder::new();
        let mut trie2 = TrieBuilder::new();
        for p in &paths {
            trie.insert(p);
            trie2.insert(p);
        }
        let nodes = trie.num_nodes();
        let raw = trie.into_nfa();
        let min = trie2.minimize();
        prop_assert_eq!(raw.language(), min.language());
        prop_assert!(min.num_states() <= nodes);
        let bytes = min.serialize();
        let back = desq::dist::dcand::nfa::Nfa::deserialize(&bytes).unwrap();
        prop_assert_eq!(back.language(), min.language());
    }

    /// Dictionary freezing: fids are frequency-ranked and hierarchy is
    /// preserved under renaming.
    #[test]
    fn dictionary_freeze_invariants(world in arb_world()) {
        let d = &world.dict;
        // Non-increasing document frequencies.
        for fid in 1..d.max_fid() {
            prop_assert!(d.doc_freq(fid) >= d.doc_freq(fid + 1));
        }
        // Ancestor lists contain self and only valid fids, sorted.
        for fid in 1..=d.max_fid() {
            let anc = d.ancestors(fid);
            prop_assert!(anc.contains(&fid));
            prop_assert!(anc.windows(2).all(|w| w[0] < w[1]));
            for &a in anc {
                prop_assert!(a >= 1 && a <= d.max_fid());
            }
        }
        // Recoded sequences stay in range.
        for seq in &world.db.sequences {
            for &t in seq {
                prop_assert!(t >= 1 && t <= d.max_fid());
            }
        }
    }
}
