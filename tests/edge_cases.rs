//! Edge cases and failure injection across the public API.

use desq::bsp::Engine;
use desq::core::{toy, DictionaryBuilder, Error, Fst, PatEx, Sequence, SequenceDb};
use desq::dist::{d_cand, d_seq, naive, DCandConfig, DSeqConfig, NaiveConfig};
use desq::miner::{desq_count, desq_dfs};

#[test]
fn empty_database() {
    let fx = toy::fixture();
    let empty = SequenceDb::default();
    let engine = Engine::new(2);
    let parts = empty.partition(2);
    for res in [
        d_seq(&engine, &parts, &fx.fst, &fx.dict, DSeqConfig::new(1)).unwrap(),
        d_cand(&engine, &parts, &fx.fst, &fx.dict, DCandConfig::new(1)).unwrap(),
        naive(&engine, &parts, &fx.fst, &fx.dict, NaiveConfig::naive(1)).unwrap(),
    ] {
        assert!(res.patterns.is_empty());
        assert_eq!(res.metrics.shuffle_bytes, 0);
    }
}

#[test]
fn sigma_above_database_size() {
    let fx = toy::fixture();
    let engine = Engine::new(2);
    let parts = fx.db.partition(2);
    let res = d_seq(&engine, &parts, &fx.fst, &fx.dict, DSeqConfig::new(100)).unwrap();
    assert!(res.patterns.is_empty());
}

#[test]
fn empty_sequences_in_database() {
    let fx = toy::fixture();
    let mut db = fx.db.clone();
    db.sequences.push(Vec::new());
    db.sequences.insert(0, Vec::new());
    let engine = Engine::new(2);
    let parts = db.partition(3);
    let res = d_seq(&engine, &parts, &fx.fst, &fx.dict, DSeqConfig::new(2)).unwrap();
    let reference = desq_count(&db, &fx.fst, &fx.dict, 2, usize::MAX).unwrap();
    assert_eq!(res.patterns, reference);
    assert_eq!(res.patterns.len(), 3);
}

#[test]
fn pattern_that_matches_everything_vs_nothing() {
    let fx = toy::fixture();
    // Matches every sequence, outputs nothing: no frequent sequences.
    let all = Fst::compile(&PatEx::parse(".*").unwrap(), &fx.dict).unwrap();
    assert!(desq_dfs(&fx.db, &all, &fx.dict, 1).is_empty());
    // Matches nothing (item 'e' exactly at the start, twice... T2 starts
    // with e e, so pick something absent).
    let none = Fst::compile(&PatEx::parse("(c=)(c=)(c=)(c=)(c=)(c=)").unwrap(), &fx.dict).unwrap();
    assert!(desq_dfs(&fx.db, &none, &fx.dict, 1).is_empty());
}

#[test]
fn capture_of_whole_sequence() {
    let fx = toy::fixture();
    // `(.)*` captures every item: every full sequence of frequent items is
    // its own candidate... along with all ways to have matched. Anchored
    // compile (no unanchored wrap) — candidates are exactly the full input
    // sequences consisting of frequent items.
    let fst = Fst::compile(&PatEx::parse("[(.)]*").unwrap(), &fx.dict).unwrap();
    let out = desq_dfs(&fx.db, &fst, &fx.dict, 1);
    // T5 = a1 a1 b appears once; T3 = c d c b once; T1 once; (T2, T4 have
    // infrequent items at σ=1? no — σ=1 keeps everything, so all five).
    assert!(out.iter().any(|(s, f)| *f == 1 && *s == fx.db.sequences[4]));
    assert_eq!(out.len(), 5, "{out:?}");
}

#[test]
fn deep_hierarchy_generalization() {
    // A chain hierarchy of depth 12: a0 => a1 => ... => a11.
    let mut b = DictionaryBuilder::new();
    for i in 0..12 {
        b.item(&format!("a{i}"));
    }
    for i in 0..11 {
        b.edge(&format!("a{i}"), &format!("a{}", i + 1));
    }
    let leaf = b.id_of("a0").unwrap();
    let db = SequenceDb::new(vec![vec![leaf], vec![leaf]]);
    let (dict, db) = b.freeze(&db).unwrap();
    let fst = Fst::compile(&PatEx::parse("(.^)").unwrap(), &dict).unwrap();
    let out = desq_dfs(&db, &fst, &dict, 2);
    // Every generalization level is a frequent pattern of support 2.
    assert_eq!(out.len(), 12);
    assert!(out.iter().all(|(s, f)| s.len() == 1 && *f == 2));
}

#[test]
fn weights_and_duplicates_in_database() {
    // The paper assumes distinct input sequences; the implementation must
    // count duplicates separately anyway.
    let fx = toy::fixture();
    let mut db = fx.db.clone();
    db.sequences.push(fx.db.sequences[4].clone()); // duplicate T5
    let reference = desq_count(&db, &fx.fst, &fx.dict, 2, usize::MAX).unwrap();
    let engine = Engine::new(2);
    let parts = db.partition(2);
    let ds = d_seq(&engine, &parts, &fx.fst, &fx.dict, DSeqConfig::new(2)).unwrap();
    assert_eq!(ds.patterns, reference);
    // a1 a1 b now has support 3.
    let a1a1b = vec![fx.a1, fx.a1, fx.b];
    assert_eq!(reference.iter().find(|(s, _)| *s == a1a1b).unwrap().1, 3);
}

#[test]
fn run_budget_zero_always_oom_for_matching_input() {
    let fx = toy::fixture();
    let engine = Engine::new(1);
    let parts = fx.db.partition(1);
    let err = d_cand(
        &engine,
        &parts,
        &fx.fst,
        &fx.dict,
        DCandConfig::new(2).with_run_budget(0),
    )
    .unwrap_err();
    assert!(matches!(err, Error::ResourceExhausted(_)));
}

#[test]
fn unknown_items_in_pattern_surface_cleanly() {
    let fx = toy::fixture();
    let e = PatEx::parse("(NOPE)").unwrap();
    match Fst::compile(&e, &fx.dict) {
        Err(Error::UnknownItem(name)) => assert_eq!(name, "NOPE"),
        other => panic!("expected UnknownItem, got {other:?}"),
    }
}

#[test]
fn single_worker_engine_handles_many_partitions() {
    let fx = toy::fixture();
    let engine = Engine::new(1).with_reducers(16);
    let parts: Vec<&[Sequence]> = fx.db.sequences.iter().map(std::slice::from_ref).collect();
    let res = d_seq(&engine, &parts, &fx.fst, &fx.dict, DSeqConfig::new(2)).unwrap();
    assert_eq!(res.patterns.len(), 3);
    assert_eq!(res.metrics.reducer_bytes.len(), 16);
}

#[test]
fn corrupted_nfa_bytes_reported_as_decode_error() {
    use desq::dist::dcand::nfa::Nfa;
    // Flags byte with invalid bits set.
    let err = Nfa::deserialize(&[0xff, 0x00]).unwrap_err();
    assert!(matches!(err, Error::Decode(_)));
    // Reference to a state that does not exist yet.
    // HAS_SRC (1) with src = 9 on an empty automaton.
    let err = Nfa::deserialize(&[0x01, 0x09, 0x01, 0x02]).unwrap_err();
    assert!(matches!(err, Error::Decode(_)));
}
