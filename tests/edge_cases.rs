//! Edge cases and failure injection across the public API (the unified
//! `MiningSession` surface plus the error paths beneath it).

use desq::baselines::LashConfig;
use desq::core::{toy, DictionaryBuilder, Error, Fst, PatEx, SequenceDb};
use desq::session::{AlgorithmSpec, MiningSession};

/// All ten `AlgorithmSpec` variants, for exhaustive validation sweeps.
fn all_specs() -> [AlgorithmSpec; 10] {
    [
        AlgorithmSpec::DesqDfs,
        AlgorithmSpec::DesqCount,
        AlgorithmSpec::PrefixSpan { max_len: 3 },
        AlgorithmSpec::GapMiner {
            gamma: 1,
            max_len: 3,
            min_len: 2,
            generalize: true,
        },
        AlgorithmSpec::Naive,
        AlgorithmSpec::SemiNaive,
        AlgorithmSpec::d_seq(),
        AlgorithmSpec::d_cand(),
        AlgorithmSpec::Lash(LashConfig::new(1, 1, 3)),
        AlgorithmSpec::Mllib { max_len: 3 },
    ]
}

fn toy_builder() -> desq::session::MiningSessionBuilder {
    let fx = toy::fixture();
    MiningSession::builder()
        .dictionary(fx.dict)
        .database(fx.db)
        .pattern(toy::PATTERN)
        .workers(2)
}

/// The single session-level validator rejects σ = 0 with the same
/// `Error::Invalid` for *every* algorithm — the check that used to be
/// duplicated in `desq_count`/`d_seq`/`d_cand` (and missing from
/// `desq_dfs`) now lives in exactly one place.
#[test]
fn zero_sigma_rejected_uniformly_across_all_algorithms() {
    for spec in all_specs() {
        let err = toy_builder().sigma(0).algorithm(spec).build().unwrap_err();
        assert!(
            matches!(err, Error::Invalid(ref m) if m.contains("sigma")),
            "{}: expected the shared sigma validation error, got {err}",
            spec.name()
        );
    }
}

#[test]
fn empty_database() {
    let fx = toy::fixture();
    for spec in [
        AlgorithmSpec::d_seq(),
        AlgorithmSpec::d_cand(),
        AlgorithmSpec::Naive,
    ] {
        let res = MiningSession::builder()
            .dictionary(fx.dict.clone())
            .database(SequenceDb::default())
            .pattern(toy::PATTERN)
            .sigma(1)
            .algorithm(spec)
            .workers(2)
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert!(res.patterns.is_empty());
        assert_eq!(res.metrics.shuffle_bytes, 0);
        assert_eq!(res.metrics.input_sequences, 0);
    }
}

#[test]
fn sigma_above_database_size() {
    let res = toy_builder()
        .sigma(100)
        .algorithm(AlgorithmSpec::d_seq())
        .build()
        .unwrap()
        .run()
        .unwrap();
    assert!(res.patterns.is_empty());
}

#[test]
fn empty_sequences_in_database() {
    let fx = toy::fixture();
    let mut db = fx.db.clone();
    db.sequences.push(Vec::new());
    db.sequences.insert(0, Vec::new());
    let session = MiningSession::builder()
        .dictionary(fx.dict)
        .database(db)
        .pattern(toy::PATTERN)
        .sigma(2)
        .workers(2)
        .partitions(3)
        .build()
        .unwrap();
    let reference = session
        .with_algorithm(AlgorithmSpec::DesqCount)
        .unwrap()
        .run()
        .unwrap();
    let res = session
        .with_algorithm(AlgorithmSpec::d_seq())
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(res.patterns, reference.patterns);
    assert_eq!(res.patterns.len(), 3);
}

#[test]
fn pattern_that_matches_everything_vs_nothing() {
    let fx = toy::fixture();
    // Matches every sequence, outputs nothing: no frequent sequences.
    let all = MiningSession::builder()
        .dictionary(fx.dict.clone())
        .database(fx.db.clone())
        .pattern(".*")
        .sigma(1)
        .build()
        .unwrap();
    assert!(all.run().unwrap().patterns.is_empty());
    // Matches nothing (six exact c's in a row — no input has them).
    let none = MiningSession::builder()
        .dictionary(fx.dict)
        .database(fx.db)
        .pattern("(c=)(c=)(c=)(c=)(c=)(c=)")
        .sigma(1)
        .build()
        .unwrap();
    assert!(none.run().unwrap().patterns.is_empty());
}

#[test]
fn capture_of_whole_sequence() {
    let fx = toy::fixture();
    // `[(.)]*` captures every item: anchored compile — candidates are
    // exactly the full input sequences consisting of frequent items.
    let out = MiningSession::builder()
        .dictionary(fx.dict)
        .database(fx.db.clone())
        .pattern("[(.)]*")
        .sigma(1)
        .build()
        .unwrap()
        .run()
        .unwrap();
    assert!(out
        .patterns
        .iter()
        .any(|(s, f)| *f == 1 && *s == fx.db.sequences[4]));
    assert_eq!(out.patterns.len(), 5, "{:?}", out.patterns);
}

#[test]
fn deep_hierarchy_generalization() {
    // A chain hierarchy of depth 12: a0 => a1 => ... => a11.
    let mut b = DictionaryBuilder::new();
    for i in 0..12 {
        b.item(&format!("a{i}"));
    }
    for i in 0..11 {
        b.edge(&format!("a{i}"), &format!("a{}", i + 1));
    }
    let leaf = b.id_of("a0").unwrap();
    let db = SequenceDb::new(vec![vec![leaf], vec![leaf]]);
    let (dict, db) = b.freeze(&db).unwrap();
    let out = MiningSession::builder()
        .dictionary(dict)
        .database(db)
        .pattern("(.^)")
        .sigma(2)
        .build()
        .unwrap()
        .run()
        .unwrap();
    // Every generalization level is a frequent pattern of support 2.
    assert_eq!(out.patterns.len(), 12);
    assert!(out.patterns.iter().all(|(s, f)| s.len() == 1 && *f == 2));
}

#[test]
fn weights_and_duplicates_in_database() {
    // The paper assumes distinct input sequences; the implementation must
    // count duplicates separately anyway.
    let fx = toy::fixture();
    let mut db = fx.db.clone();
    db.sequences.push(fx.db.sequences[4].clone()); // duplicate T5
    let session = MiningSession::builder()
        .dictionary(fx.dict)
        .database(db)
        .pattern(toy::PATTERN)
        .sigma(2)
        .workers(2)
        .build()
        .unwrap();
    let reference = session
        .with_algorithm(AlgorithmSpec::DesqCount)
        .unwrap()
        .run()
        .unwrap();
    let ds = session
        .with_algorithm(AlgorithmSpec::d_seq())
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(ds.patterns, reference.patterns);
    // a1 a1 b now has support 3.
    let a1a1b = vec![fx.a1, fx.a1, fx.b];
    assert_eq!(
        reference
            .patterns
            .iter()
            .find(|(s, _)| *s == a1a1b)
            .unwrap()
            .1,
        3
    );
}

#[test]
fn budget_one_always_oom_for_matching_input() {
    // The session-level budget (Limits::budget) replaces the old positional
    // budget arguments; the error names the algorithm and the knob.
    for spec in [AlgorithmSpec::d_cand(), AlgorithmSpec::Naive] {
        let err = toy_builder()
            .sigma(2)
            .algorithm(spec)
            .budget(1)
            .build()
            .unwrap()
            .run()
            .unwrap_err();
        assert!(
            matches!(err, Error::ResourceExhausted(ref m) if m.contains("budget")),
            "{}: {err}",
            spec.name()
        );
    }
}

#[test]
fn unknown_items_in_pattern_surface_cleanly() {
    let fx = toy::fixture();
    // Directly via FST compilation...
    let e = PatEx::parse("(NOPE)").unwrap();
    match Fst::compile(&e, &fx.dict) {
        Err(Error::UnknownItem(name)) => assert_eq!(name, "NOPE"),
        other => panic!("expected UnknownItem, got {other:?}"),
    }
    // ...and through the session builder, which compiles at build() time.
    let err = toy_builder()
        .pattern("(NOPE)")
        .sigma(1)
        .build()
        .unwrap_err();
    assert!(matches!(err, Error::UnknownItem(_)));
}

#[test]
fn single_worker_session_handles_many_partitions_and_reducers() {
    let res = toy_builder()
        .sigma(2)
        .algorithm(AlgorithmSpec::d_seq())
        .workers(1)
        .partitions(5)
        .reducers(16)
        .build()
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(res.patterns.len(), 3);
    assert_eq!(res.metrics.reducer_bytes.len(), 16);
}

#[test]
fn corrupted_nfa_bytes_reported_as_decode_error() {
    use desq::dist::dcand::nfa::Nfa;
    // Flags byte with invalid bits set.
    let err = Nfa::deserialize(&[0xff, 0x00]).unwrap_err();
    assert!(matches!(err, Error::Decode(_)));
    // Reference to a state that does not exist yet.
    // HAS_SRC (1) with src = 9 on an empty automaton.
    let err = Nfa::deserialize(&[0x01, 0x09, 0x01, 0x02]).unwrap_err();
    assert!(matches!(err, Error::Decode(_)));
}
