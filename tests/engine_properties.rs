//! Engine-level properties: partition balance (Sec. III-B of the paper),
//! equivalence of the parallel engine with a sequential fold, and
//! round-trip identity of the shuffle codec.

use proptest::prelude::*;

use desq::bsp::{decode_item_seq, encode_item_seq, Engine};
use desq::core::fx::FxHashMap;
use desq::datagen::{amzn_like, to_forest, AmznConfig};
use desq::session::{AlgorithmSpec, MiningSession};

/// Sec. III-B: with the frequency-descending item order, pivot partitions
/// of frequent items receive little data and the shuffle is reasonably
/// balanced. We assert the max/mean reducer-volume ratio stays moderate.
#[test]
fn dseq_shuffle_is_reasonably_balanced() {
    let (dict, db) = amzn_like(&AmznConfig::new(4_000));
    let (fdict, fdb) = to_forest(&dict, &db);
    let res = MiningSession::builder()
        .dictionary(fdict)
        .database(fdb)
        .pattern_unanchored(&desq::dist::patterns::t3(1, 5).expr)
        .sigma(10)
        .algorithm(AlgorithmSpec::d_seq())
        .workers(4)
        .reducers(8)
        .build()
        .unwrap()
        .run()
        .unwrap();
    let balance = res.metrics.balance();
    assert!(
        balance < 4.0,
        "max/mean reducer volume {balance:.2} suggests badly skewed partitions"
    );
    // All reducers participate.
    let active = res.metrics.reducer_bytes.iter().filter(|&&b| b > 0).count();
    assert!(active >= 6, "only {active}/8 reducers received data");
}

/// The reversed item order (pivot = most frequent item) is what the paper
/// argues *against*: it must still be correct but concentrates the work.
/// We verify the chosen order (pivot = least frequent) indeed distributes
/// records across more partitions than a single hot one.
#[test]
fn frequent_pivot_partitions_stay_small() {
    let (dict, db) = amzn_like(&AmznConfig::new(4_000));
    let (fdict, fdb) = to_forest(&dict, &db);
    let fst = desq::dist::patterns::t3(1, 5).compile(&fdict).unwrap();
    let sigma = 10;
    let last = fdict.last_frequent(sigma);
    let search = desq::dist::PivotSearch::new(&fst, &fdict, last);
    let mut per_pivot: FxHashMap<u32, usize> = FxHashMap::default();
    let mut total = 0usize;
    for seq in fdb.sequences.iter().take(1_000) {
        for p in search.pivots(seq) {
            *per_pivot.entry(p.item).or_insert(0) += 1;
            total += 1;
        }
    }
    // The most frequent item (fid 1) heads candidates only when nothing
    // rarer occurs — its partition must stay a small fraction of the total.
    let hottest_fid1 = per_pivot.get(&1).copied().unwrap_or(0);
    assert!(
        hottest_fid1 * 5 < total,
        "partition of fid 1 holds {hottest_fid1}/{total} records — item order broken?"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// map_reduce == sequential fold for a random aggregation job.
    #[test]
    fn engine_equals_sequential_fold(
        data in proptest::collection::vec(proptest::collection::vec(0u32..50, 0..20), 0..30),
        workers in 1usize..5,
        chunk in 1usize..7,
    ) {
        // Sequential reference: per key (item % 7), sum of values.
        let mut expect: std::collections::BTreeMap<u32, u64> = Default::default();
        for seq in &data {
            for &x in seq {
                *expect.entry(x % 7).or_insert(0) += u64::from(x);
            }
        }
        let engine = Engine::new(workers);
        let parts: Vec<&[Vec<u32>]> = data.chunks(chunk).collect();
        let (mut out, metrics) = engine
            .map_reduce(
                &parts,
                |part: &[Vec<u32>], emit: &mut dyn FnMut(u32, u64)| {
                    for seq in part {
                        for &x in seq {
                            emit(x % 7, u64::from(x));
                        }
                    }
                    Ok(())
                },
                |&k, vs: Vec<u64>, emit: &mut dyn FnMut((u32, u64))| {
                    emit((k, vs.into_iter().sum()));
                    Ok(())
                },
            )
            .unwrap();
        out.sort();
        let got: std::collections::BTreeMap<u32, u64> = out.into_iter().collect();
        prop_assert_eq!(got, expect);
        let records: usize = data.iter().map(Vec::len).sum();
        prop_assert_eq!(metrics.emitted_records as usize, records);
    }

    /// The adaptive varint/delta item-sequence codec round-trips exactly —
    /// including empty rewritten ranges and extreme item ids — when many
    /// records are concatenated and decoded arena-style.
    #[test]
    fn item_seq_codec_roundtrips(
        seqs in proptest::collection::vec(
            proptest::collection::vec(
                prop_oneof![0u32..100, 4_000_000_000u32..u32::MAX], 0..20),
            0..12),
    ) {
        let mut buf = Vec::new();
        for seq in &seqs {
            encode_item_seq(seq, &mut buf);
        }
        let mut slice = buf.as_slice();
        let mut arena: Vec<u32> = Vec::new();
        let mut spans = Vec::new();
        for _ in &seqs {
            let start = arena.len();
            let n = decode_item_seq(&mut slice, &mut arena).unwrap();
            spans.push(start..start + n);
        }
        prop_assert!(slice.is_empty(), "decode must consume everything");
        for (seq, span) in seqs.iter().zip(spans) {
            prop_assert_eq!(&arena[span], seq.as_slice());
        }
    }

    /// Weights survive the combine wire format exactly — including sums
    /// beyond `u32::MAX` — and empty payloads are legal records.
    #[test]
    fn combine_weights_roundtrip(
        weights in proptest::collection::vec(
            prop_oneof![1u64..100, u64::from(u32::MAX)..u64::MAX / 8], 1..10),
        payload in proptest::collection::vec(0u8..=255, 0..12),
    ) {
        let data: Vec<u64> = weights.clone();
        let parts: Vec<&[u64]> = data.chunks(3).collect();
        let engine = Engine::new(2).with_reducers(3);
        let payload_ref = &payload;
        let (out, _) = engine
            .map_combine_reduce(
                &parts,
                |part: &[u64], c: &mut desq::bsp::Combiner<u32>| {
                    for &w in part {
                        c.emit(&7, payload_ref, w);
                    }
                    Ok(())
                },
                |&k: &u32, vs: &[(&[u8], u64)], emit: &mut dyn FnMut((u32, u64))| {
                    assert_eq!(vs.len(), 1, "identical records must merge");
                    assert_eq!(vs[0].0, payload_ref.as_slice());
                    emit((k, vs[0].1));
                    Ok(())
                },
            )
            .unwrap();
        let total: u64 = weights.iter().sum();
        prop_assert_eq!(out, vec![(7, total)]);
    }

    /// The combiner never changes results, only record counts.
    #[test]
    fn combiner_is_transparent(
        data in proptest::collection::vec(proptest::collection::vec(0u32..10, 0..15), 1..20),
    ) {
        let engine = Engine::new(3);
        let parts: Vec<&[Vec<u32>]> = data.chunks(4).collect();
        let run_combined = || {
            let (mut out, m) = engine
                .map_combine_reduce(
                    &parts,
                    |part: &[Vec<u32>], c: &mut desq::bsp::Combiner<u32>| {
                        for seq in part {
                            for &x in seq {
                                c.emit(&(x % 3), &x.to_le_bytes(), 1);
                            }
                        }
                        Ok(())
                    },
                    |&k, vs: &[(&[u8], u64)], emit: &mut dyn FnMut((u32, u64))| {
                        let total: u64 = vs
                            .iter()
                            .map(|(b, w)| {
                                u64::from(u32::from_le_bytes((*b).try_into().unwrap())) * w
                            })
                            .sum();
                        emit((k, total));
                        Ok(())
                    },
                )
                .unwrap();
            out.sort();
            (out, m)
        };
        let (combined, metrics) = run_combined();

        // Sequential reference.
        let mut expect: std::collections::BTreeMap<u32, u64> = Default::default();
        for seq in &data {
            for &x in seq {
                *expect.entry(x % 3).or_insert(0) += u64::from(x);
            }
        }
        let got: std::collections::BTreeMap<u32, u64> =
            combined.into_iter().collect();
        prop_assert_eq!(got, expect);
        prop_assert!(metrics.shuffle_records <= metrics.emitted_records);
    }
}
