//! Dataset and constraint workloads shared by the reproduction targets,
//! plus the standard [`MiningSession`] wiring they all run through.

use std::sync::Arc;

use desq::session::MiningSession;
use desq_core::{Dictionary, DictionaryBuilder, SequenceDb};
use desq_datagen::{amzn_like, cw_like, nyt_like, to_forest, AmznConfig, CwConfig, NytConfig};
use desq_dist::patterns::Constraint;

/// Per-sequence work budget standing in for the paper's executor memory
/// limit: candidate generation / run enumeration beyond this aborts with
/// the OOM-analog `ResourceExhausted`.
pub const OOM_BUDGET: usize = 2_000_000;

/// Wraps a generated workload in `Arc`s for cheap sharing across sessions.
pub fn shared((dict, db): (Dictionary, SequenceDb)) -> (Arc<Dictionary>, Arc<SequenceDb>) {
    (Arc::new(dict), Arc::new(db))
}

/// The standard session for one `(dataset, constraint, σ)` workload:
/// harness-wide worker count, one map partition per worker, and the
/// OOM-analog work budget. Pick the algorithm per run with
/// [`MiningSession::with_algorithm`].
pub fn session_for(
    dict: &Arc<Dictionary>,
    db: &Arc<SequenceDb>,
    c: &Constraint,
    sigma: u64,
) -> MiningSession {
    MiningSession::builder()
        .dictionary(dict.clone())
        .database(db.clone())
        .pattern_unanchored(&c.expr)
        .sigma(sigma)
        .workers(crate::default_workers())
        .budget(OOM_BUDGET)
        .build()
        .unwrap_or_else(|e| panic!("session for {}: {e}", c.name))
}

/// Scale factor for dataset sizes (`REPRO_SCALE`, default 1.0).
pub fn scale() -> f64 {
    std::env::var("REPRO_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|&s| s > 0.0)
        .unwrap_or(1.0)
}

fn scaled(base: usize) -> usize {
    ((base as f64 * scale()) as usize).max(100)
}

/// Base sizes at scale 1.0 (sequences).
pub const NYT_BASE: usize = 40_000;
/// Base size of the AMZN-like dataset.
pub const AMZN_BASE: usize = 40_000;
/// Base size of the CW-like dataset.
pub const CW_BASE: usize = 50_000;

/// The NYT-like corpus at the current scale.
pub fn nyt() -> (Dictionary, SequenceDb) {
    nyt_like(&NytConfig::new(scaled(NYT_BASE)))
}

/// The AMZN-like database (DAG hierarchy) at the current scale.
pub fn amzn() -> (Dictionary, SequenceDb) {
    amzn_like(&AmznConfig::new(scaled(AMZN_BASE)))
}

/// The AMZN-F variant (forest hierarchy, the paper's LASH setting).
pub fn amzn_f() -> (Dictionary, SequenceDb) {
    let (d, db) = amzn();
    to_forest(&d, &db)
}

/// A fraction of the AMZN-F database (for the Fig. 11 scalability sweeps).
pub fn amzn_f_fraction(percent: usize) -> (Dictionary, SequenceDb) {
    let (d, db) = amzn_f();
    let keep = db.len() * percent / 100;
    // Re-freeze on the sample so the f-list matches the smaller database,
    // like the paper's random samples.
    let sample = SequenceDb::new(db.sequences.into_iter().take(keep).collect());
    refreeze(&d, sample)
}

/// The CW-like corpus (no hierarchy) at the current scale.
pub fn cw() -> (Dictionary, SequenceDb) {
    cw_like(&CwConfig::new(scaled(CW_BASE)))
}

/// The AMZN database with the hierarchy removed (the paper's MLlib setting
/// uses AMZN *without* hierarchy).
pub fn amzn_flat() -> (Dictionary, SequenceDb) {
    let (d, db) = amzn();
    let mut b = DictionaryBuilder::new();
    for fid in 1..=d.max_fid() {
        b.item(d.name(fid));
    }
    b.freeze(&db).expect("flat vocabulary is acyclic")
}

/// Rebuilds a dictionary (same names and edges) and recodes `db` under a
/// fresh f-list.
fn refreeze(d: &Dictionary, db: SequenceDb) -> (Dictionary, SequenceDb) {
    let mut b = DictionaryBuilder::new();
    for fid in 1..=d.max_fid() {
        b.item(d.name(fid));
    }
    for fid in 1..=d.max_fid() {
        for &p in d.parents(fid) {
            b.edge(d.name(fid), d.name(p));
        }
    }
    b.freeze(&db).expect("hierarchy stays acyclic")
}

/// A support threshold proportional to the database size:
/// `max(lo, fraction * |D|)`.
pub fn sigma_for(db: &SequenceDb, fraction: f64, lo: u64) -> u64 {
    ((db.len() as f64 * fraction) as u64).max(lo)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One combined test: `REPRO_SCALE` is process-global, so the env-var
    /// dependent assertions must not run concurrently.
    #[test]
    fn scaled_variants() {
        std::env::set_var("REPRO_SCALE", "0.02");
        let (d25, db25) = amzn_f_fraction(25);
        let (d100, db100) = amzn_f_fraction(100);
        assert!(db25.len() * 3 < db100.len());
        // Frequencies shrink with the sample.
        let f25 = d25.doc_freq(1);
        let f100 = d100.doc_freq(1);
        assert!(f25 < f100);

        let (d, _) = amzn_flat();
        assert_eq!(d.max_ancestors(), 1);
        std::env::remove_var("REPRO_SCALE");
    }

    #[test]
    fn sigma_scales_with_db() {
        let db = SequenceDb::new(vec![vec![1]; 1000]);
        assert_eq!(sigma_for(&db, 0.01, 2), 10);
        assert_eq!(sigma_for(&db, 0.000001, 2), 2);
    }
}
