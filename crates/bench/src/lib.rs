//! # desq-bench
//!
//! Benchmark and reproduction harness for the paper's evaluation
//! (Sec. VII). The `repro` binary regenerates every table and figure:
//!
//! ```text
//! repro table2   # dataset characteristics           (Tab. II)
//! repro table3   # example constraints & patterns    (Tab. III)
//! repro table4   # candidate statistics (CSPI)       (Tab. IV)
//! repro table5   # speedup over sequential execution (Tab. V)
//! repro fig9     # flexible constraints: 4 algorithms + shuffle sizes
//! repro fig10    # D-SEQ / D-CAND ablations
//! repro fig11    # data / strong / weak scalability
//! repro fig12    # LASH setting (generalization overhead)
//! repro fig13    # MLlib setting (σ sweep)
//! repro all      # everything above
//! ```
//!
//! Scale is controlled by `REPRO_SCALE` (default 1.0): dataset sizes are
//! laptop-scale stand-ins for the paper's cluster corpora; support
//! thresholds are chosen relative to dataset size. EXPERIMENTS.md records
//! paper-versus-measured shapes for every experiment.

pub mod report;
pub mod workloads;

use std::time::Instant;

/// Times a closure, returning its result and the elapsed seconds.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64())
}

/// Number of engine workers used across the harness.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(8)
}
