//! # desq-bench
//!
//! Benchmark and reproduction harness for the paper's evaluation
//! (Sec. VII). The `repro` binary regenerates every table and figure:
//!
//! ```text
//! repro table2   # dataset characteristics           (Tab. II)
//! repro table3   # example constraints & patterns    (Tab. III)
//! repro table4   # candidate statistics (CSPI)       (Tab. IV)
//! repro table5   # speedup over sequential execution (Tab. V)
//! repro fig9     # flexible constraints: 4 algorithms + shuffle sizes
//! repro fig10    # D-SEQ / D-CAND ablations
//! repro fig11    # data / strong / weak scalability
//! repro fig12    # LASH setting (generalization overhead)
//! repro fig13    # MLlib setting (σ sweep)
//! repro all      # everything above
//! ```
//!
//! Scale is controlled by `REPRO_SCALE` (default 1.0): dataset sizes are
//! laptop-scale stand-ins for the paper's cluster corpora; support
//! thresholds are chosen relative to dataset size. EXPERIMENTS.md records
//! paper-versus-measured shapes for every experiment.

pub mod report;
pub mod workloads;

/// Number of engine workers used across the harness — the session API's
/// workspace-wide default, re-exported so every target shares one
/// convention. (Run timing comes from `MiningMetrics::total_secs()`; the
/// harness no longer measures wall time itself.)
pub use desq::session::default_workers;
