//! Table formatting for the reproduction harness.

/// A simple fixed-width table printer.
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells);
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats seconds as a human-readable duration.
pub fn secs(s: f64) -> String {
    if s < 1.0 {
        format!("{:.0} ms", s * 1e3)
    } else if s < 100.0 {
        format!("{s:.2} s")
    } else {
        format!("{:.1} min", s / 60.0)
    }
}

/// Formats a byte count.
pub fn bytes(b: u64) -> String {
    if b < 10_000 {
        format!("{b} B")
    } else if b < 1_000_000 {
        format!("{:.1} KB", b as f64 / 1e3)
    } else {
        format!("{:.1} MB", b as f64 / 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "12345".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("long-name"));
        let lines: Vec<&str> = s.lines().filter(|l| !l.is_empty()).collect();
        // title + header + separator + 2 rows
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn humanized_units() {
        assert_eq!(secs(0.5), "500 ms");
        assert_eq!(secs(2.0), "2.00 s");
        assert_eq!(secs(120.0), "2.0 min");
        assert_eq!(bytes(100), "100 B");
        assert_eq!(bytes(100_000), "100.0 KB");
        assert_eq!(bytes(100_000_000), "100.0 MB");
        assert_eq!(bytes(2_000_000), "2.0 MB");
    }
}
