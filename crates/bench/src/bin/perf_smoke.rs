//! Perf-smoke harness with four modes, all on the standard bench workload
//! (NYT-like corpus, σ = 10, min-of-five wall seconds):
//!
//! * **local** (default): times DESQ-DFS local mining on the N2/N3/N5/N4
//!   constraints of Tab. III at 1 and 4 workers and writes `BENCH_3.json`.
//!   The recorded `baseline_secs` are the pre-PR-3 sequential `LocalMiner`.
//! * **dist** (`perf_smoke dist`): times the full distributed D-SEQ and
//!   D-CAND jobs (4 workers, 8 map partitions, 8 reducers) and writes wall
//!   seconds *and* shuffle bytes to `BENCH_4.json`. The recorded baselines
//!   are the pre-PR-4 hot path (grid-DP pivot search through `fst::Grid`,
//!   owned-`Sequence` shuffle records, hash-map combine), measured with the
//!   same protocol.
//! * **count** (`perf_smoke count`): times the candidate-materializing
//!   algorithms — DESQ-COUNT (4 workers) and the NAÏVE / SEMI-NAÏVE
//!   baselines (4 workers, 8 map partitions, 8 reducers) — on the selective
//!   N2/N3 constraints and writes `BENCH_5.json`. The recorded baselines are
//!   the pre-PR-5 counting path (`Grid::build` + `Transition::outputs` per
//!   run, Cartesian products into `FxHashSet<Vec<ItemId>>`, per-worker count
//!   maps merged under one `Mutex`), measured with the same protocol.
//! * **scale** (`perf_smoke scale`): times full DESQ-DFS (through the
//!   session-level `algo::DesqDfs` adapter, i.e. under the `Auto`
//!   execution policy and the work-stealing scheduler) on N2/N3/N5/N4 at
//!   1, 2 and 4 workers and writes `BENCH_6.json`, including the
//!   scheduler's task/steal counters at 4 workers. Baselines are the
//!   pre-PR-3 sequential numbers (same as **local**); the parallel
//!   `scale_w2`/`scale_w4` ratios compare each row against its own
//!   single-worker time.
//!
//! * **serve** (`perf_smoke serve`): spawns a `desq-serve` daemon on an
//!   ephemeral localhost port with the same NYT-like corpus resident,
//!   measures per-constraint cold latency (first query: FST compilation
//!   included) against warm latency (cache hit) for N2/N3/N5, and
//!   1-client vs 4-client warm throughput on N2, writing `BENCH_7.json`
//!   with the server's cache hit/miss counters. There is no pre-PR
//!   baseline — the daemon is new; the cold/warm ratio *is* the headline
//!   (the warm path must be measurably faster because it skips
//!   compilation).
//!
//! * **dist-net** (`perf_smoke dist-net`): runs D-SEQ on N2/N3 over the
//!   *networked* shuffle — a `NetCoordinator` driving real worker
//!   processes (this binary re-invoked in the hidden `dist-net-worker`
//!   mode) over localhost TCP — against the in-process transport on the
//!   same engine, and writes `BENCH_8.json` with the network-over-local
//!   wall ratio plus the robustness counters (`retried_tasks`,
//!   `peer_timeouts`, straggler `max_task_nanos`). There is no pre-PR
//!   baseline — the transport is new; the in-process run *is* the
//!   reference, and the counters must read zero on a healthy link.
//!
//! * **fst-opt** (`perf_smoke fst-opt`): measures the FST optimizer
//!   pipeline on N2/N3/N5/N4 — compile time, state/transition reduction
//!   and sequential DESQ-DFS mined wall time at `OptLevel::None`
//!   (ε-removal + pruning only, the oracle) vs `OptLevel::Full`
//!   (+ pair-determinization + suffix-sharing minimization) — asserting
//!   zero result divergence, and writes `BENCH_9.json`. The None run *is*
//!   the baseline; no recorded numbers.
//!
//! Override any baseline with `PERF_BASELINE_<NAME>=secs` (local) or
//! `PERF_BASELINE_<ALGO>_<NAME>=secs[,shuffle_bytes]` (dist/count) when
//! benchmarking on a different machine. The outputs are consumed by CI as
//! artifacts so the performance trajectory of every hot path stays visible
//! per PR.

use std::fmt::Write as _;
use std::time::Instant;

use desq_core::mining::{Miner, MiningContext};
use desq_datagen::{nyt_like, NytConfig};
use desq_dist::patterns::Constraint;
use desq_miner::{LocalMiner, MinerConfig, WeightedInput};

/// Sequences in the generated NYT-like corpus.
const NYT_SIZE: usize = 40_000;
/// Support threshold of every measurement.
const SIGMA: u64 = 10;
/// Timed repetitions per configuration (the minimum is reported).
const REPS: usize = 5;
/// Worker threads of the distributed measurements.
const DIST_WORKERS: usize = 4;
/// Map partitions and reduce buckets of the distributed measurements.
const DIST_PARTITIONS: usize = 8;
const DIST_REDUCERS: usize = 8;

/// Pre-rework sequential baselines (seconds), measured on the development
/// machine with the same corpus, σ and min-of-five protocol.
fn recorded_baseline(name: &str) -> f64 {
    match name {
        "N2" => 0.0564,
        "N3" => 0.0631,
        "N5" => 0.7585,
        "N4" => 0.3658,
        _ => f64::NAN,
    }
}

fn baseline_for(name: &str) -> f64 {
    std::env::var(format!("PERF_BASELINE_{name}"))
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| recorded_baseline(name))
}

/// Pre-PR-4 distributed baselines `(wall seconds, shuffle bytes)`, measured
/// on the development machine immediately before the distributed hot-path
/// rework (grid-DP pivot search via `fst::Grid`, per-pivot `Sequence`
/// clones in the mapper, hash-map combine) with the same corpus, σ,
/// parallelism and min-of-five protocol.
fn recorded_dist_baseline(key: &str) -> (f64, u64) {
    match key {
        "DSEQ_N2" => (0.1400, 390_413),
        "DSEQ_N3" => (0.0835, 209_253),
        "DSEQ_N5" => (7.4352, 25_625_233),
        "DSEQ_N4" => (3.2590, 14_339_631),
        "DCAND_N2" => (0.1645, 567_264),
        "DCAND_N3" => (0.0553, 22_272),
        _ => (f64::NAN, 0),
    }
}

/// Baseline lookup with the `PERF_BASELINE_<KEY>=secs[,bytes]` override.
fn dist_baseline_for(key: &str) -> (f64, u64) {
    let recorded = recorded_dist_baseline(key);
    match std::env::var(format!("PERF_BASELINE_{key}")) {
        Ok(v) => {
            let mut it = v.splitn(2, ',');
            let secs = it.next().and_then(|s| s.parse().ok()).unwrap_or(recorded.0);
            let bytes = it.next().and_then(|s| s.parse().ok()).unwrap_or(recorded.1);
            (secs, bytes)
        }
        Err(_) => recorded,
    }
}

struct Row {
    name: String,
    patterns: usize,
    baseline_secs: f64,
    w1_secs: f64,
    w4_secs: f64,
}

fn measure(c: &Constraint) -> Row {
    let (dict, db) = nyt_like(&NytConfig::new(NYT_SIZE));
    let fst = c.compile(&dict).unwrap();
    let inputs: Vec<WeightedInput<'_>> = db.sequences.iter().map(|s| (s.as_slice(), 1)).collect();
    let miner = LocalMiner::new(&fst, &dict, MinerConfig::sequential(SIGMA));
    let mut patterns = 0;
    let mut best = [f64::MAX; 2];
    for (slot, workers) in [(0, 1), (1, 4)] {
        for _ in 0..REPS {
            let t0 = Instant::now();
            let (out, timings) = miner.mine_with_workers(&inputs, workers, None).unwrap();
            let secs = t0.elapsed().as_secs_f64();
            assert_eq!(timings.len(), workers);
            patterns = out.len();
            best[slot] = best[slot].min(secs);
        }
    }
    Row {
        name: c.name.clone(),
        patterns,
        baseline_secs: baseline_for(&c.name),
        w1_secs: best[0],
        w4_secs: best[1],
    }
}

fn local_main(out_path: &str) {
    let constraints = [
        desq_dist::patterns::n2(),
        desq_dist::patterns::n3(),
        desq_dist::patterns::n5(),
        desq_dist::patterns::n4(),
    ];
    let rows: Vec<Row> = constraints.iter().map(measure).collect();

    let (mut base, mut w1, mut w4) = (0.0, 0.0, 0.0);
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"desq-dfs local mining perf smoke\",");
    let _ = writeln!(
        json,
        "  \"workload\": {{\"dataset\": \"nyt_like({NYT_SIZE})\", \"sigma\": {SIGMA}, \
         \"reps\": {REPS}, \"metric\": \"min wall seconds\"}},"
    );
    let _ = writeln!(
        json,
        "  \"baseline\": \"pre-PR-3 sequential LocalMiner (override: PERF_BASELINE_<NAME>)\","
    );
    json.push_str("  \"constraints\": [\n");
    for (i, r) in rows.iter().enumerate() {
        base += r.baseline_secs;
        w1 += r.w1_secs;
        w4 += r.w4_secs;
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"patterns\": {}, \"baseline_secs\": {:.4}, \
             \"workers1_secs\": {:.4}, \"workers4_secs\": {:.4}, \
             \"speedup_w1\": {:.2}, \"speedup_w4\": {:.2}}}{}",
            r.name,
            r.patterns,
            r.baseline_secs,
            r.w1_secs,
            r.w4_secs,
            r.baseline_secs / r.w1_secs,
            r.baseline_secs / r.w4_secs,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"aggregate\": {{\"baseline_secs\": {:.4}, \"workers1_secs\": {:.4}, \
         \"workers4_secs\": {:.4}, \"speedup_w1\": {:.2}, \"speedup_w4\": {:.2}}}",
        base,
        w1,
        w4,
        base / w1,
        base / w4
    );
    json.push_str("}\n");

    std::fs::write(out_path, &json).expect("write BENCH_3.json");
    print!("{json}");
    eprintln!("wrote {out_path}");
}

/// Pre-PR-5 counting-path baselines (wall seconds), measured on the
/// development machine immediately before the flat-counting rework
/// (per-sequence `Grid::build`, `Transition::outputs` inside the run loop,
/// Cartesian products into `FxHashSet<Vec<ItemId>>`) with the same corpus,
/// σ, parallelism and min-of-five protocol: DESQ-COUNT sequential,
/// NAÏVE / SEMI-NAÏVE at 4 workers / 8 partitions / 8 reducers.
fn recorded_count_baseline(key: &str) -> f64 {
    match key {
        "COUNT_N2" => 0.0683,
        "COUNT_N3" => 0.0317,
        "NAIVE_N2" => 0.0790,
        "NAIVE_N3" => 0.0375,
        "SEMINAIVE_N2" => 0.0792,
        "SEMINAIVE_N3" => 0.0388,
        _ => f64::NAN,
    }
}

/// Baseline lookup with the `PERF_BASELINE_<ALGO>_<NAME>=secs` override.
fn count_baseline_for(key: &str) -> f64 {
    std::env::var(format!("PERF_BASELINE_{key}"))
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| recorded_count_baseline(key))
}

struct CountRow {
    algo: &'static str,
    name: String,
    patterns: usize,
    baseline_secs: f64,
    secs: f64,
}

fn measure_count(algo: &'static str, c: &Constraint) -> CountRow {
    let (dict, db) = nyt_like(&NytConfig::new(NYT_SIZE));
    let fst = c.compile(&dict).unwrap();
    // DESQ-COUNT is a local algorithm: measure it sequentially (sharding
    // across threads on the single-core CI box only adds merge overhead);
    // the baselines were recorded with the same protocol. The distributed
    // baselines keep the BENCH_4 parallelism.
    let mut ctx = MiningContext::sequential(&db, &dict, SIGMA)
        .with_fst(&fst)
        .with_limits(desq_core::mining::Limits::unbounded());
    if algo != "DESQ-COUNT" {
        ctx = ctx
            .with_parallelism(DIST_WORKERS, DIST_PARTITIONS)
            .with_reducers(DIST_REDUCERS);
    }
    let mut best = f64::MAX;
    let mut patterns = 0;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let res = match algo {
            "DESQ-COUNT" => desq_miner::algo::DesqCount.mine(&ctx),
            "NAIVE" => desq_dist::algo::Naive::naive().mine(&ctx),
            "SEMI-NAIVE" => desq_dist::algo::Naive::semi_naive().mine(&ctx),
            _ => unreachable!("unknown algorithm {algo}"),
        }
        .unwrap_or_else(|e| panic!("{algo}/{} failed: {e}", c.name));
        best = best.min(t0.elapsed().as_secs_f64());
        patterns = res.patterns.len();
        if std::env::var_os("PERF_SMOKE_VERBOSE").is_some() {
            eprintln!(
                "{algo}/{}: {:.3}s emitted {} shuffled {} bytes {}",
                c.name,
                t0.elapsed().as_secs_f64(),
                res.metrics.emitted_records,
                res.metrics.shuffle_records,
                res.metrics.shuffle_bytes,
            );
        }
    }
    let key = format!("{}_{}", algo.replace("DESQ-", "").replace('-', ""), c.name);
    CountRow {
        algo,
        name: c.name.clone(),
        patterns,
        baseline_secs: count_baseline_for(&key),
        secs: best,
    }
}

fn count_main(out_path: &str) {
    let constraints = [desq_dist::patterns::n2(), desq_dist::patterns::n3()];
    let mut rows: Vec<CountRow> = Vec::new();
    for algo in ["DESQ-COUNT", "NAIVE", "SEMI-NAIVE"] {
        for c in &constraints {
            rows.push(measure_count(algo, c));
            eprintln!("measured {algo}/{}", c.name);
        }
    }

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"candidate counting perf smoke\",");
    let _ = writeln!(
        json,
        "  \"workload\": {{\"dataset\": \"nyt_like({NYT_SIZE})\", \"sigma\": {SIGMA}, \
         \"desq_count_workers\": 1, \"naive_workers\": {DIST_WORKERS}, \
         \"partitions\": {DIST_PARTITIONS}, \"reducers\": {DIST_REDUCERS}, \
         \"reps\": {REPS}, \"metric\": \"min wall seconds\"}},"
    );
    let _ = writeln!(
        json,
        "  \"baseline\": \"pre-PR-5 counting path \
         (override: PERF_BASELINE_<ALGO>_<NAME>=secs)\","
    );
    json.push_str("  \"jobs\": [\n");
    let (mut base_s, mut cur_s) = (0.0, 0.0);
    let (mut count_base_s, mut count_cur_s) = (0.0, 0.0);
    for (i, r) in rows.iter().enumerate() {
        base_s += r.baseline_secs;
        cur_s += r.secs;
        if r.algo == "DESQ-COUNT" {
            count_base_s += r.baseline_secs;
            count_cur_s += r.secs;
        }
        let _ = writeln!(
            json,
            "    {{\"algo\": \"{}\", \"name\": \"{}\", \"patterns\": {}, \
             \"baseline_secs\": {:.4}, \"secs\": {:.4}, \"speedup\": {:.2}}}{}",
            r.algo,
            r.name,
            r.patterns,
            r.baseline_secs,
            r.secs,
            r.baseline_secs / r.secs,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"aggregate\": {{\"baseline_secs\": {:.4}, \"secs\": {:.4}, \"speedup\": {:.2}, \
         \"desq_count_baseline_secs\": {:.4}, \"desq_count_secs\": {:.4}, \
         \"desq_count_speedup\": {:.2}}}",
        base_s,
        cur_s,
        base_s / cur_s,
        count_base_s,
        count_cur_s,
        count_base_s / count_cur_s,
    );
    json.push_str("}\n");

    std::fs::write(out_path, &json).expect("write BENCH_5.json");
    print!("{json}");
    eprintln!("wrote {out_path}");
}

struct DistRow {
    algo: &'static str,
    name: String,
    patterns: usize,
    baseline_secs: f64,
    baseline_bytes: u64,
    secs: f64,
    shuffle_bytes: u64,
    shuffle_records: u64,
}

fn measure_dist(algo: &'static str, c: &Constraint) -> DistRow {
    let (dict, db) = nyt_like(&NytConfig::new(NYT_SIZE));
    let fst = c.compile(&dict).unwrap();
    let ctx = MiningContext::sequential(&db, &dict, SIGMA)
        .with_fst(&fst)
        .with_parallelism(DIST_WORKERS, DIST_PARTITIONS)
        .with_reducers(DIST_REDUCERS);
    let mut best = f64::MAX;
    let mut patterns = 0;
    let mut shuffle_bytes = 0;
    let mut shuffle_records = 0;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let res = match algo {
            "D-SEQ" => desq_dist::algo::DSeq::default().mine(&ctx),
            "D-CAND" => desq_dist::algo::DCand::default().mine(&ctx),
            _ => unreachable!("unknown algorithm {algo}"),
        }
        .unwrap_or_else(|e| panic!("{algo}/{} failed: {e}", c.name));
        best = best.min(t0.elapsed().as_secs_f64());
        patterns = res.patterns.len();
        shuffle_bytes = res.metrics.shuffle_bytes;
        shuffle_records = res.metrics.shuffle_records;
        if std::env::var_os("PERF_SMOKE_VERBOSE").is_some() {
            eprintln!(
                "{algo}/{}: map {:.3}s reduce {:.3}s records {} payloads {} bytes {}",
                c.name,
                res.metrics.map_secs(),
                res.metrics.reduce_secs(),
                res.metrics.shuffle_records,
                res.metrics.shuffle_payloads,
                res.metrics.shuffle_bytes,
            );
        }
    }
    let key = format!("{}_{}", algo.replace('-', ""), c.name);
    let (baseline_secs, baseline_bytes) = dist_baseline_for(&key);
    DistRow {
        algo,
        name: c.name.clone(),
        patterns,
        baseline_secs,
        baseline_bytes,
        secs: best,
        shuffle_bytes,
        shuffle_records,
    }
}

fn dist_main(out_path: &str) {
    // D-SEQ handles every NYT constraint; D-CAND is measured on the
    // selective ones (N2/N3) — run enumeration on the loose N4/N5 windows
    // explodes combinatorially, which is exactly the paper's motivation for
    // preferring D-SEQ there (Fig. 10).
    let dseq = [
        desq_dist::patterns::n2(),
        desq_dist::patterns::n3(),
        desq_dist::patterns::n5(),
        desq_dist::patterns::n4(),
    ];
    let dcand = [desq_dist::patterns::n2(), desq_dist::patterns::n3()];
    let mut rows: Vec<DistRow> = Vec::new();
    for c in &dseq {
        rows.push(measure_dist("D-SEQ", c));
        eprintln!("measured D-SEQ/{}", c.name);
    }
    for c in &dcand {
        rows.push(measure_dist("D-CAND", c));
        eprintln!("measured D-CAND/{}", c.name);
    }

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"distributed mining perf smoke\",");
    let _ = writeln!(
        json,
        "  \"workload\": {{\"dataset\": \"nyt_like({NYT_SIZE})\", \"sigma\": {SIGMA}, \
         \"workers\": {DIST_WORKERS}, \"partitions\": {DIST_PARTITIONS}, \
         \"reducers\": {DIST_REDUCERS}, \"reps\": {REPS}, \
         \"metric\": \"min wall seconds + shuffle bytes\"}},"
    );
    let _ = writeln!(
        json,
        "  \"baseline\": \"pre-PR-4 distributed hot path \
         (override: PERF_BASELINE_<ALGO>_<NAME>=secs[,bytes])\","
    );
    json.push_str("  \"jobs\": [\n");
    let (mut base_s, mut cur_s) = (0.0, 0.0);
    let (mut dseq_base_s, mut dseq_cur_s) = (0.0, 0.0);
    let (mut dseq_base_b, mut dseq_cur_b) = (0u64, 0u64);
    for (i, r) in rows.iter().enumerate() {
        base_s += r.baseline_secs;
        cur_s += r.secs;
        if r.algo == "D-SEQ" {
            dseq_base_s += r.baseline_secs;
            dseq_cur_s += r.secs;
            dseq_base_b += r.baseline_bytes;
            dseq_cur_b += r.shuffle_bytes;
        }
        let _ = writeln!(
            json,
            "    {{\"algo\": \"{}\", \"name\": \"{}\", \"patterns\": {}, \
             \"baseline_secs\": {:.4}, \"secs\": {:.4}, \"speedup\": {:.2}, \
             \"baseline_shuffle_bytes\": {}, \"shuffle_bytes\": {}, \
             \"shuffle_ratio\": {:.2}, \"shuffle_records\": {}}}{}",
            r.algo,
            r.name,
            r.patterns,
            r.baseline_secs,
            r.secs,
            r.baseline_secs / r.secs,
            r.baseline_bytes,
            r.shuffle_bytes,
            r.baseline_bytes as f64 / r.shuffle_bytes.max(1) as f64,
            r.shuffle_records,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"aggregate\": {{\"baseline_secs\": {:.4}, \"secs\": {:.4}, \"speedup\": {:.2}, \
         \"dseq_baseline_secs\": {:.4}, \"dseq_secs\": {:.4}, \"dseq_speedup\": {:.2}, \
         \"dseq_baseline_shuffle_bytes\": {}, \"dseq_shuffle_bytes\": {}, \
         \"dseq_shuffle_ratio\": {:.2}}}",
        base_s,
        cur_s,
        base_s / cur_s,
        dseq_base_s,
        dseq_cur_s,
        dseq_base_s / dseq_cur_s,
        dseq_base_b,
        dseq_cur_b,
        dseq_base_b as f64 / dseq_cur_b.max(1) as f64,
    );
    json.push_str("}\n");

    std::fs::write(out_path, &json).expect("write BENCH_4.json");
    print!("{json}");
    eprintln!("wrote {out_path}");
}

struct ScaleRow {
    name: String,
    patterns: usize,
    baseline_secs: f64,
    /// Min wall seconds at 1, 2 and 4 workers.
    secs: [f64; 3],
    /// Scheduler task/steal counters of the last 4-worker repetition.
    tasks: u64,
    steals: u64,
}

/// Worker counts of the scale mode, in row order.
const SCALE_WORKERS: [usize; 3] = [1, 2, 4];

fn measure_scale(c: &Constraint) -> ScaleRow {
    let (dict, db) = nyt_like(&NytConfig::new(NYT_SIZE));
    let fst = c.compile(&dict).unwrap();
    let mut patterns = 0;
    let mut secs = [f64::MAX; 3];
    let mut tasks = 0;
    let mut steals = 0;
    for (slot, workers) in SCALE_WORKERS.iter().copied().enumerate() {
        // The session-level adapter: Auto execution policy (the cost model
        // may route a selective constraint to the lean counting path) plus
        // the work-stealing scheduler at `workers` threads.
        let ctx = MiningContext::sequential(&db, &dict, SIGMA)
            .with_fst(&fst)
            .with_parallelism(workers, 1);
        for _ in 0..REPS {
            let t0 = Instant::now();
            let res = desq_miner::algo::DesqDfs
                .mine(&ctx)
                .unwrap_or_else(|e| panic!("DESQ-DFS/{} failed: {e}", c.name));
            secs[slot] = secs[slot].min(t0.elapsed().as_secs_f64());
            patterns = res.patterns.len();
            if workers == 4 {
                tasks = res.metrics.tasks;
                steals = res.metrics.steals;
            }
        }
    }
    ScaleRow {
        name: c.name.clone(),
        patterns,
        baseline_secs: baseline_for(&c.name),
        secs,
        tasks,
        steals,
    }
}

fn scale_main(out_path: &str) {
    let constraints = [
        desq_dist::patterns::n2(),
        desq_dist::patterns::n3(),
        desq_dist::patterns::n5(),
        desq_dist::patterns::n4(),
    ];
    let mut rows: Vec<ScaleRow> = Vec::new();
    for c in &constraints {
        rows.push(measure_scale(c));
        eprintln!("measured scale/{}", c.name);
    }

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"work-stealing scaling perf smoke\",");
    let _ = writeln!(
        json,
        "  \"workload\": {{\"dataset\": \"nyt_like({NYT_SIZE})\", \"sigma\": {SIGMA}, \
         \"workers\": [1, 2, 4], \"policy\": \"auto\", \"reps\": {REPS}, \
         \"metric\": \"min wall seconds + scheduler counters\"}},"
    );
    let _ = writeln!(
        json,
        "  \"baseline\": \"pre-PR-3 sequential LocalMiner (override: PERF_BASELINE_<NAME>)\","
    );
    json.push_str("  \"constraints\": [\n");
    let (mut base, mut w) = (0.0, [0.0f64; 3]);
    for (i, r) in rows.iter().enumerate() {
        base += r.baseline_secs;
        for (acc, s) in w.iter_mut().zip(r.secs) {
            *acc += s;
        }
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"patterns\": {}, \"baseline_secs\": {:.4}, \
             \"workers1_secs\": {:.4}, \"workers2_secs\": {:.4}, \"workers4_secs\": {:.4}, \
             \"speedup_w1\": {:.2}, \"scale_w2\": {:.2}, \"scale_w4\": {:.2}, \
             \"tasks\": {}, \"steals\": {}}}{}",
            r.name,
            r.patterns,
            r.baseline_secs,
            r.secs[0],
            r.secs[1],
            r.secs[2],
            r.baseline_secs / r.secs[0],
            r.secs[0] / r.secs[1],
            r.secs[0] / r.secs[2],
            r.tasks,
            r.steals,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"aggregate\": {{\"baseline_secs\": {:.4}, \"workers1_secs\": {:.4}, \
         \"workers2_secs\": {:.4}, \"workers4_secs\": {:.4}, \"speedup_w1\": {:.2}, \
         \"scale_w2\": {:.2}, \"scale_w4\": {:.2}}}",
        base,
        w[0],
        w[1],
        w[2],
        base / w[0],
        w[0] / w[1],
        w[0] / w[2],
    );
    json.push_str("}\n");

    std::fs::write(out_path, &json).expect("write BENCH_6.json");
    print!("{json}");
    eprintln!("wrote {out_path}");
}

struct ServeRow {
    name: String,
    patterns: usize,
    cold_secs: f64,
    warm_secs: f64,
    /// Nanoseconds spent compiling the pexp on the (min) cold query.
    compile_nanos: u64,
    /// Min accept-to-mining-start nanoseconds, cold vs warm. Mining wall
    /// time is identical on both sides, so this is where the FST cache
    /// shows up: the warm path's queue wait drops by the compile time.
    cold_queue_wait_nanos: u64,
    warm_queue_wait_nanos: u64,
}

/// Queries per thread in the throughput measurement.
const SERVE_QUERIES: usize = 6;
/// Client threads of the concurrent throughput measurement.
const SERVE_CLIENTS: usize = 4;

fn serve_main(out_path: &str) {
    use desq_serve::client::Client;
    use desq_serve::proto::Request;
    use desq_serve::server::{ServeLimits, Server};
    use desq_serve::store::CorpusStore;

    let (dict, db) = nyt_like(&NytConfig::new(NYT_SIZE));
    // The latency tier: the full 40k-sequence vocabulary with a 2k-sequence
    // sample database, so per-query wall time is short enough for the fixed
    // costs the cache removes (pexp parse + FST compile) to be visible.
    let sample = desq_core::SequenceDb::new(db.sequences[..NYT_SIZE / 20].to_vec());
    let (dict, db, sample) = (
        std::sync::Arc::new(dict),
        std::sync::Arc::new(db),
        std::sync::Arc::new(sample),
    );
    let limits = ServeLimits {
        max_inflight: SERVE_CLIENTS + 1,
        ..ServeLimits::default()
    };
    // Spawning a server is cheap (the corpus Arcs are shared, nothing is
    // copied); a fresh one per cold repetition gives an empty FST cache.
    let spawn = || {
        let mut store = CorpusStore::new();
        store.insert("nyt", dict.clone(), db.clone());
        store.insert("nyt-sample", dict.clone(), sample.clone());
        Server::new(store)
            .with_limits(limits.clone())
            .spawn("127.0.0.1:0")
            .expect("bind ephemeral port")
    };
    let request =
        |corpus: &str, c: &Constraint| Request::new(corpus, c.expr.clone(), SIGMA).unanchored();

    // Cold vs warm latency on the sample corpus. Cold: min over REPS
    // first-queries, each against a freshly spawned server (empty cache,
    // so the FST compiles). Warm: min over REPS cache-hit queries on a
    // persistent server. N2x16 repeats N2's constraint up to 16 times —
    // the compile-heaviest expression of the set (~100 FST states), where
    // the cache's saving is largest.
    let persistent = spawn();
    let client = Client::new(persistent.addr());
    let constraints = [
        desq_dist::patterns::n2(),
        desq_dist::patterns::n3(),
        desq_dist::patterns::n5(),
        Constraint::new("N2x16", "(ENTITY^ VERB+ ENTITY^){1,16}"),
    ];
    let mut rows: Vec<ServeRow> = Vec::new();
    for c in &constraints {
        let mut cold_secs = f64::MAX;
        let mut compile_nanos = 0;
        let mut cold_queue_wait_nanos = u64::MAX;
        let mut patterns = 0;
        for _ in 0..REPS {
            let fresh = spawn();
            let t0 = Instant::now();
            let cold = Client::new(fresh.addr())
                .query(&request("nyt-sample", c))
                .expect("cold query");
            let secs = t0.elapsed().as_secs_f64();
            assert!(
                !cold.stats.cache_hit,
                "{}: fresh server must compile",
                c.name
            );
            assert!(cold.stats.compile_nanos > 0);
            if secs < cold_secs {
                cold_secs = secs;
                compile_nanos = cold.stats.compile_nanos;
            }
            cold_queue_wait_nanos = cold_queue_wait_nanos.min(cold.stats.queue_wait_nanos);
            patterns = cold.patterns.len();
            fresh.shutdown();
        }
        let mut warm_secs = f64::MAX;
        let mut warm_queue_wait_nanos = u64::MAX;
        client
            .query(&request("nyt-sample", c))
            .expect("cache-priming query");
        for _ in 0..REPS {
            let t0 = Instant::now();
            let warm = client.query(&request("nyt-sample", c)).expect("warm query");
            warm_secs = warm_secs.min(t0.elapsed().as_secs_f64());
            warm_queue_wait_nanos = warm_queue_wait_nanos.min(warm.stats.queue_wait_nanos);
            assert!(warm.stats.cache_hit, "{}: repeat query must hit", c.name);
            assert_eq!(
                warm.stats.compile_nanos, 0,
                "warm query must skip compilation"
            );
            assert_eq!(warm.patterns.len(), patterns);
        }
        rows.push(ServeRow {
            name: c.name.clone(),
            patterns,
            cold_secs,
            warm_secs,
            compile_nanos,
            cold_queue_wait_nanos,
            warm_queue_wait_nanos,
        });
        eprintln!("measured serve/{}", c.name);
    }

    // Warm throughput on the full corpus with the cheapest constraint: the
    // same number of queries issued by one client sequentially vs spread
    // over 4 concurrent clients, in queries per second.
    let n2 = desq_dist::patterns::n2();
    client
        .query(&request("nyt", &n2))
        .expect("cache-priming query");
    let t0 = Instant::now();
    for _ in 0..SERVE_CLIENTS * SERVE_QUERIES {
        client
            .query(&request("nyt", &n2))
            .expect("sequential query");
    }
    let seq_qps = (SERVE_CLIENTS * SERVE_QUERIES) as f64 / t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..SERVE_CLIENTS {
            let request = request("nyt", &n2);
            let client = &client;
            scope.spawn(move || {
                for _ in 0..SERVE_QUERIES {
                    client.query(&request).expect("concurrent query");
                }
            });
        }
    });
    let conc_qps = (SERVE_CLIENTS * SERVE_QUERIES) as f64 / t0.elapsed().as_secs_f64();
    let stats = client
        .query(&request("nyt", &n2))
        .expect("final stats query")
        .stats;

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"desq-serve daemon perf smoke\",");
    let _ = writeln!(
        json,
        "  \"workload\": {{\"latency_dataset\": \"nyt_like({NYT_SIZE}) dict, {} \
         sample sequences\", \"throughput_dataset\": \"nyt_like({NYT_SIZE})\", \
         \"sigma\": {SIGMA}, \"reps\": {REPS}, \"cores\": {}, \"metric\": \
         \"min query wall seconds (cold = first query on a fresh server, compile \
         included; warm = cache hit) + min accept-to-mining queue-wait nanos\"}},",
        NYT_SIZE / 20,
        std::thread::available_parallelism().map_or(1, usize::from),
    );
    json.push_str("  \"constraints\": [\n");
    let (mut cold_total, mut warm_total) = (0.0, 0.0);
    let (mut cold_wait_total, mut warm_wait_total) = (0u64, 0u64);
    for (i, r) in rows.iter().enumerate() {
        cold_total += r.cold_secs;
        warm_total += r.warm_secs;
        cold_wait_total += r.cold_queue_wait_nanos;
        warm_wait_total += r.warm_queue_wait_nanos;
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"patterns\": {}, \"cold_secs\": {:.4}, \
             \"warm_secs\": {:.4}, \"cold_over_warm\": {:.2}, \"compile_nanos\": {}, \
             \"cold_queue_wait_nanos\": {}, \"warm_queue_wait_nanos\": {}, \
             \"queue_wait_ratio\": {:.2}}}{}",
            r.name,
            r.patterns,
            r.cold_secs,
            r.warm_secs,
            r.cold_secs / r.warm_secs,
            r.compile_nanos,
            r.cold_queue_wait_nanos,
            r.warm_queue_wait_nanos,
            r.cold_queue_wait_nanos as f64 / r.warm_queue_wait_nanos.max(1) as f64,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"throughput\": {{\"constraint\": \"N2\", \"queries\": {}, \
         \"clients1_qps\": {:.2}, \"clients{SERVE_CLIENTS}_qps\": {:.2}, \
         \"concurrent_speedup\": {:.2}}},",
        SERVE_CLIENTS * SERVE_QUERIES,
        seq_qps,
        conc_qps,
        conc_qps / seq_qps,
    );
    let _ = writeln!(
        json,
        "  \"fst_cache\": {{\"hits\": {}, \"misses\": {}}},",
        stats.cache_hits, stats.cache_misses,
    );
    let _ = writeln!(
        json,
        "  \"aggregate\": {{\"cold_secs\": {:.4}, \"warm_secs\": {:.4}, \
         \"cold_over_warm\": {:.2}, \"cold_queue_wait_nanos\": {}, \
         \"warm_queue_wait_nanos\": {}, \"queue_wait_ratio\": {:.2}}}",
        cold_total,
        warm_total,
        cold_total / warm_total,
        cold_wait_total,
        warm_wait_total,
        cold_wait_total as f64 / warm_wait_total.max(1) as f64,
    );
    json.push_str("}\n");

    persistent.shutdown();
    std::fs::write(out_path, &json).expect("write BENCH_7.json");
    print!("{json}");
    eprintln!("wrote {out_path}");
}

/// Worker processes of the networked measurement.
const NET_WORKERS: usize = 2;
/// Timed repetitions of the networked measurement (each spawns fresh
/// worker processes, so fewer than [`REPS`]).
const NET_REPS: usize = 3;

fn net_constraint(name: &str) -> Constraint {
    match name {
        "N2" => desq_dist::patterns::n2(),
        "N3" => desq_dist::patterns::n3(),
        "N5" => desq_dist::patterns::n5(),
        "N4" => desq_dist::patterns::n4(),
        other => panic!("unknown constraint {other}"),
    }
}

/// The hidden worker mode behind `dist-net`: builds the same corpus and
/// constraint as the coordinator, reports readiness on stdout (the
/// coordinator starts timing only once every worker is up, so corpus
/// generation stays outside the measurement), and serves tasks until the
/// job ends.
fn dist_net_worker_main(addr: &str, constraint: &str) {
    use std::io::Write as _;
    let (dict, db) = nyt_like(&NytConfig::new(NYT_SIZE));
    let c = net_constraint(constraint);
    let fst = c.compile(&dict).unwrap();
    let parts = db.partition(DIST_PARTITIONS);
    let engine = desq_bsp::Engine::new(DIST_WORKERS).with_reducers(DIST_REDUCERS);
    println!("ready");
    std::io::stdout().flush().expect("flush readiness line");
    desq_dist::dseq::d_seq_worker(
        &engine,
        addr.parse().expect("coordinator address"),
        &desq_bsp::NetConfig::default(),
        &parts,
        &fst,
        &dict,
        desq_dist::DSeqConfig::new(SIGMA),
    )
    .expect("worker run");
}

struct NetRow {
    name: String,
    patterns: usize,
    local_secs: f64,
    net_secs: f64,
    shuffle_bytes: u64,
    retried_tasks: u64,
    peer_timeouts: u64,
    max_task_nanos: u64,
}

fn measure_dist_net(c: &Constraint) -> NetRow {
    use std::io::BufRead as _;

    let (dict, db) = nyt_like(&NytConfig::new(NYT_SIZE));
    let fst = c.compile(&dict).unwrap();
    let parts = db.partition(DIST_PARTITIONS);
    let engine = desq_bsp::Engine::new(DIST_WORKERS).with_reducers(DIST_REDUCERS);
    let config = desq_dist::DSeqConfig::new(SIGMA);

    // In-process reference: the same job through the transport seam with
    // the zero-cost default backend.
    let mut local_secs = f64::MAX;
    let mut patterns = 0;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let res =
            desq_dist::dseq::d_seq_via(&engine, &desq_bsp::InProcess, &parts, &fst, &dict, config)
                .expect("in-process reference run");
        local_secs = local_secs.min(t0.elapsed().as_secs_f64());
        patterns = res.patterns.len();
    }

    // Networked runs: a coordinator is single-job, so every repetition
    // binds a fresh one and spawns fresh worker processes; timing starts
    // after every worker reports ready (corpus generation excluded, TCP
    // handshake and task scheduling included).
    let exe = std::env::current_exe().expect("current_exe");
    let mut net_secs = f64::MAX;
    let (mut shuffle_bytes, mut retried_tasks, mut peer_timeouts, mut max_task_nanos) =
        (0, 0, 0, 0);
    for _ in 0..NET_REPS {
        let coord = desq_bsp::NetCoordinator::bind("127.0.0.1:0", desq_bsp::NetConfig::default())
            .expect("bind coordinator");
        let addr = coord.local_addr().expect("coordinator address");
        let mut children = Vec::new();
        for _ in 0..NET_WORKERS {
            let mut child = std::process::Command::new(&exe)
                .args(["dist-net-worker", &addr.to_string(), &c.name])
                .stdout(std::process::Stdio::piped())
                .spawn()
                .expect("spawn worker process");
            let mut ready = String::new();
            std::io::BufReader::new(child.stdout.take().expect("worker stdout"))
                .read_line(&mut ready)
                .expect("worker readiness line");
            assert_eq!(ready.trim(), "ready", "worker failed to start");
            children.push(child);
        }
        let t0 = Instant::now();
        let res = desq_dist::dseq::d_seq_via(&engine, &coord, &parts, &fst, &dict, config)
            .expect("networked run");
        let secs = t0.elapsed().as_secs_f64();
        assert_eq!(res.patterns.len(), patterns, "network run must match local");
        if secs < net_secs {
            net_secs = secs;
            shuffle_bytes = res.metrics.shuffle_bytes;
            retried_tasks = res.metrics.retried_tasks;
            peer_timeouts = res.metrics.peer_timeouts;
            max_task_nanos = res.metrics.max_task_nanos;
        }
        for mut child in children {
            assert!(child.wait().expect("worker exit").success());
        }
    }
    NetRow {
        name: c.name.clone(),
        patterns,
        local_secs,
        net_secs,
        shuffle_bytes,
        retried_tasks,
        peer_timeouts,
        max_task_nanos,
    }
}

fn dist_net_main(out_path: &str) {
    let constraints = [desq_dist::patterns::n2(), desq_dist::patterns::n3()];
    let mut rows: Vec<NetRow> = Vec::new();
    for c in &constraints {
        rows.push(measure_dist_net(c));
        eprintln!("measured dist-net/{}", c.name);
    }

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"networked shuffle perf smoke\",");
    let _ = writeln!(
        json,
        "  \"workload\": {{\"dataset\": \"nyt_like({NYT_SIZE})\", \"sigma\": {SIGMA}, \
         \"worker_processes\": {NET_WORKERS}, \"threads_per_worker\": {DIST_WORKERS}, \
         \"partitions\": {DIST_PARTITIONS}, \"reducers\": {DIST_REDUCERS}, \
         \"local_reps\": {REPS}, \"net_reps\": {NET_REPS}, \
         \"metric\": \"min wall seconds, D-SEQ over localhost TCP vs in-process\"}},"
    );
    let _ = writeln!(
        json,
        "  \"baseline\": \"in-process ShuffleTransport on the same engine (no recorded \
         pre-PR numbers: the networked backend is new)\","
    );
    json.push_str("  \"jobs\": [\n");
    let (mut local_total, mut net_total) = (0.0, 0.0);
    let (mut retried_total, mut timeout_total) = (0u64, 0u64);
    for (i, r) in rows.iter().enumerate() {
        local_total += r.local_secs;
        net_total += r.net_secs;
        retried_total += r.retried_tasks;
        timeout_total += r.peer_timeouts;
        let _ = writeln!(
            json,
            "    {{\"algo\": \"D-SEQ\", \"name\": \"{}\", \"patterns\": {}, \
             \"local_secs\": {:.4}, \"net_secs\": {:.4}, \"net_over_local\": {:.2}, \
             \"shuffle_bytes\": {}, \"retried_tasks\": {}, \"peer_timeouts\": {}, \
             \"max_task_nanos\": {}}}{}",
            r.name,
            r.patterns,
            r.local_secs,
            r.net_secs,
            r.net_secs / r.local_secs,
            r.shuffle_bytes,
            r.retried_tasks,
            r.peer_timeouts,
            r.max_task_nanos,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"aggregate\": {{\"local_secs\": {:.4}, \"net_secs\": {:.4}, \
         \"net_over_local\": {:.2}, \"retried_tasks\": {retried_total}, \
         \"peer_timeouts\": {timeout_total}}}",
        local_total,
        net_total,
        net_total / local_total,
    );
    json.push_str("}\n");

    std::fs::write(out_path, &json).expect("write BENCH_8.json");
    print!("{json}");
    eprintln!("wrote {out_path}");
}

struct FstOptRow {
    name: String,
    patterns: usize,
    states_none: usize,
    transitions_none: usize,
    states_full: usize,
    transitions_full: usize,
    compile_none_micros: f64,
    compile_full_micros: f64,
    none_secs: f64,
    full_secs: f64,
}

fn measure_fst_opt(
    c: &Constraint,
    dict: &desq_core::Dictionary,
    inputs: &[WeightedInput<'_>],
) -> FstOptRow {
    use desq_core::{Fst, OptLevel, PatEx};
    let pexp = PatEx::parse(&c.expr).unwrap().unanchored();
    let mut compile_best = [f64::MAX; 2];
    for (slot, level) in [(0, OptLevel::None), (1, OptLevel::Full)] {
        for _ in 0..REPS {
            let t0 = Instant::now();
            let fst = Fst::compile_with(&pexp, dict, level).unwrap();
            compile_best[slot] = compile_best[slot].min(t0.elapsed().as_secs_f64());
            std::hint::black_box(&fst);
        }
    }
    let none = Fst::compile_with(&pexp, dict, OptLevel::None).unwrap();
    let full = Fst::compile_with(&pexp, dict, OptLevel::Full).unwrap();
    let mut best = [f64::MAX; 2];
    let mut out_none = Vec::new();
    let mut out_full = Vec::new();
    for (slot, fst, out) in [(0, &none, &mut out_none), (1, &full, &mut out_full)] {
        let miner = LocalMiner::new(fst, dict, MinerConfig::sequential(SIGMA));
        for _ in 0..REPS {
            let t0 = Instant::now();
            *out = miner.mine(inputs).unwrap();
            best[slot] = best[slot].min(t0.elapsed().as_secs_f64());
        }
    }
    // Zero oracle divergence, checked on every bench run.
    assert_eq!(
        out_full, out_none,
        "{}: OptLevel::Full diverged from the None oracle",
        c.name
    );
    FstOptRow {
        name: c.name.clone(),
        patterns: out_full.len(),
        states_none: none.num_states(),
        transitions_none: none.num_transitions(),
        states_full: full.num_states(),
        transitions_full: full.num_transitions(),
        compile_none_micros: compile_best[0] * 1e6,
        compile_full_micros: compile_best[1] * 1e6,
        none_secs: best[0],
        full_secs: best[1],
    }
}

fn fst_opt_main(out_path: &str) {
    let (dict, db) = nyt_like(&NytConfig::new(NYT_SIZE));
    let inputs: Vec<WeightedInput<'_>> = db.sequences.iter().map(|s| (s.as_slice(), 1)).collect();
    let constraints = [
        desq_dist::patterns::n1(),
        desq_dist::patterns::n2(),
        desq_dist::patterns::n3(),
        desq_dist::patterns::n5(),
        desq_dist::patterns::n4(),
    ];
    let rows: Vec<FstOptRow> = constraints
        .iter()
        .map(|c| measure_fst_opt(c, &dict, &inputs))
        .collect();

    let (mut none, mut full) = (0.0, 0.0);
    let mut log_speedup = 0.0;
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"fst optimizer perf smoke\",");
    let _ = writeln!(
        json,
        "  \"workload\": {{\"dataset\": \"nyt_like({NYT_SIZE})\", \"sigma\": {SIGMA}, \
         \"reps\": {REPS}, \"metric\": \"min wall seconds, sequential DESQ-DFS\"}},"
    );
    let _ = writeln!(
        json,
        "  \"baseline\": \"OptLevel::None (\\u03b5-removal + pruning only; Full adds \
         pair-determinization + suffix-sharing minimization)\","
    );
    json.push_str("  \"constraints\": [\n");
    for (i, r) in rows.iter().enumerate() {
        none += r.none_secs;
        full += r.full_secs;
        let speedup = r.none_secs / r.full_secs;
        log_speedup += speedup.ln();
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"patterns\": {}, \
             \"states_none\": {}, \"states_full\": {}, \
             \"transitions_none\": {}, \"transitions_full\": {}, \
             \"state_reduction\": {:.2}, \"transition_reduction\": {:.2}, \
             \"compile_none_micros\": {:.1}, \"compile_full_micros\": {:.1}, \
             \"none_secs\": {:.4}, \"full_secs\": {:.4}, \"speedup\": {:.2}}}{}",
            r.name,
            r.patterns,
            r.states_none,
            r.states_full,
            r.transitions_none,
            r.transitions_full,
            1.0 - r.states_full as f64 / r.states_none as f64,
            1.0 - r.transitions_full as f64 / r.transitions_none as f64,
            r.compile_none_micros,
            r.compile_full_micros,
            r.none_secs,
            r.full_secs,
            speedup,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"aggregate\": {{\"none_secs\": {:.4}, \"full_secs\": {:.4}, \
         \"speedup\": {:.2}, \"geomean_speedup\": {:.2}}}",
        none,
        full,
        none / full,
        (log_speedup / rows.len() as f64).exp()
    );
    json.push_str("}\n");

    std::fs::write(out_path, &json).expect("write BENCH_9.json");
    print!("{json}");
    eprintln!("wrote {out_path}");
}

fn main() {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("dist") => {
            let out = args.next().unwrap_or_else(|| "BENCH_4.json".to_string());
            dist_main(&out);
        }
        Some("count") => {
            let out = args.next().unwrap_or_else(|| "BENCH_5.json".to_string());
            count_main(&out);
        }
        Some("scale") => {
            let out = args.next().unwrap_or_else(|| "BENCH_6.json".to_string());
            scale_main(&out);
        }
        Some("serve") => {
            let out = args.next().unwrap_or_else(|| "BENCH_7.json".to_string());
            serve_main(&out);
        }
        Some("dist-net") => {
            let out = args.next().unwrap_or_else(|| "BENCH_8.json".to_string());
            dist_net_main(&out);
        }
        Some("fst-opt") => {
            let out = args.next().unwrap_or_else(|| "BENCH_9.json".to_string());
            fst_opt_main(&out);
        }
        Some("dist-net-worker") => {
            let addr = args.next().expect("dist-net-worker <addr> <constraint>");
            let constraint = args.next().expect("dist-net-worker <addr> <constraint>");
            dist_net_worker_main(&addr, &constraint);
        }
        Some(out) => local_main(out),
        None => local_main("BENCH_3.json"),
    }
}
