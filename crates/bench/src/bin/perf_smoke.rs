//! Perf-smoke harness: times DESQ-DFS local mining on the standard bench
//! workload (NYT-like corpus, the N2/N3/N5/N4 constraints of Tab. III) at
//! 1 and 4 workers and writes the measurements to `BENCH_3.json`.
//!
//! The recorded `baseline_secs` values are the pre-rework sequential
//! `LocalMiner` (before the flat simulation tables of PR 3), measured on
//! the same workload with the same min-of-five protocol; override them
//! per constraint with `PERF_BASELINE_N2=secs` etc. when benchmarking on a
//! different machine. The output is consumed by CI as an artifact so the
//! performance trajectory of the hot path stays visible per PR.

use std::fmt::Write as _;
use std::time::Instant;

use desq_datagen::{nyt_like, NytConfig};
use desq_dist::patterns::Constraint;
use desq_miner::{LocalMiner, MinerConfig, WeightedInput};

/// Sequences in the generated NYT-like corpus.
const NYT_SIZE: usize = 40_000;
/// Support threshold of every measurement.
const SIGMA: u64 = 10;
/// Timed repetitions per configuration (the minimum is reported).
const REPS: usize = 5;

/// Pre-rework sequential baselines (seconds), measured on the development
/// machine with the same corpus, σ and min-of-five protocol.
fn recorded_baseline(name: &str) -> f64 {
    match name {
        "N2" => 0.0564,
        "N3" => 0.0631,
        "N5" => 0.7585,
        "N4" => 0.3658,
        _ => f64::NAN,
    }
}

fn baseline_for(name: &str) -> f64 {
    std::env::var(format!("PERF_BASELINE_{name}"))
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| recorded_baseline(name))
}

struct Row {
    name: String,
    patterns: usize,
    baseline_secs: f64,
    w1_secs: f64,
    w4_secs: f64,
}

fn measure(c: &Constraint) -> Row {
    let (dict, db) = nyt_like(&NytConfig::new(NYT_SIZE));
    let fst = c.compile(&dict).unwrap();
    let inputs: Vec<WeightedInput<'_>> = db.sequences.iter().map(|s| (s.as_slice(), 1)).collect();
    let miner = LocalMiner::new(&fst, &dict, MinerConfig::sequential(SIGMA));
    let mut patterns = 0;
    let mut best = [f64::MAX; 2];
    for (slot, workers) in [(0, 1), (1, 4)] {
        for _ in 0..REPS {
            let t0 = Instant::now();
            let (out, timings) = miner.mine_with_workers(&inputs, workers);
            let secs = t0.elapsed().as_secs_f64();
            assert_eq!(timings.len(), workers);
            patterns = out.len();
            best[slot] = best[slot].min(secs);
        }
    }
    Row {
        name: c.name.clone(),
        patterns,
        baseline_secs: baseline_for(&c.name),
        w1_secs: best[0],
        w4_secs: best[1],
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_3.json".to_string());
    let constraints = [
        desq_dist::patterns::n2(),
        desq_dist::patterns::n3(),
        desq_dist::patterns::n5(),
        desq_dist::patterns::n4(),
    ];
    let rows: Vec<Row> = constraints.iter().map(measure).collect();

    let (mut base, mut w1, mut w4) = (0.0, 0.0, 0.0);
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"desq-dfs local mining perf smoke\",");
    let _ = writeln!(
        json,
        "  \"workload\": {{\"dataset\": \"nyt_like({NYT_SIZE})\", \"sigma\": {SIGMA}, \
         \"reps\": {REPS}, \"metric\": \"min wall seconds\"}},"
    );
    let _ = writeln!(
        json,
        "  \"baseline\": \"pre-PR-3 sequential LocalMiner (override: PERF_BASELINE_<NAME>)\","
    );
    json.push_str("  \"constraints\": [\n");
    for (i, r) in rows.iter().enumerate() {
        base += r.baseline_secs;
        w1 += r.w1_secs;
        w4 += r.w4_secs;
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"patterns\": {}, \"baseline_secs\": {:.4}, \
             \"workers1_secs\": {:.4}, \"workers4_secs\": {:.4}, \
             \"speedup_w1\": {:.2}, \"speedup_w4\": {:.2}}}{}",
            r.name,
            r.patterns,
            r.baseline_secs,
            r.w1_secs,
            r.w4_secs,
            r.baseline_secs / r.w1_secs,
            r.baseline_secs / r.w4_secs,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"aggregate\": {{\"baseline_secs\": {:.4}, \"workers1_secs\": {:.4}, \
         \"workers4_secs\": {:.4}, \"speedup_w1\": {:.2}, \"speedup_w4\": {:.2}}}",
        base,
        w1,
        w4,
        base / w1,
        base / w4
    );
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_3.json");
    print!("{json}");
    eprintln!("wrote {out_path}");
}
