//! Fig. 13: the MLlib setting — T1(σ, 5) on AMZN without hierarchy, σ sweep.
//!
//! All subsequences of length ≤ 5 with arbitrary gaps: the loosest possible
//! constraint. MLlib's PrefixSpan and LASH (γ large) mine it natively;
//! D-SEQ mines it via the T1 pattern expression; D-CAND's run enumeration
//! explodes at low σ (the paper reports OOM — reproduced via the session's
//! work budget).

use crate::common::run_spec;
use desq::session::AlgorithmSpec;
use desq_baselines::LashConfig;
use desq_bench::report::Table;
use desq_bench::workloads::{self, session_for, sigma_for};

pub fn run() {
    let (dict, db) = workloads::shared(workloads::amzn_flat());
    let c = desq_dist::patterns::t1(5);
    // γ larger than any sequence = arbitrary gaps for LASH; include
    // singleton patterns to match T1 exactly.
    let max_gap = db.max_len();

    let mut t = Table::new(
        "Fig. 13: MLlib setting (T1(σ,5) on AMZN without hierarchy)",
        &["σ", "MLlib", "LASH", "D-SEQ", "D-CAND"],
    );
    // The paper sweeps σ = 6400, 1600, 400, 100, 25 on 21M sequences;
    // we sweep the same relative ladder.
    for frac in [0.16, 0.04, 0.01, 0.0025] {
        let sigma = sigma_for(&db, frac, 2);
        let base = session_for(&dict, &db, &c, sigma);
        let ml = run_spec(&base, AlgorithmSpec::Mllib { max_len: 5 });
        let la = run_spec(
            &base,
            AlgorithmSpec::Lash(LashConfig::new(sigma, max_gap, 5).without_hierarchy()),
        );
        let ds = run_spec(&base, AlgorithmSpec::d_seq());
        let dc = run_spec(&base, AlgorithmSpec::d_cand());

        // MLlib and D-SEQ implement T1 exactly (patterns of length 1..=5);
        // LASH's specialized setting mines length >= 2 only, so compare on
        // the common part.
        if let (Some(a), Some(b)) = (ml.result(), ds.result()) {
            assert_eq!(
                a.patterns, b.patterns,
                "MLlib and D-SEQ disagree at σ={sigma}"
            );
        }
        if let (Some(a), Some(b)) = (ml.result(), la.result()) {
            let long: Vec<_> = a
                .patterns
                .iter()
                .filter(|(s, _)| s.len() >= 2)
                .cloned()
                .collect();
            assert_eq!(long, b.patterns, "MLlib and LASH disagree at σ={sigma}");
        }
        t.row(vec![
            sigma.to_string(),
            ml.time(),
            la.time(),
            ds.time(),
            dc.time(),
        ]);
    }
    t.print();
    println!(
        "paper shape: D-SEQ competitive with LASH and ahead of MLlib; D-CAND runs\n\
         out of memory as σ drops (arbitrary gaps maximize accepting runs)."
    );
}
