//! Tab. II: dataset and hierarchy characteristics.

use desq_bench::report::Table;
use desq_bench::workloads;
use desq_datagen::DatasetStats;

pub fn run() {
    let mut t = Table::new(
        "Table II: dataset and hierarchy characteristics (synthetic analogs)",
        &[
            "dataset",
            "sequences",
            "total items",
            "unique items",
            "max len",
            "mean len",
            "hier. items",
            "max anc",
            "mean anc",
        ],
    );
    let datasets: [(&str, (desq_core::Dictionary, desq_core::SequenceDb)); 4] = [
        ("NYT", workloads::nyt()),
        ("AMZN", workloads::amzn()),
        ("AMZN-F", workloads::amzn_f()),
        ("CW50", workloads::cw()),
    ];
    for (name, (dict, db)) in &datasets {
        let s = DatasetStats::compute(dict, db);
        t.row(vec![
            name.to_string(),
            s.sequences.to_string(),
            s.total_items.to_string(),
            s.unique_items.to_string(),
            s.max_len.to_string(),
            format!("{:.1}", s.mean_len),
            s.hierarchy_items.to_string(),
            s.max_ancestors.to_string(),
            format!("{:.1}", s.mean_ancestors),
        ]);
    }
    t.print();
    println!(
        "paper (for shape comparison): NYT 50M seqs / mean len 22.8 / mean anc 2.8 (max 3);\n\
         AMZN 21M / 3.9 / 5.1 (max 282); AMZN-F 21M / 3.9 / 3.5 (max 10); CW50 567M / 19.0 / 1.0"
    );
}
