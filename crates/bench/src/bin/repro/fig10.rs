//! Fig. 10: component ablations of D-SEQ (grid, rewrites, early stopping)
//! and D-CAND (NFA minimization, aggregation).

use std::sync::Arc;

use crate::common::run_spec;
use desq::session::{AlgorithmSpec, MiningSession};
use desq_bench::report::Table;
use desq_bench::workloads::{self, session_for, sigma_for};
use desq_core::{Dictionary, SequenceDb};
use desq_dist::patterns::{self, Constraint};
use desq_dist::{DCandConfig, DSeqConfig};

struct Workload {
    constraint: Constraint,
    dict: Arc<Dictionary>,
    db: Arc<SequenceDb>,
    sigma: u64,
}

impl Workload {
    fn session(&self) -> MiningSession {
        session_for(&self.dict, &self.db, &self.constraint, self.sigma)
    }
}

fn dseq_ablation(t: &mut Table, w: &Workload) {
    let base = w.session();
    // The boolean flags are the cumulative enhancements of Fig. 10a; σ and
    // budget come from the session.
    let variants: [(&str, DSeqConfig); 4] = [
        (
            "no stop, no rewrites, no grid",
            DSeqConfig {
                use_grid: false,
                rewrite: false,
                early_stop: false,
                ..DSeqConfig::new(1)
            },
        ),
        (
            "no stop, no rewrites",
            DSeqConfig {
                rewrite: false,
                early_stop: false,
                ..DSeqConfig::new(1)
            },
        ),
        (
            "no stop",
            DSeqConfig {
                early_stop: false,
                ..DSeqConfig::new(1)
            },
        ),
        ("full D-SEQ", DSeqConfig::new(1)),
    ];
    let mut reference: Option<Vec<(Vec<u32>, u64)>> = None;
    let mut cells = vec![format!("{}(σ={})", w.constraint.name, w.sigma)];
    for (_, cfg) in &variants {
        let o = run_spec(&base, AlgorithmSpec::DSeq(*cfg));
        if let Some(res) = o.result() {
            match &reference {
                None => reference = Some(res.patterns.clone()),
                Some(r) => assert_eq!(r, &res.patterns, "ablation changed the result"),
            }
        }
        cells.push(o.time());
    }
    t.row(cells);
}

fn dcand_ablation(t: &mut Table, w: &Workload) {
    let base = w.session();
    let variants: [(&str, DCandConfig); 3] = [
        (
            "tries, no agg",
            DCandConfig {
                minimize: false,
                aggregate: false,
                ..DCandConfig::new(1)
            },
        ),
        (
            "tries",
            DCandConfig {
                minimize: false,
                ..DCandConfig::new(1)
            },
        ),
        ("full D-CAND", DCandConfig::new(1)),
    ];
    let mut reference: Option<Vec<(Vec<u32>, u64)>> = None;
    let mut cells = vec![format!("{}(σ={})", w.constraint.name, w.sigma)];
    for (_, cfg) in &variants {
        let o = run_spec(&base, AlgorithmSpec::DCand(*cfg));
        if let Some(res) = o.result() {
            match &reference {
                None => reference = Some(res.patterns.clone()),
                Some(r) => assert_eq!(r, &res.patterns, "ablation changed the result"),
            }
            cells.push(format!(
                "{} / {}",
                o.time(),
                desq_bench::report::bytes(res.metrics.shuffle_bytes)
            ));
        } else {
            cells.push(o.time());
        }
    }
    t.row(cells);
}

pub fn run() {
    let (nyt_dict, nyt_db) = workloads::shared(workloads::nyt());
    let (amzn_dict, amzn_db) = workloads::shared(workloads::amzn());
    let (f_dict, f_db) = workloads::shared(workloads::amzn_f());

    let a1 = Workload {
        sigma: sigma_for(&amzn_db, 0.001, 5),
        constraint: patterns::a1(),
        dict: amzn_dict.clone(),
        db: amzn_db.clone(),
    };
    let n5 = Workload {
        sigma: sigma_for(&nyt_db, 0.02, 10),
        constraint: patterns::n5(),
        dict: nyt_dict.clone(),
        db: nyt_db.clone(),
    };
    let n4 = Workload {
        sigma: sigma_for(&nyt_db, 0.02, 10),
        constraint: patterns::n4(),
        dict: nyt_dict,
        db: nyt_db,
    };
    let t3_16 = Workload {
        sigma: sigma_for(&f_db, 0.0025, 5),
        constraint: patterns::t3(1, 6),
        dict: f_dict.clone(),
        db: f_db.clone(),
    };
    let t3_loose = Workload {
        sigma: sigma_for(&f_db, 0.25, 100),
        constraint: patterns::t3(8, 5),
        dict: f_dict,
        db: f_db,
    };

    let mut a = Table::new(
        "Fig. 10a: D-SEQ ablation (cumulative enhancements)",
        &[
            "constraint",
            "no stop/rewr/grid",
            "no stop/rewr",
            "no stop",
            "full D-SEQ",
        ],
    );
    for w in [&a1, &n5, &t3_16, &t3_loose] {
        dseq_ablation(&mut a, w);
    }
    a.print();

    let mut b = Table::new(
        "Fig. 10b: D-CAND ablation (time / shuffle size)",
        &["constraint", "tries, no agg", "tries", "full D-CAND"],
    );
    for w in [&a1, &n4, &t3_16] {
        dcand_ablation(&mut b, w);
    }
    b.print();
    println!(
        "paper shape: each component speeds some constraints up drastically with\n\
         little overhead elsewhere; grid matters for loose constraints, NFA\n\
         minimization + aggregation shrink D-CAND's shuffle."
    );
}
