//! Fig. 10: component ablations of D-SEQ (grid, rewrites, early stopping)
//! and D-CAND (NFA minimization, aggregation).

use crate::common::{engine, parts, run_outcome, OOM_BUDGET};
use desq_bench::report::Table;
use desq_bench::workloads::{self, sigma_for};
use desq_core::{Dictionary, SequenceDb};
use desq_dist::patterns::{self, Constraint};
use desq_dist::{d_cand, d_seq, DCandConfig, DSeqConfig};

struct Workload {
    constraint: Constraint,
    dict: Dictionary,
    db: SequenceDb,
    sigma: u64,
}

fn dseq_ablation(t: &mut Table, w: &Workload) {
    let fst = w.constraint.compile(&w.dict).unwrap();
    let eng = engine();
    let ps = parts(&w.db);
    let variants: [(&str, DSeqConfig); 4] = [
        (
            "no stop, no rewrites, no grid",
            DSeqConfig {
                sigma: w.sigma,
                use_grid: false,
                rewrite: false,
                early_stop: false,
                run_budget: OOM_BUDGET,
            },
        ),
        (
            "no stop, no rewrites",
            DSeqConfig {
                sigma: w.sigma,
                use_grid: true,
                rewrite: false,
                early_stop: false,
                run_budget: OOM_BUDGET,
            },
        ),
        (
            "no stop",
            DSeqConfig {
                sigma: w.sigma,
                use_grid: true,
                rewrite: true,
                early_stop: false,
                run_budget: OOM_BUDGET,
            },
        ),
        (
            "full D-SEQ",
            DSeqConfig {
                run_budget: OOM_BUDGET,
                ..DSeqConfig::new(w.sigma)
            },
        ),
    ];
    let mut reference: Option<Vec<(Vec<u32>, u64)>> = None;
    let mut cells = vec![format!("{}(σ={})", w.constraint.name, w.sigma)];
    for (_, cfg) in &variants {
        let o = run_outcome(|| d_seq(&eng, &ps, &fst, &w.dict, *cfg));
        if let Some(res) = o.result() {
            match &reference {
                None => reference = Some(res.patterns.clone()),
                Some(r) => assert_eq!(r, &res.patterns, "ablation changed the result"),
            }
        }
        cells.push(o.time());
    }
    t.row(cells);
}

fn dcand_ablation(t: &mut Table, w: &Workload) {
    let fst = w.constraint.compile(&w.dict).unwrap();
    let eng = engine();
    let ps = parts(&w.db);
    let variants: [(&str, DCandConfig); 3] = [
        (
            "tries, no agg",
            DCandConfig {
                sigma: w.sigma,
                minimize: false,
                aggregate: false,
                run_budget: OOM_BUDGET,
            },
        ),
        (
            "tries",
            DCandConfig {
                sigma: w.sigma,
                minimize: false,
                aggregate: true,
                run_budget: OOM_BUDGET,
            },
        ),
        (
            "full D-CAND",
            DCandConfig::new(w.sigma).with_run_budget(OOM_BUDGET),
        ),
    ];
    let mut reference: Option<Vec<(Vec<u32>, u64)>> = None;
    let mut cells = vec![format!("{}(σ={})", w.constraint.name, w.sigma)];
    for (_, cfg) in &variants {
        let o = run_outcome(|| d_cand(&eng, &ps, &fst, &w.dict, *cfg));
        if let Some(res) = o.result() {
            match &reference {
                None => reference = Some(res.patterns.clone()),
                Some(r) => assert_eq!(r, &res.patterns, "ablation changed the result"),
            }
            cells.push(format!(
                "{} / {}",
                o.time(),
                desq_bench::report::bytes(res.metrics.shuffle_bytes)
            ));
        } else {
            cells.push(o.time());
        }
    }
    t.row(cells);
}

pub fn run() {
    let (nyt_dict, nyt_db) = workloads::nyt();
    let (amzn_dict, amzn_db) = workloads::amzn();
    let (f_dict, f_db) = workloads::amzn_f();

    let a1 = Workload {
        sigma: sigma_for(&amzn_db, 0.001, 5),
        constraint: patterns::a1(),
        dict: amzn_dict.clone(),
        db: amzn_db.clone(),
    };
    let n5 = Workload {
        sigma: sigma_for(&nyt_db, 0.02, 10),
        constraint: patterns::n5(),
        dict: nyt_dict.clone(),
        db: nyt_db.clone(),
    };
    let n4 = Workload {
        sigma: sigma_for(&nyt_db, 0.02, 10),
        constraint: patterns::n4(),
        dict: nyt_dict,
        db: nyt_db,
    };
    let t3_16 = Workload {
        sigma: sigma_for(&f_db, 0.0025, 5),
        constraint: patterns::t3(1, 6),
        dict: f_dict.clone(),
        db: f_db.clone(),
    };
    let t3_loose = Workload {
        sigma: sigma_for(&f_db, 0.25, 100),
        constraint: patterns::t3(8, 5),
        dict: f_dict,
        db: f_db,
    };

    let mut a = Table::new(
        "Fig. 10a: D-SEQ ablation (cumulative enhancements)",
        &[
            "constraint",
            "no stop/rewr/grid",
            "no stop/rewr",
            "no stop",
            "full D-SEQ",
        ],
    );
    for w in [&a1, &n5, &t3_16, &t3_loose] {
        dseq_ablation(&mut a, w);
    }
    a.print();

    let mut b = Table::new(
        "Fig. 10b: D-CAND ablation (time / shuffle size)",
        &["constraint", "tries, no agg", "tries", "full D-CAND"],
    );
    for w in [&a1, &n4, &t3_16] {
        dcand_ablation(&mut b, w);
    }
    b.print();
    println!(
        "paper shape: each component speeds some constraints up drastically with\n\
         little overhead elsewhere; grid matters for loose constraints, NFA\n\
         minimization + aggregation shrink D-CAND's shuffle."
    );
}
