//! Tab. IV: statistics on candidate subsequences (CSPI).

use desq_bench::report::Table;
use desq_bench::workloads::{self, sigma_for};
use desq_core::fst::candidates;
use desq_core::{Dictionary, SequenceDb};
use desq_dist::patterns::{self, Constraint};

/// Sequences examined per constraint (the paper samples loose constraints
/// too — "estimated from a 0.1% random sample").
const SAMPLE: usize = 4_000;
const BUDGET: usize = 300_000;

fn cspi_row(t: &mut Table, c: &Constraint, dict: &Dictionary, db: &SequenceDb, sigma: u64) {
    let fst = c
        .compile(dict)
        .unwrap_or_else(|e| panic!("{}: {e}", c.name));
    let step = (db.len() / SAMPLE).max(1);
    let mut matched = 0usize;
    let mut examined = 0usize;
    let mut counts: Vec<usize> = Vec::new();
    let mut capped = false;
    for seq in db.sequences.iter().step_by(step) {
        examined += 1;
        match candidates::stats(&fst, dict, seq, Some(sigma), BUDGET) {
            Ok(s) => {
                if s.matched {
                    matched += 1;
                    counts.push(s.candidates);
                }
            }
            Err(_) => {
                // Budget hit: count as matched with the budget as a floor.
                capped = true;
                matched += 1;
                counts.push(BUDGET);
            }
        }
    }
    counts.sort_unstable();
    let total: usize = counts.iter().sum();
    let mean = if counts.is_empty() {
        0.0
    } else {
        total as f64 / counts.len() as f64
    };
    let median = counts.get(counts.len() / 2).copied().unwrap_or(0);
    let est_total = total as f64 * step as f64;
    t.row(vec![
        format!("{}(σ={sigma})", c.name),
        format!("{:.1}", 100.0 * matched as f64 / examined.max(1) as f64),
        format!("{:.2}M{}", est_total / 1e6, if capped { "+" } else { "" }),
        format!("{mean:.1}{}", if capped { "+" } else { "" }),
        median.to_string(),
    ]);
}

pub fn run() {
    let mut t = Table::new(
        "Table IV: candidate subsequence statistics (sampled)",
        &[
            "constraint",
            "matched %",
            "# cand. seqs",
            "CSPI mean",
            "CSPI median",
        ],
    );
    let (nyt_dict, nyt_db) = workloads::nyt();
    for c in patterns::nyt_constraints() {
        let sigma = match c.name.as_str() {
            "N4" | "N5" => sigma_for(&nyt_db, 0.02, 10),
            _ => sigma_for(&nyt_db, 0.0005, 3),
        };
        cspi_row(&mut t, &c, &nyt_dict, &nyt_db, sigma);
    }
    let (amzn_dict, amzn_db) = workloads::amzn();
    for c in patterns::amzn_constraints() {
        cspi_row(
            &mut t,
            &c,
            &amzn_dict,
            &amzn_db,
            sigma_for(&amzn_db, 0.001, 5),
        );
    }
    let (f_dict, f_db) = workloads::amzn_f();
    for (frac, lo) in [(0.0025, 5), (0.00025, 2)] {
        cspi_row(
            &mut t,
            &patterns::t3(1, 5),
            &f_dict,
            &f_db,
            sigma_for(&f_db, frac, lo),
        );
    }
    let (flat_dict, flat_db) = workloads::amzn_flat();
    for (frac, lo) in [(0.16, 50), (0.04, 20), (0.01, 5)] {
        cspi_row(
            &mut t,
            &patterns::t1(5),
            &flat_dict,
            &flat_db,
            sigma_for(&flat_db, frac, lo),
        );
    }
    t.print();
    println!(
        "shape check vs paper: N1-N3 selective (CSPI ~1-10), N4/N5 moderate (CSPI ~100),\n\
         A-constraints spread wide, T3 loose, T1 loosest at low σ ('+' = budget-capped estimate)"
    );
}
