//! Fig. 9: performance of all four algorithms under flexible constraints,
//! including shuffle sizes (9c).

use std::sync::Arc;

use crate::common::{assert_agreement, four_algorithms};
use desq_bench::report::Table;
use desq_bench::workloads::{self, session_for, sigma_for};
use desq_core::{Dictionary, SequenceDb};
use desq_dist::patterns::{self, Constraint};

fn block(
    title: &str,
    constraints: &[(Constraint, u64)],
    dict: &Arc<Dictionary>,
    db: &Arc<SequenceDb>,
) {
    let mut t = Table::new(
        title,
        &["constraint", "NAIVE", "SEMI-NAIVE", "D-SEQ", "D-CAND"],
    );
    let mut shuffles = Table::new(
        &format!("{title} — shuffle sizes (Fig. 9c)"),
        &["constraint", "NAIVE", "SEMI-NAIVE", "D-SEQ", "D-CAND"],
    );
    for (c, sigma) in constraints {
        let base = session_for(dict, db, c, *sigma);
        let outcomes = four_algorithms(&base);
        assert_agreement(&outcomes);
        t.row(
            std::iter::once(format!("{}(σ={sigma})", c.name))
                .chain(outcomes.iter().map(|(_, o)| o.time()))
                .collect(),
        );
        shuffles.row(
            std::iter::once(format!("{}(σ={sigma})", c.name))
                .chain(outcomes.iter().map(|(_, o)| o.shuffle()))
                .collect(),
        );
    }
    t.print();
    shuffles.print();
}

pub fn run() {
    let (nyt_dict, nyt_db) = workloads::shared(workloads::nyt());
    let nyt_constraints: Vec<(Constraint, u64)> = patterns::nyt_constraints()
        .into_iter()
        .map(|c| {
            let sigma = match c.name.as_str() {
                "N4" | "N5" => sigma_for(&nyt_db, 0.02, 10),
                _ => sigma_for(&nyt_db, 0.0005, 3),
            };
            (c, sigma)
        })
        .collect();
    block(
        "Fig. 9a: total time on NYT",
        &nyt_constraints,
        &nyt_dict,
        &nyt_db,
    );

    let (amzn_dict, amzn_db) = workloads::shared(workloads::amzn());
    let amzn_constraints: Vec<(Constraint, u64)> = patterns::amzn_constraints()
        .into_iter()
        .map(|c| (c, sigma_for(&amzn_db, 0.001, 5)))
        .collect();
    block(
        "Fig. 9b: total time on AMZN",
        &amzn_constraints,
        &amzn_dict,
        &amzn_db,
    );

    println!(
        "paper shape: naïve methods competitive on selective constraints (N1-N3),\n\
         D-SEQ/D-CAND ahead by up to 50x on looser ones (N4, N5, A1, A3);\n\
         both representations shuffle up to 100x less than the naïve methods."
    );
}
