//! Shared helpers for the reproduction targets.
//!
//! Everything runs through the unified session API: a target builds one
//! [`MiningSession`] per workload (see
//! [`desq_bench::workloads::session_for`]) and dispatches it to each
//! algorithm with [`MiningSession::with_algorithm`].

use desq::core::{Error, MiningResult, Result};
use desq::session::{AlgorithmSpec, MiningSession};

/// Outcome of one algorithm run: completed with measurements, or the
/// OOM analog (the reason is reported on stderr when it occurs).
// A handful of these exist per table row; the size skew vs `Oom` is
// irrelevant next to the match-site noise boxing would add.
#[allow(dead_code, clippy::large_enum_variant)]
pub enum Outcome {
    Done(MiningResult),
    Oom(String),
}

impl Outcome {
    /// Wall-clock column.
    pub fn time(&self) -> String {
        match self {
            Outcome::Done(res) => desq_bench::report::secs(res.metrics.total_secs()),
            Outcome::Oom(_) => "n/a (OOM)".to_string(),
        }
    }

    /// Shuffle-size column.
    pub fn shuffle(&self) -> String {
        match self {
            Outcome::Done(res) => desq_bench::report::bytes(res.metrics.shuffle_bytes),
            Outcome::Oom(_) => "n/a (OOM)".to_string(),
        }
    }

    /// Output-count column.
    pub fn patterns(&self) -> String {
        match self {
            Outcome::Done(res) => res.patterns.len().to_string(),
            Outcome::Oom(_) => "-".to_string(),
        }
    }

    /// The completed result, if any.
    pub fn result(&self) -> Option<&MiningResult> {
        match self {
            Outcome::Done(res) => Some(res),
            Outcome::Oom(_) => None,
        }
    }
}

/// Runs one algorithm, mapping `ResourceExhausted` to the OOM outcome and
/// propagating any other failure as a panic (a reproduction bug).
pub fn run_outcome(f: impl FnOnce() -> Result<MiningResult>) -> Outcome {
    match f() {
        Ok(r) => Outcome::Done(r),
        Err(Error::ResourceExhausted(m)) => {
            eprintln!("  [OOM analog: {m}]");
            Outcome::Oom(m)
        }
        Err(other) => panic!("algorithm failed: {other}"),
    }
}

/// Dispatches `base` to `spec` and wraps the run in an [`Outcome`].
pub fn run_spec(base: &MiningSession, spec: AlgorithmSpec) -> Outcome {
    run_outcome(|| base.with_algorithm(spec)?.run())
}

/// All four general algorithms on one workload session.
pub fn four_algorithms(base: &MiningSession) -> [(&'static str, Outcome); 4] {
    [
        AlgorithmSpec::Naive,
        AlgorithmSpec::SemiNaive,
        AlgorithmSpec::d_seq(),
        AlgorithmSpec::d_cand(),
    ]
    .map(|spec| (spec.name(), run_spec(base, spec)))
}

/// Asserts that all completed outcomes agree on the mined patterns.
pub fn assert_agreement(outcomes: &[(&str, Outcome)]) {
    let mut reference: Option<(&str, &MiningResult)> = None;
    for (name, o) in outcomes {
        if let Some(res) = o.result() {
            match &reference {
                None => reference = Some((name, res)),
                Some((rname, rres)) => {
                    assert_eq!(rres.patterns, res.patterns, "{rname} and {name} disagree")
                }
            }
        }
    }
}
