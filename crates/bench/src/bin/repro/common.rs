//! Shared helpers for the reproduction targets.

use desq_bsp::Engine;
use desq_core::{Dictionary, Error, Fst, Result, Sequence, SequenceDb};
use desq_dist::MiningResult;

/// Per-sequence work budget standing in for the paper's executor memory
/// limit: candidate generation / run enumeration beyond this aborts with
/// the OOM-analog `ResourceExhausted`.
pub const OOM_BUDGET: usize = 2_000_000;

/// Outcome of one algorithm run: completed with measurements, or the
/// OOM analog (the reason is reported on stderr when it occurs).
#[allow(dead_code)]
pub enum Outcome {
    Done(MiningResult, f64),
    Oom(String),
}

impl Outcome {
    /// Wall-clock column.
    pub fn time(&self) -> String {
        match self {
            Outcome::Done(_, secs) => desq_bench::report::secs(*secs),
            Outcome::Oom(_) => "n/a (OOM)".to_string(),
        }
    }

    /// Shuffle-size column.
    pub fn shuffle(&self) -> String {
        match self {
            Outcome::Done(res, _) => desq_bench::report::bytes(res.metrics.shuffle_bytes),
            Outcome::Oom(_) => "n/a (OOM)".to_string(),
        }
    }

    /// Output-count column.
    pub fn patterns(&self) -> String {
        match self {
            Outcome::Done(res, _) => res.patterns.len().to_string(),
            Outcome::Oom(_) => "-".to_string(),
        }
    }

    /// The completed result, if any.
    pub fn result(&self) -> Option<&MiningResult> {
        match self {
            Outcome::Done(res, _) => Some(res),
            Outcome::Oom(_) => None,
        }
    }
}

/// Runs one distributed algorithm, mapping `ResourceExhausted` to the OOM
/// outcome and propagating any other failure as a panic (a reproduction bug).
pub fn run_outcome(f: impl FnOnce() -> Result<MiningResult>) -> Outcome {
    let (res, secs) = desq_bench::timed(f);
    match res {
        Ok(r) => Outcome::Done(r, secs),
        Err(Error::ResourceExhausted(m)) => {
            eprintln!("  [OOM analog: {m}]");
            Outcome::Oom(m)
        }
        Err(other) => panic!("algorithm failed: {other}"),
    }
}

/// The engine used across all reproduction targets.
pub fn engine() -> Engine {
    Engine::new(desq_bench::default_workers())
}

/// Standard partitioning: one map partition per worker.
pub fn parts(db: &SequenceDb) -> Vec<&[Sequence]> {
    db.partition(desq_bench::default_workers())
}

/// All four general algorithms on one workload.
pub fn four_algorithms(
    engine: &Engine,
    db: &SequenceDb,
    dict: &Dictionary,
    fst: &Fst,
    sigma: u64,
) -> [(&'static str, Outcome); 4] {
    use desq_dist::{d_cand, d_seq, naive, DCandConfig, DSeqConfig, NaiveConfig};
    let ps = parts(db);
    [
        (
            "NAIVE",
            run_outcome(|| {
                naive(
                    engine,
                    &ps,
                    fst,
                    dict,
                    NaiveConfig::naive(sigma).with_budget(OOM_BUDGET),
                )
            }),
        ),
        (
            "SEMI-NAIVE",
            run_outcome(|| {
                naive(
                    engine,
                    &ps,
                    fst,
                    dict,
                    NaiveConfig::semi_naive(sigma).with_budget(OOM_BUDGET),
                )
            }),
        ),
        (
            "D-SEQ",
            run_outcome(|| d_seq(engine, &ps, fst, dict, DSeqConfig::new(sigma))),
        ),
        (
            "D-CAND",
            run_outcome(|| {
                d_cand(
                    engine,
                    &ps,
                    fst,
                    dict,
                    DCandConfig::new(sigma).with_run_budget(OOM_BUDGET),
                )
            }),
        ),
    ]
}

/// Asserts that all completed outcomes agree on the mined patterns.
pub fn assert_agreement(outcomes: &[(&str, Outcome)]) {
    let mut reference: Option<(&str, &MiningResult)> = None;
    for (name, o) in outcomes {
        if let Some(res) = o.result() {
            match &reference {
                None => reference = Some((name, res)),
                Some((rname, rres)) => {
                    assert_eq!(rres.patterns, res.patterns, "{rname} and {name} disagree")
                }
            }
        }
    }
}
