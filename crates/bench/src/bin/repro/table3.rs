//! Tab. III: the constraint library with example frequent sequences.

use std::sync::Arc;

use crate::common::run_spec;
use desq::session::AlgorithmSpec;
use desq_bench::report::Table;
use desq_bench::workloads::{self, session_for, sigma_for};
use desq_core::{Dictionary, SequenceDb};
use desq_dist::patterns::{self, Constraint};

fn examples(
    t: &mut Table,
    c: &Constraint,
    dict: &Arc<Dictionary>,
    db: &Arc<SequenceDb>,
    sigma: u64,
) {
    let base = session_for(dict, db, c, sigma);
    let outcome = run_spec(&base, AlgorithmSpec::d_seq());
    let examples = match outcome.result() {
        Some(res) => {
            let mut top: Vec<_> = res.patterns.iter().collect();
            top.sort_by_key(|(s, f)| (std::cmp::Reverse(*f), std::cmp::Reverse(s.len())));
            top.iter()
                .take(2)
                .map(|(s, f)| format!("{} ({f})", dict.render(s)))
                .collect::<Vec<_>>()
                .join(", ")
        }
        None => "n/a (OOM)".to_string(),
    };
    t.row(vec![
        format!("{}(σ={sigma})", c.name),
        c.expr.clone(),
        outcome.patterns(),
        examples,
    ]);
}

pub fn run() {
    let mut t = Table::new(
        "Table III: subsequence constraints with example frequent sequences",
        &[
            "constraint",
            "pattern expression",
            "#freq",
            "examples (support)",
        ],
    );

    let (nyt_dict, nyt_db) = workloads::shared(workloads::nyt());
    for c in patterns::nyt_constraints() {
        let sigma = match c.name.as_str() {
            "N4" | "N5" => sigma_for(&nyt_db, 0.02, 10),
            _ => sigma_for(&nyt_db, 0.0005, 3),
        };
        examples(&mut t, &c, &nyt_dict, &nyt_db, sigma);
    }

    let (amzn_dict, amzn_db) = workloads::shared(workloads::amzn());
    for c in patterns::amzn_constraints() {
        let sigma = sigma_for(&amzn_db, 0.001, 5);
        examples(&mut t, &c, &amzn_dict, &amzn_db, sigma);
    }

    // Traditional constraints, on the datasets the paper uses them with.
    let t1 = patterns::t1(5);
    examples(
        &mut t,
        &t1,
        &amzn_dict,
        &amzn_db,
        sigma_for(&amzn_db, 0.02, 10),
    );
    let t2 = patterns::t2(1, 5);
    examples(
        &mut t,
        &t2,
        &nyt_dict,
        &nyt_db,
        sigma_for(&nyt_db, 0.01, 10),
    );
    let (f_dict, f_db) = workloads::shared(workloads::amzn_f());
    let t3 = patterns::t3(1, 5);
    examples(&mut t, &t3, &f_dict, &f_db, sigma_for(&f_db, 0.0025, 5));

    t.print();
}
