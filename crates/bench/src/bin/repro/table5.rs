//! Tab. V: speedup of the distributed algorithms over sequential DESQ-DFS.

use std::sync::Arc;

use crate::common::{run_spec, Outcome};
use desq::session::AlgorithmSpec;
use desq_bench::default_workers;
use desq_bench::report::{secs, Table};
use desq_bench::workloads::{self, session_for, sigma_for};
use desq_core::{Dictionary, SequenceDb};
use desq_dist::patterns::Constraint;

fn speedup_row(
    t: &mut Table,
    c: &Constraint,
    dataset: &str,
    dict: &Arc<Dictionary>,
    db: &Arc<SequenceDb>,
    sigma: u64,
) {
    let base = session_for(dict, db, c, sigma);
    let seq = base
        .with_algorithm(AlgorithmSpec::DesqDfs)
        .unwrap()
        .run()
        .unwrap_or_else(|e| panic!("{}: {e}", c.name));
    let seq_time = seq.metrics.total_secs();

    let ds = run_spec(&base, AlgorithmSpec::d_seq());
    let dc = run_spec(&base, AlgorithmSpec::d_cand());
    for o in [&ds, &dc] {
        if let Some(res) = o.result() {
            assert_eq!(
                res.patterns, seq.patterns,
                "{} disagrees with DESQ-DFS",
                c.name
            );
        }
    }
    let speedup = |o: &Outcome| match o {
        Outcome::Done(res) => {
            let s = res.metrics.total_secs();
            format!("{} ({:.1}x)", secs(s), seq_time / s)
        }
        Outcome::Oom(_) => "n/a (OOM)".to_string(),
    };
    t.row(vec![
        format!("{}(σ={sigma})", c.name),
        dataset.to_string(),
        secs(seq_time),
        speedup(&ds),
        speedup(&dc),
    ]);
}

pub fn run() {
    let mut t = Table::new(
        &format!(
            "Table V: speedup over sequential execution (DESQ-DFS on 1 core, \
             D-SEQ/D-CAND on {} workers)",
            default_workers()
        ),
        &["constraint", "dataset", "DESQ-DFS", "D-SEQ", "D-CAND"],
    );
    let (nyt_dict, nyt_db) = workloads::shared(workloads::nyt());
    speedup_row(
        &mut t,
        &desq_dist::patterns::n4(),
        "NYT",
        &nyt_dict,
        &nyt_db,
        sigma_for(&nyt_db, 0.02, 10),
    );
    speedup_row(
        &mut t,
        &desq_dist::patterns::n5(),
        "NYT",
        &nyt_dict,
        &nyt_db,
        sigma_for(&nyt_db, 0.02, 10),
    );
    let (f_dict, f_db) = workloads::shared(workloads::amzn_f());
    speedup_row(
        &mut t,
        &desq_dist::patterns::t3(1, 5),
        "AMZN-F",
        &f_dict,
        &f_db,
        sigma_for(&f_db, 0.00025, 2),
    );
    speedup_row(
        &mut t,
        &desq_dist::patterns::t3(1, 5),
        "AMZN-F",
        &f_dict,
        &f_db,
        sigma_for(&f_db, 0.25, 100),
    );
    speedup_row(
        &mut t,
        &desq_dist::patterns::t3(3, 5),
        "AMZN-F",
        &f_dict,
        &f_db,
        sigma_for(&f_db, 0.0025, 5),
    );
    let (cw_dict, cw_db) = workloads::shared(workloads::cw());
    speedup_row(
        &mut t,
        &desq_dist::patterns::t2(0, 5),
        "CW50",
        &cw_dict,
        &cw_db,
        sigma_for(&cw_db, 0.002, 5),
    );
    speedup_row(
        &mut t,
        &desq_dist::patterns::t2(0, 5),
        "CW50",
        &cw_dict,
        &cw_db,
        sigma_for(&cw_db, 0.02, 20),
    );
    t.print();
    println!(
        "paper shape: distributed speedups grow with task length; D-CAND wins on N4\n\
         (aggregation of identical NFAs), D-SEQ and D-CAND comparable on T3/T2."
    );
}
