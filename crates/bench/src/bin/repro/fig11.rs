//! Fig. 11: data, strong and weak scalability of D-SEQ and D-CAND
//! (constraint T3(σ,1,5) on AMZN-F, as in the paper).

use std::sync::Arc;

use crate::common::run_spec;
use desq::session::{AlgorithmSpec, MiningSession};
use desq_bench::report::Table;
use desq_bench::workloads::{self, sigma_for, OOM_BUDGET};
use desq_core::{Dictionary, SequenceDb};

fn both(
    workers: usize,
    dict: &Arc<Dictionary>,
    db: &Arc<SequenceDb>,
    sigma: u64,
) -> (String, String) {
    let base = MiningSession::builder()
        .dictionary(dict.clone())
        .database(db.clone())
        .pattern_unanchored(&desq_dist::patterns::t3(1, 5).expr)
        .sigma(sigma)
        .workers(workers)
        .budget(OOM_BUDGET)
        .build()
        .unwrap();
    let ds = run_spec(&base, AlgorithmSpec::d_seq());
    let dc = run_spec(&base, AlgorithmSpec::d_cand());
    if let (Some(a), Some(b)) = (ds.result(), dc.result()) {
        assert_eq!(a.patterns, b.patterns);
    }
    (ds.time(), dc.time())
}

pub fn run() {
    let workers = desq_bench::default_workers();

    // (a) Data scalability: grow the data, fix the workers. σ grows
    // proportionally (the paper uses σ = 25/50/75/100 for 25–100%).
    let mut a = Table::new(
        &format!("Fig. 11a: data scalability ({workers} workers, T3(σ,1,5) on AMZN-F)"),
        &["% of data", "σ", "D-SEQ", "D-CAND"],
    );
    for pct in [25, 50, 75, 100] {
        let (dict, db) = workloads::shared(workloads::amzn_f_fraction(pct));
        let sigma = sigma_for(&db, 0.0025, 2);
        let (ds, dc) = both(workers, &dict, &db, sigma);
        a.row(vec![pct.to_string(), sigma.to_string(), ds, dc]);
    }
    a.print();

    // (b) Strong scalability: fix the data, grow the workers.
    let mut b = Table::new(
        "Fig. 11b: strong scalability (100% of data)",
        &["workers", "D-SEQ", "D-CAND"],
    );
    let (dict, db) = workloads::shared(workloads::amzn_f_fraction(100));
    let sigma = sigma_for(&db, 0.0025, 2);
    for w in [2, 4, 8] {
        let (ds, dc) = both(w, &dict, &db, sigma);
        b.row(vec![w.to_string(), ds, dc]);
    }
    b.print();

    // (c) Weak scalability: grow both together.
    let mut c = Table::new(
        "Fig. 11c: weak scalability (workers ∝ data)",
        &["workers (% data)", "σ", "D-SEQ", "D-CAND"],
    );
    for (w, pct) in [(2, 25), (4, 50), (6, 75), (8, 100)] {
        let (dict, db) = workloads::shared(workloads::amzn_f_fraction(pct));
        let sigma = sigma_for(&db, 0.0025, 2);
        let (ds, dc) = both(w, &dict, &db, sigma);
        c.row(vec![format!("{w} ({pct}%)"), sigma.to_string(), ds, dc]);
    }
    c.print();

    // Reference: single-worker run for the parallel-efficiency shape.
    let (ds1, _) = both(1, &dict, &db, sigma);
    println!("reference: 1 worker D-SEQ = {ds1}; paper shape: near-linear in both directions");
}
