//! Fig. 11: data, strong and weak scalability of D-SEQ and D-CAND
//! (constraint T3(σ,1,5) on AMZN-F, as in the paper).

use crate::common::run_outcome;
use desq_bench::report::{secs, Table};
use desq_bench::workloads::{self, sigma_for};
use desq_bsp::Engine;
use desq_core::{Dictionary, SequenceDb};
use desq_dist::{d_cand, d_seq, DCandConfig, DSeqConfig};

fn both(workers: usize, dict: &Dictionary, db: &SequenceDb, sigma: u64) -> (String, String) {
    let eng = Engine::new(workers);
    let ps = db.partition(workers);
    let fst = desq_dist::patterns::t3(1, 5).compile(dict).unwrap();
    let ds = run_outcome(|| d_seq(&eng, &ps, &fst, dict, DSeqConfig::new(sigma)));
    let dc = run_outcome(|| d_cand(&eng, &ps, &fst, dict, DCandConfig::new(sigma)));
    if let (Some(a), Some(b)) = (ds.result(), dc.result()) {
        assert_eq!(a.patterns, b.patterns);
    }
    (ds.time(), dc.time())
}

pub fn run() {
    let workers = desq_bench::default_workers();

    // (a) Data scalability: grow the data, fix the workers. σ grows
    // proportionally (the paper uses σ = 25/50/75/100 for 25–100%).
    let mut a = Table::new(
        &format!("Fig. 11a: data scalability ({workers} workers, T3(σ,1,5) on AMZN-F)"),
        &["% of data", "σ", "D-SEQ", "D-CAND"],
    );
    for pct in [25, 50, 75, 100] {
        let (dict, db) = workloads::amzn_f_fraction(pct);
        let sigma = sigma_for(&db, 0.0025, 2);
        let (ds, dc) = both(workers, &dict, &db, sigma);
        a.row(vec![pct.to_string(), sigma.to_string(), ds, dc]);
    }
    a.print();

    // (b) Strong scalability: fix the data, grow the workers.
    let mut b = Table::new(
        "Fig. 11b: strong scalability (100% of data)",
        &["workers", "D-SEQ", "D-CAND"],
    );
    let (dict, db) = workloads::amzn_f_fraction(100);
    let sigma = sigma_for(&db, 0.0025, 2);
    for w in [2, 4, 8] {
        let (ds, dc) = both(w, &dict, &db, sigma);
        b.row(vec![w.to_string(), ds, dc]);
    }
    b.print();

    // (c) Weak scalability: grow both together.
    let mut c = Table::new(
        "Fig. 11c: weak scalability (workers ∝ data)",
        &["workers (% data)", "σ", "D-SEQ", "D-CAND"],
    );
    for (w, pct) in [(2, 25), (4, 50), (6, 75), (8, 100)] {
        let (dict, db) = workloads::amzn_f_fraction(pct);
        let sigma = sigma_for(&db, 0.0025, 2);
        let (ds, dc) = both(w, &dict, &db, sigma);
        c.row(vec![format!("{w} ({pct}%)"), sigma.to_string(), ds, dc]);
    }
    c.print();

    // Reference: single-worker run for the parallel-efficiency shape.
    let (ds1, _) = both(1, &dict, &db, sigma);
    println!("reference: 1 worker D-SEQ = {ds1}; paper shape: near-linear in both directions");
    let _ = secs(0.0);
}
