//! `repro` — regenerates every table and figure of the paper's evaluation.
//!
//! Usage: `repro [table2|table3|table4|table5|fig9|fig10|fig11|fig12|fig13|all]`
//!
//! Scale with `REPRO_SCALE` (default 1.0). See EXPERIMENTS.md for the
//! paper-versus-measured record.

mod common;
mod fig10;
mod fig11;
mod fig12;
mod fig13;
mod fig9;
mod table2;
mod table3;
mod table4;
mod table5;

fn main() {
    let cmd = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let t0 = std::time::Instant::now();
    match cmd.as_str() {
        "table2" => table2::run(),
        "table3" => table3::run(),
        "table4" => table4::run(),
        "table5" => table5::run(),
        "fig9" => fig9::run(),
        "fig10" => fig10::run(),
        "fig11" => fig11::run(),
        "fig12" => fig12::run(),
        "fig13" => fig13::run(),
        "all" => {
            table2::run();
            table3::run();
            table4::run();
            table5::run();
            fig9::run();
            fig10::run();
            fig11::run();
            fig12::run();
            fig13::run();
        }
        other => {
            eprintln!(
                "unknown target {other:?}; expected one of: table2 table3 table4 table5 \
                 fig9 fig10 fig11 fig12 fig13 all"
            );
            std::process::exit(2);
        }
    }
    eprintln!(
        "\n[repro {cmd} finished in {:.1} s]",
        t0.elapsed().as_secs_f64()
    );
}
