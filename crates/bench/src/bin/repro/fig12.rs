//! Fig. 12: the LASH setting — generalization overhead of D-SEQ/D-CAND over
//! the specialized LASH algorithm (max gap, max length, hierarchy).

use crate::common::{engine, parts, run_outcome, Outcome, OOM_BUDGET};
use desq_baselines::{lash, LashConfig};
use desq_bench::report::Table;
use desq_bench::workloads::{self, sigma_for};
use desq_core::{Dictionary, SequenceDb};
use desq_dist::{d_cand, d_seq, DCandConfig, DSeqConfig};

#[allow(clippy::too_many_arguments)] // a table row is exactly this wide
fn row(
    t: &mut Table,
    name: &str,
    dict: &Dictionary,
    db: &SequenceDb,
    sigma: u64,
    gamma: usize,
    lambda: usize,
    hierarchy: bool,
) {
    let eng = engine();
    let ps = parts(db);

    let mut lash_cfg = LashConfig::new(sigma, gamma, lambda);
    if !hierarchy {
        lash_cfg = lash_cfg.without_hierarchy();
    }
    let l = run_outcome(|| lash(&eng, &ps, dict, lash_cfg));

    let c = if hierarchy {
        desq_dist::patterns::t3(gamma, lambda)
    } else {
        desq_dist::patterns::t2(gamma, lambda)
    };
    let fst = c.compile(dict).unwrap();
    let ds = run_outcome(|| d_seq(&eng, &ps, &fst, dict, DSeqConfig::new(sigma)));
    let dc = run_outcome(|| {
        d_cand(
            &eng,
            &ps,
            &fst,
            dict,
            DCandConfig::new(sigma).with_run_budget(OOM_BUDGET),
        )
    });

    // Generalization overhead, the paper's headline number for Fig. 12.
    let overhead = |o: &Outcome| match (o, &l) {
        (Outcome::Done(_, s), Outcome::Done(_, ls)) => format!("{:.1}x", s / ls),
        _ => "-".to_string(),
    };
    if let (Some(a), Some(b)) = (l.result(), ds.result()) {
        assert_eq!(a.patterns, b.patterns, "{name}: LASH and D-SEQ disagree");
    }
    if let (Some(a), Some(b)) = (l.result(), dc.result()) {
        assert_eq!(a.patterns, b.patterns, "{name}: LASH and D-CAND disagree");
    }
    let ds_cell = format!("{} ({})", ds.time(), overhead(&ds));
    let dc_cell = format!("{} ({})", dc.time(), overhead(&dc));
    t.row(vec![name.to_string(), l.time(), ds_cell, dc_cell]);
}

pub fn run() {
    let (f_dict, f_db) = workloads::amzn_f();
    let lo = sigma_for(&f_db, 0.0025, 5);
    let vlo = sigma_for(&f_db, 0.00025, 2);
    let mut a = Table::new(
        "Fig. 12a: LASH setting on AMZN-F (time, overhead vs LASH)",
        &["constraint", "LASH", "D-SEQ", "D-CAND"],
    );
    row(
        &mut a,
        &format!("T3({lo},1,5)"),
        &f_dict,
        &f_db,
        lo,
        1,
        5,
        true,
    );
    row(
        &mut a,
        &format!("T3({vlo},1,5)"),
        &f_dict,
        &f_db,
        vlo,
        1,
        5,
        true,
    );
    row(
        &mut a,
        &format!("T3({lo},2,5)"),
        &f_dict,
        &f_db,
        lo,
        2,
        5,
        true,
    );
    row(
        &mut a,
        &format!("T3({lo},1,6)"),
        &f_dict,
        &f_db,
        lo,
        1,
        6,
        true,
    );
    a.print();

    let (cw_dict, cw_db) = workloads::cw();
    let s1 = sigma_for(&cw_db, 0.002, 5);
    let s2 = sigma_for(&cw_db, 0.02, 20);
    let mut b = Table::new(
        "Fig. 12b: MG-FSM setting on CW50 (no hierarchy)",
        &["constraint", "LASH", "D-SEQ", "D-CAND"],
    );
    row(
        &mut b,
        &format!("T2({s1},0,5)"),
        &cw_dict,
        &cw_db,
        s1,
        0,
        5,
        false,
    );
    row(
        &mut b,
        &format!("T2({s2},0,5)"),
        &cw_dict,
        &cw_db,
        s2,
        0,
        5,
        false,
    );
    b.print();
    println!(
        "paper shape: D-SEQ within 1.3x-2.5x and D-CAND within 0.9x-2.8x of the\n\
         specialized LASH — acceptable generalization overhead."
    );
}
