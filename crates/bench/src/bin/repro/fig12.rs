//! Fig. 12: the LASH setting — generalization overhead of D-SEQ/D-CAND over
//! the specialized LASH algorithm (max gap, max length, hierarchy).

use std::sync::Arc;

use crate::common::{run_spec, Outcome};
use desq::session::AlgorithmSpec;
use desq_baselines::LashConfig;
use desq_bench::report::Table;
use desq_bench::workloads::{self, session_for, sigma_for};
use desq_core::{Dictionary, SequenceDb};

#[allow(clippy::too_many_arguments)] // a table row is exactly this wide
fn row(
    t: &mut Table,
    name: &str,
    dict: &Arc<Dictionary>,
    db: &Arc<SequenceDb>,
    sigma: u64,
    gamma: usize,
    lambda: usize,
    hierarchy: bool,
) {
    let c = if hierarchy {
        desq_dist::patterns::t3(gamma, lambda)
    } else {
        desq_dist::patterns::t2(gamma, lambda)
    };
    // One session carries both the compiled T2/T3 constraint (for
    // D-SEQ/D-CAND) and the parameters LASH mines natively.
    let base = session_for(dict, db, &c, sigma);

    let mut lash_cfg = LashConfig::new(sigma, gamma, lambda);
    if !hierarchy {
        lash_cfg = lash_cfg.without_hierarchy();
    }
    let l = run_spec(&base, AlgorithmSpec::Lash(lash_cfg));
    let ds = run_spec(&base, AlgorithmSpec::d_seq());
    let dc = run_spec(&base, AlgorithmSpec::d_cand());

    // Generalization overhead, the paper's headline number for Fig. 12.
    let overhead = |o: &Outcome| match (o, &l) {
        (Outcome::Done(res), Outcome::Done(lres)) => {
            format!(
                "{:.1}x",
                res.metrics.total_secs() / lres.metrics.total_secs()
            )
        }
        _ => "-".to_string(),
    };
    if let (Some(a), Some(b)) = (l.result(), ds.result()) {
        assert_eq!(a.patterns, b.patterns, "{name}: LASH and D-SEQ disagree");
    }
    if let (Some(a), Some(b)) = (l.result(), dc.result()) {
        assert_eq!(a.patterns, b.patterns, "{name}: LASH and D-CAND disagree");
    }
    let ds_cell = format!("{} ({})", ds.time(), overhead(&ds));
    let dc_cell = format!("{} ({})", dc.time(), overhead(&dc));
    t.row(vec![name.to_string(), l.time(), ds_cell, dc_cell]);
}

pub fn run() {
    let (f_dict, f_db) = workloads::shared(workloads::amzn_f());
    let lo = sigma_for(&f_db, 0.0025, 5);
    let vlo = sigma_for(&f_db, 0.00025, 2);
    let mut a = Table::new(
        "Fig. 12a: LASH setting on AMZN-F (time, overhead vs LASH)",
        &["constraint", "LASH", "D-SEQ", "D-CAND"],
    );
    row(
        &mut a,
        &format!("T3({lo},1,5)"),
        &f_dict,
        &f_db,
        lo,
        1,
        5,
        true,
    );
    row(
        &mut a,
        &format!("T3({vlo},1,5)"),
        &f_dict,
        &f_db,
        vlo,
        1,
        5,
        true,
    );
    row(
        &mut a,
        &format!("T3({lo},2,5)"),
        &f_dict,
        &f_db,
        lo,
        2,
        5,
        true,
    );
    row(
        &mut a,
        &format!("T3({lo},1,6)"),
        &f_dict,
        &f_db,
        lo,
        1,
        6,
        true,
    );
    a.print();

    let (cw_dict, cw_db) = workloads::shared(workloads::cw());
    let s1 = sigma_for(&cw_db, 0.002, 5);
    let s2 = sigma_for(&cw_db, 0.02, 20);
    let mut b = Table::new(
        "Fig. 12b: MG-FSM setting on CW50 (no hierarchy)",
        &["constraint", "LASH", "D-SEQ", "D-CAND"],
    );
    row(
        &mut b,
        &format!("T2({s1},0,5)"),
        &cw_dict,
        &cw_db,
        s1,
        0,
        5,
        false,
    );
    row(
        &mut b,
        &format!("T2({s2},0,5)"),
        &cw_dict,
        &cw_db,
        s2,
        0,
        5,
        false,
    );
    b.print();
    println!(
        "paper shape: D-SEQ within 1.3x-2.5x and D-CAND within 0.9x-2.8x of the\n\
         specialized LASH — acceptable generalization overhead."
    );
}
