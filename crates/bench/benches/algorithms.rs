//! Criterion benchmarks of the end-to-end algorithms on small workloads —
//! one group per paper experiment family (Fig. 9 / Fig. 12 / Fig. 13
//! shapes at benchmark scale), all dispatched through the unified
//! `MiningSession` API.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use desq::session::{AlgorithmSpec, MiningSession};
use desq_baselines::LashConfig;
use desq_core::{Dictionary, SequenceDb};
use desq_datagen::{amzn_like, nyt_like, to_forest, AmznConfig, NytConfig};

fn nyt() -> (Arc<Dictionary>, Arc<SequenceDb>) {
    let (d, db) = nyt_like(&NytConfig::new(3_000));
    (Arc::new(d), Arc::new(db))
}

fn amzn_f() -> (Arc<Dictionary>, Arc<SequenceDb>) {
    let (d, db) = amzn_like(&AmznConfig::new(3_000));
    let (d, db) = to_forest(&d, &db);
    (Arc::new(d), Arc::new(db))
}

fn session(dict: &Arc<Dictionary>, db: &Arc<SequenceDb>, expr: &str, sigma: u64) -> MiningSession {
    MiningSession::builder()
        .dictionary(dict.clone())
        .database(db.clone())
        .pattern_unanchored(expr)
        .sigma(sigma)
        .workers(4)
        .build()
        .unwrap()
}

/// Fig. 9 shape: the four general algorithms on a selective (N1) and a
/// loose (N4) constraint.
fn bench_fig9(c: &mut Criterion) {
    let (dict, db) = nyt();
    for (cname, sigma) in [("N1", 3u64), ("N4", 60u64)] {
        let constraint = match cname {
            "N1" => desq_dist::patterns::n1(),
            _ => desq_dist::patterns::n4(),
        };
        let base = session(&dict, &db, &constraint.expr, sigma);
        let mut group = c.benchmark_group(format!("fig9/{cname}"));
        group.sample_size(10);
        for spec in [
            AlgorithmSpec::SemiNaive,
            AlgorithmSpec::d_seq(),
            AlgorithmSpec::d_cand(),
        ] {
            let run = base.with_algorithm(spec).unwrap();
            group.bench_function(BenchmarkId::new(spec.name(), sigma), |b| {
                b.iter(|| black_box(run.run().unwrap()))
            });
        }
        group.finish();
    }
}

/// Fig. 12 shape: LASH vs D-SEQ vs D-CAND in the specialized setting.
fn bench_fig12(c: &mut Criterion) {
    let (dict, db) = amzn_f();
    let sigma = 8u64;
    let base = session(&dict, &db, &desq_dist::patterns::t3(1, 5).expr, sigma);
    let mut group = c.benchmark_group("fig12/T3(8,1,5)");
    group.sample_size(10);
    for spec in [
        AlgorithmSpec::Lash(LashConfig::new(sigma, 1, 5)),
        AlgorithmSpec::d_seq(),
        AlgorithmSpec::d_cand(),
    ] {
        let run = base.with_algorithm(spec).unwrap();
        group.bench_function(spec.name(), |b| b.iter(|| black_box(run.run().unwrap())));
    }
    group.finish();
}

/// Fig. 13 shape: MLlib PrefixSpan vs D-SEQ in the max-length-only setting.
fn bench_fig13(c: &mut Criterion) {
    let (dict, db) = amzn_f();
    let sigma = 150u64;
    let base = session(&dict, &db, &desq_dist::patterns::t1(5).expr, sigma);
    let mut group = c.benchmark_group("fig13/T1(150,5)");
    group.sample_size(10);
    for spec in [AlgorithmSpec::Mllib { max_len: 5 }, AlgorithmSpec::d_seq()] {
        let run = base.with_algorithm(spec).unwrap();
        group.bench_function(spec.name(), |b| b.iter(|| black_box(run.run().unwrap())));
    }
    group.finish();
}

criterion_group! {
    name = algorithms;
    config = Criterion::default().sample_size(10);
    targets = bench_fig9, bench_fig12, bench_fig13
}
criterion_main!(algorithms);
