//! Criterion benchmarks of the end-to-end algorithms on small workloads —
//! one group per paper experiment family (Fig. 9 / Fig. 12 / Fig. 13
//! shapes at benchmark scale).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use desq_baselines::{lash, mllib_prefixspan, LashConfig, MllibConfig};
use desq_bsp::Engine;
use desq_core::{Dictionary, SequenceDb};
use desq_datagen::{amzn_like, nyt_like, to_forest, AmznConfig, NytConfig};
use desq_dist::{d_cand, d_seq, naive, DCandConfig, DSeqConfig, NaiveConfig};

fn nyt() -> (Dictionary, SequenceDb) {
    nyt_like(&NytConfig::new(3_000))
}

fn amzn_f() -> (Dictionary, SequenceDb) {
    let (d, db) = amzn_like(&AmznConfig::new(3_000));
    to_forest(&d, &db)
}

/// Fig. 9 shape: the four general algorithms on a selective (N1) and a
/// loose (N4) constraint.
fn bench_fig9(c: &mut Criterion) {
    let (dict, db) = nyt();
    let engine = Engine::new(4);
    let parts = db.partition(4);
    for (cname, sigma) in [("N1", 3u64), ("N4", 60u64)] {
        let constraint = match cname {
            "N1" => desq_dist::patterns::n1(),
            _ => desq_dist::patterns::n4(),
        };
        let fst = constraint.compile(&dict).unwrap();
        let mut group = c.benchmark_group(format!("fig9/{cname}"));
        group.sample_size(10);
        group.bench_function(BenchmarkId::new("semi_naive", sigma), |b| {
            b.iter(|| {
                black_box(
                    naive(&engine, &parts, &fst, &dict, NaiveConfig::semi_naive(sigma)).unwrap(),
                )
            })
        });
        group.bench_function(BenchmarkId::new("d_seq", sigma), |b| {
            b.iter(|| {
                black_box(d_seq(&engine, &parts, &fst, &dict, DSeqConfig::new(sigma)).unwrap())
            })
        });
        group.bench_function(BenchmarkId::new("d_cand", sigma), |b| {
            b.iter(|| {
                black_box(d_cand(&engine, &parts, &fst, &dict, DCandConfig::new(sigma)).unwrap())
            })
        });
        group.finish();
    }
}

/// Fig. 12 shape: LASH vs D-SEQ vs D-CAND in the specialized setting.
fn bench_fig12(c: &mut Criterion) {
    let (dict, db) = amzn_f();
    let engine = Engine::new(4);
    let parts = db.partition(4);
    let sigma = 8u64;
    let fst = desq_dist::patterns::t3(1, 5).compile(&dict).unwrap();
    let mut group = c.benchmark_group("fig12/T3(8,1,5)");
    group.sample_size(10);
    group.bench_function("lash", |b| {
        b.iter(|| black_box(lash(&engine, &parts, &dict, LashConfig::new(sigma, 1, 5)).unwrap()))
    });
    group.bench_function("d_seq", |b| {
        b.iter(|| black_box(d_seq(&engine, &parts, &fst, &dict, DSeqConfig::new(sigma)).unwrap()))
    });
    group.bench_function("d_cand", |b| {
        b.iter(|| black_box(d_cand(&engine, &parts, &fst, &dict, DCandConfig::new(sigma)).unwrap()))
    });
    group.finish();
}

/// Fig. 13 shape: MLlib PrefixSpan vs D-SEQ in the max-length-only setting.
fn bench_fig13(c: &mut Criterion) {
    let (dict, db) = amzn_f();
    let engine = Engine::new(4);
    let parts = db.partition(4);
    let sigma = 150u64;
    let fst = desq_dist::patterns::t1(5).compile(&dict).unwrap();
    let mut group = c.benchmark_group("fig13/T1(150,5)");
    group.sample_size(10);
    group.bench_function("mllib", |b| {
        b.iter(|| black_box(mllib_prefixspan(&engine, &parts, MllibConfig::new(sigma, 5)).unwrap()))
    });
    group.bench_function("d_seq", |b| {
        b.iter(|| black_box(d_seq(&engine, &parts, &fst, &dict, DSeqConfig::new(sigma)).unwrap()))
    });
    group.finish();
}

criterion_group! {
    name = algorithms;
    config = Criterion::default().sample_size(10);
    targets = bench_fig9, bench_fig12, bench_fig13
}
criterion_main!(algorithms);
