//! Criterion micro-benchmarks of the hot kernels:
//! FST simulation (grid construction), pivot search (grid DP vs run
//! enumeration), the ⊕ pivot merge, NFA construction/minimization/
//! serialization, FST compilation at both optimizer levels, shuffle
//! codecs, local mining, and the flat counting path (run-table build,
//! run enumeration and interned counting vs the `candidates::generate`
//! oracle).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use desq_bsp::Codec;
use desq_core::fst::{candidates, runs, CandidateCounter, FstIndex, Grid, RunScratch, RunWalker};
use desq_core::fx::FxHashMap;
use desq_core::{Dictionary, Fst, Sequence, SequenceDb};
use desq_datagen::{nyt_like, NytConfig};
use desq_dist::dcand::merge_pivots;
use desq_dist::dcand::nfa::{Nfa, TrieBuilder};
use desq_dist::PivotSearch;
use desq_miner::{LocalMiner, MinerConfig};

fn workload() -> (Dictionary, SequenceDb, Fst) {
    let (dict, db) = nyt_like(&NytConfig::new(2_000));
    let fst = desq_dist::patterns::n4().compile(&dict).unwrap();
    (dict, db, fst)
}

fn bench_grid(c: &mut Criterion) {
    let (dict, db, fst) = workload();
    let seqs: Vec<_> = db.sequences.iter().take(100).collect();
    c.bench_function("grid/build_n4_100seqs", |b| {
        b.iter(|| {
            for seq in &seqs {
                black_box(Grid::build(&fst, &dict, seq));
            }
        })
    });
}

fn bench_pivot_search(c: &mut Criterion) {
    let (dict, db, fst) = workload();
    let last = dict.last_frequent(40);
    let search = PivotSearch::new(&fst, &dict, last);
    let seqs: Vec<_> = db.sequences.iter().take(100).collect();
    c.bench_function("pivots/grid_n4_100seqs", |b| {
        b.iter(|| {
            for seq in &seqs {
                black_box(search.pivots(seq));
            }
        })
    });
    c.bench_function("pivots/enumerated_n4_100seqs", |b| {
        b.iter(|| {
            for seq in &seqs {
                black_box(search.pivots_enumerated(seq, usize::MAX).unwrap());
            }
        })
    });
}

fn bench_merge(c: &mut Criterion) {
    let sets: Vec<Vec<u32>> = (0..20)
        .map(|i| vec![i + 1, i + 5, i + 11, i + 40])
        .collect();
    c.bench_function("pivots/merge_20sets", |b| {
        b.iter(|| black_box(merge_pivots(black_box(&sets))))
    });
}

fn bench_nfa(c: &mut Criterion) {
    // Runs over a shared-suffix structure — the typical D-CAND shape.
    let paths: Vec<Vec<Vec<u32>>> = (0..50u32)
        .map(|i| {
            let mut p = vec![vec![100 + i]];
            p.extend((1..=6).map(|j| vec![j, j + 1]));
            p
        })
        .collect();
    c.bench_function("nfa/build_minimize_serialize", |b| {
        b.iter(|| {
            let mut t = TrieBuilder::new();
            for p in &paths {
                t.insert(p);
            }
            let nfa = t.minimize();
            black_box(nfa.serialize())
        })
    });
    let mut t = TrieBuilder::new();
    for p in &paths {
        t.insert(p);
    }
    let bytes = t.minimize().serialize();
    c.bench_function("nfa/deserialize", |b| {
        b.iter(|| black_box(Nfa::deserialize(black_box(&bytes)).unwrap()))
    });
}

fn bench_fst_opt(c: &mut Criterion) {
    // Compilation with and without the optimizer pipeline, per Tab. III
    // NYT constraint — the Full-vs-None delta is the cost of
    // pair-determinization + suffix-sharing minimization, paid once per
    // pattern expression (and amortized by the serve FST cache).
    let (dict, _) = nyt_like(&NytConfig::new(500));
    for constraint in desq_dist::patterns::nyt_constraints() {
        let pexp = desq_core::PatEx::parse(&constraint.expr)
            .unwrap()
            .unanchored();
        let name = constraint.name.to_lowercase();
        c.bench_function(format!("fst_opt/compile_none_{name}").as_str(), |b| {
            b.iter(|| {
                black_box(Fst::compile_with(&pexp, &dict, desq_core::OptLevel::None).unwrap())
            })
        });
        c.bench_function(format!("fst_opt/compile_full_{name}").as_str(), |b| {
            b.iter(|| {
                black_box(Fst::compile_with(&pexp, &dict, desq_core::OptLevel::Full).unwrap())
            })
        });
    }
}

fn bench_codec(c: &mut Criterion) {
    let seqs: Vec<Vec<u32>> = (0..1000)
        .map(|i| (0..20).map(|j| i * 7 + j).collect())
        .collect();
    c.bench_function("codec/encode_1000x20", |b| {
        b.iter(|| {
            let mut buf = Vec::new();
            for s in &seqs {
                s.encode(&mut buf);
            }
            black_box(buf)
        })
    });
    let mut buf = Vec::new();
    for s in &seqs {
        s.encode(&mut buf);
    }
    c.bench_function("codec/decode_1000x20", |b| {
        b.iter(|| {
            let mut slice = buf.as_slice();
            let mut n = 0usize;
            while !slice.is_empty() {
                n += Vec::<u32>::decode(&mut slice).unwrap().len();
            }
            black_box(n)
        })
    });
}

fn bench_local_mining(c: &mut Criterion) {
    let (dict, db, fst) = workload();
    let inputs: Vec<desq_miner::WeightedInput<'_>> = db
        .sequences
        .iter()
        .take(300)
        .map(|s| (s.as_slice(), 1))
        .collect();
    // Miner construction (the derived FST index) — runs once per mining
    // job, and once per pivot partition in D-SEQ's reduce.
    c.bench_function("mining/miner_build_n4", |b| {
        b.iter(|| black_box(LocalMiner::new(&fst, &dict, MinerConfig::sequential(30))))
    });
    let miner = LocalMiner::new(&fst, &dict, MinerConfig::sequential(30));
    // The per-sequence flat simulation tables (match masks + aliveness +
    // ε-completion DP + output arenas) — the preprocessing the DFS
    // amortizes. (Unlike the pre-PR-3 "desq_dfs_n4_300seqs" numbers, the
    // mining benches below exclude miner construction, measured above.)
    c.bench_function("mining/table_build_n4_300seqs", |b| {
        b.iter(|| black_box(miner.prepare_tables(&inputs, 1).unwrap()))
    });
    // ε-closure + child expansion of the root node over all prepared
    // sequences (the kernel every search-tree node runs).
    let tables = miner.prepare_tables(&inputs, 1).unwrap();
    c.bench_function("mining/root_expand_n4_300seqs", |b| {
        b.iter(|| black_box(miner.first_level_count(&tables)))
    });
    c.bench_function("mining/desq_dfs_n4_300seqs", |b| {
        b.iter(|| black_box(miner.mine(&inputs).unwrap()))
    });
    c.bench_function("mining/desq_dfs_n4_300seqs_w4", |b| {
        b.iter(|| black_box(miner.mine_with_workers(&inputs, 4, None).unwrap()))
    });
}

fn bench_counting(c: &mut Criterion) {
    // The DESQ-COUNT workload shape: a selective constraint over many
    // sequences, most of which are rejected — table build dominates.
    let (dict, db) = nyt_like(&NytConfig::new(2_000));
    let fst = desq_dist::patterns::n2().compile(&dict).unwrap();
    let sigma = 10u64;
    let max_item = dict.last_frequent(sigma);
    let index = FstIndex::new(&fst);
    let walker = RunWalker::new(&fst, &dict, &index, max_item);
    let seqs: Vec<&Sequence> = db.sequences.iter().collect();

    // Run-table build: flat walker tables vs the seed-era Grid.
    c.bench_function("counting/run_table_build_n2_2k", |b| {
        let mut scratch = RunScratch::default();
        b.iter(|| {
            let mut accepted = 0usize;
            for seq in &seqs {
                accepted += usize::from(walker.build_tables(seq, &mut scratch));
            }
            black_box(accepted)
        })
    });
    c.bench_function("counting/grid_build_n2_2k", |b| {
        b.iter(|| {
            let mut accepted = 0usize;
            for seq in &seqs {
                accepted += usize::from(Grid::build(&fst, &dict, seq).accepts());
            }
            black_box(accepted)
        })
    });

    // Accepting-run enumeration: flat walk vs grid-backed transition walk.
    c.bench_function("counting/flat_run_enum_n2_2k", |b| {
        let mut scratch = RunScratch::default();
        b.iter(|| {
            let mut visited = 0usize;
            for seq in &seqs {
                walker.for_each_run(seq, &mut scratch, |sets| {
                    visited += sets.len();
                    true
                });
            }
            black_box(visited)
        })
    });
    c.bench_function("counting/oracle_run_enum_n2_2k", |b| {
        b.iter(|| {
            let mut visited = 0usize;
            for seq in &seqs {
                let grid = Grid::build(&fst, &dict, seq);
                runs::for_each_accepting_run(&fst, &dict, seq, &grid, |path| {
                    visited += path.len();
                    true
                });
            }
            black_box(visited)
        })
    });

    // End-to-end counting: interned byte keys vs Cartesian products into
    // hash sets plus a `FxHashMap<Sequence, u64>` count map.
    c.bench_function("counting/flat_count_n2_2k", |b| {
        let mut scratch = RunScratch::default();
        b.iter(|| {
            let mut counter = CandidateCounter::new();
            for seq in &seqs {
                walker
                    .count_candidates(seq, 1, usize::MAX, &mut scratch, &mut counter, |_, _| {})
                    .unwrap();
            }
            black_box(counter.patterns(sigma))
        })
    });
    c.bench_function("counting/oracle_generate_n2_2k", |b| {
        b.iter(|| {
            let mut counts: FxHashMap<Sequence, u64> = FxHashMap::default();
            for seq in &seqs {
                for cand in candidates::generate(&fst, &dict, seq, Some(sigma), usize::MAX).unwrap()
                {
                    *counts.entry(cand).or_insert(0) += 1;
                }
            }
            black_box(
                counts
                    .into_iter()
                    .filter(|&(_, f)| f >= sigma)
                    .collect::<Vec<_>>(),
            )
        })
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(10);
    targets = bench_grid, bench_pivot_search, bench_merge, bench_nfa, bench_fst_opt,
              bench_codec, bench_local_mining, bench_counting
}
criterion_main!(kernels);
