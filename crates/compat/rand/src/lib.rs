//! Offline shim for the slice of the `rand` 0.8 API this workspace uses:
//! [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`].
//!
//! The generator is xoshiro256++ seeded via SplitMix64 — deterministic,
//! fast, and statistically solid for synthetic data generation. It is *not*
//! the same stream as the real `rand::rngs::StdRng` (ChaCha12); everything
//! in this workspace that depends on determinism seeds explicitly and only
//! relies on self-consistency.

use std::ops::{Range, RangeInclusive};

/// Types samplable uniformly from the unit interval / full domain via
/// [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics on empty ranges.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = ((end - start) as u64).wrapping_add(1);
                if span == 0 {
                    // Full-domain u64 range.
                    return start + rng.next_u64() as $t;
                }
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i32, i64);

/// A source of randomness, with the `rand`-style convenience methods.
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of type `T` (uniform `[0, 1)` for floats).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a (non-empty) range.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        self.gen::<f64>() < p
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand`'s StdRng).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let out = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ranges_cover_and_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&b| b), "{seen:?}");
        for _ in 0..1000 {
            let v = rng.gen_range(2..=4u32);
            assert!((2..=4).contains(&v));
        }
        for _ in 0..1000 {
            let v: i32 = rng.gen_range(20..80);
            assert!((20..80).contains(&v));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "{hits}");
    }
}
