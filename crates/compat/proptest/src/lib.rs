//! Offline shim for the slice of the `proptest` API this workspace uses.
//!
//! Provides the [`Strategy`] trait with `prop_map` / `prop_flat_map` /
//! `prop_recursive` / `boxed`, integer-range and tuple strategies, [`Just`],
//! [`collection::vec`] and [`collection::btree_set`], and the `proptest!`,
//! `prop_oneof!`, `prop_assert!`, `prop_assert_eq!` macros.
//!
//! Differences from the real crate: generation is driven by a deterministic
//! per-test RNG (seeded from the test name and case index), and there is
//! **no shrinking** — a failing case reports its case number so it can be
//! reproduced by rerunning the test.

use std::rc::Rc;

pub mod test_runner {
    //! Minimal test-runner vocabulary used by the generated test bodies.

    /// Error type returned by property bodies (a rendered assertion
    /// message).
    pub type TestCaseError = String;
}

/// Per-property configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Deterministic generator state (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator with an explicit seed.
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// The generator for one case of a named property.
    pub fn for_case(name: &str, case: u32) -> TestRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::new(h.wrapping_add(u64::from(case).wrapping_mul(0x2545_f491_4f6c_dd1d)))
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform value in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

/// A generator of values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from a strategy derived from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Builds a recursive strategy: `self` generates leaves, and `branch`
    /// wraps an inner strategy into composite values, up to `depth` levels.
    /// (`_desired_size` and `_expected_branch_size` are accepted for API
    /// compatibility and ignored.)
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            // At every level, bias towards leaves so sizes stay bounded.
            current = OneOf {
                choices: vec![leaf.clone(), leaf.clone(), branch(current).boxed()],
            }
            .boxed();
        }
        current
    }

    /// Type-erases the strategy behind a cheaply clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(self),
        }
    }
}

/// A type-erased, clonable strategy.
pub struct BoxedStrategy<T> {
    inner: Rc<dyn Strategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice between boxed strategies (backs `prop_oneof!`).
pub struct OneOf<T> {
    /// The alternatives.
    pub choices: Vec<BoxedStrategy<T>>,
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.choices.len() as u64) as usize;
        self.choices[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = ((end - start) as u64).wrapping_add(1);
                if span == 0 {
                    return start + rng.next_u64() as $t;
                }
                start + rng.below(span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Generates `Vec`s with a length drawn from `size` and elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Generates `BTreeSet`s with a target size drawn from `size`. If the
    /// element domain is too small, the set may come out smaller (matching
    /// proptest, which also cannot exceed the domain).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.clone().generate(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < 16 * (target + 1) {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Re-exports matching `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Just, ProptestConfig,
        Strategy,
    };
}

#[doc(hidden)]
pub fn __run_case(name: &str, case: u32, result: Result<(), test_runner::TestCaseError>) {
    if let Err(message) = result {
        panic!("proptest `{name}` failed at case {case} (no shrinking): {message}");
    }
}

/// Uniform choice between heterogeneous strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf { choices: vec![$($crate::Strategy::boxed($strategy)),+] }
    };
}

/// Property-style assertion: fails the current case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)*));
        }
    };
}

/// Property-style equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err(::std::format!(
                "{}\n  left: {:?}\n right: {:?}",
                ::std::format!($($fmt)*),
                left,
                right
            ));
        }
    }};
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                $crate::__run_case(stringify!($name), case, outcome);
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..100 {
            let v = (1usize..5).generate(&mut rng);
            assert!((1..5).contains(&v));
            let (a, b) = ((0u32..3), (10u64..=12)).generate(&mut rng);
            assert!(a < 3);
            assert!((10..=12).contains(&b));
        }
    }

    #[test]
    fn collections_and_combinators() {
        let mut rng = TestRng::new(7);
        let s = collection::vec(collection::btree_set(0u32..6, 1..4), 2..5);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            for set in &v {
                assert!(!set.is_empty() && set.len() < 4);
            }
        }
        let mapped = (0usize..4).prop_map(|n| vec![0u8; n]);
        assert!(mapped.generate(&mut rng).len() < 4);
        let flat = (1usize..4).prop_flat_map(|n| collection::vec(0u32..10, n..n + 1));
        for _ in 0..20 {
            assert!(!flat.generate(&mut rng).is_empty());
        }
    }

    #[test]
    fn recursion_terminates() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(#[allow(dead_code)] u32),
            Node(Vec<Tree>),
        }
        let s = (0u32..5)
            .prop_map(Tree::Leaf)
            .prop_recursive(4, 16, 3, |inner| {
                collection::vec(inner, 1..3).prop_map(Tree::Node)
            });
        let mut rng = TestRng::new(3);
        for _ in 0..200 {
            let t = s.generate(&mut rng);
            fn depth(t: &Tree) -> usize {
                match t {
                    Tree::Leaf(_) => 1,
                    Tree::Node(children) => 1 + children.iter().map(depth).max().unwrap_or(0),
                }
            }
            assert!(depth(&t) <= 5);
        }
    }

    #[test]
    fn deterministic_per_case() {
        let a = TestRng::for_case("t", 3).next_u64();
        let b = TestRng::for_case("t", 3).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, TestRng::for_case("t", 4).next_u64());
        assert_ne!(a, TestRng::for_case("u", 3).next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro pipeline itself works end to end.
        #[test]
        fn macro_generates_cases(x in 0u32..10, ys in collection::vec(0u32..5, 0..4)) {
            prop_assert!(x < 10, "x = {x}");
            prop_assert_eq!(ys.len() < 4, true);
            if x == 99 {
                return Ok(());
            }
        }
    }
}
