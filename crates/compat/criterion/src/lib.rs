//! Offline shim for the slice of the `criterion` API this workspace uses:
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`], [`BenchmarkId`],
//! [`black_box`] and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is intentionally simple — a warm-up pass followed by
//! `sample_size` timed iterations, reporting mean wall time per iteration.
//! It is good enough for relative comparisons in development; the benches
//! are kept compiling in CI via `cargo check --benches`.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group (`name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            full: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> BenchmarkId {
        BenchmarkId {
            full: name.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> BenchmarkId {
        BenchmarkId { full: name }
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    samples: u64,
}

impl Bencher {
    /// Times `f`: one warm-up call, then `samples` measured iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let t0 = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        let per_iter = t0.elapsed() / self.samples.max(1) as u32;
        println!(
            "    {:>12} /iter over {} iters",
            format_duration(per_iter),
            self.samples
        );
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 10_000 {
        format!("{nanos} ns")
    } else if nanos < 10_000_000 {
        format!("{:.1} us", nanos as f64 / 1e3)
    } else if nanos < 10_000_000_000 {
        format!("{:.1} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of measured iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        println!("  bench {}", id.into().full);
        let mut b = Bencher {
            samples: self.sample_size,
        };
        f(&mut b);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            parent: self,
            name,
            sample_size: None,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<u64>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample size for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1) as u64);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        println!("  bench {}/{}", self.name, id.into().full);
        let samples = self.sample_size.unwrap_or(self.parent.sample_size);
        let mut b = Bencher { samples };
        f(&mut b);
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `main()` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags (e.g. `--bench`); the shim
            // runs everything unconditionally and ignores them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_runs_closures() {
        let mut c = Criterion::default().sample_size(2);
        let mut runs = 0u32;
        c.bench_function("unit", |b| b.iter(|| runs += 1));
        assert!(runs >= 3, "warm-up + samples, got {runs}");
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function(BenchmarkId::new("f", 7), |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }
}
