//! Offline shim for the `crossbeam::thread` scoped-threads API and the
//! `crossbeam::deque` work-stealing primitives this workspace uses.
//!
//! * [`thread`] is implemented over `std::thread::scope` (stable since Rust
//!   1.63, which post-dates crossbeam's scoped threads).
//! * [`deque`] mirrors `crossbeam-deque`'s `Worker`/`Stealer`/`Injector`
//!   surface over a `Mutex<VecDeque>`. The real crate's lock-free Chase-Lev
//!   deque matters at sub-microsecond task granularity; the mining scheduler
//!   built on top hands out whole search-subtree tasks (milliseconds each),
//!   where a mutex per pop is noise.

pub mod deque {
    //! Work-stealing deques: each worker owns a [`Worker`] end (LIFO push and
    //! pop, for cache-friendly depth-first descent) and hands out [`Stealer`]
    //! handles that take from the *opposite* (FIFO) end, stealing up to half
    //! of the queue per attempt — crossbeam's "steal half" batch semantics.

    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Outcome of a steal attempt, matching `crossbeam_deque::Steal`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was empty.
        Empty,
        /// One task was stolen (the head of a stolen batch).
        Success(T),
        /// A concurrent operation interfered; retry if desired. The mutex
        /// backing never produces this, but callers are written against the
        /// real API and must handle it.
        Retry,
    }

    impl<T> Steal<T> {
        /// Returns the stolen task, if any.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }
    }

    /// The owner's end of a work-stealing deque.
    pub struct Worker<T> {
        shared: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// Creates a new LIFO worker queue (the only flavor the mining
        /// scheduler uses; crossbeam's FIFO flavor is not mirrored).
        pub fn new_lifo() -> Worker<T> {
            Worker {
                shared: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// Returns a handle that can steal from this queue.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                shared: Arc::clone(&self.shared),
            }
        }

        /// Pushes a task onto the owner's end.
        pub fn push(&self, task: T) {
            self.shared.lock().unwrap().push_back(task);
        }

        /// Pops a task from the owner's end (LIFO: the most recently pushed).
        pub fn pop(&self) -> Option<T> {
            self.shared.lock().unwrap().pop_back()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.shared.lock().unwrap().is_empty()
        }

        /// Number of queued tasks.
        pub fn len(&self) -> usize {
            self.shared.lock().unwrap().len()
        }
    }

    /// A thief's handle onto some worker's deque.
    pub struct Stealer<T> {
        shared: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Stealer<T> {
            Stealer {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Stealer<T> {
        /// Steals a single task from the cold (FIFO) end.
        pub fn steal(&self) -> Steal<T> {
            match self.shared.lock().unwrap().pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Steals a batch of up to half the victim's tasks into `dest`, then
        /// pops one of them for immediate execution — the
        /// `steal_batch_and_pop` operation the scheduler drives. The first
        /// stolen task (oldest, closest to the victim's root) is returned;
        /// the rest land in `dest`.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            let mut batch = {
                let mut victim = self.shared.lock().unwrap();
                let n = victim.len().div_ceil(2).min(victim.len());
                victim.drain(..n).collect::<Vec<T>>()
            };
            if batch.is_empty() {
                return Steal::Empty;
            }
            let first = batch.remove(0);
            let mut dest_q = dest.shared.lock().unwrap();
            for t in batch {
                dest_q.push_back(t);
            }
            Steal::Success(first)
        }

        /// Whether the victim's queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.shared.lock().unwrap().is_empty()
        }
    }

    /// A global FIFO queue all workers can push to and steal from; used to
    /// seed initial tasks before per-worker queues warm up.
    pub struct Injector<T> {
        shared: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Injector<T> {
            Injector::new()
        }
    }

    impl<T> Injector<T> {
        /// Creates an empty injector.
        pub fn new() -> Injector<T> {
            Injector {
                shared: Mutex::new(VecDeque::new()),
            }
        }

        /// Pushes a task onto the tail.
        pub fn push(&self, task: T) {
            self.shared.lock().unwrap().push_back(task);
        }

        /// Steals a batch of up to half the queued tasks into `dest` and pops
        /// one, like [`Stealer::steal_batch_and_pop`].
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            let mut batch = {
                let mut q = self.shared.lock().unwrap();
                let n = q.len().div_ceil(2).min(q.len());
                q.drain(..n).collect::<Vec<T>>()
            };
            if batch.is_empty() {
                return Steal::Empty;
            }
            let first = batch.remove(0);
            let mut dest_q = dest.shared.lock().unwrap();
            for t in batch {
                dest_q.push_back(t);
            }
            Steal::Success(first)
        }

        /// Whether the injector is currently empty.
        pub fn is_empty(&self) -> bool {
            self.shared.lock().unwrap().is_empty()
        }
    }
}

pub mod thread {
    //! Scoped threads: spawn borrows-allowed worker threads that are joined
    //! before the scope returns.

    /// Handle passed to [`scope`] closures for spawning scoped threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives a unit token in
        /// place of crossbeam's nested-scope handle (the workspace never
        /// spawns nested scoped threads).
        pub fn spawn<F, T>(&self, f: F)
        where
            F: FnOnce(()) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            self.inner.spawn(move || f(()));
        }
    }

    /// Runs `f` with a [`Scope`]; all spawned threads are joined before this
    /// function returns. A panicking worker propagates its panic (callers in
    /// this workspace `expect()` the result either way).
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    use super::deque::{Injector, Steal, Worker};

    #[test]
    fn worker_is_lifo_and_stealer_takes_from_the_cold_end() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        for i in 0..4 {
            w.push(i);
        }
        assert_eq!(w.pop(), Some(3)); // owner: LIFO
        assert_eq!(s.steal().success(), Some(0)); // thief: FIFO
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn steal_batch_takes_half_and_pops_one() {
        let victim = Worker::new_lifo();
        let thief = Worker::new_lifo();
        for i in 0..7 {
            victim.push(i);
        }
        // ceil(7/2) = 4 stolen: task 0 returned, 1..=3 queued on the thief.
        assert_eq!(
            victim.stealer().steal_batch_and_pop(&thief).success(),
            Some(0)
        );
        assert_eq!(thief.len(), 3);
        assert_eq!(victim.len(), 3);
        assert_eq!(thief.pop(), Some(3));
    }

    #[test]
    fn empty_steals_report_empty() {
        let w: Worker<u32> = Worker::new_lifo();
        assert_eq!(w.stealer().steal(), Steal::Empty);
        assert_eq!(
            w.stealer().steal_batch_and_pop(&Worker::new_lifo()),
            Steal::Empty
        );
        let inj: Injector<u32> = Injector::new();
        assert_eq!(inj.steal_batch_and_pop(&Worker::new_lifo()), Steal::Empty);
    }

    #[test]
    fn injector_seeds_workers_fifo() {
        let inj = Injector::new();
        for i in 0..5 {
            inj.push(i);
        }
        let w = Worker::new_lifo();
        assert_eq!(inj.steal_batch_and_pop(&w).success(), Some(0));
        assert_eq!(w.len(), 2); // ceil(5/2)=3 stolen, one popped
        assert!(!inj.is_empty());
    }

    #[test]
    fn scoped_threads_join_and_borrow() {
        let counter = AtomicUsize::new(0);
        super::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
        })
        .unwrap();
        assert_eq!(counter.into_inner(), 8);
    }
}
