//! Offline shim for the `crossbeam::thread` scoped-threads API this
//! workspace uses, implemented over `std::thread::scope` (stable since Rust
//! 1.63, which post-dates crossbeam's scoped threads).

pub mod thread {
    //! Scoped threads: spawn borrows-allowed worker threads that are joined
    //! before the scope returns.

    /// Handle passed to [`scope`] closures for spawning scoped threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives a unit token in
        /// place of crossbeam's nested-scope handle (the workspace never
        /// spawns nested scoped threads).
        pub fn spawn<F, T>(&self, f: F)
        where
            F: FnOnce(()) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            self.inner.spawn(move || f(()));
        }
    }

    /// Runs `f` with a [`Scope`]; all spawned threads are joined before this
    /// function returns. A panicking worker propagates its panic (callers in
    /// this workspace `expect()` the result either way).
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_join_and_borrow() {
        let counter = AtomicUsize::new(0);
        super::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
        })
        .unwrap();
        assert_eq!(counter.into_inner(), 8);
    }
}
