//! Offline shim for the `parking_lot` API surface this workspace uses:
//! a [`Mutex`] whose `lock()` returns the guard directly (no poisoning).
//!
//! Backed by `std::sync::Mutex`; a poisoned lock is recovered transparently,
//! matching `parking_lot`'s behaviour of not propagating panics.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion primitive with a non-poisoning `lock()`.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self
                .inner
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(*m.lock(), vec![1, 2, 3]);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn shared_across_threads() {
        let m = Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(m.into_inner(), 4000);
    }
}
