//! CW-like corpus: hierarchy-free web text with embedded frequent phrases.
//!
//! Substitute for the ClueWeb09 sample (CW50) of the paper: no item
//! hierarchy, Zipf unigrams, and a phrase mixture so that the n-gram
//! constraints (`T2`) mine non-trivial patterns.

use desq_core::{Dictionary, DictionaryBuilder, ItemId, SequenceDb};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::zipf::Zipf;

/// Configuration of the CW-like generator.
#[derive(Debug, Clone)]
pub struct CwConfig {
    /// Number of sentences.
    pub sentences: usize,
    /// RNG seed.
    pub seed: u64,
    /// Vocabulary size.
    pub vocab: usize,
    /// Number of fixed phrases embedded in the text.
    pub phrases: usize,
    /// Mean sentence length (approximate).
    pub mean_len: usize,
}

impl CwConfig {
    /// A small default suitable for tests and examples.
    pub fn new(sentences: usize) -> CwConfig {
        CwConfig {
            sentences,
            seed: 0xc1eb,
            vocab: 5_000,
            phrases: 200,
            mean_len: 19,
        }
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> CwConfig {
        self.seed = seed;
        self
    }
}

/// Generates the CW-like database (no hierarchy).
pub fn cw_like(cfg: &CwConfig) -> (Dictionary, SequenceDb) {
    let mut b = DictionaryBuilder::new();
    let words: Vec<ItemId> = (0..cfg.vocab).map(|i| b.item(&format!("w{i}"))).collect();

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let unigram = Zipf::new(cfg.vocab, 1.1);
    let phrase_pick = Zipf::new(cfg.phrases.max(1), 1.0);
    // Fixed phrases of 2–4 Zipf-sampled words.
    let phrases: Vec<Vec<ItemId>> = (0..cfg.phrases)
        .map(|_| {
            let len = rng.gen_range(2..=4);
            (0..len).map(|_| words[unigram.sample(&mut rng)]).collect()
        })
        .collect();

    let mut sequences = Vec::with_capacity(cfg.sentences);
    for _ in 0..cfg.sentences {
        let target = sample_len(&mut rng, cfg.mean_len);
        let mut seq: Vec<ItemId> = Vec::with_capacity(target + 4);
        while seq.len() < target {
            if !phrases.is_empty() && rng.gen_bool(0.3) {
                seq.extend_from_slice(&phrases[phrase_pick.sample(&mut rng)]);
            } else {
                seq.push(words[unigram.sample(&mut rng)]);
            }
        }
        sequences.push(seq);
    }

    b.freeze(&SequenceDb::new(sequences))
        .expect("flat vocabulary is acyclic")
}

fn sample_len(rng: &mut StdRng, mean: usize) -> usize {
    // Roughly geometric around the mean, min 3.
    let mut len = 3;
    let p = 1.0 - 1.0 / (mean.max(4) as f64 - 2.0);
    while len < 400 && rng.gen_bool(p) {
        len += 1;
    }
    len
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_hierarchy() {
        let (dict, db) = cw_like(&CwConfig::new(300));
        assert_eq!(db.len(), 300);
        assert_eq!(dict.max_ancestors(), 1, "CW50 has no hierarchy");
        assert!((dict.mean_ancestors() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn phrases_make_t2_productive() {
        use desq_dist::patterns;
        let (dict, db) = cw_like(&CwConfig::new(800));
        let fst = patterns::t2(0, 3).compile(&dict).unwrap();
        use desq_core::mining::{Miner, MiningContext};
        let out = desq_miner::algo::DesqDfs
            .mine(&MiningContext::sequential(&db, &dict, 5).with_fst(&fst))
            .unwrap()
            .patterns;
        assert!(!out.is_empty(), "embedded phrases should be frequent");
    }

    #[test]
    fn lengths_resemble_web_text() {
        let (_, db) = cw_like(&CwConfig::new(1000));
        let len = db.mean_len();
        assert!(len > 10.0 && len < 30.0, "mean length {len}");
    }

    #[test]
    fn deterministic() {
        let (_, a) = cw_like(&CwConfig::new(50));
        let (_, b) = cw_like(&CwConfig::new(50));
        assert_eq!(a, b);
    }
}
