//! NYT-like corpus: sentences with word → lemma → POS and typed entities.
//!
//! Mirrors the hierarchy of the New York Times Annotated Corpus as used in
//! the paper: words generalize to their lemma and to their part-of-speech
//! tag, named entities to their type (`PER`, `ORG`, `LOC`) and to `ENTITY`.
//! Sentences are compositions of clauses; a fraction of them are
//! *relational* (`ENTITY VERB+ NOUN? PREP? ENTITY`) or *copular*
//! (`ENTITY be-form DET? ADV? ADJ? NOUN`) so that the N1–N5 constraints of
//! Tab. III select non-trivial patterns, exactly as they do on real news
//! text.

use desq_core::{Dictionary, DictionaryBuilder, ItemId, SequenceDb};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::zipf::Zipf;

/// Configuration of the NYT-like generator.
#[derive(Debug, Clone)]
pub struct NytConfig {
    /// Number of sentences (input sequences).
    pub sentences: usize,
    /// RNG seed — generation is fully deterministic.
    pub seed: u64,
    /// Open-class lemmas per part of speech.
    pub lemmas_per_pos: usize,
    /// Inflected forms per open-class lemma.
    pub inflections: usize,
    /// Entities per type (PER / ORG / LOC).
    pub entities_per_type: usize,
}

impl NytConfig {
    /// A small default suitable for tests and examples.
    pub fn new(sentences: usize) -> NytConfig {
        NytConfig {
            sentences,
            seed: 0x4e59_7400,
            lemmas_per_pos: 400,
            inflections: 3,
            entities_per_type: 150,
        }
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> NytConfig {
        self.seed = seed;
        self
    }
}

struct Vocab {
    /// Inflected word ids per open-class POS: `words[pos][lemma][infl]`.
    nouns: Vec<Vec<ItemId>>,
    verbs: Vec<Vec<ItemId>>,
    adjs: Vec<Vec<ItemId>>,
    advs: Vec<Vec<ItemId>>,
    be_forms: Vec<ItemId>,
    dets: Vec<ItemId>,
    preps: Vec<ItemId>,
    conjs: Vec<ItemId>,
    prons: Vec<ItemId>,
    entities: Vec<ItemId>, // all types pooled
}

fn build_vocab(b: &mut DictionaryBuilder, cfg: &NytConfig) -> Vocab {
    // POS roots and entity types.
    for pos in [
        "NOUN", "VERB", "ADJ", "ADV", "DET", "PREP", "PRON", "CONJ", "ENTITY",
    ] {
        b.item(pos);
    }
    for ty in ["PER", "ORG", "LOC"] {
        b.edge(ty, "ENTITY");
    }

    let open_class = |b: &mut DictionaryBuilder, pos: &str, prefix: &str| -> Vec<Vec<ItemId>> {
        (0..cfg.lemmas_per_pos)
            .map(|i| {
                let lemma = format!("{prefix}{i}");
                b.edge(&lemma, pos);
                (0..cfg.inflections)
                    .map(|j| {
                        let word = format!("{lemma}_{j}");
                        b.edge(&word, &lemma);
                        b.id_of(&word).unwrap()
                    })
                    .collect()
            })
            .collect()
    };
    let nouns = open_class(b, "NOUN", "n");
    let verbs = open_class(b, "VERB", "v");
    let adjs = open_class(b, "ADJ", "adj");
    let advs = open_class(b, "ADV", "adv");

    // The copula: word forms under the lemma `be` (used by N3's `be^=`).
    b.edge("be", "VERB");
    let be_forms: Vec<ItemId> = ["is", "was", "are", "were", "been", "being"]
        .iter()
        .map(|w| {
            b.edge(w, "be");
            b.id_of(w).unwrap()
        })
        .collect();

    let closed = |b: &mut DictionaryBuilder, pos: &str, words: &[&str]| -> Vec<ItemId> {
        words
            .iter()
            .map(|w| {
                b.edge(w, pos);
                b.id_of(w).unwrap()
            })
            .collect()
    };
    let dets = closed(b, "DET", &["the", "a", "an", "this", "that", "its"]);
    let preps = closed(
        b,
        "PREP",
        &["of", "in", "to", "for", "with", "on", "at", "by", "from"],
    );
    let conjs = closed(b, "CONJ", &["and", "or", "but", "while"]);
    let prons = closed(b, "PRON", &["he", "she", "it", "they", "who"]);

    let mut entities = Vec::new();
    for (ty, prefix) in [("PER", "per"), ("ORG", "org"), ("LOC", "loc")] {
        for i in 0..cfg.entities_per_type {
            let e = format!("{prefix}{i}");
            b.edge(&e, ty);
            entities.push(b.id_of(&e).unwrap());
        }
    }

    Vocab {
        nouns,
        verbs,
        adjs,
        advs,
        be_forms,
        dets,
        preps,
        conjs,
        prons,
        entities,
    }
}

struct Sampler {
    lemma: Zipf,
    entity: Zipf,
    closed_small: Zipf,
    /// Relational phrases use a small pool of common verbs with a steep
    /// distribution — news text repeats "lives in" / "works for" style
    /// phrases, which is what makes N1/N2 mining meaningful.
    rel_verb: Zipf,
    inflection: Zipf,
}

impl Sampler {
    fn word(&self, rng: &mut StdRng, class: &[Vec<ItemId>]) -> ItemId {
        let lemma = &class[self.lemma.sample(rng)];
        lemma[rng.gen_range(0..lemma.len())]
    }

    fn rel_word(&self, rng: &mut StdRng, class: &[Vec<ItemId>]) -> ItemId {
        let lemma = &class[self.rel_verb.sample(rng).min(class.len() - 1)];
        lemma[self.inflection.sample(rng).min(lemma.len() - 1)]
    }

    fn closed(&self, rng: &mut StdRng, words: &[ItemId]) -> ItemId {
        words[self.closed_small.sample(rng).min(words.len() - 1)]
    }

    fn entity(&self, rng: &mut StdRng, v: &Vocab) -> ItemId {
        v.entities[self.entity.sample(rng)]
    }
}

/// Generates the NYT-like corpus; returns the frozen (frequency-encoded)
/// dictionary and database.
pub fn nyt_like(cfg: &NytConfig) -> (Dictionary, SequenceDb) {
    let mut b = DictionaryBuilder::new();
    let v = build_vocab(&mut b, cfg);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let s = Sampler {
        lemma: Zipf::new(cfg.lemmas_per_pos, 1.05),
        entity: Zipf::new(v.entities.len(), 1.05),
        closed_small: Zipf::new(12, 0.9),
        rel_verb: Zipf::new(cfg.lemmas_per_pos.min(25), 1.3),
        inflection: Zipf::new(cfg.inflections, 1.5),
    };

    let mut sequences = Vec::with_capacity(cfg.sentences);
    for _ in 0..cfg.sentences {
        let mut sent: Vec<ItemId> = Vec::with_capacity(24);
        let clauses = 1 + rng.gen_range(0..3);
        for c in 0..clauses {
            if c > 0 {
                sent.push(s.closed(&mut rng, &v.conjs));
            }
            match rng.gen_range(0..100) {
                // Relational clause: ENT VERB+ NOUN? PREP? ENT (feeds N1/N2).
                0..=17 => {
                    sent.push(s.entity(&mut rng, &v));
                    sent.push(s.rel_word(&mut rng, &v.verbs));
                    if rng.gen_bool(0.25) {
                        sent.push(s.rel_word(&mut rng, &v.verbs));
                    }
                    if rng.gen_bool(0.35) {
                        sent.push(s.rel_word(&mut rng, &v.nouns));
                    }
                    if rng.gen_bool(0.35) {
                        sent.push(s.closed(&mut rng, &v.preps));
                    }
                    sent.push(s.entity(&mut rng, &v));
                }
                // Copular clause: ENT be DET? ADV? ADJ? NOUN (feeds N3).
                18..=29 => {
                    sent.push(s.entity(&mut rng, &v));
                    sent.push(v.be_forms[rng.gen_range(0..v.be_forms.len())]);
                    if rng.gen_bool(0.6) {
                        sent.push(s.closed(&mut rng, &v.dets));
                    }
                    if rng.gen_bool(0.25) {
                        sent.push(s.word(&mut rng, &v.advs));
                    }
                    if rng.gen_bool(0.5) {
                        sent.push(s.word(&mut rng, &v.adjs));
                    }
                    sent.push(s.word(&mut rng, &v.nouns));
                }
                // Plain clause: NP VP NP PP? (feeds N4/N5 n-grams).
                _ => {
                    sent.push(s.closed(&mut rng, &v.dets));
                    if rng.gen_bool(0.35) {
                        sent.push(s.word(&mut rng, &v.adjs));
                    }
                    sent.push(s.word(&mut rng, &v.nouns));
                    if rng.gen_bool(0.2) {
                        sent.push(s.closed(&mut rng, &v.prons));
                    }
                    sent.push(s.word(&mut rng, &v.verbs));
                    if rng.gen_bool(0.3) {
                        sent.push(s.word(&mut rng, &v.advs));
                    }
                    sent.push(s.closed(&mut rng, &v.dets));
                    sent.push(s.word(&mut rng, &v.nouns));
                    if rng.gen_bool(0.55) {
                        sent.push(s.closed(&mut rng, &v.preps));
                        sent.push(s.closed(&mut rng, &v.dets));
                        sent.push(s.word(&mut rng, &v.nouns));
                    }
                }
            }
        }
        sequences.push(sent);
    }

    b.freeze(&SequenceDb::new(sequences))
        .expect("generated hierarchy is acyclic")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hierarchy_shape_matches_nyt() {
        let (dict, db) = nyt_like(&NytConfig::new(500));
        assert_eq!(db.len(), 500);
        // word → lemma → POS gives 3 ancestors for open-class words,
        // entity → type → ENTITY for entities.
        assert!(dict.max_ancestors() >= 3);
        let m = dict.mean_ancestors();
        assert!(m > 1.8 && m < 3.5, "mean ancestors {m}");
        // Sentence lengths resemble news text.
        let len = db.mean_len();
        assert!(len > 6.0 && len < 30.0, "mean length {len}");
    }

    #[test]
    fn entity_hierarchy_wired() {
        let (dict, _) = nyt_like(&NytConfig::new(100));
        let ent = dict.id_of("ENTITY").unwrap();
        let per = dict.id_of("PER").unwrap();
        let per0 = dict.id_of("per0").unwrap();
        assert!(dict.is_ancestor(ent, per0));
        assert!(dict.is_ancestor(per, per0));
        let be = dict.id_of("be").unwrap();
        let was = dict.id_of("was").unwrap();
        assert!(dict.is_ancestor(be, was));
        assert!(dict.is_ancestor(dict.id_of("VERB").unwrap(), was));
    }

    #[test]
    fn deterministic() {
        let (d1, db1) = nyt_like(&NytConfig::new(50));
        let (d2, db2) = nyt_like(&NytConfig::new(50));
        assert_eq!(db1, db2);
        assert_eq!(d1.len(), d2.len());
    }

    #[test]
    fn n_constraints_find_patterns() {
        use desq_dist::patterns;
        let (dict, db) = nyt_like(&NytConfig::new(800));
        for c in patterns::nyt_constraints() {
            let fst = c
                .compile(&dict)
                .unwrap_or_else(|e| panic!("{}: {e}", c.name));
            use desq_core::mining::{Miner, MiningContext};
            let out = desq_miner::algo::DesqDfs
                .mine(&MiningContext::sequential(&db, &dict, 4).with_fst(&fst))
                .unwrap()
                .patterns;
            assert!(!out.is_empty(), "{} finds nothing", c.name);
        }
    }
}
