//! Zipf-distributed sampling via an inverse-CDF table.
//!
//! Word and product frequencies in the paper's corpora are heavy-tailed;
//! a Zipf law with exponent around 1 reproduces the shape of their f-lists
//! (a few very frequent items, a long infrequent tail).

use rand::Rng;

/// Zipf sampler over ranks `0..n` with `P(k) ∝ 1 / (k+1)^s`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the inverse-CDF table for `n` ranks and exponent `s`.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "Zipf needs at least one rank");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 0..n {
            total += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(total);
        }
        let norm = 1.0 / total;
        for v in cdf.iter_mut() {
            *v *= norm;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if the sampler has a single rank.
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Samples a rank in `0..n` (0 is the most likely).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rank_zero_is_most_frequent() {
        let z = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[90]);
        // Zipf(1): P(0)/P(9) = 10.
        let ratio = counts[0] as f64 / counts[9].max(1) as f64;
        assert!(ratio > 4.0 && ratio < 25.0, "ratio {ratio}");
    }

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(3, 1.5);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }

    #[test]
    fn single_rank() {
        let z = Zipf::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(z.sample(&mut rng), 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let z = Zipf::new(50, 1.1);
        let a: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..20).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..20).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
