//! Dataset characteristics — the rows of Tab. II.

use desq_core::fx::FxHashSet;
use desq_core::{Dictionary, SequenceDb};

/// The statistics the paper reports per dataset (Tab. II).
#[derive(Debug, Clone)]
pub struct DatasetStats {
    /// Total sequences.
    pub sequences: usize,
    /// Total items across sequences.
    pub total_items: usize,
    /// Distinct items occurring in the data.
    pub unique_items: usize,
    /// Maximum sequence length.
    pub max_len: usize,
    /// Mean sequence length.
    pub mean_len: f64,
    /// Items in the hierarchy (vocabulary size).
    pub hierarchy_items: usize,
    /// Maximum ancestors per item (including self).
    pub max_ancestors: usize,
    /// Mean ancestors per item (including self).
    pub mean_ancestors: f64,
}

impl DatasetStats {
    /// Computes the statistics of a frozen dataset.
    pub fn compute(dict: &Dictionary, db: &SequenceDb) -> DatasetStats {
        let mut unique: FxHashSet<u32> = FxHashSet::default();
        for seq in &db.sequences {
            unique.extend(seq.iter().copied());
        }
        DatasetStats {
            sequences: db.len(),
            total_items: db.total_items(),
            unique_items: unique.len(),
            max_len: db.max_len(),
            mean_len: db.mean_len(),
            hierarchy_items: dict.len(),
            max_ancestors: dict.max_ancestors(),
            mean_ancestors: dict.mean_ancestors(),
        }
    }

    /// Renders one row of the Tab. II reproduction.
    pub fn row(&self, name: &str) -> String {
        format!(
            "{name:<8} {:>10} {:>12} {:>10} {:>8} {:>8.1} {:>12} {:>6} {:>6.1}",
            self.sequences,
            self.total_items,
            self.unique_items,
            self.max_len,
            self.mean_len,
            self.hierarchy_items,
            self.max_ancestors,
            self.mean_ancestors,
        )
    }

    /// The header matching [`DatasetStats::row`].
    pub fn header() -> String {
        format!(
            "{:<8} {:>10} {:>12} {:>10} {:>8} {:>8} {:>12} {:>6} {:>6}",
            "dataset",
            "sequences",
            "total-items",
            "uniq-items",
            "max-len",
            "mean-len",
            "hier-items",
            "max-anc",
            "mean-anc",
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nyt::{nyt_like, NytConfig};

    #[test]
    fn stats_are_consistent() {
        let (dict, db) = nyt_like(&NytConfig::new(200));
        let s = DatasetStats::compute(&dict, &db);
        assert_eq!(s.sequences, 200);
        assert!(s.total_items > 0);
        assert!(s.unique_items <= s.hierarchy_items);
        assert!(s.max_len >= s.mean_len as usize);
        assert!(s.max_ancestors >= s.mean_ancestors as usize);
        let row = s.row("NYT");
        assert!(row.starts_with("NYT"));
        assert_eq!(
            DatasetStats::header().split_whitespace().count(),
            row.split_whitespace().count()
        );
    }
}
