//! # desq-datagen
//!
//! Synthetic sequence databases that mirror the structural properties of
//! the corpora in the paper's evaluation (Tab. II). The originals are
//! proprietary (NYT annotated corpus, Amazon reviews) or too large to ship
//! (ClueWeb09); these generators exercise the same code paths:
//!
//! * [`nyt`] — sentences with a word → lemma → part-of-speech hierarchy and
//!   typed entities (entity → type → `ENTITY`), including relational and
//!   copular clauses so the N1–N5 constraints of Tab. III are meaningful;
//! * [`amzn`] — customer purchase sequences over a product catalog whose
//!   hierarchy is a DAG (products generalize to one or more categories and
//!   to departments), plus [`amzn::to_forest`] applying the paper's AMZN-F
//!   construction (keep the most frequent parent);
//! * [`cw`] — hierarchy-free web-scale text with embedded frequent phrases
//!   (the CW50 substitute for the T2 setting).
//!
//! All generators are deterministic given a seed. See DESIGN.md §4 for the
//! substitution rationale.

pub mod amzn;
pub mod cw;
pub mod nyt;
pub mod stats;
pub mod zipf;

pub use amzn::{amzn_like, to_forest, AmznConfig};
pub use cw::{cw_like, CwConfig};
pub use nyt::{nyt_like, NytConfig};
pub use stats::DatasetStats;
pub use zipf::Zipf;
