//! AMZN-like purchase sequences over a DAG-shaped product catalog, and the
//! AMZN-F forest variant.
//!
//! Mirrors the Amazon review data of the paper: one input sequence per
//! customer (the products they reviewed, in order), items generalizing to
//! one or more categories and to departments. The department/category names
//! (`Electr`, `Book`, `MusicInstr`, `DigitalCamera`, ...) are the hierarchy
//! roots the A1–A4 constraints of Tab. III refer to. Buying behaviour is
//! correlated (category interests; camera purchases followed by accessory
//! purchases) so the recommendation constraints select non-trivial
//! patterns.

use desq_core::{Dictionary, DictionaryBuilder, ItemId, SequenceDb};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::zipf::Zipf;

/// Configuration of the AMZN-like generator.
#[derive(Debug, Clone)]
pub struct AmznConfig {
    /// Number of customers (input sequences).
    pub customers: usize,
    /// RNG seed.
    pub seed: u64,
    /// Products per (leaf) category.
    pub products_per_category: usize,
    /// Probability of a second category parent (DAG-ness).
    pub extra_parent_prob: f64,
}

impl AmznConfig {
    /// A small default suitable for tests and examples.
    pub fn new(customers: usize) -> AmznConfig {
        AmznConfig {
            customers,
            seed: 0xa3_2a00,
            products_per_category: 60,
            extra_parent_prob: 0.45,
        }
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> AmznConfig {
        self.seed = seed;
        self
    }
}

/// The fixed category skeleton: (department, categories).
const CATALOG: &[(&str, &[&str])] = &[
    (
        "Electr",
        &[
            "DigitalCamera",
            "Lenses",
            "Tripods",
            "Batteries",
            "MemoryCards",
            "MP3Players",
            "Headphones",
            "Laptops",
            "Mice",
            "Keyboards",
        ],
    ),
    (
        "Book",
        &[
            "Fantasy",
            "SciFi",
            "Mystery",
            "Romance",
            "Biography",
            "Cooking",
        ],
    ),
    (
        "MusicInstr",
        &["Guitars", "Drums", "Pianos", "BagsCases", "Strings"],
    ),
    ("Home", &["Kitchen", "Garden", "Furniture", "Lighting"]),
    ("Clothing", &["Shoes", "Shirts", "Jackets"]),
];

/// Accessory categories boosted after a `DigitalCamera` purchase (feeds A3).
const CAMERA_ACCESSORIES: &[&str] = &["Lenses", "Tripods", "Batteries", "MemoryCards"];

struct Catalog {
    /// Product ids per category, aligned with the flattened CATALOG order.
    products: Vec<Vec<ItemId>>,
    category_names: Vec<&'static str>,
    /// Department index per category.
    department: Vec<usize>,
    /// Category indices per department.
    by_department: Vec<Vec<usize>>,
    camera_idx: usize,
    accessory_idx: Vec<usize>,
}

fn build_catalog(b: &mut DictionaryBuilder, cfg: &AmznConfig, rng: &mut StdRng) -> Catalog {
    let mut category_names = Vec::new();
    let mut department = Vec::new();
    let mut by_department = Vec::new();
    for (d, (dept, cats)) in CATALOG.iter().enumerate() {
        b.item(dept);
        let mut idxs = Vec::new();
        for cat in cats.iter() {
            b.edge(cat, dept);
            idxs.push(category_names.len());
            category_names.push(*cat);
            department.push(d);
        }
        by_department.push(idxs);
    }
    let ncat = category_names.len();
    let mut products = vec![Vec::new(); ncat];
    for (c, &cat) in category_names.iter().enumerate() {
        for i in 0..cfg.products_per_category {
            let name = format!("{cat}_p{i}");
            b.edge(&name, cat);
            // DAG: some products belong to a second (or third) category.
            if rng.gen_bool(cfg.extra_parent_prob) {
                let other = rng.gen_range(0..ncat);
                if other != c {
                    b.edge(&name, category_names[other]);
                }
                if rng.gen_bool(0.25) {
                    let third = rng.gen_range(0..ncat);
                    if third != c && third != other {
                        b.edge(&name, category_names[third]);
                    }
                }
            }
            products[c].push(b.id_of(&name).unwrap());
        }
    }
    let camera_idx = category_names
        .iter()
        .position(|&c| c == "DigitalCamera")
        .unwrap();
    let accessory_idx = CAMERA_ACCESSORIES
        .iter()
        .map(|a| category_names.iter().position(|&c| c == *a).unwrap())
        .collect();
    Catalog {
        products,
        category_names,
        department,
        by_department,
        camera_idx,
        accessory_idx,
    }
}

/// Generates the AMZN-like database; returns the frozen dictionary and
/// database (DAG hierarchy).
pub fn amzn_like(cfg: &AmznConfig) -> (Dictionary, SequenceDb) {
    let mut b = DictionaryBuilder::new();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let cat = build_catalog(&mut b, cfg, &mut rng);
    let product_zipf = Zipf::new(cfg.products_per_category, 1.1);
    let ncat = cat.category_names.len();

    let mut sequences = Vec::with_capacity(cfg.customers);
    for _ in 0..cfg.customers {
        // 1–2 category interests; heavier-tailed basket length with mean ≈ 4.
        let primary = rng.gen_range(0..ncat);
        let secondary = cat.by_department[cat.department[primary]]
            [rng.gen_range(0..cat.by_department[cat.department[primary]].len())];
        let len = sample_length(&mut rng);
        let mut seq: Vec<ItemId> = Vec::with_capacity(len);
        let mut boost_accessories = 0usize;
        for _ in 0..len {
            let c = if boost_accessories > 0 && rng.gen_bool(0.7) {
                boost_accessories -= 1;
                cat.accessory_idx[rng.gen_range(0..cat.accessory_idx.len())]
            } else {
                match rng.gen_range(0..100) {
                    0..=59 => primary,
                    60..=84 => secondary,
                    _ => rng.gen_range(0..ncat),
                }
            };
            let p = cat.products[c][product_zipf.sample(&mut rng)];
            if c == cat.camera_idx {
                boost_accessories = 3;
            }
            seq.push(p);
        }
        sequences.push(seq);
    }

    b.freeze(&SequenceDb::new(sequences))
        .expect("catalog is acyclic")
}

/// Basket length: geometric-ish with mean ≈ 4 and a heavy tail.
fn sample_length(rng: &mut StdRng) -> usize {
    let mut len = 1;
    while len < 200 && rng.gen_bool(0.72) {
        len += 1;
    }
    if rng.gen_bool(0.01) {
        len += rng.gen_range(20..80usize); // the paper's max length is huge
    }
    len
}

/// The paper's AMZN-F construction: for items with several parents keep
/// only the generalization to the *most frequent* parent, yielding a forest
/// hierarchy (required by LASH).
///
/// (The paper additionally contracts hierarchy-only items with a single
/// child of identical frequency; that is a size optimization with no effect
/// on mining results and is not applied here.)
pub fn to_forest(dict: &Dictionary, db: &SequenceDb) -> (Dictionary, SequenceDb) {
    let mut b = DictionaryBuilder::new();
    // Insert items in fid order so provisional ids equal old fids.
    for fid in 1..=dict.max_fid() {
        b.item(dict.name(fid));
    }
    for fid in 1..=dict.max_fid() {
        let parents = dict.parents(fid);
        if parents.is_empty() {
            continue;
        }
        // Most frequent parent = smallest fid (fids are frequency ranks).
        let keep = *parents.iter().min().unwrap();
        b.edge(dict.name(fid), dict.name(keep));
    }
    b.freeze(db).expect("forest of a DAG is acyclic")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dag_shape_matches_amzn() {
        let (dict, db) = amzn_like(&AmznConfig::new(800));
        assert_eq!(db.len(), 800);
        let len = db.mean_len();
        assert!(len > 2.0 && len < 8.0, "mean length {len}");
        // product → category(ies) → department: mean ancestors well above a
        // forest's, some products with several category parents.
        let m = dict.mean_ancestors();
        assert!(m > 2.5, "mean ancestors {m}");
        let multi = (1..=dict.max_fid())
            .filter(|&f| dict.parents(f).len() > 1)
            .count();
        assert!(multi > 0, "DAG must have multi-parent items");
    }

    #[test]
    fn forest_variant_has_single_parents() {
        let (dict, db) = amzn_like(&AmznConfig::new(300));
        let (fdict, fdb) = to_forest(&dict, &db);
        for fid in 1..=fdict.max_fid() {
            assert!(fdict.parents(fid).len() <= 1, "{}", fdict.name(fid));
        }
        // Same data, same total items.
        assert_eq!(fdb.total_items(), db.total_items());
        // Forest has no more ancestor links than the DAG.
        assert!(fdict.mean_ancestors() <= dict.mean_ancestors());
    }

    #[test]
    fn category_roots_exist_for_a_constraints() {
        let (dict, _) = amzn_like(&AmznConfig::new(100));
        for name in ["Electr", "Book", "MusicInstr", "DigitalCamera"] {
            assert!(dict.id_of(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn a_constraints_find_patterns() {
        use desq_dist::patterns;
        let (dict, db) = amzn_like(&AmznConfig::new(2000));
        for c in patterns::amzn_constraints() {
            let fst = c
                .compile(&dict)
                .unwrap_or_else(|e| panic!("{}: {e}", c.name));
            use desq_core::mining::{Miner, MiningContext};
            let out = desq_miner::algo::DesqDfs
                .mine(&MiningContext::sequential(&db, &dict, 3).with_fst(&fst))
                .unwrap()
                .patterns;
            assert!(!out.is_empty(), "{} finds nothing", c.name);
        }
    }

    #[test]
    fn deterministic() {
        let (_, db1) = amzn_like(&AmznConfig::new(100));
        let (_, db2) = amzn_like(&AmznConfig::new(100));
        assert_eq!(db1, db2);
    }
}
