//! [`Miner`]-trait adapters for the specialized scalable baselines.
//!
//! As with the other adapters, σ comes from the [`MiningContext`] (the
//! wrapped config's `sigma` field is overridden) and the BSP engine is
//! created from the context's parallelism settings. Neither baseline uses
//! an FST — the constraint is encoded in the config parameters.

use desq_bsp::Engine;
use desq_core::mining::{Miner, MiningContext, MiningResult};
use desq_core::Result;

use crate::lash::lash_impl;
use crate::mllib::mllib_impl;
use crate::{LashConfig, MllibConfig};

/// The MG-FSM/LASH-style miner behind the unified API (max gap, max
/// length, optional hierarchy generalization).
#[derive(Debug, Clone, Copy)]
pub struct Lash(pub LashConfig);

impl Miner for Lash {
    fn name(&self) -> &'static str {
        if self.0.generalize {
            "LASH"
        } else {
            "MG-FSM"
        }
    }

    fn mine(&self, ctx: &MiningContext<'_>) -> Result<MiningResult> {
        ctx.validate()?;
        let mut cfg = self.0;
        cfg.sigma = ctx.sigma;
        let engine = Engine::new(ctx.workers).with_reducers(ctx.reducers);
        let parts = ctx.db.partition(ctx.partitions);
        lash_impl(&engine, &parts, ctx.dict, cfg)
    }
}

/// The MLlib-style distributed PrefixSpan behind the unified API (max
/// length only, two rounds of communication).
#[derive(Debug, Clone, Copy)]
pub struct Mllib(pub MllibConfig);

impl Miner for Mllib {
    fn name(&self) -> &'static str {
        "MLlib-PrefixSpan"
    }

    fn mine(&self, ctx: &MiningContext<'_>) -> Result<MiningResult> {
        ctx.validate()?;
        let mut cfg = self.0;
        cfg.sigma = ctx.sigma;
        let engine = Engine::new(ctx.workers).with_reducers(ctx.reducers);
        let parts = ctx.db.partition(ctx.partitions);
        mllib_impl(&engine, &parts, cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desq_core::{toy, Error};

    #[test]
    fn adapters_take_sigma_from_context() {
        let fx = toy::fixture();
        let ctx = desq_core::MiningContext::sequential(&fx.db, &fx.dict, 1).with_parallelism(2, 2);
        // The config's sigma (99) is overridden by the context's (1).
        let l = Lash(LashConfig::new(99, 1, 3)).mine(&ctx).unwrap();
        assert!(!l.patterns.is_empty());
        let m = Mllib(MllibConfig::new(99, 3)).mine(&ctx).unwrap();
        assert!(!m.patterns.is_empty());
        for res in [&l, &m] {
            assert!(res.is_sorted());
            assert_eq!(res.metrics.input_sequences, 5);
            assert_eq!(res.metrics.workers, 2);
            assert!(res.metrics.shuffle_bytes > 0);
        }
    }

    #[test]
    fn zero_sigma_rejected_uniformly() {
        let fx = toy::fixture();
        let ctx = desq_core::MiningContext::sequential(&fx.db, &fx.dict, 0);
        assert!(matches!(
            Lash(LashConfig::new(1, 1, 3)).mine(&ctx),
            Err(Error::Invalid(_))
        ));
        assert!(matches!(
            Mllib(MllibConfig::new(1, 3)).mine(&ctx),
            Err(Error::Invalid(_))
        ));
    }

    #[test]
    fn names_distinguish_variants() {
        assert_eq!(Lash(LashConfig::new(1, 1, 3)).name(), "LASH");
        assert_eq!(
            Lash(LashConfig::new(1, 1, 3).without_hierarchy()).name(),
            "MG-FSM"
        );
        assert_eq!(Mllib(MllibConfig::new(1, 3)).name(), "MLlib-PrefixSpan");
    }
}
