//! An MG-FSM/LASH-style distributed miner for gap/length/hierarchy
//! constraints.
//!
//! LASH (Beedkar & Gemulla, SIGMOD '15) mines sequences under maximum-gap
//! (γ), maximum-length (λ) and hierarchy constraints with item-based
//! partitioning and *specialized* rewrites that the general D-SEQ cannot
//! apply:
//!
//! * items that cannot produce any frequent output `<= p` for pivot `p` are
//!   replaced by *blanks*;
//! * maximal blank runs longer than γ split the sequence into parts — no
//!   match can bridge them;
//! * parts that cannot produce the pivot item are dropped entirely;
//! * surviving parts are re-joined with γ+1 blanks (so local mining cannot
//!   match across parts), and identical rewrites are aggregated by weight.
//!
//! The reduce phase runs the gap-constrained pattern-growth miner of
//! `desq-miner` restricted to pivot sequences. Blanks are encoded as
//! [`EPSILON`] and never match.

use desq_bsp::Engine;
use desq_core::{Dictionary, ItemId, Result, Sequence, EPSILON};
use desq_dist::MiningResult;
use desq_miner::GapMiner;

/// LASH configuration: the `T3(σ, γ, λ)` constraint family
/// (`generalize = false` gives MG-FSM's `T2(σ, γ, λ)`).
#[derive(Debug, Clone, Copy)]
pub struct LashConfig {
    /// Minimum support threshold σ.
    pub sigma: u64,
    /// Maximum gap γ.
    pub gamma: usize,
    /// Maximum length λ.
    pub lambda: usize,
    /// Generalize along the hierarchy (LASH) or not (MG-FSM).
    pub generalize: bool,
}

impl LashConfig {
    /// The LASH setting `T3(σ, γ, λ)`.
    pub fn new(sigma: u64, gamma: usize, lambda: usize) -> LashConfig {
        LashConfig {
            sigma,
            gamma,
            lambda,
            generalize: true,
        }
    }

    /// The MG-FSM setting `T2(σ, γ, λ)` (no hierarchy generalization).
    pub fn without_hierarchy(mut self) -> LashConfig {
        self.generalize = false;
        self
    }
}

/// Frequent output items of input item `t` for pivot `p`: ancestors (or the
/// item itself) that are frequent and `<= p`.
fn can_output(
    dict: &Dictionary,
    t: ItemId,
    p: ItemId,
    last_frequent: ItemId,
    generalize: bool,
) -> bool {
    if t == EPSILON {
        return false;
    }
    if generalize {
        dict.ancestors(t)
            .iter()
            .any(|&a| a <= p && a <= last_frequent)
    } else {
        t <= p && t <= last_frequent
    }
}

/// True iff `t` can produce the pivot item itself.
fn can_output_pivot(dict: &Dictionary, t: ItemId, p: ItemId, generalize: bool) -> bool {
    if generalize {
        dict.is_ancestor(p, t)
    } else {
        t == p
    }
}

/// The pivot items of `T`: frequent items (or ancestors) occurring in `T`.
fn pivot_items(
    dict: &Dictionary,
    seq: &[ItemId],
    last_frequent: ItemId,
    generalize: bool,
) -> Vec<ItemId> {
    let mut pivots: Vec<ItemId> = Vec::new();
    for &t in seq {
        if generalize {
            for &a in dict.ancestors(t) {
                if a <= last_frequent && !pivots.contains(&a) {
                    pivots.push(a);
                }
            }
        } else if t <= last_frequent && t != EPSILON && !pivots.contains(&t) {
            pivots.push(t);
        }
    }
    pivots.sort_unstable();
    pivots
}

/// The LASH rewrite ω_p(T): blanking, splitting, part filtering, re-joining.
/// Returns `None` if nothing relevant for pivot `p` survives.
fn rewrite(
    dict: &Dictionary,
    seq: &[ItemId],
    p: ItemId,
    last_frequent: ItemId,
    config: &LashConfig,
) -> Option<Sequence> {
    // Blank irrelevant items.
    let blanked: Vec<ItemId> = seq
        .iter()
        .map(|&t| {
            if can_output(dict, t, p, last_frequent, config.generalize) {
                t
            } else {
                EPSILON
            }
        })
        .collect();
    // Split into parts at blank runs longer than γ; keep parts that can
    // produce the pivot and at least min_len = 2 items.
    let mut parts: Vec<Vec<ItemId>> = Vec::new();
    let mut current: Vec<ItemId> = Vec::new();
    let mut blanks = 0usize;
    let mut flush = |current: &mut Vec<ItemId>| {
        // Trim trailing blanks.
        while current.last() == Some(&EPSILON) {
            current.pop();
        }
        if current.len() >= 2
            && current
                .iter()
                .any(|&t| t != EPSILON && can_output_pivot(dict, t, p, config.generalize))
        {
            parts.push(std::mem::take(current));
        } else {
            current.clear();
        }
    };
    for &t in &blanked {
        if t == EPSILON {
            blanks += 1;
            if blanks > config.gamma {
                flush(&mut current);
            } else if !current.is_empty() {
                current.push(EPSILON);
            }
        } else {
            blanks = 0;
            current.push(t);
        }
    }
    flush(&mut current);
    if parts.is_empty() {
        return None;
    }
    // Join with γ+1 blanks: local mining cannot match across parts.
    let sep = config.gamma + 1;
    let total: usize = parts.iter().map(Vec::len).sum::<usize>() + sep * (parts.len() - 1);
    let mut out = Vec::with_capacity(total);
    for (i, part) in parts.iter().enumerate() {
        if i > 0 {
            out.extend(std::iter::repeat_n(EPSILON, sep));
        }
        out.extend_from_slice(part);
    }
    Some(out)
}

/// The workhorse behind [`lash`] and [`crate::algo::Lash`].
pub(crate) fn lash_impl(
    engine: &Engine,
    parts: &[&[Sequence]],
    dict: &Dictionary,
    config: LashConfig,
) -> Result<MiningResult> {
    desq_core::mining::validate_sigma(config.sigma)?;
    let t0 = std::time::Instant::now();
    let last_frequent = dict.last_frequent(config.sigma);

    let map = |part: &[Sequence], out: &mut desq_bsp::Combiner<ItemId>| {
        // Per-task encode buffer: each rewrite serializes once via the
        // delta item codec; identical rewrites combine by content.
        let mut payload: Vec<u8> = Vec::new();
        for seq in part {
            for p in pivot_items(dict, seq, last_frequent, config.generalize) {
                if let Some(r) = rewrite(dict, seq, p, last_frequent, &config) {
                    payload.clear();
                    desq_bsp::encode_item_seq(&r, &mut payload);
                    out.emit(&p, &payload, 1);
                }
            }
        }
        Ok(())
    };

    let reduce = |&p: &ItemId,
                  inputs: &[(&[u8], u64)],
                  emit: &mut dyn FnMut((Sequence, u64))|
     -> desq_bsp::Result<()> {
        let miner = GapMiner {
            sigma: config.sigma,
            gamma: config.gamma,
            max_len: config.lambda,
            min_len: 2,
            generalize: config.generalize,
            max_item: Some(p),
            require_pivot: Some(p),
        };
        let mut decoded: Vec<(Sequence, u64)> = Vec::with_capacity(inputs.len());
        for &(bytes, w) in inputs {
            let mut slice = bytes;
            let mut seq = Sequence::new();
            desq_bsp::decode_item_seq(&mut slice, &mut seq)?;
            decoded.push((seq, w));
        }
        for (pattern, freq) in miner.mine_weighted(&decoded, dict) {
            emit((pattern, freq));
        }
        Ok(())
    };

    let (patterns, job) = engine
        .map_combine_reduce(parts, map, reduce)
        .map_err(crate::from_bsp)?;
    let patterns = desq_miner::sort_patterns(patterns);
    let input_sequences: u64 = parts.iter().map(|p| p.len() as u64).sum();
    let metrics = desq_dist::metrics_from_job(
        job,
        t0.elapsed().as_nanos() as u64,
        engine.workers(),
        input_sequences,
    );
    Ok(MiningResult { patterns, metrics })
}

#[cfg(test)]
mod tests {
    use super::*;
    use desq_core::mining::{Miner, MiningContext};
    use desq_core::toy;

    /// Brute-force FST-based reference through the Miner trait.
    fn reference(fx: &toy::Toy, fst: &desq_core::Fst, sigma: u64) -> Vec<(Sequence, u64)> {
        desq_miner::algo::DesqCount
            .mine(&MiningContext::sequential(&fx.db, &fx.dict, sigma).with_fst(fst))
            .unwrap()
            .patterns
    }

    #[test]
    fn lash_matches_gapminer_and_desq_t3_on_toy() {
        let fx = toy::fixture();
        let engine = Engine::new(2);
        let parts = fx.db.partition(2);
        for sigma in 1..=3u64 {
            for gamma in 0..=2usize {
                for lambda in 2..=4usize {
                    let cfg = LashConfig::new(sigma, gamma, lambda);
                    let dist = lash_impl(&engine, &parts, &fx.dict, cfg).unwrap();
                    let seq_miner =
                        GapMiner::new(sigma, gamma, lambda, true).mine(&fx.db, &fx.dict);
                    assert_eq!(
                        dist.patterns, seq_miner,
                        "vs GapMiner σ={sigma} γ={gamma} λ={lambda}"
                    );
                    // And against the general FST-based reference.
                    let c = desq_dist::patterns::t3(gamma, lambda);
                    let fst = c.compile(&fx.dict).unwrap();
                    let reference = reference(&fx, &fst, sigma);
                    assert_eq!(dist.patterns, reference, "vs DESQ {} σ={sigma}", c.name);
                }
            }
        }
    }

    #[test]
    fn mgfsm_variant_matches_desq_t2_on_toy() {
        let fx = toy::fixture();
        let engine = Engine::new(2);
        let parts = fx.db.partition(3);
        for sigma in 1..=2u64 {
            for gamma in 0..=1usize {
                let cfg = LashConfig::new(sigma, gamma, 3).without_hierarchy();
                let dist = lash_impl(&engine, &parts, &fx.dict, cfg).unwrap();
                let c = desq_dist::patterns::t2(gamma, 3);
                let fst = c.compile(&fx.dict).unwrap();
                let reference = reference(&fx, &fst, sigma);
                assert_eq!(dist.patterns, reference, "{} σ={sigma}", c.name);
            }
        }
    }

    #[test]
    fn rewrite_blanks_and_splits() {
        let fx = toy::fixture();
        let lf = fx.dict.last_frequent(2);
        // T2 = e e a1 e a1 e b, pivot a1, γ = 1: e is infrequent → blanks.
        // e e | a1 _ a1 | _ | b → the run "a1 _ a1" survives (contains a1,
        // len ≥ 2); after the single-blank gap "b" continues the part
        // (gap 1 ≤ γ): "a1 _ a1 _ b".
        let cfg = LashConfig::new(2, 1, 5);
        let t2 = &fx.db.sequences[1];
        let r = rewrite(&fx.dict, t2, fx.a1, lf, &cfg).unwrap();
        assert_eq!(r, vec![fx.a1, EPSILON, fx.a1, EPSILON, fx.b]);
        // With γ = 0 the blanks split everything; singleton parts die.
        let cfg0 = LashConfig::new(2, 0, 5);
        let r0 = rewrite(&fx.dict, t2, fx.a1, lf, &cfg0);
        assert!(r0.is_none(), "{r0:?}");
    }

    #[test]
    fn rewrite_shrinks_shuffle_versus_full_sequences() {
        let fx = toy::fixture();
        let engine = Engine::new(2);
        let parts = fx.db.partition(2);
        let res = lash_impl(&engine, &parts, &fx.dict, LashConfig::new(2, 1, 5)).unwrap();
        // Rough sanity: rewritten representations for the toy db are small.
        assert!(res.metrics.shuffle_bytes < 200);
    }

    #[test]
    fn irrelevant_pivots_not_sent() {
        let fx = toy::fixture();
        let lf = fx.dict.last_frequent(2);
        // T3 = c d c b has no descendant of A: pivot A gets nothing.
        let t3 = &fx.db.sequences[2];
        let cfg = LashConfig::new(2, 1, 5);
        assert!(rewrite(&fx.dict, t3, fx.big_a, lf, &cfg).is_none());
    }
}
