//! An MLlib-style distributed PrefixSpan.
//!
//! Spark MLlib's PrefixSpan [Meng et al., JMLR '16] supports only a maximum
//! pattern length (arbitrary gaps, no hierarchy) and uses *prefix-based
//! partitioning* with several rounds of communication: it first counts
//! frequent items, then ships the per-prefix projected databases and mines
//! them recursively. We model this as two BSP jobs:
//!
//! 1. a word-count round computing the frequent items;
//! 2. a projection round that sends, per frequent item `w`, the suffix of
//!    every supporting sequence after the first occurrence of `w`
//!    (infrequent items dropped), followed by local PrefixSpan in the
//!    reducers.
//!
//! Metrics of both rounds are summed — this faithfully exposes the extra
//! communication relative to the single-round D-SEQ/D-CAND (cf. Fig. 13).

use desq_bsp::{Engine, JobMetrics};
use desq_core::fx::FxHashSet;
use desq_core::{ItemId, Result, Sequence};
use desq_dist::MiningResult;
use desq_miner::PrefixSpan;

/// MLlib PrefixSpan configuration: the `T1(σ, λ)` setting.
#[derive(Debug, Clone, Copy)]
pub struct MllibConfig {
    /// Minimum support threshold σ.
    pub sigma: u64,
    /// Maximum pattern length λ.
    pub max_len: usize,
}

impl MllibConfig {
    /// Creates the `T1(σ, λ)` configuration.
    pub fn new(sigma: u64, max_len: usize) -> MllibConfig {
        MllibConfig { sigma, max_len }
    }
}

use crate::from_bsp;

/// The workhorse behind [`mllib_prefixspan`] and [`crate::algo::Mllib`].
pub(crate) fn mllib_impl(
    engine: &Engine,
    parts: &[&[Sequence]],
    config: MllibConfig,
) -> Result<MiningResult> {
    desq_core::mining::validate_sigma(config.sigma)?;
    let t0 = std::time::Instant::now();
    let input_sequences: u64 = parts.iter().map(|p| p.len() as u64).sum();
    if config.max_len == 0 {
        return Ok(MiningResult {
            patterns: Vec::new(),
            metrics: desq_dist::metrics_from_job(
                JobMetrics::default(),
                t0.elapsed().as_nanos() as u64,
                engine.workers(),
                input_sequences,
            ),
        });
    }

    // Round 1: frequent items (distributed word count with combining; the
    // payload is empty — only the per-item weights matter).
    let (freq_items, m1) = engine
        .map_combine_reduce(
            parts,
            |part: &[Sequence], out: &mut desq_bsp::Combiner<ItemId>| {
                let mut seen: FxHashSet<ItemId> = FxHashSet::default();
                for seq in part {
                    seen.clear();
                    for &t in seq {
                        if seen.insert(t) {
                            out.emit(&t, &[], 1);
                        }
                    }
                }
                Ok(())
            },
            |&w: &ItemId, vs: &[(&[u8], u64)], emit: &mut dyn FnMut((ItemId, u64))| {
                let f: u64 = vs.iter().map(|(_, c)| c).sum();
                if f >= config.sigma {
                    emit((w, f));
                }
                Ok(())
            },
        )
        .map_err(from_bsp)?;
    let frequent: FxHashSet<ItemId> = freq_items.iter().map(|&(w, _)| w).collect();

    // Round 2: prefix projection by first item + local PrefixSpan.
    let (nested, m2) = engine
        .map_combine_reduce(
            parts,
            |part: &[Sequence], out: &mut desq_bsp::Combiner<ItemId>| {
                let mut seen: FxHashSet<ItemId> = FxHashSet::default();
                let mut suffix: Sequence = Sequence::new();
                let mut payload: Vec<u8> = Vec::new();
                for seq in part {
                    seen.clear();
                    for (i, &t) in seq.iter().enumerate() {
                        if !frequent.contains(&t) || !seen.insert(t) {
                            continue;
                        }
                        suffix.clear();
                        suffix.extend(
                            seq[i + 1..]
                                .iter()
                                .copied()
                                .filter(|w| frequent.contains(w)),
                        );
                        payload.clear();
                        desq_bsp::encode_item_seq(&suffix, &mut payload);
                        out.emit(&t, &payload, 1);
                    }
                }
                Ok(())
            },
            |&w: &ItemId,
             inputs: &[(&[u8], u64)],
             emit: &mut dyn FnMut(Vec<(Sequence, u64)>)|
             -> desq_bsp::Result<()> {
                let mut suffixes: Vec<(Sequence, u64)> = Vec::with_capacity(inputs.len());
                for &(bytes, c) in inputs {
                    let mut slice = bytes;
                    let mut seq = Sequence::new();
                    desq_bsp::decode_item_seq(&mut slice, &mut seq)?;
                    suffixes.push((seq, c));
                }
                let support: u64 = suffixes.iter().map(|(_, c)| c).sum();
                let mut local: Vec<(Sequence, u64)> = vec![(vec![w], support)];
                if config.max_len > 1 {
                    let ps = PrefixSpan::new(config.sigma, config.max_len - 1);
                    for (tail, f) in ps.mine_weighted(&suffixes) {
                        let mut pattern = Vec::with_capacity(tail.len() + 1);
                        pattern.push(w);
                        pattern.extend(tail);
                        local.push((pattern, f));
                    }
                }
                emit(local);
                Ok(())
            },
        )
        .map_err(from_bsp)?;

    let patterns = desq_miner::sort_patterns(nested.into_iter().flatten().collect());

    // Both rounds' measurements are summed — this faithfully exposes the
    // extra communication relative to the single-round D-SEQ/D-CAND.
    let job = JobMetrics {
        map_nanos: m1.map_nanos + m2.map_nanos,
        reduce_nanos: m1.reduce_nanos + m2.reduce_nanos,
        emitted_records: m1.emitted_records + m2.emitted_records,
        shuffle_records: m1.shuffle_records + m2.shuffle_records,
        shuffle_payloads: m1.shuffle_payloads + m2.shuffle_payloads,
        shuffle_bytes: m1.shuffle_bytes + m2.shuffle_bytes,
        reducer_bytes: m2.reducer_bytes,
        output_records: patterns.len() as u64,
        reduce_tasks: m1.reduce_tasks + m2.reduce_tasks,
        reduce_steals: m1.reduce_steals + m2.reduce_steals,
        retried_tasks: m1.retried_tasks + m2.retried_tasks,
        peer_timeouts: m1.peer_timeouts + m2.peer_timeouts,
        max_task_nanos: m1.max_task_nanos.max(m2.max_task_nanos),
        cancelled: m1.cancelled || m2.cancelled,
    };
    let metrics = desq_dist::metrics_from_job(
        job,
        t0.elapsed().as_nanos() as u64,
        engine.workers(),
        input_sequences,
    );
    Ok(MiningResult { patterns, metrics })
}

#[cfg(test)]
mod tests {
    use super::*;
    use desq_core::mining::{Miner, MiningContext};
    use desq_core::toy;

    #[test]
    fn matches_sequential_prefixspan_on_toy() {
        let fx = toy::fixture();
        let engine = Engine::new(2);
        let parts = fx.db.partition(2);
        for sigma in 1..=3u64 {
            for lambda in 1..=4usize {
                let dist = mllib_impl(&engine, &parts, MllibConfig::new(sigma, lambda)).unwrap();
                let seq = PrefixSpan::new(sigma, lambda).mine(&fx.db);
                assert_eq!(dist.patterns, seq, "σ={sigma} λ={lambda}");
            }
        }
    }

    #[test]
    fn matches_desq_t1_on_toy() {
        let fx = toy::fixture();
        let engine = Engine::new(3);
        let parts = fx.db.partition(3);
        for sigma in 2..=3u64 {
            let c = desq_dist::patterns::t1(3);
            let fst = c.compile(&fx.dict).unwrap();
            let reference = desq_miner::algo::DesqCount
                .mine(&MiningContext::sequential(&fx.db, &fx.dict, sigma).with_fst(&fst))
                .unwrap()
                .patterns;
            let dist = mllib_impl(&engine, &parts, MllibConfig::new(sigma, 3)).unwrap();
            assert_eq!(dist.patterns, reference, "{} σ={sigma}", c.name);
        }
    }

    #[test]
    fn two_rounds_accumulate_metrics() {
        let fx = toy::fixture();
        let engine = Engine::new(2);
        let parts = fx.db.partition(2);
        let res = mllib_impl(&engine, &parts, MllibConfig::new(2, 3)).unwrap();
        // Both rounds shuffle something.
        assert!(res.metrics.shuffle_records > 0);
        assert!(res.metrics.shuffle_bytes > 0);
    }

    #[test]
    fn empty_max_len() {
        let fx = toy::fixture();
        let engine = Engine::new(1);
        let parts = fx.db.partition(1);
        let res = mllib_impl(&engine, &parts, MllibConfig::new(1, 0)).unwrap();
        assert!(res.patterns.is_empty());
    }
}
