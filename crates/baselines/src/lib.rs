//! # desq-baselines
//!
//! Specialized *scalable* FSM baselines from the paper's comparison
//! (Sec. VII-D):
//!
//! * [`lash`] — an MG-FSM/LASH-style distributed miner for maximum-gap /
//!   maximum-length (/ hierarchy) constraints: item-based partitioning with
//!   specialized sequence rewrites (blanking, splitting, part filtering)
//!   and a gap-constrained local miner. This is the system D-SEQ's
//!   generalization overhead is measured against (Fig. 12).
//! * [`mllib`] — an MLlib-style distributed PrefixSpan: prefix-based
//!   partitioning with multiple rounds of communication, maximum length
//!   only (Fig. 13).
//!
//! Both produce exactly the same output as the general algorithms under the
//! equivalent T1/T2/T3 pattern expressions, which the cross-validation
//! tests assert. Both run behind the unified mining API via the [`algo`]
//! adapters (the deprecated free-function entry points were removed; see
//! `docs/MIGRATION.md` in the repository root).

pub mod algo;
pub mod lash;
pub mod mllib;

pub use lash::LashConfig;
pub use mllib::MllibConfig;

/// Maps an engine error back into the workspace error type.
pub(crate) fn from_bsp(e: desq_bsp::Error) -> desq_core::Error {
    match e {
        desq_bsp::Error::ResourceExhausted(m) => desq_core::Error::ResourceExhausted(m),
        desq_bsp::Error::Decode(m) => desq_core::Error::Decode(m),
        desq_bsp::Error::DeadlineExceeded(m) => desq_core::Error::DeadlineExceeded(m),
        desq_bsp::Error::Cancelled(m) => desq_core::Error::Cancelled(m),
        desq_bsp::Error::WorkerPanicked(m) => desq_core::Error::WorkerPanicked(m),
        desq_bsp::Error::Worker(m) => desq_core::Error::Invalid(m),
        desq_bsp::Error::PeerUnreachable(m) => desq_core::Error::PeerUnreachable(m),
        desq_bsp::Error::PeerTimedOut(m) => desq_core::Error::PeerTimedOut(m),
    }
}
