//! [`Miner`]-trait adapters for the sequential algorithms.
//!
//! These are the objects the facade's `MiningSession` dispatches to; they
//! can also be used directly when a caller wants trait-object polymorphism
//! without the session builder. Each adapter carries only the knobs that
//! are *algorithm-specific*; the threshold σ and the work budget always
//! come from the [`MiningContext`] (one validation path for all
//! algorithms).

use std::time::Instant;

use desq_core::fst::{CandidateCounter, FstIndex, RunScratch, RunWalker};
use desq_core::mining::{ExecutionPolicy, Miner, MiningContext, MiningMetrics, MiningResult};
use desq_core::{Error, Fst, Result};

use crate::desq_count::desq_count_impl;
use crate::desq_dfs::{LocalMiner, MinerConfig, WeightedInput};
use crate::sched::WorkerStats;

/// Weighted inputs (weight 1 per database sequence) for the pattern-growth
/// miners — borrowed straight from the context's database.
fn unit_inputs<'c>(ctx: &MiningContext<'c>) -> Vec<WeightedInput<'c>> {
    ctx.db.sequences.iter().map(|s| (s.as_slice(), 1)).collect()
}

/// Metrics of a scheduler-driven local run: per-worker wall times plus the
/// summed task and steal counters.
fn scheduler_metrics(
    wall_nanos: u64,
    input_sequences: u64,
    work: u64,
    output: u64,
    stats: &[WorkerStats],
) -> MiningMetrics {
    MiningMetrics::local_parallel(
        wall_nanos,
        input_sequences,
        work,
        output,
        stats.iter().map(|s| s.nanos).collect(),
    )
    .with_scheduler(
        stats.iter().map(|s| s.tasks).sum(),
        stats.iter().map(|s| s.steals).sum(),
    )
}

/// Input sequences probed by the [`ExecutionPolicy::Auto`] cost model.
const PROBE_SEQS: usize = 16;
/// Per-sequence candidate-occurrence cap during probing: a sample sequence
/// that blows through this has a pattern space far too large for candidate
/// enumeration, so the flat path wins regardless of the average.
const PROBE_CAP: usize = 4096;
/// Lean is chosen when the probed average stays at or below this many
/// candidate occurrences per sequence (tuned on the NYT constraint suite:
/// the selective N2/N3 constraints probe in the low single digits and the
/// lean path wins them 2–5×, the expressive N5/N4 probe at ~27/~50 and the
/// flat tables win there).
const LEAN_MAX_AVG: f64 = 12.0;
/// Structural pre-gate: automata whose state count × distinct-input count
/// exceeds this are assumed expressive enough for the flat path without
/// spending any probe work.
const LEAN_MAX_AUTOMATON: usize = 4096;

/// The [`ExecutionPolicy::Auto`] cost model: decides whether DESQ-DFS
/// should skip flat-table materialization and run the lean counting path.
///
/// Two signals, cheapest first: (1) automaton size — FST state count times
/// distinct input labels — as a structural proxy for pattern-space size;
/// (2) a probe of up to [`PROBE_SEQS`] evenly-strided input sequences run
/// through [`RunWalker::count_candidates`] under a small budget, measuring
/// candidate occurrences per sequence directly. Probe work is bounded by
/// `PROBE_SEQS × PROBE_CAP` and is negligible next to either real path.
fn prefers_lean(ctx: &MiningContext<'_>, fst: &Fst) -> bool {
    let n = ctx.db.sequences.len();
    if n == 0 {
        return true;
    }
    let index = FstIndex::new(fst);
    if fst
        .num_states()
        .saturating_mul(index.distinct_inputs().len())
        > LEAN_MAX_AUTOMATON
    {
        return false;
    }
    let walker = RunWalker::new(fst, ctx.dict, &index, ctx.dict.last_frequent(ctx.sigma));
    let mut scratch = RunScratch::default();
    let mut counter = CandidateCounter::new();
    let stride = n.div_ceil(PROBE_SEQS).max(1);
    let mut sampled = 0u64;
    for seq in ctx.db.sequences.iter().step_by(stride).take(PROBE_SEQS) {
        sampled += 1;
        if walker
            .count_candidates(seq, 1, PROBE_CAP, &mut scratch, &mut counter, |_, _| {})
            .is_err()
        {
            return false;
        }
    }
    counter.observed() as f64 / sampled as f64 <= LEAN_MAX_AVG
}

/// DESQ-DFS: pattern growth over projected databases (Fig. 6).
///
/// Honors `ctx.workers` through the work-stealing scheduler in
/// [`crate::sched`] (search-subtree tasks, steal-half balancing);
/// per-worker wall times and the task/steal counters land in
/// [`MiningMetrics`]. Honors `ctx.exec`: under
/// [`ExecutionPolicy::Auto`] a sampling cost model (a probe of strided
/// input sequences plus a structural automaton-size gate; see
/// `docs/ARCHITECTURE.md`) may route cheap constraints to the lean
/// candidate-counting path, skipping flat-table materialization; if the
/// lean path exhausts `ctx.limits.budget` the run transparently retries on
/// the flat path. [`ExecutionPolicy::Lean`] forces the counting path (and
/// propagates budget exhaustion); [`ExecutionPolicy::Flat`] forces table
/// materialization.
#[derive(Debug, Clone, Copy, Default)]
pub struct DesqDfs;

impl DesqDfs {
    fn mine_flat(&self, ctx: &MiningContext<'_>, t0: Instant) -> Result<MiningResult> {
        let fst = ctx.fst()?;
        let inputs = unit_inputs(ctx);
        let (patterns, stats) = LocalMiner::new(fst, ctx.dict, MinerConfig::sequential(ctx.sigma))
            .mine_with_workers(&inputs, ctx.workers, ctx.cancel)?;
        let metrics = scheduler_metrics(
            t0.elapsed().as_nanos() as u64,
            ctx.db.len() as u64,
            patterns.len() as u64,
            patterns.len() as u64,
            &stats,
        );
        Ok(MiningResult { patterns, metrics })
    }

    fn mine_lean(&self, ctx: &MiningContext<'_>, t0: Instant) -> Result<MiningResult> {
        let fst = ctx.fst()?;
        let (patterns, work, stats) = desq_count_impl(
            ctx.db,
            fst,
            ctx.dict,
            ctx.sigma,
            ctx.limits.budget,
            ctx.workers,
            ctx.cancel,
        )?;
        let metrics = scheduler_metrics(
            t0.elapsed().as_nanos() as u64,
            ctx.db.len() as u64,
            work,
            patterns.len() as u64,
            &stats,
        );
        Ok(MiningResult { patterns, metrics })
    }
}

impl Miner for DesqDfs {
    fn name(&self) -> &'static str {
        "DESQ-DFS"
    }

    fn mine(&self, ctx: &MiningContext<'_>) -> Result<MiningResult> {
        ctx.validate()?;
        let fst = ctx.fst()?;
        let t0 = Instant::now();
        match ctx.exec {
            ExecutionPolicy::Flat => self.mine_flat(ctx, t0),
            ExecutionPolicy::Lean => self.mine_lean(ctx, t0),
            ExecutionPolicy::Auto => {
                if prefers_lean(ctx, fst) {
                    match self.mine_lean(ctx, t0) {
                        // The probe under-estimated: enumeration blew the
                        // budget somewhere past the sampled prefix. The
                        // flat path bounds its work differently, so fall
                        // back instead of failing a run the flat path
                        // would finish.
                        Err(Error::ResourceExhausted(_)) => self.mine_flat(ctx, t0),
                        other => other,
                    }
                } else {
                    self.mine_flat(ctx, t0)
                }
            }
        }
    }
}

/// DESQ-COUNT: per-sequence candidate generation plus counting — the
/// brute-force reference implementation. Its work metric
/// (`emitted_records`) is the total number of candidate occurrences
/// generated, bounded per sequence by `ctx.limits.budget`. Candidate
/// generation shards the database across `ctx.workers` threads.
#[derive(Debug, Clone, Copy, Default)]
pub struct DesqCount;

impl Miner for DesqCount {
    fn name(&self) -> &'static str {
        "DESQ-COUNT"
    }

    fn mine(&self, ctx: &MiningContext<'_>) -> Result<MiningResult> {
        ctx.validate()?;
        let fst = ctx.fst()?;
        let t0 = Instant::now();
        let (patterns, work, stats) = desq_count_impl(
            ctx.db,
            fst,
            ctx.dict,
            ctx.sigma,
            ctx.limits.budget,
            ctx.workers,
            ctx.cancel,
        )?;
        let metrics = scheduler_metrics(
            t0.elapsed().as_nanos() as u64,
            ctx.db.len() as u64,
            work,
            patterns.len() as u64,
            &stats,
        );
        Ok(MiningResult { patterns, metrics })
    }
}

/// Classic PrefixSpan under a maximum-length constraint (the `T1(σ, λ)`
/// semantics; no FST needed).
#[derive(Debug, Clone, Copy)]
pub struct PrefixSpan {
    /// Maximum pattern length λ.
    pub max_len: usize,
}

impl Miner for PrefixSpan {
    fn name(&self) -> &'static str {
        "PrefixSpan"
    }

    fn mine(&self, ctx: &MiningContext<'_>) -> Result<MiningResult> {
        ctx.validate()?;
        let t0 = Instant::now();
        let patterns = crate::prefixspan::PrefixSpan::new(ctx.sigma, self.max_len).mine(ctx.db);
        let metrics = MiningMetrics::sequential(
            t0.elapsed().as_nanos() as u64,
            ctx.db.len() as u64,
            patterns.len() as u64,
            patterns.len() as u64,
        );
        Ok(MiningResult { patterns, metrics })
    }
}

/// Gap-constrained pattern growth with optional hierarchy generalization
/// (the `T2(σ, γ, λ)` / `T3(σ, γ, λ)` semantics; no FST needed).
#[derive(Debug, Clone, Copy)]
pub struct GapMiner {
    /// Maximum gap γ between consecutive matched positions.
    pub gamma: usize,
    /// Maximum pattern length λ.
    pub max_len: usize,
    /// Minimum pattern length (2 for the paper's T2/T3 constraints).
    pub min_len: usize,
    /// Generalize matched items along the hierarchy (LASH) or not (MG-FSM).
    pub generalize: bool,
}

impl GapMiner {
    /// The paper's T2/T3 parameterization (`min_len = 2`).
    pub fn new(gamma: usize, max_len: usize, generalize: bool) -> GapMiner {
        GapMiner {
            gamma,
            max_len,
            min_len: 2,
            generalize,
        }
    }
}

impl Miner for GapMiner {
    fn name(&self) -> &'static str {
        "GapMiner"
    }

    fn mine(&self, ctx: &MiningContext<'_>) -> Result<MiningResult> {
        ctx.validate()?;
        let t0 = Instant::now();
        let miner = crate::gapminer::GapMiner {
            sigma: ctx.sigma,
            gamma: self.gamma,
            max_len: self.max_len,
            min_len: self.min_len,
            generalize: self.generalize,
            max_item: None,
            require_pivot: None,
        };
        let patterns = miner.mine(ctx.db, ctx.dict);
        let metrics = MiningMetrics::sequential(
            t0.elapsed().as_nanos() as u64,
            ctx.db.len() as u64,
            patterns.len() as u64,
            patterns.len() as u64,
        );
        Ok(MiningResult { patterns, metrics })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desq_core::mining::Limits;
    use desq_core::{toy, Error};

    #[test]
    fn trait_objects_run_and_agree_on_toy() {
        let fx = toy::fixture();
        let ctx = MiningContext::sequential(&fx.db, &fx.dict, 2).with_fst(&fx.fst);
        let dfs = DesqDfs.mine(&ctx).unwrap();
        let cnt = DesqCount.mine(&ctx).unwrap();
        assert_eq!(dfs.patterns, cnt.patterns);
        assert_eq!(dfs.patterns.len(), 3);
        assert!(dfs.is_sorted() && cnt.is_sorted());
        // Non-trivial sequential metrics.
        assert_eq!(dfs.metrics.input_sequences, 5);
        assert_eq!(dfs.metrics.output_records, 3);
        assert_eq!(dfs.metrics.workers, 1);
        assert!(cnt.metrics.emitted_records > cnt.metrics.output_records);
    }

    #[test]
    fn fst_free_miners_ignore_missing_fst() {
        let fx = toy::fixture();
        let ctx = MiningContext::sequential(&fx.db, &fx.dict, 2);
        assert!(PrefixSpan { max_len: 3 }.mine(&ctx).is_ok());
        assert!(GapMiner::new(1, 3, true).mine(&ctx).is_ok());
        // FST-based miners surface a descriptive error instead.
        assert!(matches!(DesqDfs.mine(&ctx), Err(Error::Invalid(_))));
    }

    #[test]
    fn budget_flows_from_limits() {
        let fx = toy::fixture();
        let ctx = MiningContext::sequential(&fx.db, &fx.dict, 2)
            .with_fst(&fx.fst)
            .with_limits(Limits::default().with_budget(2));
        assert!(matches!(
            DesqCount.mine(&ctx),
            Err(Error::ResourceExhausted(_))
        ));
    }

    #[test]
    fn execution_policies_agree_on_toy() {
        let fx = toy::fixture();
        let base = MiningContext::sequential(&fx.db, &fx.dict, 2).with_fst(&fx.fst);
        let flat = DesqDfs
            .mine(&base.with_execution_policy(ExecutionPolicy::Flat))
            .unwrap();
        let lean = DesqDfs
            .mine(&base.with_execution_policy(ExecutionPolicy::Lean))
            .unwrap();
        let auto = DesqDfs.mine(&base).unwrap();
        assert_eq!(flat.patterns, lean.patterns);
        assert_eq!(flat.patterns, auto.patterns);
        assert_eq!(flat.patterns.len(), 3);
    }

    #[test]
    fn auto_falls_back_to_flat_on_budget_exhaustion_but_lean_propagates() {
        let fx = toy::fixture();
        let strapped = MiningContext::sequential(&fx.db, &fx.dict, 2)
            .with_fst(&fx.fst)
            .with_limits(Limits::default().with_budget(2));
        // Forced lean: the counting path's per-sequence budget trips.
        assert!(matches!(
            DesqDfs.mine(&strapped.with_execution_policy(ExecutionPolicy::Lean)),
            Err(Error::ResourceExhausted(_))
        ));
        // Auto: same trip, but the run transparently retries on the flat
        // path and succeeds.
        let auto = DesqDfs.mine(&strapped).unwrap();
        assert_eq!(auto.patterns.len(), 3);
    }
}
