//! [`Miner`]-trait adapters for the sequential algorithms.
//!
//! These are the objects the facade's `MiningSession` dispatches to; they
//! can also be used directly when a caller wants trait-object polymorphism
//! without the session builder. Each adapter carries only the knobs that
//! are *algorithm-specific*; the threshold σ and the work budget always
//! come from the [`MiningContext`] (one validation path for all
//! algorithms).

use std::time::Instant;

use desq_core::mining::{Miner, MiningContext, MiningMetrics, MiningResult};
use desq_core::Result;

use crate::desq_count::desq_count_impl;
use crate::desq_dfs::{LocalMiner, MinerConfig, WeightedInput};

/// Weighted inputs (weight 1 per database sequence) for the pattern-growth
/// miners — borrowed straight from the context's database.
fn unit_inputs<'c>(ctx: &MiningContext<'c>) -> Vec<WeightedInput<'c>> {
    ctx.db.sequences.iter().map(|s| (s.as_slice(), 1)).collect()
}

/// DESQ-DFS: pattern growth over projected databases (Fig. 6). Honors
/// `ctx.workers` by sharding the search tree's first-level children across
/// worker threads; per-worker mining times land in
/// `MiningMetrics::worker_nanos`.
#[derive(Debug, Clone, Copy, Default)]
pub struct DesqDfs;

impl Miner for DesqDfs {
    fn name(&self) -> &'static str {
        "DESQ-DFS"
    }

    fn mine(&self, ctx: &MiningContext<'_>) -> Result<MiningResult> {
        ctx.validate()?;
        let fst = ctx.fst()?;
        let t0 = Instant::now();
        let inputs = unit_inputs(ctx);
        let (patterns, worker_nanos) =
            LocalMiner::new(fst, ctx.dict, MinerConfig::sequential(ctx.sigma))
                .mine_with_workers(&inputs, ctx.workers);
        let metrics = MiningMetrics::local_parallel(
            t0.elapsed().as_nanos() as u64,
            ctx.db.len() as u64,
            patterns.len() as u64,
            patterns.len() as u64,
            worker_nanos,
        );
        Ok(MiningResult { patterns, metrics })
    }
}

/// DESQ-COUNT: per-sequence candidate generation plus counting — the
/// brute-force reference implementation. Its work metric
/// (`emitted_records`) is the total number of candidate occurrences
/// generated, bounded per sequence by `ctx.limits.budget`. Candidate
/// generation shards the database across `ctx.workers` threads.
#[derive(Debug, Clone, Copy, Default)]
pub struct DesqCount;

impl Miner for DesqCount {
    fn name(&self) -> &'static str {
        "DESQ-COUNT"
    }

    fn mine(&self, ctx: &MiningContext<'_>) -> Result<MiningResult> {
        ctx.validate()?;
        let fst = ctx.fst()?;
        let t0 = Instant::now();
        let (patterns, work, worker_nanos) = desq_count_impl(
            ctx.db,
            fst,
            ctx.dict,
            ctx.sigma,
            ctx.limits.budget,
            ctx.workers,
        )?;
        let metrics = MiningMetrics::local_parallel(
            t0.elapsed().as_nanos() as u64,
            ctx.db.len() as u64,
            work,
            patterns.len() as u64,
            worker_nanos,
        );
        Ok(MiningResult { patterns, metrics })
    }
}

/// Classic PrefixSpan under a maximum-length constraint (the `T1(σ, λ)`
/// semantics; no FST needed).
#[derive(Debug, Clone, Copy)]
pub struct PrefixSpan {
    /// Maximum pattern length λ.
    pub max_len: usize,
}

impl Miner for PrefixSpan {
    fn name(&self) -> &'static str {
        "PrefixSpan"
    }

    fn mine(&self, ctx: &MiningContext<'_>) -> Result<MiningResult> {
        ctx.validate()?;
        let t0 = Instant::now();
        let patterns = crate::prefixspan::PrefixSpan::new(ctx.sigma, self.max_len).mine(ctx.db);
        let metrics = MiningMetrics::sequential(
            t0.elapsed().as_nanos() as u64,
            ctx.db.len() as u64,
            patterns.len() as u64,
            patterns.len() as u64,
        );
        Ok(MiningResult { patterns, metrics })
    }
}

/// Gap-constrained pattern growth with optional hierarchy generalization
/// (the `T2(σ, γ, λ)` / `T3(σ, γ, λ)` semantics; no FST needed).
#[derive(Debug, Clone, Copy)]
pub struct GapMiner {
    /// Maximum gap γ between consecutive matched positions.
    pub gamma: usize,
    /// Maximum pattern length λ.
    pub max_len: usize,
    /// Minimum pattern length (2 for the paper's T2/T3 constraints).
    pub min_len: usize,
    /// Generalize matched items along the hierarchy (LASH) or not (MG-FSM).
    pub generalize: bool,
}

impl GapMiner {
    /// The paper's T2/T3 parameterization (`min_len = 2`).
    pub fn new(gamma: usize, max_len: usize, generalize: bool) -> GapMiner {
        GapMiner {
            gamma,
            max_len,
            min_len: 2,
            generalize,
        }
    }
}

impl Miner for GapMiner {
    fn name(&self) -> &'static str {
        "GapMiner"
    }

    fn mine(&self, ctx: &MiningContext<'_>) -> Result<MiningResult> {
        ctx.validate()?;
        let t0 = Instant::now();
        let miner = crate::gapminer::GapMiner {
            sigma: ctx.sigma,
            gamma: self.gamma,
            max_len: self.max_len,
            min_len: self.min_len,
            generalize: self.generalize,
            max_item: None,
            require_pivot: None,
        };
        let patterns = miner.mine(ctx.db, ctx.dict);
        let metrics = MiningMetrics::sequential(
            t0.elapsed().as_nanos() as u64,
            ctx.db.len() as u64,
            patterns.len() as u64,
            patterns.len() as u64,
        );
        Ok(MiningResult { patterns, metrics })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desq_core::mining::Limits;
    use desq_core::{toy, Error};

    #[test]
    fn trait_objects_run_and_agree_on_toy() {
        let fx = toy::fixture();
        let ctx = MiningContext::sequential(&fx.db, &fx.dict, 2).with_fst(&fx.fst);
        let dfs = DesqDfs.mine(&ctx).unwrap();
        let cnt = DesqCount.mine(&ctx).unwrap();
        assert_eq!(dfs.patterns, cnt.patterns);
        assert_eq!(dfs.patterns.len(), 3);
        assert!(dfs.is_sorted() && cnt.is_sorted());
        // Non-trivial sequential metrics.
        assert_eq!(dfs.metrics.input_sequences, 5);
        assert_eq!(dfs.metrics.output_records, 3);
        assert_eq!(dfs.metrics.workers, 1);
        assert!(cnt.metrics.emitted_records > cnt.metrics.output_records);
    }

    #[test]
    fn fst_free_miners_ignore_missing_fst() {
        let fx = toy::fixture();
        let ctx = MiningContext::sequential(&fx.db, &fx.dict, 2);
        assert!(PrefixSpan { max_len: 3 }.mine(&ctx).is_ok());
        assert!(GapMiner::new(1, 3, true).mine(&ctx).is_ok());
        // FST-based miners surface a descriptive error instead.
        assert!(matches!(DesqDfs.mine(&ctx), Err(Error::Invalid(_))));
    }

    #[test]
    fn budget_flows_from_limits() {
        let fx = toy::fixture();
        let ctx = MiningContext::sequential(&fx.db, &fx.dict, 2)
            .with_fst(&fx.fst)
            .with_limits(Limits::default().with_budget(2));
        assert!(matches!(
            DesqCount.mine(&ctx),
            Err(Error::ResourceExhausted(_))
        ));
    }
}
