//! DESQ-COUNT: candidate generation plus counting.
//!
//! For every input sequence, enumerate `G^σ_π(T)` and count each candidate
//! once per generating sequence; frequent candidates are those with count
//! ≥ σ. Simple and *correct by definition* — this is the reference
//! implementation that DESQ-DFS, D-SEQ, D-CAND, NAÏVE and SEMI-NAÏVE are
//! all validated against in tests. It is infeasible for constraints with
//! many candidates per sequence (the reason the paper's naïve distributed
//! algorithms fail on loose constraints).
//!
//! Since PR 5 the enumeration runs on the flat counting path
//! ([`desq_core::fst::flat`]): a [`RunWalker`] over the shared CSR
//! [`FstIndex`] (per-position output sets σ-filtered once at table-build
//! time, per-thread scratch, no `Grid` and no per-transition allocation)
//! feeding an interned [`CandidateCounter`] (candidates encoded once,
//! counted as byte keys). Workers return *owned* partial counters that the
//! calling thread merges — no lock is held during the merge. The
//! `candidates::generate` oracle remains the documented reference the flat
//! path is property-tested against.

use std::sync::Mutex;

use desq_core::fst::{CandidateCounter, FstIndex, RunScratch, RunWalker};
use desq_core::{mining, Dictionary, Fst, Result, Sequence, SequenceDb};

/// Result of one counting run: sorted patterns, total candidate
/// occurrences counted (the work metric), and per-worker wall nanoseconds.
type CountOutcome = (Vec<(Sequence, u64)>, u64, Vec<u64>);

/// The workhorse behind [`desq_count`] and [`crate::algo::DesqCount`]:
/// mines by explicit candidate enumeration and reports the total number of
/// candidate occurrences counted (the algorithm's work metric) plus the
/// wall time each worker spent generating. Candidate enumeration shards the
/// database across `workers` threads (per-sequence enumeration is
/// independent); workers count into owned [`CandidateCounter`] partials
/// that are merged on the calling thread before the frequency filter.
pub(crate) fn desq_count_impl(
    db: &SequenceDb,
    fst: &Fst,
    dict: &Dictionary,
    sigma: u64,
    budget: usize,
    workers: usize,
) -> Result<CountOutcome> {
    mining::validate_sigma(sigma)?;
    let workers = workers.max(1).min(db.sequences.len().max(1));
    let index = FstIndex::new(fst);
    let max_item = dict.last_frequent(sigma);
    let count_chunk = |seqs: &[Sequence]| -> Result<CandidateCounter> {
        let walker = RunWalker::new(fst, dict, &index, max_item);
        let mut scratch = RunScratch::default();
        let mut counter = CandidateCounter::new();
        for seq in seqs {
            walker.count_candidates(seq, 1, budget, &mut scratch, &mut counter, |_, _| {})?;
        }
        Ok(counter)
    };

    let (counter, timings) = if workers == 1 {
        let t0 = std::time::Instant::now();
        let counter = count_chunk(&db.sequences)?;
        (counter, vec![t0.elapsed().as_nanos() as u64])
    } else {
        let chunk = db.sequences.len().div_ceil(workers);
        // Workers only push their owned partial (or the first error) under
        // the lock; all merging happens below, on the calling thread.
        let partials: Mutex<Vec<(CandidateCounter, u64)>> = Mutex::new(Vec::new());
        let failure: Mutex<Option<desq_core::Error>> = Mutex::new(None);
        crossbeam::thread::scope(|s| {
            let (partials, failure, count_chunk) = (&partials, &failure, &count_chunk);
            for part in db.sequences.chunks(chunk) {
                s.spawn(move |_| {
                    let t0 = std::time::Instant::now();
                    match count_chunk(part) {
                        Ok(counter) => {
                            let nanos = t0.elapsed().as_nanos() as u64;
                            partials.lock().unwrap().push((counter, nanos));
                        }
                        Err(e) => {
                            let mut f = failure.lock().unwrap();
                            if f.is_none() {
                                *f = Some(e);
                            }
                        }
                    }
                });
            }
        })
        .expect("counting worker panicked");
        if let Some(e) = failure.into_inner().unwrap() {
            return Err(e);
        }
        let mut partials = partials.into_inner().unwrap();
        let mut timings = Vec::with_capacity(partials.len());
        let mut merged = CandidateCounter::new();
        for (partial, nanos) in partials.drain(..) {
            merged.merge(&partial);
            timings.push(nanos);
        }
        (merged, timings)
    };
    let work = counter.observed();
    let out = counter.patterns(sigma);
    Ok((crate::sort_patterns(out), work, timings))
}

/// Mines frequent sequences by explicit candidate generation.
///
/// `budget` bounds per-sequence generation work; see
/// [`desq_core::fst::candidates::generate`].
#[deprecated(
    since = "0.1.0",
    note = "use desq::session::MiningSession with AlgorithmSpec::DesqCount \
            (or desq_miner::algo::DesqCount via the Miner trait); the budget \
            moved into Limits::budget"
)]
pub fn desq_count(
    db: &SequenceDb,
    fst: &Fst,
    dict: &Dictionary,
    sigma: u64,
    budget: usize,
) -> Result<Vec<(Sequence, u64)>> {
    desq_count_impl(db, fst, dict, sigma, budget, 1).map(|(patterns, _, _)| patterns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use desq_core::toy;
    use desq_core::Error;

    #[test]
    fn toy_frequent_sequences_match_paper() {
        // Paper, Sec. II: for πex and σ = 2 the frequent subsequences are
        // a1 a1 b (2), a1 A b (2), a1 b (3).
        let fx = toy::fixture();
        let (out, _, _) = desq_count_impl(&fx.db, &fx.fst, &fx.dict, 2, usize::MAX, 1).unwrap();
        let rendered: Vec<(String, u64)> =
            out.iter().map(|(s, f)| (fx.dict.render(s), *f)).collect();
        // Lexicographic fid order: a1 b < a1 A b < a1 a1 b.
        assert_eq!(
            rendered,
            vec![
                ("a1 b".to_string(), 3),
                ("a1 A b".to_string(), 2),
                ("a1 a1 b".to_string(), 2),
            ]
        );
    }

    #[test]
    fn sigma_one_keeps_everything() {
        let fx = toy::fixture();
        let (out, work, _) = desq_count_impl(&fx.db, &fx.fst, &fx.dict, 1, usize::MAX, 1).unwrap();
        // All candidates of all sequences are frequent at σ = 1:
        // 7 (T1) + 11 (T2) + 0 (T3) + 2 (T4) + 3 (T5), with
        // a1b/a1a1b/a1Ab shared between T2 and T5 and a1b also in T1.
        let distinct: std::collections::HashSet<_> = out.iter().map(|(s, _)| s.clone()).collect();
        assert_eq!(distinct.len(), 7 + 11 + 2 + 3 - 4);
        // The work metric counts every candidate occurrence, pre-dedup.
        assert_eq!(work, 7 + 11 + 2 + 3);
        // a1 b appears in T1, T2, T5.
        let a1b = vec![fx.a1, fx.b];
        let f = out.iter().find(|(s, _)| *s == a1b).unwrap().1;
        assert_eq!(f, 3);
    }

    #[test]
    fn sharded_counting_matches_sequential() {
        let fx = toy::fixture();
        for sigma in 1..=4 {
            let (seq, seq_work, _) =
                desq_count_impl(&fx.db, &fx.fst, &fx.dict, sigma, usize::MAX, 1).unwrap();
            for workers in 2..=4 {
                let (par, par_work, par_timings) =
                    desq_count_impl(&fx.db, &fx.fst, &fx.dict, sigma, usize::MAX, workers).unwrap();
                assert_eq!(par, seq, "sigma={sigma} workers={workers}");
                assert_eq!(par_work, seq_work, "sigma={sigma} workers={workers}");
                // One timing per spawned chunk, at most one per worker.
                assert!(!par_timings.is_empty() && par_timings.len() <= workers);
            }
        }
    }

    #[test]
    fn high_sigma_yields_nothing() {
        let fx = toy::fixture();
        let (out, _, _) = desq_count_impl(&fx.db, &fx.fst, &fx.dict, 10, usize::MAX, 1).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn zero_sigma_rejected() {
        let fx = toy::fixture();
        assert!(matches!(
            desq_count_impl(&fx.db, &fx.fst, &fx.dict, 0, usize::MAX, 1),
            Err(Error::Invalid(_))
        ));
    }

    #[test]
    fn budget_propagates() {
        let fx = toy::fixture();
        let err = desq_count_impl(&fx.db, &fx.fst, &fx.dict, 2, 2, 2).unwrap_err();
        assert!(matches!(err, Error::ResourceExhausted(_)));
    }
}
