//! DESQ-COUNT: candidate generation plus counting.
//!
//! For every input sequence, enumerate `G^σ_π(T)` and count each candidate
//! once per generating sequence; frequent candidates are those with count
//! ≥ σ. Simple and *correct by definition* — this is the reference
//! implementation that DESQ-DFS, D-SEQ, D-CAND, NAÏVE and SEMI-NAÏVE are
//! all validated against in tests. It is infeasible for constraints with
//! many candidates per sequence (the reason the paper's naïve distributed
//! algorithms fail on loose constraints).
//!
//! Since PR 5 the enumeration runs on the flat counting path
//! ([`desq_core::fst::flat`]): a [`RunWalker`] over the shared CSR
//! [`FstIndex`] (per-position output sets σ-filtered once at table-build
//! time, per-thread scratch, no `Grid` and no per-transition allocation)
//! feeding an interned [`CandidateCounter`] (candidates encoded once,
//! counted as byte keys). Workers return *owned* partial counters that the
//! calling thread merges — no lock is held during the merge. The
//! `candidates::generate` oracle remains the documented reference the flat
//! path is property-tested against.
//!
//! Parallel enumeration runs on the same work-stealing scheduler as
//! DESQ-DFS ([`crate::sched`]): the database is cut into small
//! input-sequence blocks that seed the task pool, so a block of expensive
//! sequences no longer pins one statically-assigned worker while the
//! others idle.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use desq_core::fst::{CandidateCounter, FstIndex, RunScratch, RunWalker};
use desq_core::mining::CancelToken;
use desq_core::{mining, Dictionary, Fst, Result, Sequence, SequenceDb};

use crate::sched::{self, WorkerStats};

/// Result of one counting run: sorted patterns, total candidate
/// occurrences counted (the work metric), and per-worker scheduler stats.
type CountOutcome = (Vec<(Sequence, u64)>, u64, Vec<WorkerStats>);

/// Sequences per scheduler task: small enough that stealing balances a
/// skewed database, large enough that the per-task overhead (one deque
/// round trip) stays invisible next to candidate enumeration.
const COUNT_BLOCK: usize = 64;

/// The workhorse behind [`crate::algo::DesqCount`]: mines by explicit
/// candidate enumeration and reports the total number of candidate
/// occurrences counted (the algorithm's work metric) plus per-worker
/// [`WorkerStats`]. Candidate enumeration is sharded into input blocks
/// scheduled by work stealing (per-sequence enumeration is independent);
/// workers count into owned [`CandidateCounter`] partials that are merged
/// on the calling thread before the frequency filter.
pub(crate) fn desq_count_impl(
    db: &SequenceDb,
    fst: &Fst,
    dict: &Dictionary,
    sigma: u64,
    budget: usize,
    workers: usize,
    cancel: Option<&CancelToken>,
) -> Result<CountOutcome> {
    mining::validate_sigma(sigma)?;
    let workers = workers.max(1).min(db.sequences.len().max(1));
    let index = FstIndex::new(fst);
    let max_item = dict.last_frequent(sigma);

    let (counter, stats) = if workers == 1 {
        let t0 = std::time::Instant::now();
        let walker = RunWalker::new(fst, dict, &index, max_item);
        let mut scratch = RunScratch::default();
        let mut counter = CandidateCounter::new();
        for seq in &db.sequences {
            if let Some(token) = cancel {
                token.checkpoint()?;
            }
            walker.count_candidates(seq, 1, budget, &mut scratch, &mut counter, |_, _| {})?;
        }
        (
            counter,
            vec![WorkerStats::solo(t0.elapsed().as_nanos() as u64, 1)],
        )
    } else {
        // Blocks of sequences seed the scheduler; workers only push their
        // owned partial (or the first error) under a lock at the end — no
        // lock is held while counting or merging.
        let n = db.sequences.len();
        let block = COUNT_BLOCK.min(n.div_ceil(workers).max(1));
        let seed: Vec<std::ops::Range<usize>> = (0..n)
            .step_by(block)
            .map(|s| s..(s + block).min(n))
            .collect();
        let states: Vec<_> = (0..workers)
            .map(|_| {
                (
                    RunWalker::new(fst, dict, &index, max_item),
                    RunScratch::default(),
                    CandidateCounter::new(),
                )
            })
            .collect();
        let local_cancel = AtomicBool::new(false);
        let partials: Mutex<Vec<(usize, CandidateCounter)>> = Mutex::new(Vec::new());
        let failure: Mutex<Option<desq_core::Error>> = Mutex::new(None);
        let (stats, ()) = sched::run_scheduler(
            seed,
            states,
            &local_cancel,
            cancel,
            |range, (walker, scratch, counter), _ctx| {
                for seq in &db.sequences[range] {
                    if let Err(e) =
                        walker.count_candidates(seq, 1, budget, scratch, counter, |_, _| {})
                    {
                        let mut f = failure.lock().unwrap();
                        if f.is_none() {
                            *f = Some(e);
                        }
                        local_cancel.store(true, Ordering::Relaxed);
                        return;
                    }
                }
            },
            |wid, (_, _, counter)| partials.lock().unwrap().push((wid, counter)),
            || (),
        )?;
        if let Some(e) = failure.into_inner().unwrap() {
            return Err(e);
        }
        let mut partials = partials.into_inner().unwrap();
        partials.sort_by_key(|&(wid, _)| wid);
        let mut merged = CandidateCounter::new();
        for (_, partial) in &partials {
            merged.merge(partial);
        }
        (merged, stats)
    };
    let work = counter.observed();
    let out = counter.patterns(sigma);
    Ok((crate::sort_patterns(out), work, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use desq_core::toy;
    use desq_core::Error;

    #[test]
    fn toy_frequent_sequences_match_paper() {
        // Paper, Sec. II: for πex and σ = 2 the frequent subsequences are
        // a1 a1 b (2), a1 A b (2), a1 b (3).
        let fx = toy::fixture();
        let (out, _, _) =
            desq_count_impl(&fx.db, &fx.fst, &fx.dict, 2, usize::MAX, 1, None).unwrap();
        let rendered: Vec<(String, u64)> =
            out.iter().map(|(s, f)| (fx.dict.render(s), *f)).collect();
        // Lexicographic fid order: a1 b < a1 A b < a1 a1 b.
        assert_eq!(
            rendered,
            vec![
                ("a1 b".to_string(), 3),
                ("a1 A b".to_string(), 2),
                ("a1 a1 b".to_string(), 2),
            ]
        );
    }

    #[test]
    fn sigma_one_keeps_everything() {
        let fx = toy::fixture();
        let (out, work, _) =
            desq_count_impl(&fx.db, &fx.fst, &fx.dict, 1, usize::MAX, 1, None).unwrap();
        // All candidates of all sequences are frequent at σ = 1:
        // 7 (T1) + 11 (T2) + 0 (T3) + 2 (T4) + 3 (T5), with
        // a1b/a1a1b/a1Ab shared between T2 and T5 and a1b also in T1.
        let distinct: std::collections::HashSet<_> = out.iter().map(|(s, _)| s.clone()).collect();
        assert_eq!(distinct.len(), 7 + 11 + 2 + 3 - 4);
        // The work metric counts every candidate occurrence, pre-dedup.
        assert_eq!(work, 7 + 11 + 2 + 3);
        // a1 b appears in T1, T2, T5.
        let a1b = vec![fx.a1, fx.b];
        let f = out.iter().find(|(s, _)| *s == a1b).unwrap().1;
        assert_eq!(f, 3);
    }

    #[test]
    fn sharded_counting_matches_sequential() {
        let fx = toy::fixture();
        for sigma in 1..=4 {
            let (seq, seq_work, _) =
                desq_count_impl(&fx.db, &fx.fst, &fx.dict, sigma, usize::MAX, 1, None).unwrap();
            for workers in 2..=4 {
                let (par, par_work, par_stats) =
                    desq_count_impl(&fx.db, &fx.fst, &fx.dict, sigma, usize::MAX, workers, None)
                        .unwrap();
                assert_eq!(par, seq, "sigma={sigma} workers={workers}");
                assert_eq!(par_work, seq_work, "sigma={sigma} workers={workers}");
                // One stats entry per scheduler worker (the toy db has 5
                // sequences, so the worker count is never clamped here).
                assert_eq!(par_stats.len(), workers);
                assert!(par_stats.iter().map(|s| s.tasks).sum::<u64>() > 0);
            }
        }
    }

    #[test]
    fn high_sigma_yields_nothing() {
        let fx = toy::fixture();
        let (out, _, _) =
            desq_count_impl(&fx.db, &fx.fst, &fx.dict, 10, usize::MAX, 1, None).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn zero_sigma_rejected() {
        let fx = toy::fixture();
        assert!(matches!(
            desq_count_impl(&fx.db, &fx.fst, &fx.dict, 0, usize::MAX, 1, None),
            Err(Error::Invalid(_))
        ));
    }

    #[test]
    fn budget_propagates() {
        let fx = toy::fixture();
        let err = desq_count_impl(&fx.db, &fx.fst, &fx.dict, 2, 2, 2, None).unwrap_err();
        assert!(matches!(err, Error::ResourceExhausted(_)));
    }
}
