//! DESQ-COUNT: candidate generation plus counting.
//!
//! For every input sequence, materialize `G^σ_π(T)` and count each candidate
//! once per generating sequence; frequent candidates are those with count
//! ≥ σ. Simple and *correct by definition* — this is the reference
//! implementation that DESQ-DFS, D-SEQ, D-CAND, NAÏVE and SEMI-NAÏVE are
//! all validated against in tests. It is infeasible for constraints with
//! many candidates per sequence (the reason the paper's naïve distributed
//! algorithms fail on loose constraints).

use std::sync::Mutex;

use desq_core::fst::candidates;
use desq_core::fx::FxHashMap;
use desq_core::{mining, Dictionary, Fst, Result, Sequence, SequenceDb};

/// Result of one counting run: sorted patterns, total candidate
/// occurrences counted (the work metric), and per-worker wall nanoseconds.
type CountOutcome = (Vec<(Sequence, u64)>, u64, Vec<u64>);

/// The workhorse behind [`desq_count`] and [`crate::algo::DesqCount`]:
/// mines by explicit candidate generation and reports the total number of
/// candidate occurrences counted (the algorithm's work metric) plus the
/// wall time each worker spent generating. Candidate generation shards the
/// database across `workers` threads (per-sequence generation is
/// independent); the per-worker count maps are merged before the frequency
/// filter.
pub(crate) fn desq_count_impl(
    db: &SequenceDb,
    fst: &Fst,
    dict: &Dictionary,
    sigma: u64,
    budget: usize,
    workers: usize,
) -> Result<CountOutcome> {
    mining::validate_sigma(sigma)?;
    let workers = workers.max(1).min(db.sequences.len().max(1));
    let count_chunk = |seqs: &[Sequence]| -> Result<(FxHashMap<Sequence, u64>, u64)> {
        let mut counts: FxHashMap<Sequence, u64> = FxHashMap::default();
        let mut work = 0u64;
        for seq in seqs {
            let cands = candidates::generate(fst, dict, seq, Some(sigma), budget)?;
            work += cands.len() as u64;
            for c in cands {
                *counts.entry(c).or_insert(0) += 1;
            }
        }
        Ok((counts, work))
    };

    let (counts, work, timings) = if workers == 1 {
        let t0 = std::time::Instant::now();
        let (counts, work) = count_chunk(&db.sequences)?;
        (counts, work, vec![t0.elapsed().as_nanos() as u64])
    } else {
        let chunk = db.sequences.len().div_ceil(workers);
        type Partial = (FxHashMap<Sequence, u64>, u64, Vec<u64>);
        let merged: Mutex<Result<Partial>> = Mutex::new(Ok((FxHashMap::default(), 0, Vec::new())));
        crossbeam::thread::scope(|s| {
            let (merged, count_chunk) = (&merged, &count_chunk);
            for part in db.sequences.chunks(chunk) {
                s.spawn(move |_| {
                    let t0 = std::time::Instant::now();
                    let local = count_chunk(part);
                    let nanos = t0.elapsed().as_nanos() as u64;
                    let mut acc = merged.lock().unwrap();
                    match (&mut *acc, local) {
                        (Ok((counts, work, timings)), Ok((lc, lw))) => {
                            *work += lw;
                            timings.push(nanos);
                            for (c, f) in lc {
                                *counts.entry(c).or_insert(0) += f;
                            }
                        }
                        (Ok(_), Err(e)) => *acc = Err(e),
                        (Err(_), _) => {} // keep the first error
                    }
                });
            }
        })
        .expect("counting worker panicked");
        merged.into_inner().unwrap_or_else(|e| e.into_inner())?
    };
    let out: Vec<(Sequence, u64)> = counts.into_iter().filter(|&(_, f)| f >= sigma).collect();
    Ok((crate::sort_patterns(out), work, timings))
}

/// Mines frequent sequences by explicit candidate generation.
///
/// `budget` bounds per-sequence generation work; see
/// [`candidates::generate`].
#[deprecated(
    since = "0.1.0",
    note = "use desq::session::MiningSession with AlgorithmSpec::DesqCount \
            (or desq_miner::algo::DesqCount via the Miner trait); the budget \
            moved into Limits::budget"
)]
pub fn desq_count(
    db: &SequenceDb,
    fst: &Fst,
    dict: &Dictionary,
    sigma: u64,
    budget: usize,
) -> Result<Vec<(Sequence, u64)>> {
    desq_count_impl(db, fst, dict, sigma, budget, 1).map(|(patterns, _, _)| patterns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use desq_core::toy;
    use desq_core::Error;

    #[test]
    fn toy_frequent_sequences_match_paper() {
        // Paper, Sec. II: for πex and σ = 2 the frequent subsequences are
        // a1 a1 b (2), a1 A b (2), a1 b (3).
        let fx = toy::fixture();
        let (out, _, _) = desq_count_impl(&fx.db, &fx.fst, &fx.dict, 2, usize::MAX, 1).unwrap();
        let rendered: Vec<(String, u64)> =
            out.iter().map(|(s, f)| (fx.dict.render(s), *f)).collect();
        // Lexicographic fid order: a1 b < a1 A b < a1 a1 b.
        assert_eq!(
            rendered,
            vec![
                ("a1 b".to_string(), 3),
                ("a1 A b".to_string(), 2),
                ("a1 a1 b".to_string(), 2),
            ]
        );
    }

    #[test]
    fn sigma_one_keeps_everything() {
        let fx = toy::fixture();
        let (out, work, _) = desq_count_impl(&fx.db, &fx.fst, &fx.dict, 1, usize::MAX, 1).unwrap();
        // All candidates of all sequences are frequent at σ = 1:
        // 7 (T1) + 11 (T2) + 0 (T3) + 2 (T4) + 3 (T5), with
        // a1b/a1a1b/a1Ab shared between T2 and T5 and a1b also in T1.
        let distinct: std::collections::HashSet<_> = out.iter().map(|(s, _)| s.clone()).collect();
        assert_eq!(distinct.len(), 7 + 11 + 2 + 3 - 4);
        // The work metric counts every candidate occurrence, pre-dedup.
        assert_eq!(work, 7 + 11 + 2 + 3);
        // a1 b appears in T1, T2, T5.
        let a1b = vec![fx.a1, fx.b];
        let f = out.iter().find(|(s, _)| *s == a1b).unwrap().1;
        assert_eq!(f, 3);
    }

    #[test]
    fn sharded_counting_matches_sequential() {
        let fx = toy::fixture();
        for sigma in 1..=4 {
            let (seq, seq_work, _) =
                desq_count_impl(&fx.db, &fx.fst, &fx.dict, sigma, usize::MAX, 1).unwrap();
            for workers in 2..=4 {
                let (par, par_work, par_timings) =
                    desq_count_impl(&fx.db, &fx.fst, &fx.dict, sigma, usize::MAX, workers).unwrap();
                assert_eq!(par, seq, "sigma={sigma} workers={workers}");
                assert_eq!(par_work, seq_work, "sigma={sigma} workers={workers}");
                // One timing per spawned chunk, at most one per worker.
                assert!(!par_timings.is_empty() && par_timings.len() <= workers);
            }
        }
    }

    #[test]
    fn high_sigma_yields_nothing() {
        let fx = toy::fixture();
        let (out, _, _) = desq_count_impl(&fx.db, &fx.fst, &fx.dict, 10, usize::MAX, 1).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn zero_sigma_rejected() {
        let fx = toy::fixture();
        assert!(matches!(
            desq_count_impl(&fx.db, &fx.fst, &fx.dict, 0, usize::MAX, 1),
            Err(Error::Invalid(_))
        ));
    }

    #[test]
    fn budget_propagates() {
        let fx = toy::fixture();
        let err = desq_count_impl(&fx.db, &fx.fst, &fx.dict, 2, 2, 2).unwrap_err();
        assert!(matches!(err, Error::ResourceExhausted(_)));
    }
}
