//! Work-stealing task scheduler for local mining.
//!
//! DESQ search trees are wildly skewed: one first-level child can hold
//! almost the whole pattern space while its siblings are leaves, so the
//! static root-level sharding this module replaced left most workers idle
//! behind the one unlucky thread. Here every worker owns a LIFO
//! [`crossbeam::deque::Worker`] of subtree tasks, seeds come from a shared
//! [`Injector`], and an idle worker steals *half* of a victim's queue at a
//! time ([`steal_batch_and_pop`](crossbeam::deque::Stealer::steal_batch_and_pop)).
//! Task producers (the miner's node expansion) push freshly split subtrees
//! onto their own deque only while it is short — see
//! [`SchedConfig::share_limit`] — so splitting overhead is paid exactly
//! when thieves are hungry.
//!
//! Termination uses a single atomic *pending-task* counter: it starts at
//! the seed count, every spawned task increments it, every finished task
//! decrements it, and an idle worker exits once it reads zero (no task is
//! queued anywhere and none is running that could still spawn one).
//!
//! The scheduler is deliberately oblivious to what a task *is* — DESQ-DFS
//! runs owned search-tree nodes through it, DESQ-COUNT runs input-sequence
//! blocks — and reports per-worker [`WorkerStats`] that the session
//! surfaces as `MiningMetrics::{worker_nanos, tasks, steals}`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crossbeam::deque::{Injector, Stealer, Worker};
use desq_core::mining::{panic_message, CancelToken};
use desq_core::{Error, Result};

/// Per-worker scheduler measurements of one parallel mining run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Wall-clock nanoseconds the worker spent in its scheduling loop
    /// (mining plus stealing plus idling).
    pub nanos: u64,
    /// Tasks the worker executed.
    pub tasks: u64,
    /// Successful steals from *other workers'* deques (grabs from the
    /// shared seed injector are not steals).
    pub steals: u64,
}

impl WorkerStats {
    /// A single-worker run that executed `tasks` tasks in `nanos`.
    pub fn solo(nanos: u64, tasks: u64) -> WorkerStats {
        WorkerStats {
            nanos,
            tasks,
            steals: 0,
        }
    }
}

/// Tuning knobs of the task-splitting heuristic (the scheduler itself is
/// knob-free).
///
/// The defaults balance real workloads; tests force pathological sharing
/// (`split_depth` high, `share_limit` high) to exercise stealing on tiny
/// inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedConfig {
    /// Node depth (relative to the task's root) below which child subtrees
    /// may be split off as stealable tasks. Deeper nodes always recurse
    /// inline: near the leaves a task's postings are smaller than the
    /// bookkeeping to share them.
    pub split_depth: usize,
    /// Child subtrees are only split off while the worker's own deque
    /// holds fewer than this many tasks — a short queue means thieves are
    /// draining it (or soon will), a long one means splitting would only
    /// buy allocation overhead.
    pub share_limit: usize,
}

impl Default for SchedConfig {
    fn default() -> SchedConfig {
        SchedConfig {
            split_depth: 3,
            share_limit: 4,
        }
    }
}

impl SchedConfig {
    /// A steal-forcing configuration for tests: split at every depth and
    /// keep sharing regardless of queue length, so even toy-sized search
    /// trees scatter into many stealable tasks.
    pub fn aggressive() -> SchedConfig {
        SchedConfig {
            split_depth: usize::MAX,
            share_limit: usize::MAX,
        }
    }
}

/// Handle a running task uses to spawn further tasks into the scheduler.
pub struct TaskCtx<'a, T> {
    local: &'a Worker<T>,
    pending: &'a AtomicUsize,
}

impl<T> TaskCtx<'_, T> {
    /// Queues a freshly split task on the calling worker's own deque (the
    /// cold end is where thieves take from).
    pub fn spawn(&self, task: T) {
        self.pending.fetch_add(1, Ordering::SeqCst);
        self.local.push(task);
    }

    /// Number of tasks currently queued on the calling worker's own deque;
    /// the splitting heuristic compares this against
    /// [`SchedConfig::share_limit`].
    pub fn queued(&self) -> usize {
        self.local.len()
    }
}

/// Runs `seed` tasks to completion on `states.len()` worker threads with
/// work stealing, while `on_main` runs on the calling thread (streaming
/// callers drain their channel there; eager callers pass `|| ()`).
///
/// Each worker owns one element of `states` (scratch arenas, output
/// buffers, channel senders); `task` may spawn subtasks through the
/// [`TaskCtx`]. When a worker runs out of everything to do it calls
/// `finish` with its state — still on the worker thread, so senders drop
/// and channels disconnect before the scheduler returns. Setting `cancel`
/// makes every worker stop at its next task boundary, abandoning queued
/// tasks.
///
/// # Failure domains
///
/// Every task body runs under `catch_unwind`: a panicking task cancels
/// the run (queued tasks are abandoned, every worker still runs `finish`
/// and reports its stats) and the scheduler returns
/// [`Error::WorkerPanicked`] carrying the first panic payload — the
/// process survives. A `token`, when given, is polled at task
/// granularity: an externally cancelled or deadline-expired token stops
/// the run the same cooperative way and its
/// [`stop_reason`](CancelToken::stop_reason) becomes the returned error.
/// Cancellation through the bare `cancel` flag alone (the streaming
/// sink's abandon-on-drop) is *not* an error: the partial run returns
/// `Ok`.
///
/// Returns per-worker [`WorkerStats`] in worker-index order plus
/// `on_main`'s result.
pub(crate) fn run_scheduler<T, S, R>(
    seed: Vec<T>,
    mut states: Vec<S>,
    cancel: &AtomicBool,
    token: Option<&CancelToken>,
    task: impl Fn(T, &mut S, &TaskCtx<'_, T>) + Sync,
    finish: impl Fn(usize, S) + Sync,
    on_main: impl FnOnce() -> R,
) -> Result<(Vec<WorkerStats>, R)>
where
    T: Send,
    S: Send,
{
    let workers = states.len().max(1);
    let pending = AtomicUsize::new(seed.len());
    let injector: Injector<T> = Injector::new();
    for t in seed {
        injector.push(t);
    }
    let locals: Vec<Worker<T>> = (0..workers).map(|_| Worker::new_lifo()).collect();
    let stealers: Vec<Stealer<T>> = locals.iter().map(Worker::stealer).collect();
    let all_stats: Mutex<Vec<(usize, WorkerStats)>> = Mutex::new(Vec::with_capacity(workers));
    // First caught panic payload; later ones lose the race and are dropped
    // (the run is already cancelled).
    let panicked: Mutex<Option<String>> = Mutex::new(None);

    let main_out = crossbeam::thread::scope(|scope| {
        let (pending, injector, stealers) = (&pending, &injector, &stealers);
        let (task, finish, all_stats, panicked) = (&task, &finish, &all_stats, &panicked);
        for (wid, (local, mut state)) in locals.into_iter().zip(states.drain(..)).enumerate() {
            scope.spawn(move |_| {
                let t0 = Instant::now();
                let mut stats = WorkerStats::default();
                let ctx = TaskCtx {
                    local: &local,
                    pending,
                };
                loop {
                    if cancel.load(Ordering::Relaxed) {
                        break;
                    }
                    if let Some(token) = token {
                        if token.checkpoint().is_err() {
                            cancel.store(true, Ordering::Relaxed);
                            break;
                        }
                    }
                    let mut next = local.pop().or_else(|| {
                        injector.steal_batch_and_pop(&local).success().or_else(|| {
                            (1..workers).find_map(|i| {
                                let got = stealers[(wid + i) % workers]
                                    .steal_batch_and_pop(&local)
                                    .success();
                                stats.steals += u64::from(got.is_some());
                                got
                            })
                        })
                    });
                    match next.take() {
                        Some(t) => {
                            let run = catch_unwind(AssertUnwindSafe(|| {
                                #[cfg(feature = "failpoints")]
                                if let Err(e) = desq_core::fault::point("sched::task_run") {
                                    panic!("{e}");
                                }
                                task(t, &mut state, &ctx);
                            }));
                            stats.tasks += 1;
                            pending.fetch_sub(1, Ordering::SeqCst);
                            if let Err(payload) = run {
                                let msg = panic_message(payload.as_ref());
                                panicked.lock().unwrap().get_or_insert(msg.clone());
                                if let Some(token) = token {
                                    token.mark_panicked(&msg);
                                }
                                cancel.store(true, Ordering::Relaxed);
                                break;
                            }
                        }
                        None => {
                            if pending.load(Ordering::SeqCst) == 0 {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                }
                // `finish` still runs on the cancelled/panicked paths so
                // partial per-worker results and senders are released; a
                // panic inside it is contained the same way as a task's.
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| finish(wid, state))) {
                    let msg = panic_message(payload.as_ref());
                    panicked.lock().unwrap().get_or_insert(msg.clone());
                    if let Some(token) = token {
                        token.mark_panicked(&msg);
                    }
                    cancel.store(true, Ordering::Relaxed);
                }
                stats.nanos = t0.elapsed().as_nanos() as u64;
                all_stats.lock().unwrap().push((wid, stats));
            });
        }
        on_main()
    })
    .map_err(|p| Error::WorkerPanicked(panic_message(p.as_ref())))?;

    if let Some(msg) = panicked.into_inner().unwrap() {
        return Err(Error::WorkerPanicked(msg));
    }
    if let Some(err) = token.and_then(CancelToken::stop_reason) {
        return Err(err);
    }
    let mut stats = all_stats.into_inner().unwrap();
    stats.sort_by_key(|&(wid, _)| wid);
    Ok((stats.into_iter().map(|(_, s)| s).collect(), main_out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    /// Recursive fork-join sum of 0..n via spawned subtasks: exercises
    /// spawning, stealing and pending-counter termination together.
    #[test]
    fn spawned_subtasks_all_run_exactly_once() {
        for workers in [1usize, 2, 4] {
            let total = AtomicU64::new(0);
            let cancel = AtomicBool::new(false);
            let (stats, ()) = run_scheduler(
                vec![(0u64, 256u64)],
                vec![(); workers],
                &cancel,
                None,
                |(lo, hi), _state, ctx: &TaskCtx<'_, (u64, u64)>| {
                    if hi - lo <= 8 {
                        total.fetch_add((lo..hi).sum::<u64>(), Ordering::Relaxed);
                    } else {
                        let mid = (lo + hi) / 2;
                        ctx.spawn((mid, hi));
                        ctx.spawn((lo, mid));
                    }
                },
                |_, ()| {},
                || (),
            )
            .unwrap();
            assert_eq!(total.into_inner(), 255 * 256 / 2, "workers={workers}");
            assert_eq!(stats.len(), workers);
            let tasks: u64 = stats.iter().map(|s| s.tasks).sum();
            assert_eq!(tasks, 63, "a binary split of 256 by 8 makes 63 tasks");
        }
    }

    #[test]
    fn cancel_stops_before_queued_tasks_run() {
        let ran = AtomicU64::new(0);
        let cancel = AtomicBool::new(false);
        run_scheduler(
            (0..64).collect::<Vec<u32>>(),
            vec![(); 2],
            &cancel,
            None,
            |_t, _state, _ctx: &TaskCtx<'_, u32>| {
                ran.fetch_add(1, Ordering::Relaxed);
                cancel.store(true, Ordering::Relaxed);
            },
            |_, ()| {},
            || (),
        )
        .unwrap();
        assert!(ran.into_inner() < 64, "cancel must abandon queued tasks");
    }

    #[test]
    fn finish_runs_per_worker_and_main_runs_on_caller() {
        let finished = AtomicU64::new(0);
        let cancel = AtomicBool::new(false);
        let caller = std::thread::current().id();
        let (stats, main_thread) = run_scheduler(
            vec![1u32],
            vec![0u8; 3],
            &cancel,
            None,
            |_t, _state, _ctx: &TaskCtx<'_, u32>| {},
            |_, _state| {
                finished.fetch_add(1, Ordering::Relaxed);
            },
            || std::thread::current().id(),
        )
        .unwrap();
        assert_eq!(finished.into_inner(), 3);
        assert_eq!(main_thread, caller);
        assert_eq!(stats.iter().map(|s| s.tasks).sum::<u64>(), 1);
    }

    #[test]
    fn empty_seed_terminates_immediately() {
        let cancel = AtomicBool::new(false);
        let (stats, ()) = run_scheduler(
            Vec::<u32>::new(),
            vec![(); 4],
            &cancel,
            None,
            |_t, _s, _c: &TaskCtx<'_, u32>| unreachable!("no tasks exist"),
            |_, ()| {},
            || (),
        )
        .unwrap();
        assert_eq!(stats.len(), 4);
        assert!(stats.iter().all(|s| s.tasks == 0 && s.steals == 0));
    }

    #[test]
    fn a_panicking_task_cancels_the_run_instead_of_killing_the_process() {
        let ran = AtomicU64::new(0);
        let cancel = AtomicBool::new(false);
        let token = CancelToken::new();
        let err = run_scheduler(
            (0..64).collect::<Vec<u32>>(),
            vec![(); 2],
            &cancel,
            Some(&token),
            |t, _state, _ctx: &TaskCtx<'_, u32>| {
                ran.fetch_add(1, Ordering::Relaxed);
                if t == 0 {
                    panic!("task {t} exploded");
                }
                // Keep survivors slow enough that the cancel flag is seen
                // long before the queue drains — the assertion below is
                // about abandonment, not about racing the flag.
                std::thread::sleep(std::time::Duration::from_millis(1));
            },
            |_, ()| {},
            || (),
        )
        .unwrap_err();
        match err {
            Error::WorkerPanicked(msg) => assert!(msg.contains("exploded"), "{msg}"),
            other => panic!("expected WorkerPanicked, got {other}"),
        }
        // The token tripped too, so co-operating layers (e.g. the other
        // phase of a BSP job) observe the failure.
        assert!(matches!(
            token.stop_reason(),
            Some(Error::WorkerPanicked(_))
        ));
        assert!(ran.into_inner() < 64, "panic must abandon queued tasks");
    }

    #[test]
    fn panics_are_contained_without_a_token_too() {
        let cancel = AtomicBool::new(false);
        let err = run_scheduler(
            vec![0u32],
            vec![(); 2],
            &cancel,
            None,
            |_t, _s, _c: &TaskCtx<'_, u32>| panic!("no token around"),
            |_, ()| {},
            || (),
        )
        .unwrap_err();
        assert!(matches!(err, Error::WorkerPanicked(_)), "{err}");
    }

    #[test]
    fn an_expired_deadline_stops_the_run_with_deadline_exceeded() {
        let ran = AtomicU64::new(0);
        let cancel = AtomicBool::new(false);
        let token = CancelToken::with_deadline(std::time::Duration::ZERO);
        let err = run_scheduler(
            (0..1024).collect::<Vec<u32>>(),
            vec![(); 2],
            &cancel,
            Some(&token),
            |_t, _s, _c: &TaskCtx<'_, u32>| {
                ran.fetch_add(1, Ordering::Relaxed);
            },
            |_, ()| {},
            || (),
        )
        .unwrap_err();
        assert!(matches!(err, Error::DeadlineExceeded(_)), "{err}");
        assert!(ran.into_inner() < 1024, "expiry must abandon queued tasks");
    }

    #[test]
    fn an_externally_cancelled_token_surfaces_cancelled() {
        let cancel = AtomicBool::new(false);
        let token = CancelToken::new();
        token.cancel();
        let err = run_scheduler(
            (0..16).collect::<Vec<u32>>(),
            vec![(); 2],
            &cancel,
            Some(&token),
            |_t, _s, _c: &TaskCtx<'_, u32>| {},
            |_, ()| {},
            || (),
        )
        .unwrap_err();
        assert!(matches!(err, Error::Cancelled(_)), "{err}");
    }

    #[test]
    fn the_plain_cancel_flag_alone_is_not_an_error() {
        // The streaming sink's abandon-on-drop path: local flag set, token
        // (if any) live — the partial run is a normal return.
        let cancel = AtomicBool::new(false);
        let token = CancelToken::new();
        let (stats, ()) = run_scheduler(
            (0..64).collect::<Vec<u32>>(),
            vec![(); 2],
            &cancel,
            Some(&token),
            |_t, _s, _c: &TaskCtx<'_, u32>| {
                cancel.store(true, Ordering::Relaxed);
            },
            |_, ()| {},
            || (),
        )
        .unwrap();
        assert_eq!(stats.len(), 2);
    }
}
