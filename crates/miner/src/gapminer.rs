//! Gap-constrained pattern growth with optional hierarchy generalization —
//! the local miner of MG-FSM and LASH.
//!
//! Mines sequences `S = s1...sk` with `min_len <= k <= max_len` such that
//! there are positions `i1 < ... < ik` in the input with
//! `i_{j+1} - i_j - 1 <= gamma` (at most γ uncaptured items between
//! consecutive matches) and `t_{i_j}` generalizes to `s_j` (with
//! `generalize = false`, items must match exactly). These are exactly the
//! candidate sets of the paper's traditional constraints
//! `T2(σ, γ, λ) = (.)[.{0,γ}(.)]{1,λ-1}` (no hierarchy) and
//! `T3(σ, γ, λ) = (.^)[.{0,γ}(.^)]{1,λ-1}` (hierarchy), which is asserted by
//! cross-validation tests against the FST-based miners.
//!
//! Like [`crate::LocalMiner`], the miner supports pivot restrictions so it
//! can serve as the reduce phase of the LASH-style distributed baseline.

use desq_core::fx::FxHashMap;
use desq_core::{Dictionary, ItemId, Sequence, SequenceDb};

/// Gap/length/hierarchy-constrained miner configuration.
#[derive(Debug, Clone, Copy)]
pub struct GapMiner {
    /// Minimum support threshold σ.
    pub sigma: u64,
    /// Maximum gap γ between consecutive matched positions.
    pub gamma: usize,
    /// Maximum pattern length λ.
    pub max_len: usize,
    /// Minimum pattern length (2 for the paper's T2/T3 constraints).
    pub min_len: usize,
    /// Generalize matched items along the hierarchy (LASH) or not (MG-FSM).
    pub generalize: bool,
    /// Expansions never use items greater than this (pivot partitioning).
    pub max_item: Option<ItemId>,
    /// Only emit sequences containing this item.
    pub require_pivot: Option<ItemId>,
}

impl GapMiner {
    /// Sequential miner for the T2/T3 constraint family.
    pub fn new(sigma: u64, gamma: usize, max_len: usize, generalize: bool) -> GapMiner {
        GapMiner {
            sigma,
            gamma,
            max_len,
            min_len: 2,
            generalize,
            max_item: None,
            require_pivot: None,
        }
    }

    /// Restricts the miner to pivot `k` (LASH partitions).
    pub fn for_pivot(mut self, k: ItemId) -> GapMiner {
        self.max_item = Some(k);
        self.require_pivot = Some(k);
        self
    }

    /// Mines a database (weight 1 per sequence).
    pub fn mine(&self, db: &SequenceDb, dict: &Dictionary) -> Vec<(Sequence, u64)> {
        let inputs: Vec<(Sequence, u64)> = db.sequences.iter().map(|s| (s.clone(), 1)).collect();
        self.mine_weighted(&inputs, dict)
    }

    /// Mines a weighted collection.
    pub fn mine_weighted(
        &self,
        inputs: &[(Sequence, u64)],
        dict: &Dictionary,
    ) -> Vec<(Sequence, u64)> {
        let mut out = Vec::new();
        if self.max_len < self.min_len || self.sigma == 0 {
            return out;
        }
        let last_frequent = dict.last_frequent(self.sigma);
        // Root: match the first pattern item at any position.
        let mut children: FxHashMap<ItemId, Vec<(u32, u32)>> = FxHashMap::default();
        for (s, (seq, _)) in inputs.iter().enumerate() {
            for (p, &t) in seq.iter().enumerate() {
                self.outputs(t, dict, last_frequent, |w| {
                    children.entry(w).or_default().push((s as u32, p as u32));
                });
            }
        }
        let mut prefix = Vec::new();
        self.grow(inputs, dict, last_frequent, children, &mut prefix, &mut out);
        out.sort();
        out
    }

    /// Emits the (filtered) output items for input item `t`.
    fn outputs(
        &self,
        t: ItemId,
        dict: &Dictionary,
        last_frequent: ItemId,
        mut f: impl FnMut(ItemId),
    ) {
        if t == desq_core::EPSILON {
            // ε doubles as the blank symbol in LASH-style rewrites: it
            // occupies a position (counts toward gaps) but never matches.
            return;
        }
        let max_item = self.max_item.unwrap_or(ItemId::MAX);
        if self.generalize {
            for &a in dict.ancestors(t) {
                if a <= last_frequent && a <= max_item {
                    f(a);
                }
            }
        } else if t <= last_frequent && t <= max_item {
            f(t);
        }
    }

    fn grow(
        &self,
        inputs: &[(Sequence, u64)],
        dict: &Dictionary,
        last_frequent: ItemId,
        children: FxHashMap<ItemId, Vec<(u32, u32)>>,
        prefix: &mut Sequence,
        out: &mut Vec<(Sequence, u64)>,
    ) {
        let mut items: Vec<ItemId> = children.keys().copied().collect();
        items.sort_unstable();
        for w in items {
            let mut entries = children[&w].clone();
            entries.sort_unstable();
            entries.dedup();
            // Weighted support: distinct sequences present in the projection.
            let mut support = 0u64;
            let mut last = u32::MAX;
            for &(s, _) in &entries {
                if s != last {
                    support += inputs[s as usize].1;
                    last = s;
                }
            }
            if support < self.sigma {
                continue;
            }
            prefix.push(w);
            if prefix.len() >= self.min_len {
                let pivot_ok = match self.require_pivot {
                    Some(k) => prefix.contains(&k),
                    None => true,
                };
                if pivot_ok {
                    out.push((prefix.clone(), support));
                }
            }
            if prefix.len() < self.max_len {
                // Next matches within gap γ of the previous position.
                let mut next: FxHashMap<ItemId, Vec<(u32, u32)>> = FxHashMap::default();
                for &(s, p) in &entries {
                    let seq = &inputs[s as usize].0;
                    let lo = p as usize + 1;
                    let hi = (lo + self.gamma).min(seq.len().saturating_sub(1));
                    for q in lo..=hi.min(seq.len().wrapping_sub(1)) {
                        if q >= seq.len() {
                            break;
                        }
                        self.outputs(seq[q], dict, last_frequent, |v| {
                            next.entry(v).or_default().push((s, q as u32));
                        });
                    }
                }
                self.grow(inputs, dict, last_frequent, next, prefix, out);
            }
            prefix.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desq_core::toy;

    #[test]
    fn gap_constraint_enforced() {
        let fx = toy::fixture();
        // T1 = a1 c d c b: with γ = 0 only adjacent pairs match.
        let db = SequenceDb::new(vec![fx.db.sequences[0].clone()]);
        let m = GapMiner::new(1, 0, 2, false);
        let out = m.mine(&db, &fx.dict);
        let rendered: Vec<String> = out.iter().map(|(s, _)| fx.dict.render(s)).collect();
        assert_eq!(rendered, vec!["d c", "a1 c", "c b", "c d"]); // fid order
    }

    #[test]
    fn larger_gap_allows_skips() {
        let fx = toy::fixture();
        let db = SequenceDb::new(vec![fx.db.sequences[0].clone()]); // a1 c d c b
        let m = GapMiner::new(1, 1, 2, false);
        let out = m.mine(&db, &fx.dict);
        let rendered: Vec<String> = out.iter().map(|(s, _)| fx.dict.render(s)).collect();
        // pairs with gap <= 1
        assert!(rendered.contains(&"a1 d".to_string()));
        assert!(rendered.contains(&"d b".to_string()));
        assert!(!rendered.contains(&"a1 b".to_string()), "gap 3 > 1");
    }

    #[test]
    fn hierarchy_generalization() {
        let fx = toy::fixture();
        // T5 = a1 a1 b, generalize: a1 → {a1, A}.
        let db = SequenceDb::new(vec![fx.db.sequences[4].clone()]);
        let m = GapMiner::new(1, 0, 2, true);
        let out = m.mine(&db, &fx.dict);
        let rendered: Vec<String> = out.iter().map(|(s, _)| fx.dict.render(s)).collect();
        for want in ["a1 a1", "a1 A", "A a1", "A A", "a1 b", "A b"] {
            assert!(
                rendered.contains(&want.to_string()),
                "missing {want}: {rendered:?}"
            );
        }
    }

    #[test]
    fn max_len_and_min_len() {
        let fx = toy::fixture();
        let db = SequenceDb::new(vec![fx.db.sequences[0].clone()]);
        let mut m = GapMiner::new(1, 4, 3, false);
        m.min_len = 3;
        let out = m.mine(&db, &fx.dict);
        assert!(out.iter().all(|(s, _)| s.len() == 3));
        assert!(!out.is_empty());
    }

    #[test]
    fn pivot_restriction() {
        let fx = toy::fixture();
        let m = GapMiner::new(1, 1, 2, false).for_pivot(fx.d);
        let out = m.mine(&fx.db, &fx.dict);
        // every output contains d and nothing larger
        for (s, _) in &out {
            assert!(s.contains(&fx.d));
            assert!(s.iter().all(|&w| w <= fx.d));
        }
        assert!(!out.is_empty());
    }

    #[test]
    fn infrequent_items_never_expanded() {
        let fx = toy::fixture();
        // σ = 2: e (fid 6) and a2 (fid 7) are infrequent.
        let m = GapMiner::new(2, 2, 3, true);
        let out = m.mine(&fx.db, &fx.dict);
        for (s, _) in &out {
            assert!(s.iter().all(|&w| w <= 5), "{s:?}");
        }
    }
}
