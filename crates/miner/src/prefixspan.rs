//! PrefixSpan (Pei et al., ICDE '01) with a maximum-length constraint.
//!
//! Mines *all* subsequences (arbitrary gaps, no hierarchy) of length
//! `1..=max_len` — the semantics of the paper's constraint
//! `T1(σ, λ) = (.)[.*(.)]{,λ-1}` and of Spark MLlib's PrefixSpan. Uses
//! pseudo-projection: a projected database is a list of
//! `(sequence, suffix start)` pairs; support counting uses the first
//! occurrence of each item in each suffix.

use desq_core::fx::{FxHashMap, FxHashSet};
use desq_core::{ItemId, Sequence, SequenceDb};

/// PrefixSpan configuration.
#[derive(Debug, Clone, Copy)]
pub struct PrefixSpan {
    /// Minimum support threshold σ.
    pub sigma: u64,
    /// Maximum pattern length λ.
    pub max_len: usize,
}

impl PrefixSpan {
    /// Creates a miner with threshold `sigma` and maximum length `max_len`.
    pub fn new(sigma: u64, max_len: usize) -> PrefixSpan {
        PrefixSpan { sigma, max_len }
    }

    /// Mines the database; returns `(pattern, frequency)` sorted
    /// lexicographically.
    pub fn mine(&self, db: &SequenceDb) -> Vec<(Sequence, u64)> {
        self.mine_weighted(
            &db.sequences
                .iter()
                .map(|s| (s.clone(), 1))
                .collect::<Vec<_>>(),
        )
    }

    /// Mines a weighted collection (weights scale support counts).
    pub fn mine_weighted(&self, inputs: &[(Sequence, u64)]) -> Vec<(Sequence, u64)> {
        let mut out = Vec::new();
        if self.max_len == 0 || self.sigma == 0 {
            return out;
        }
        // Root projection: every sequence from position 0.
        let proj: Vec<(u32, u32)> = (0..inputs.len()).map(|i| (i as u32, 0)).collect();
        let mut prefix = Vec::new();
        self.expand(inputs, &proj, &mut prefix, &mut out);
        out.sort();
        out
    }

    fn expand(
        &self,
        inputs: &[(Sequence, u64)],
        proj: &[(u32, u32)],
        prefix: &mut Sequence,
        out: &mut Vec<(Sequence, u64)>,
    ) {
        // For each item: weighted support and the projected entries
        // (first occurrence per sequence suffices for both).
        let mut support: FxHashMap<ItemId, u64> = FxHashMap::default();
        let mut children: FxHashMap<ItemId, Vec<(u32, u32)>> = FxHashMap::default();
        let mut seen: FxHashSet<ItemId> = FxHashSet::default();
        for &(s, start) in proj {
            let (seq, w) = &inputs[s as usize];
            seen.clear();
            for (ofs, &t) in seq[start as usize..].iter().enumerate() {
                if seen.insert(t) {
                    *support.entry(t).or_insert(0) += w;
                    children
                        .entry(t)
                        .or_default()
                        .push((s, start + ofs as u32 + 1));
                }
            }
        }

        let mut items: Vec<ItemId> = support
            .iter()
            .filter(|&(_, &f)| f >= self.sigma)
            .map(|(&w, _)| w)
            .collect();
        items.sort_unstable();
        for w in items {
            prefix.push(w);
            out.push((prefix.clone(), support[&w]));
            if prefix.len() < self.max_len {
                let child = &children[&w];
                self.expand(inputs, child, prefix, out);
            }
            prefix.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db(seqs: &[&[ItemId]]) -> SequenceDb {
        SequenceDb::new(seqs.iter().map(|s| s.to_vec()).collect())
    }

    #[test]
    fn mines_all_subsequences_up_to_max_len() {
        // D = { [1,2,3], [1,3], [2,3] }
        let db = db(&[&[1, 2, 3], &[1, 3], &[2, 3]]);
        let ps = PrefixSpan::new(2, 2);
        let out = ps.mine(&db);
        assert_eq!(
            out,
            vec![
                (vec![1], 2),
                (vec![1, 3], 2),
                (vec![2], 2),
                (vec![2, 3], 2),
                (vec![3], 3),
            ]
        );
    }

    #[test]
    fn max_len_limits_depth() {
        let db = db(&[&[1, 2, 3], &[1, 2, 3]]);
        let out1 = PrefixSpan::new(2, 1).mine(&db);
        assert!(out1.iter().all(|(s, _)| s.len() == 1));
        let out3 = PrefixSpan::new(2, 3).mine(&db);
        assert!(out3.contains(&(vec![1, 2, 3], 2)));
    }

    #[test]
    fn gaps_are_arbitrary() {
        let db = db(&[&[1, 9, 9, 9, 2], &[1, 2]]);
        let out = PrefixSpan::new(2, 2).mine(&db);
        assert!(out.contains(&(vec![1, 2], 2)));
    }

    #[test]
    fn repeated_items_counted_once_per_sequence() {
        let db = db(&[&[5, 5, 5], &[5]]);
        let out = PrefixSpan::new(2, 1).mine(&db);
        assert_eq!(out, vec![(vec![5], 2)]);
    }

    #[test]
    fn weights_scale_support() {
        let inputs = vec![(vec![1, 2], 3u64), (vec![1], 2)];
        let out = PrefixSpan::new(5, 2).mine_weighted(&inputs);
        assert_eq!(out, vec![(vec![1], 5)]);
    }

    #[test]
    fn empty_inputs() {
        assert!(PrefixSpan::new(1, 3)
            .mine(&SequenceDb::default())
            .is_empty());
        assert!(PrefixSpan::new(1, 0).mine(&db(&[&[1]])).is_empty());
    }
}
