//! DESQ-DFS: pattern growth over `(sequence, position, state)` projections.
//!
//! Mining starts with the empty prefix and expands it by one output item at
//! a time, forming a search tree (Fig. 6 of the paper). Each node holds a
//! *projected database*: snapshots `(T, i, q)` from which the prefix can be
//! produced — sequence `T`, last-read position `i`, current FST state `q`.
//! Expanding a node resumes FST simulation from every snapshot: transitions
//! with ε output are followed silently; the first transition that produces
//! output extends the prefix.
//!
//! A prefix is *emitted* when enough (weighted) sequences can complete it —
//! i.e. consume their remaining items with ε output and end in a final
//! state. A node is *expanded* while enough sequences remain in its
//! projection (prefix support is antimonotone; π-support is not).
//!
//! # Hot-path layout
//!
//! FST simulation state is precomputed once per input sequence into flat,
//! bit-packed [`SeqTables`]: per-position *match masks* (one bit per FST
//! transition), aliveness and ε-completion bitsets over the
//! `(position, state)` grid, and the output sets of every
//! `(position, output label)` pair — already filtered and materialized into
//! a per-sequence arena. The DFS walks a compact per-state transition index
//! of the FST (L1-resident) and resolves matches, aliveness and outputs as
//! bit tests and arena slices: no ancestor binary searches, no output
//! re-materialization, no dictionary access. Projected databases are
//! sorted posting-list runs in per-depth reusable buffers instead of
//! per-node hash maps, and the ε-closure walk deduplicates coordinates in a
//! bitset.
//!
//! Search-tree exploration parallelizes with the work-stealing scheduler
//! of [`crate::sched`] ([`LocalMiner::mine_with_workers`]): the root's
//! first-level children seed the task pool, each worker descends its
//! subtree depth-first with its own scratch arenas over the shared tables,
//! and shallow nodes split trailing child subtrees off as stealable tasks
//! while the worker's deque runs short ([`SchedConfig`]). DESQ's search
//! trees are heavily skewed, so dynamic stealing — not static sharding —
//! is what keeps all workers busy. Results stay oracle-identical at any
//! worker count: every pattern is emitted by exactly one subtree and the
//! merged set is sorted once.
//!
//! [`LocalMiner`] adds the partition-local restrictions of D-SEQ
//! (Sec. V-C): at partition `P_k` no expansion uses items `> k`, only pivot
//! sequences (max item = `k`) are emitted, and the *early stopping*
//! heuristic drops snapshots that can no longer produce the pivot item.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::Instant;

use desq_core::fst::FstIndex;
use desq_core::mining::{panic_message, CancelToken};
#[cfg(test)]
use desq_core::SequenceDb;
use desq_core::{Dictionary, Error, Fst, ItemId, Result, Sequence, EPSILON};

use crate::sched::{self, SchedConfig, TaskCtx, WorkerStats};

/// Configuration of a [`LocalMiner`].
#[derive(Debug, Clone, Copy)]
pub struct MinerConfig {
    /// Minimum support threshold σ.
    pub sigma: u64,
    /// If set, expansions never use items greater than this (item-based
    /// partitioning: partition `P_k` owns no sequence with items `> k`).
    pub max_item: Option<ItemId>,
    /// If set, only sequences containing this item (their pivot, given
    /// `max_item = Some(k)`) are emitted.
    pub require_pivot: Option<ItemId>,
    /// Early-stopping heuristic (Sec. V-C): per input sequence, determine
    /// the last position that can produce the pivot item and stop using the
    /// sequence for non-pivot prefixes beyond it. Only effective when
    /// `require_pivot` is set.
    pub early_stop: bool,
    /// Largest fid considered frequent. `None` derives it from `sigma` and
    /// the dictionary's f-list; distributed callers pass the value computed
    /// on the *global* database, which stays correct when local inputs are
    /// weighted aggregates.
    pub last_frequent: Option<ItemId>,
}

impl MinerConfig {
    /// Unrestricted sequential mining at threshold `sigma`.
    pub fn sequential(sigma: u64) -> MinerConfig {
        MinerConfig {
            sigma,
            max_item: None,
            require_pivot: None,
            early_stop: false,
            last_frequent: None,
        }
    }

    /// Partition-local mining for pivot `k` (used by D-SEQ).
    pub fn for_pivot(sigma: u64, k: ItemId, early_stop: bool) -> MinerConfig {
        MinerConfig {
            sigma,
            max_item: Some(k),
            require_pivot: Some(k),
            early_stop,
            last_frequent: None,
        }
    }

    /// Overrides the frequent-item boundary (see `last_frequent`).
    pub fn with_last_frequent(mut self, fid: ItemId) -> MinerConfig {
        self.last_frequent = Some(fid);
        self
    }
}

/// One weighted input sequence, borrowed from its owner (the database, or a
/// reducer's decoded aggregate) — local mining never copies item data.
pub type WeightedInput<'s> = (&'s [ItemId], u64);

/// What a parallel mining run returns: the (pattern, frequency) pairs in
/// discovery order plus the per-worker scheduler stats.
pub type MinedPatterns = (Vec<(Sequence, u64)>, Vec<WorkerStats>);

/// Pattern-growth miner over a set of weighted input sequences.
pub struct LocalMiner<'a> {
    fst: &'a Fst,
    dict: &'a Dictionary,
    config: MinerConfig,
    /// Largest frequent fid, resolved once at construction.
    last_frequent: ItemId,
    /// Derived per-state transition index ([`FstIndex`]) — owned by
    /// default, borrowed when the caller amortizes one index across many
    /// miners (D-SEQ builds a miner per pivot partition over one FST).
    index: IndexHolder<'a>,
    /// Largest frequent vocabulary that still uses dense (vocabulary-
    /// indexed) node grouping; larger vocabularies sort instead. Only
    /// tests override [`MAX_DENSE_ITEMS`].
    dense_limit: usize,
    /// Task-splitting knobs of the work-stealing scheduler (see
    /// [`SchedConfig`]); irrelevant at `workers = 1`.
    sched: SchedConfig,
}

/// One stealable unit of search-tree work: an owned subtree root. The
/// postings are copied out of the producer's depth buffers so the task can
/// outlive them and move across threads; only shallow nodes are split (see
/// [`SchedConfig::split_depth`]), so the copies stay rare and small
/// relative to the mining they unlock.
struct MineTask {
    /// Items on the path from the search-tree root to this node.
    prefix: Sequence,
    /// The node's projected database.
    postings: Vec<Posting>,
    /// Whether the prefix already contains the required pivot.
    has_pivot: bool,
    /// The node's precomputed ε-completion (emission) support.
    emit: u64,
}

/// Owned-or-shared [`FstIndex`] (see [`LocalMiner::with_index`]).
enum IndexHolder<'a> {
    Owned(Box<FstIndex>),
    Shared(&'a FstIndex),
}

impl IndexHolder<'_> {
    #[inline]
    fn get(&self) -> &FstIndex {
        match self {
            IndexHolder::Owned(ix) => ix,
            IndexHolder::Shared(ix) => ix,
        }
    }
}

/// One projected-database posting, packed
/// `extension item ‖ input index ‖ last-read position ‖ ε-flag ‖ state`
/// (32 + 32 + 32 + 1 + 31 bits, most significant first). The item is the
/// output that led into this node (the root uses ε); packing it into the
/// top bits makes a plain integer sort group postings into per-child runs
/// with branchless compares. The ε-flag caches the coordinate's
/// ε-completion bit so support counting never touches the tables again.
type Posting = u128;

const EPS_FLAG: u32 = 1 << 31;

#[inline]
fn posting(w: ItemId, s: u32, i: u32, q: u32, eps: bool) -> Posting {
    let q = q | if eps { EPS_FLAG } else { 0 };
    (w as u128) << 96 | (s as u128) << 64 | (i as u128) << 32 | q as u128
}

#[inline]
fn p_item(p: Posting) -> ItemId {
    (p >> 96) as u32
}

#[inline]
fn p_seq(p: Posting) -> u32 {
    (p >> 64) as u32
}

#[inline]
fn p_pos(p: Posting) -> u32 {
    (p >> 32) as u32
}

#[inline]
fn p_state(p: Posting) -> u32 {
    p as u32 & !EPS_FLAG
}

#[inline]
fn p_eps(p: Posting) -> bool {
    p as u32 & EPS_FLAG != 0
}

/// Flat per-sequence simulation tables for one input collection, built by
/// [`LocalMiner::prepare_tables`] and immutable during the DFS.
///
/// Everything the search-tree expansion needs about the input sequences is
/// precomputed here, bit-packed to keep the per-node memory traffic low.
/// Per sequence:
///
/// * *match masks* — bit `δ` of position `i`'s mask is set iff FST
///   transition `δ` matches the input item at `i` *and* its target lies on
///   an accepting run (the position–state grid of Sec. V-A, folded into
///   the match bits — one bit test replaces the ancestor binary search
///   plus the grid lookup);
/// * `eps_fin` — bitset memoizing "the rest of the sequence can be consumed
///   producing only ε, ending in a final state" (the emission test);
/// * `offsets`/`outs` — for every `(position, output label)` pair, an
///   arena slice holding the label's output set on the position's item,
///   already filtered by the `max_item` partition bound, the frequent-item
///   boundary and the early-stopping heuristic.
///
/// All per-sequence data lives in **shared arenas** with one descriptor
/// (`SeqMeta`) per sequence: building tables for N inputs costs a
/// constant number of allocations, not 4·N — D-SEQ's reducers build these
/// for every `(pivot, rewritten sequence)` record, where per-table heap
/// churn used to dominate the whole reduce phase.
///
/// Sequences without an accepting run get an empty table (`accepts(s)` is
/// `false`) and are skipped by the root projection.
pub struct SeqTables {
    metas: Vec<SeqMeta>,
    mask: Vec<u64>,
    eps_fin: Vec<u64>,
    offsets: Vec<OutRef>,
    /// Arena of precomputed output items, sliced by `offsets` (indices
    /// relative to each sequence's `outs_start`).
    outs: Vec<ItemId>,
}

/// Per-sequence descriptor into the [`SeqTables`] arenas.
struct SeqMeta {
    weight: u64,
    /// True iff the FST accepts the sequence.
    accepts: bool,
    len: usize,
    num_states: usize,
    words: usize,
    num_labels: usize,
    mask_start: usize,
    eps_start: usize,
    off_start: usize,
    outs_start: usize,
}

/// One filtered output set as an arena slice (relative to the sequence's
/// `outs_start`); `start..mid` survives early stopping even while the
/// prefix lacks the pivot item, `mid..end` only once it has it.
#[derive(Clone, Copy, Default)]
struct OutRef {
    start: u32,
    mid: u32,
    end: u32,
}

/// Borrowed per-sequence view into the [`SeqTables`] arenas — the same
/// shape the DFS walked when each sequence owned its buffers, constructed
/// once per sequence per node.
#[derive(Clone, Copy)]
struct TableView<'a> {
    weight: u64,
    accepts: bool,
    len: usize,
    num_states: usize,
    words: usize,
    num_labels: usize,
    mask: &'a [u64],
    eps_fin: &'a [u64],
    offsets: &'a [OutRef],
    outs: &'a [ItemId],
}

impl TableView<'_> {
    #[inline]
    fn eps_fin_bit(&self, cell: usize) -> bool {
        self.eps_fin[cell / 64] >> (cell % 64) & 1 != 0
    }
}

impl SeqTables {
    fn new() -> SeqTables {
        SeqTables {
            metas: Vec::new(),
            mask: Vec::new(),
            eps_fin: Vec::new(),
            offsets: Vec::new(),
            outs: Vec::new(),
        }
    }

    /// Number of input sequences the tables were built for.
    pub fn len(&self) -> usize {
        self.metas.len()
    }

    /// True iff no tables were built.
    pub fn is_empty(&self) -> bool {
        self.metas.is_empty()
    }

    /// True iff the FST accepts sequence `s` (i.e. it contributes to the
    /// root projection).
    pub fn accepts(&self, s: usize) -> bool {
        self.metas[s].accepts
    }

    /// Number of matching `(position, transition)` pairs precomputed in
    /// sequence `s`'s match masks.
    pub fn num_match_bits(&self, s: usize) -> usize {
        let m = &self.metas[s];
        if !m.accepts {
            return 0;
        }
        self.mask[m.mask_start..m.mask_start + m.len * m.words]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// The per-sequence view used by the DFS walk (rejected sequences get
    /// an empty view with `accepts == false`).
    #[inline]
    fn view(&self, s: usize) -> TableView<'_> {
        let m = &self.metas[s];
        if !m.accepts {
            return TableView {
                weight: m.weight,
                accepts: false,
                len: m.len,
                num_states: m.num_states,
                words: m.words,
                num_labels: m.num_labels,
                mask: &[],
                eps_fin: &[],
                offsets: &[],
                outs: &[],
            };
        }
        let bwords = ((m.len + 1) * m.num_states).div_ceil(64).max(1);
        TableView {
            weight: m.weight,
            accepts: true,
            len: m.len,
            num_states: m.num_states,
            words: m.words,
            num_labels: m.num_labels,
            mask: &self.mask[m.mask_start..m.mask_start + m.len * m.words],
            eps_fin: &self.eps_fin[m.eps_start..m.eps_start + bwords],
            offsets: &self.offsets[m.off_start..m.off_start + m.len * m.num_labels],
            outs: &self.outs[m.outs_start..],
        }
    }

    /// All per-sequence views, in input order.
    fn views(&self) -> Vec<TableView<'_>> {
        (0..self.metas.len()).map(|s| self.view(s)).collect()
    }

    /// Appends another set's tables (a parallel build chunk), rebasing the
    /// descriptors onto this set's arenas.
    fn append(&mut self, other: SeqTables) {
        let (mb, eb, ob, ub) = (
            self.mask.len(),
            self.eps_fin.len(),
            self.offsets.len(),
            self.outs.len(),
        );
        self.metas.extend(other.metas.into_iter().map(|m| SeqMeta {
            mask_start: m.mask_start + mb,
            eps_start: m.eps_start + eb,
            off_start: m.off_start + ob,
            outs_start: m.outs_start + ub,
            ..m
        }));
        self.mask.extend_from_slice(&other.mask);
        self.eps_fin.extend_from_slice(&other.eps_fin);
        self.offsets.extend_from_slice(&other.offsets);
        self.outs.extend_from_slice(&other.outs);
    }
}

/// The pivot-independent simulation core of one sequence: match masks with
/// grid aliveness folded in, and the ε-completion bitset.
///
/// Pivot bounds, early stopping and σ only affect the per-call output
/// arenas — never the core — so a core built once per distinct sequence
/// ([`LocalMiner::prepare_core`]) can be mined under many pivot
/// configurations via [`LocalMiner::mine_prepared`]. D-SEQ's reducers
/// cache cores per distinct shuffled payload, sharing them across all the
/// pivot partitions of a reduce bucket.
///
/// A core is valid for the `(FST, dictionary)` pair of the miner that
/// built it (any miner over the same pair works — see the
/// [`FstIndex` reuse contract](desq_core::fst::index)) and for the exact
/// item sequence passed in.
pub struct SeqCore {
    accepts: bool,
    len: usize,
    num_states: usize,
    words: usize,
    mask: Vec<u64>,
    eps_fin: Vec<u64>,
}

impl SeqCore {
    /// True iff the FST accepts the sequence this core was built from.
    pub fn accepts(&self) -> bool {
        self.accepts
    }
}

#[inline]
fn set_bit(bits: &mut [u64], i: usize) {
    bits[i / 64] |= 1 << (i % 64);
}

#[inline]
fn get_bit(bits: &[u64], i: usize) -> bool {
    bits[i / 64] >> (i % 64) & 1 != 0
}

/// Scratch reused across [`LocalMiner::prepare`] calls of one worker:
/// forward/alive grid bitsets and the output materialization buffer.
#[derive(Default)]
struct PrepareScratch {
    fwd: Vec<u64>,
    alive: Vec<u64>,
    outbuf: Vec<ItemId>,
}

impl PrepareScratch {
    /// Zeroes and resizes both grid bitsets for `bwords` words.
    fn reset(&mut self, bwords: usize) {
        self.fwd.clear();
        self.fwd.resize(bwords, 0);
        self.alive.clear();
        self.alive.resize(bwords, 0);
    }
}

/// Scratch for the ε-closure walk, reused across snapshots and nodes.
struct WalkBufs {
    /// Visited-coordinate bitset over `(i, q)` cells of the current
    /// sequence.
    visited: Vec<u64>,
    /// Cells set in `visited`, for O(|walk|) clearing.
    touched: Vec<u32>,
    /// DFS worklist of `(i, q)` coordinates.
    stack: Vec<(u32, u32)>,
}

impl WalkBufs {
    #[inline]
    fn mark(&mut self, cell: usize) -> bool {
        let fresh = !get_bit(&self.visited, cell);
        if fresh {
            set_bit(&mut self.visited, cell);
            self.touched.push(cell as u32);
        }
        fresh
    }

    fn clear(&mut self) {
        for &cell in &self.touched {
            self.visited[cell as usize / 64] &= !(1 << (cell as usize % 64));
        }
        self.touched.clear();
    }
}

/// Per-depth node scratch: the raw (unordered) child postings pushed by the
/// closure walk, the same postings grouped into per-item runs, and the run
/// directory. Buffers persist across sibling nodes of the same depth.
#[derive(Default)]
struct DepthBufs {
    raw: Vec<Posting>,
    grouped: Vec<Posting>,
    /// Per frequent child: item, its postings in `grouped`, and its
    /// ε-completion (emission) support.
    runs: Vec<(ItemId, std::ops::Range<usize>, u64)>,
}

/// Per-item accumulator of one node expansion, packed so every posting
/// push touches a single cache line: posting count (reused as the scatter
/// cursor), the last counted input index for the prefix and emission
/// supports, and the weighted supports themselves.
#[derive(Clone)]
struct ItemAcc {
    count: u32,
    last_seq: u32,
    emit_last_seq: u32,
    support: u64,
    emit_support: u64,
}

const FRESH_ACC: ItemAcc = ItemAcc {
    count: 0,
    last_seq: u32::MAX,
    emit_last_seq: u32::MAX,
    support: 0,
    emit_support: 0,
};

/// Vocabulary-indexed per-item accumulators used to group a node's child
/// postings in linear time, plus the list of touched items (for
/// O(|touched|) clearing between nodes). Empty when the frequent
/// vocabulary is too large to index densely — grouping then falls back to
/// sorting.
struct ItemStats {
    acc: Vec<ItemAcc>,
    items: Vec<ItemId>,
}

/// Largest dense item-array size; beyond this, node grouping sorts instead.
const MAX_DENSE_ITEMS: usize = 1 << 21;

impl ItemStats {
    fn new(last_frequent: ItemId, dense_limit: usize) -> ItemStats {
        let n = last_frequent as usize + 1;
        if n > dense_limit {
            return ItemStats {
                acc: Vec::new(),
                items: Vec::new(),
            };
        }
        ItemStats {
            acc: vec![FRESH_ACC; n],
            items: Vec::new(),
        }
    }

    #[inline]
    fn dense(&self) -> bool {
        !self.acc.is_empty()
    }
}

/// All reusable DFS scratch: walk buffers, item accumulators, and one
/// [`DepthBufs`] per search-tree depth (projected databases of siblings
/// reuse the same allocations).
struct ExpandBufs {
    walk: WalkBufs,
    stats: ItemStats,
    depths: Vec<DepthBufs>,
}

impl ExpandBufs {
    fn new(views: &[TableView<'_>], item_bound: ItemId, dense_limit: usize) -> ExpandBufs {
        let bits = views
            .iter()
            .filter(|v| v.accepts)
            .map(|v| (v.len + 1) * v.num_states)
            .max()
            .unwrap_or(0);
        // Dense grouping pays an O(item bound) accumulator allocation and
        // clear per miner. That amortizes over a database-sized input but
        // dwarfs the work of a tiny partition (D-SEQ reducers mine a few
        // hundred weighted sequences per pivot key), so small inputs fall
        // back to sort-based grouping regardless of vocabulary size.
        let dense_cap = dense_limit.min(16 * views.len().max(1));
        ExpandBufs {
            walk: WalkBufs {
                visited: vec![0; bits.div_ceil(64).max(1)],
                touched: Vec::new(),
                stack: Vec::new(),
            },
            stats: ItemStats::new(item_bound, dense_cap),
            depths: Vec::new(),
        }
    }
}

impl<'a> LocalMiner<'a> {
    /// Creates a miner for the given FST and dictionary.
    pub fn new(fst: &'a Fst, dict: &'a Dictionary, config: MinerConfig) -> Self {
        let last_frequent = config
            .last_frequent
            .unwrap_or_else(|| dict.last_frequent(config.sigma));
        LocalMiner {
            fst,
            dict,
            config,
            last_frequent,
            index: IndexHolder::Owned(Box::new(FstIndex::new(fst))),
            dense_limit: MAX_DENSE_ITEMS,
            sched: SchedConfig::default(),
        }
    }

    /// Creates a miner that borrows a pre-built [`FstIndex`] instead of
    /// deriving its own.
    ///
    /// The index must have been built from the same `fst` (see the
    /// [reuse contract](desq_core::fst::index)); sharing one index
    /// amortizes its construction when many miners run over one FST —
    /// D-SEQ's reducers build a [`LocalMiner`] per pivot partition.
    pub fn with_index(
        fst: &'a Fst,
        dict: &'a Dictionary,
        config: MinerConfig,
        index: &'a FstIndex,
    ) -> Self {
        let last_frequent = config
            .last_frequent
            .unwrap_or_else(|| dict.last_frequent(config.sigma));
        LocalMiner {
            fst,
            dict,
            config,
            last_frequent,
            index: IndexHolder::Shared(index),
            dense_limit: MAX_DENSE_ITEMS,
            sched: SchedConfig::default(),
        }
    }

    /// Overrides the work-stealing scheduler's task-splitting knobs — used
    /// by tests to force stealing on tiny inputs
    /// ([`SchedConfig::aggressive`]); production callers keep the default.
    pub fn with_sched(mut self, sched: SchedConfig) -> Self {
        self.sched = sched;
        self
    }

    /// Largest item the dense per-item accumulators must index: the
    /// partition bound caps it below the frequent vocabulary, so
    /// pivot-restricted miners (one per reduce key in D-SEQ) allocate
    /// `O(pivot)` instead of `O(vocabulary)` scratch.
    #[inline]
    fn item_bound(&self) -> ItemId {
        self.config
            .max_item
            .map_or(self.last_frequent, |m| m.min(self.last_frequent))
    }

    /// Forces the sort-based (sparse) node grouping regardless of
    /// vocabulary size, to test the fallback path.
    #[cfg(test)]
    fn with_sparse_grouping(mut self) -> Self {
        self.dense_limit = 0;
        self
    }

    /// Mines the weighted input collection; returns `(pattern, frequency)`
    /// pairs sorted lexicographically.
    pub fn mine(&self, inputs: &[WeightedInput<'_>]) -> Result<Vec<(Sequence, u64)>> {
        Ok(self.mine_with_workers(inputs, 1, None)?.0)
    }

    /// Builds the pivot-independent [`SeqCore`] of one sequence (the
    /// expensive half of table building: match masks, grid aliveness and
    /// the ε-completion DP).
    pub fn prepare_core(&self, seq: &[ItemId]) -> SeqCore {
        let mut scratch = PrepareScratch::default();
        let mut core = SeqCore {
            accepts: false,
            len: seq.len(),
            num_states: self.fst.num_states(),
            words: self.index.get().words(),
            mask: Vec::new(),
            eps_fin: Vec::new(),
        };
        core.accepts = self.build_core_into(seq, &mut scratch, &mut core.mask, &mut core.eps_fin);
        core
    }

    /// Mines weighted inputs whose [`SeqCore`]s were prepared earlier
    /// (possibly by a *different* miner over the same FST and dictionary):
    /// only the pivot-dependent output arenas are rebuilt under this
    /// miner's configuration. Single-threaded — the partition-per-key
    /// reducers that benefit from core sharing parallelize across keys,
    /// not within them.
    pub fn mine_prepared(&self, inputs: &[(&[ItemId], &SeqCore, u64)]) -> Vec<(Sequence, u64)> {
        let l = self.index.get().num_labels();
        let mut offsets: Vec<OutRef> = Vec::new();
        let mut outs: Vec<ItemId> = Vec::new();
        let mut starts: Vec<(usize, usize)> = Vec::with_capacity(inputs.len());
        let mut outbuf: Vec<ItemId> = Vec::new();
        for &(seq, core, _) in inputs {
            debug_assert_eq!(seq.len(), core.len, "core built from a different sequence");
            starts.push((offsets.len(), outs.len()));
            if core.accepts {
                let base = outs.len();
                self.build_outputs_into(
                    seq,
                    &core.mask,
                    &mut offsets,
                    &mut outs,
                    base,
                    &mut outbuf,
                );
            }
        }
        let views: Vec<TableView<'_>> = inputs
            .iter()
            .zip(&starts)
            .map(|(&(_, core, weight), &(o0, u0))| TableView {
                weight,
                accepts: core.accepts,
                len: core.len,
                num_states: core.num_states,
                words: core.words,
                num_labels: l,
                mask: &core.mask,
                eps_fin: &core.eps_fin,
                offsets: if core.accepts {
                    &offsets[o0..o0 + core.len * l]
                } else {
                    &[]
                },
                outs: &outs[u0..],
            })
            .collect();
        self.mine_views(&views)
    }

    /// Single-threaded mining over prepared views.
    fn mine_views(&self, views: &[TableView<'_>]) -> Vec<(Sequence, u64)> {
        let roots = self.root_postings(views);
        let mut out = Vec::new();
        let mut bufs = ExpandBufs::new(views, self.item_bound(), self.dense_limit);
        let mut prefix = Sequence::new();
        self.expand(
            views,
            &roots,
            0,
            self.config.require_pivot.is_none(),
            0,
            &mut prefix,
            &mut bufs,
            &mut |p, f| {
                out.push((p, f));
                true
            },
        );
        crate::sort_patterns(out)
    }

    /// Seeds the work-stealing scheduler: collects the root's first-level
    /// children into owned [`MineTask`]s (one per frequent child item).
    fn seed_tasks(&self, views: &[TableView<'_>], roots: &[Posting]) -> Vec<MineTask> {
        let root_has_pivot = self.config.require_pivot.is_none();
        let mut bufs = ExpandBufs::new(views, self.item_bound(), self.dense_limit);
        let mut first = DepthBufs::default();
        self.collect_children(
            views,
            roots,
            root_has_pivot,
            &mut bufs.walk,
            &mut bufs.stats,
            &mut first,
        );
        first
            .runs
            .iter()
            .map(|(w, range, emit)| MineTask {
                prefix: vec![*w],
                postings: first.grouped[range.clone()].to_vec(),
                has_pivot: root_has_pivot || Some(*w) == self.config.require_pivot,
                emit: *emit,
            })
            .collect()
    }

    /// Mines with `workers` threads using the work-stealing scheduler of
    /// [`crate::sched`]: the root's first-level children seed the task
    /// pool, idle workers steal half of a victim's queued subtrees, and
    /// shallow nodes keep splitting trailing children off as stealable
    /// tasks while the local queue is short. Per-worker results are merged
    /// and sorted once, so the output is oracle-identical at any worker
    /// count.
    ///
    /// Returns the (deterministic, sorted) patterns plus per-worker
    /// [`WorkerStats`] — one entry per worker; `workers = 1` runs inline
    /// and reports a single entry with `steals = 0`.
    ///
    /// A `cancel` token, when given, is polled cooperatively (per task on
    /// the scheduler path, per emitted pattern inline): an expired
    /// deadline or external cancel aborts with the token's
    /// [`stop_reason`](CancelToken::stop_reason), and a panicking subtree
    /// task is caught at the task boundary and surfaces as
    /// [`Error::WorkerPanicked`] instead of aborting the process.
    pub fn mine_with_workers(
        &self,
        inputs: &[WeightedInput<'_>],
        workers: usize,
        cancel: Option<&CancelToken>,
    ) -> Result<MinedPatterns> {
        let workers = workers.max(1);
        let tables = self.prepare_tables_cancellable(inputs, workers, cancel)?;
        let views = tables.views();
        let roots = self.root_postings(&views);

        if workers == 1 {
            let t0 = Instant::now();
            let mut out = Vec::new();
            let mut bufs = ExpandBufs::new(&views, self.item_bound(), self.dense_limit);
            let mut prefix = Sequence::new();
            self.expand(
                &views,
                &roots,
                0,
                self.config.require_pivot.is_none(),
                0,
                &mut prefix,
                &mut bufs,
                &mut |p, f| {
                    out.push((p, f));
                    cancel.is_none_or(|t| t.checkpoint().is_ok())
                },
            );
            if let Some(err) = cancel.and_then(CancelToken::stop_reason) {
                return Err(err);
            }
            return Ok((
                crate::sort_patterns(out),
                vec![WorkerStats::solo(t0.elapsed().as_nanos() as u64, 1)],
            ));
        }

        let seed = self.seed_tasks(&views, &roots);
        let local_cancel = AtomicBool::new(false);
        let collected: Mutex<Vec<Vec<(Sequence, u64)>>> = Mutex::new(Vec::new());
        let states: Vec<_> = (0..workers)
            .map(|_| {
                (
                    Vec::<(Sequence, u64)>::new(),
                    ExpandBufs::new(&views, self.item_bound(), self.dense_limit),
                )
            })
            .collect();
        let views = &views;
        let (stats, ()) = sched::run_scheduler(
            seed,
            states,
            &local_cancel,
            cancel,
            |task: MineTask, (out, bufs), ctx| {
                let mut prefix = task.prefix;
                self.expand_sched(
                    views,
                    &task.postings,
                    0,
                    task.has_pivot,
                    task.emit,
                    &mut prefix,
                    bufs,
                    ctx,
                    &mut |p, f| {
                        out.push((p, f));
                        true
                    },
                );
            },
            |_, (out, _)| collected.lock().unwrap().push(out),
            || (),
        )?;

        let all: Vec<(Sequence, u64)> = collected
            .into_inner()
            .unwrap()
            .into_iter()
            .flatten()
            .collect();
        Ok((crate::sort_patterns(all), stats))
    }

    /// Streams every frequent pattern to `sink` as it is discovered (DFS
    /// pre-order over the search tree), without materializing or sorting
    /// the result set. The sink returns `false` to stop mining early;
    /// `mine_each` then returns `false` as well.
    pub fn mine_each(
        &self,
        inputs: &[WeightedInput<'_>],
        sink: &mut dyn FnMut(Sequence, u64) -> bool,
    ) -> Result<bool> {
        self.mine_each_with_workers(inputs, 1, None, sink)
    }

    /// Streaming variant of [`mine_with_workers`](Self::mine_with_workers):
    /// the same work-stealing scheduler mines on `workers` threads and
    /// feeds `sink` through a bounded channel on the calling thread.
    /// Patterns arrive in an unspecified interleaving of the workers' DFS
    /// orders; a `false` from the sink cancels all workers (no further sink
    /// calls happen) and makes this return `Ok(false)` — the consumer's
    /// own early stop is not an error. A tripped `cancel` token (deadline,
    /// external abort) or a panicking subtree task aborts with the
    /// corresponding [`Error`] instead.
    pub fn mine_each_with_workers(
        &self,
        inputs: &[WeightedInput<'_>],
        workers: usize,
        cancel: Option<&CancelToken>,
        sink: &mut dyn FnMut(Sequence, u64) -> bool,
    ) -> Result<bool> {
        let workers = workers.max(1);
        let tables = self.prepare_tables_cancellable(inputs, workers, cancel)?;
        let views = tables.views();
        let roots = self.root_postings(&views);

        if workers == 1 {
            let mut bufs = ExpandBufs::new(&views, self.item_bound(), self.dense_limit);
            let mut prefix = Sequence::new();
            let completed = self.expand(
                &views,
                &roots,
                0,
                self.config.require_pivot.is_none(),
                0,
                &mut prefix,
                &mut bufs,
                &mut |p, f| cancel.is_none_or(|t| t.checkpoint().is_ok()) && sink(p, f),
            );
            if let Some(err) = cancel.and_then(CancelToken::stop_reason) {
                return Err(err);
            }
            return Ok(completed);
        }

        let seed = self.seed_tasks(&views, &roots);
        let local_cancel = AtomicBool::new(false);
        let (tx, rx) = mpsc::sync_channel::<(Sequence, u64)>(1024);
        // Worker states own their sender clone; the scheduler drops each
        // state on its worker thread when that worker finishes, so the
        // receiver disconnects exactly when mining is done.
        let states: Vec<_> = (0..workers)
            .map(|_| {
                (
                    tx.clone(),
                    ExpandBufs::new(&views, self.item_bound(), self.dense_limit),
                )
            })
            .collect();
        let views = &views;
        let cancel_ref = &local_cancel;
        let (_stats, completed) = sched::run_scheduler(
            seed,
            states,
            &local_cancel,
            cancel,
            |task: MineTask, (tx, bufs), ctx| {
                let mut prefix = task.prefix;
                let keep_going = self.expand_sched(
                    views,
                    &task.postings,
                    0,
                    task.has_pivot,
                    task.emit,
                    &mut prefix,
                    bufs,
                    ctx,
                    &mut |p, f| !cancel_ref.load(Ordering::Relaxed) && tx.send((p, f)).is_ok(),
                );
                if !keep_going {
                    cancel_ref.store(true, Ordering::Relaxed);
                }
            },
            |_, state| drop(state),
            move || {
                drop(tx);
                // Drain on the calling thread; after a cancel keep draining
                // so blocked producers can finish, but stop forwarding to
                // the sink.
                let mut completed = true;
                while let Ok((pattern, freq)) = rx.recv() {
                    if completed && !sink(pattern, freq) {
                        completed = false;
                        cancel_ref.store(true, Ordering::Relaxed);
                    }
                }
                completed
            },
        )?;
        Ok(completed)
    }

    /// Builds the flat simulation tables ([`SeqTables`]) for every input
    /// sequence, `workers` at a time. This is the preprocessing the DFS
    /// amortizes: afterwards expansion is pure bit tests and arena slices.
    /// A panic while building one sequence's tables is caught at the
    /// worker boundary and reported as [`Error::WorkerPanicked`].
    pub fn prepare_tables(
        &self,
        inputs: &[WeightedInput<'_>],
        workers: usize,
    ) -> Result<SeqTables> {
        self.prepare_tables_cancellable(inputs, workers, None)
    }

    /// [`prepare_tables`](Self::prepare_tables) with cooperative
    /// cancellation: the token is polled once per input sequence.
    fn prepare_tables_cancellable(
        &self,
        inputs: &[WeightedInput<'_>],
        workers: usize,
        cancel: Option<&CancelToken>,
    ) -> Result<SeqTables> {
        let workers = workers.max(1).min(inputs.len().max(1));
        if workers == 1 {
            let mut scratch = PrepareScratch::default();
            let mut set = SeqTables::new();
            for &(seq, w) in inputs {
                if let Some(token) = cancel {
                    token.checkpoint()?;
                }
                self.prepare_into(seq, w, &mut scratch, &mut set);
            }
            return Ok(set);
        }
        let chunk = inputs.len().div_ceil(workers);
        let results: Mutex<Vec<(usize, SeqTables)>> = Mutex::new(Vec::new());
        let panicked: Mutex<Option<String>> = Mutex::new(None);
        crossbeam::thread::scope(|s| {
            let (results, panicked) = (&results, &panicked);
            for (idx, part) in inputs.chunks(chunk).enumerate() {
                s.spawn(move |_| {
                    let run = catch_unwind(AssertUnwindSafe(|| {
                        let mut scratch = PrepareScratch::default();
                        let mut set = SeqTables::new();
                        for &(seq, w) in part {
                            if cancel.is_some_and(|t| t.checkpoint().is_err()) {
                                break;
                            }
                            self.prepare_into(seq, w, &mut scratch, &mut set);
                        }
                        set
                    }));
                    match run {
                        Ok(set) => results.lock().unwrap().push((idx, set)),
                        Err(payload) => {
                            let msg = panic_message(payload.as_ref());
                            panicked.lock().unwrap().get_or_insert(msg.clone());
                            if let Some(token) = cancel {
                                token.mark_panicked(&msg);
                            }
                        }
                    }
                });
            }
        })
        .map_err(|p| Error::WorkerPanicked(panic_message(p.as_ref())))?;
        if let Some(msg) = panicked.into_inner().unwrap() {
            return Err(Error::WorkerPanicked(msg));
        }
        if let Some(err) = cancel.and_then(CancelToken::stop_reason) {
            return Err(err);
        }
        let mut chunks = results.into_inner().unwrap();
        chunks.sort_by_key(|&(idx, _)| idx);
        let mut set = SeqTables::new();
        for (_, part) in chunks {
            set.append(part);
        }
        Ok(set)
    }

    /// Number of σ-frequent first-level children of the root node (the
    /// shard units of parallel mining). Exposed for the kernel benchmarks.
    #[doc(hidden)]
    pub fn first_level_count(&self, tables: &SeqTables) -> usize {
        let views = tables.views();
        let roots = self.root_postings(&views);
        let mut bufs = ExpandBufs::new(&views, self.item_bound(), self.dense_limit);
        let mut first = DepthBufs::default();
        self.collect_children(
            &views,
            &roots,
            self.config.require_pivot.is_none(),
            &mut bufs.walk,
            &mut bufs.stats,
            &mut first,
        );
        first.runs.len()
    }

    /// Builds one sequence's tables — match masks, grid aliveness,
    /// ε-completion DP, and the filtered output arena — appending into the
    /// set's shared arenas (no per-sequence allocation).
    fn prepare_into(
        &self,
        seq: &[ItemId],
        weight: u64,
        scratch: &mut PrepareScratch,
        set: &mut SeqTables,
    ) {
        let ix = self.index.get();
        let n = seq.len();
        let mask_start = set.mask.len();
        let eps_start = set.eps_fin.len();
        let off_start = set.offsets.len();
        let outs_start = set.outs.len();

        let accepts = self.build_core_into(seq, scratch, &mut set.mask, &mut set.eps_fin);
        if accepts {
            let (mask, offsets, outs) = (&set.mask[mask_start..], &mut set.offsets, &mut set.outs);
            self.build_outputs_into(seq, mask, offsets, outs, outs_start, &mut scratch.outbuf);
        }
        set.metas.push(SeqMeta {
            weight,
            accepts,
            len: n,
            num_states: self.fst.num_states(),
            words: ix.words(),
            num_labels: ix.num_labels(),
            mask_start,
            eps_start,
            off_start,
            outs_start,
        });
    }

    /// The pivot-independent half of table building: match masks with grid
    /// aliveness folded in, and the ε-completion bitset, appended to
    /// `mask`/`eps_fin`. Returns whether the FST accepts the sequence; on
    /// rejection the buffers are truncated back to their input lengths.
    fn build_core_into(
        &self,
        seq: &[ItemId],
        scratch: &mut PrepareScratch,
        mask_buf: &mut Vec<u64>,
        eps_buf: &mut Vec<u64>,
    ) -> bool {
        let ix = self.index.get();
        let n = seq.len();
        let qn = self.fst.num_states();
        let w = ix.words();
        let mask_start = mask_buf.len();
        let eps_start = eps_buf.len();

        // 1. Per-position match masks: one ancestor check per (position,
        //    distinct input label), never repeated afterwards.
        mask_buf.resize(mask_start + n * w, 0);
        let mask = &mut mask_buf[mask_start..];
        for (i, &t) in seq.iter().enumerate() {
            ix.fill_match_row(t, self.dict, &mut mask[i * w..(i + 1) * w]);
        }

        // 2. Forward reachability, then aliveness (the grid of Sec. V-A).
        let bwords = ((n + 1) * qn).div_ceil(64).max(1);
        scratch.reset(bwords);
        let (fwd, alive) = (&mut scratch.fwd, &mut scratch.alive);
        set_bit(fwd, self.fst.initial() as usize);
        for i in 0..n {
            let row = &mask[i * w..(i + 1) * w];
            for q in 0..qn {
                if !get_bit(fwd, i * qn + q) {
                    continue;
                }
                for tr in ix.state(q) {
                    if row[tr.word as usize] & tr.mask != 0 {
                        set_bit(fwd, (i + 1) * qn + tr.to as usize);
                    }
                }
            }
        }
        // Backward sweep fusing three row-chained passes: aliveness DP,
        // aliveness-pruning of the match bits, and the ε-completion DP.
        eps_buf.resize(eps_start + bwords, 0);
        let mask = &mut mask_buf[mask_start..];
        let eps_fin = &mut eps_buf[eps_start..];
        for q in 0..qn as u32 {
            if get_bit(fwd, n * qn + q as usize) && self.fst.is_final(q) {
                set_bit(alive, n * qn + q as usize);
            }
            if self.fst.is_final(q) {
                set_bit(eps_fin, n * qn + q as usize);
            }
        }
        for i in (0..n).rev() {
            let row = &mut mask[i * w..(i + 1) * w];
            // Aliveness of row i (from the unpruned row: transitions to
            // dead targets cannot contribute anyway).
            for q in 0..qn {
                if !get_bit(fwd, i * qn + q) {
                    continue;
                }
                let ok = ix.state(q).iter().any(|tr| {
                    row[tr.word as usize] & tr.mask != 0
                        && get_bit(alive, (i + 1) * qn + tr.to as usize)
                });
                if ok {
                    set_bit(alive, i * qn + q);
                }
            }
            // Fold aliveness into the match bits: clear every transition
            // whose target is a dead end. The walk then needs one bit test
            // per transition and the aliveness bitset itself is dropped.
            // (A dead *source* keeps its bits, but no walk ever reaches
            // it.)
            for (d, &(_, to)) in ix.inputs().iter().enumerate() {
                if !get_bit(alive, (i + 1) * qn + to as usize) {
                    row[d / 64] &= !(1 << (d % 64));
                }
            }
            // ε-completion DP over the pruned row: every coordinate the
            // DFS can query is reachable and alive, and each cell of an
            // ε-completion path from such a coordinate is itself reachable
            // and alive, so the pruned masks retain all of its
            // transitions.
            for q in 0..qn {
                let ok = ix.state(q).iter().any(|tr| {
                    tr.label < 0
                        && row[tr.word as usize] & tr.mask != 0
                        && get_bit(eps_fin, (i + 1) * qn + tr.to as usize)
                });
                if ok {
                    set_bit(eps_fin, i * qn + q);
                }
            }
        }
        if !get_bit(alive, self.fst.initial() as usize) {
            mask_buf.truncate(mask_start);
            eps_buf.truncate(eps_start);
            return false;
        }
        true
    }

    /// The pivot-*dependent* half of table building: the filtered output
    /// arena per (position, output label), appended to `offsets`/`outs`
    /// with indices relative to `outs_start`. `mask` is the sequence's
    /// alive-folded mask rows from [`Self::build_core_into`].
    fn build_outputs_into(
        &self,
        seq: &[ItemId],
        mask: &[u64],
        offsets: &mut Vec<OutRef>,
        outs: &mut Vec<ItemId>,
        outs_start: usize,
        outbuf: &mut Vec<ItemId>,
    ) {
        let ix = self.index.get();
        let w = ix.words();
        let max_item = self.config.max_item.unwrap_or(ItemId::MAX);
        let early_stop = self.config.early_stop && self.config.require_pivot.is_some();
        let pivot = self.config.require_pivot.unwrap_or(EPSILON);
        let last_pivot_pos = if early_stop {
            ix.last_pivot_position(seq, pivot, self.dict, outbuf)
                .unwrap_or(usize::MAX)
        } else {
            usize::MAX
        };
        let l = ix.num_labels();
        offsets.reserve(seq.len() * l);
        for (i, &t) in seq.iter().enumerate() {
            let row = &mask[i * w..(i + 1) * w];
            for (li, label) in ix.labels().iter().enumerate() {
                let start = (outs.len() - outs_start) as u32;
                let used = ix.label_mask(li).iter().zip(row).any(|(lm, m)| lm & m != 0);
                if !used {
                    offsets.push(OutRef::default());
                    continue;
                }
                outbuf.clear();
                label.outputs(t, self.dict, outbuf);
                // Early stopping (Sec. V-C): outputs at/after the last
                // pivot-producing position are useless while the prefix
                // still lacks the pivot — park them behind `mid`.
                let usable = |w: ItemId| w <= max_item && w <= self.last_frequent;
                let parked = |w: ItemId| early_stop && w != pivot && i >= last_pivot_pos;
                outs.extend(outbuf.iter().copied().filter(|&w| usable(w) && !parked(w)));
                let mid = (outs.len() - outs_start) as u32;
                outs.extend(outbuf.iter().copied().filter(|&w| usable(w) && parked(w)));
                offsets.push(OutRef {
                    start,
                    mid,
                    end: (outs.len() - outs_start) as u32,
                });
            }
        }
    }

    /// The root projection: every accepted sequence at `(0, initial)`.
    fn root_postings(&self, views: &[TableView<'_>]) -> Vec<Posting> {
        views
            .iter()
            .enumerate()
            .filter(|(_, v)| v.accepts)
            .map(|(s, _)| posting(EPSILON, s as u32, 0, self.fst.initial(), false))
            .collect()
    }

    /// Prefix and emission support of one child run: the weighted count of
    /// distinct input sequences with any posting, and with any
    /// ε-flagged posting. Postings must be grouped by input index.
    fn run_supports(views: &[TableView<'_>], postings: &[Posting]) -> (u64, u64) {
        let mut support = 0u64;
        let mut emit = 0u64;
        let mut last: Option<u32> = None;
        let mut last_emit: Option<u32> = None;
        for &p in postings {
            let s = p_seq(p);
            if last != Some(s) {
                last = Some(s);
                support += views[s as usize].weight;
            }
            if p_eps(p) && last_emit != Some(s) {
                last_emit = Some(s);
                emit += views[s as usize].weight;
            }
        }
        (support, emit)
    }

    /// ε-closure, child expansion and grouping of one node.
    ///
    /// Simulation resumes from the node's postings — one shared,
    /// bitset-deduplicated walk per input sequence, seeded with all of the
    /// sequence's postings (their closures overlap heavily, and the
    /// children are a set anyway) — appending one posting per output item
    /// of the output-producing steps into `d.raw`. Per-item posting counts
    /// and weighted prefix supports accumulate on the fly, so grouping is a
    /// single stable scatter into `d.grouped`: postings of children below σ
    /// are dropped without ever being ordered, and `d.runs` directs the
    /// recursion (ascending items, each run grouped by input index).
    /// Duplicate postings (same coordinate reached from several closure
    /// seeds) are tolerated — the next level's walk absorbs them, and the
    /// distinct-sequence support counting is insensitive to them.
    fn collect_children(
        &self,
        views: &[TableView<'_>],
        node: &[Posting],
        has_pivot: bool,
        walk: &mut WalkBufs,
        stats: &mut ItemStats,
        d: &mut DepthBufs,
    ) {
        let ix = self.index.get();
        let sigma = self.config.sigma;
        d.raw.clear();
        let dense = stats.dense();
        let mut idx = 0;
        while idx < node.len() {
            let s = p_seq(node[idx]);
            let t = &views[s as usize];
            let (qn, w, l) = (t.num_states, t.words, t.num_labels);
            walk.stack.clear();
            while idx < node.len() && p_seq(node[idx]) == s {
                let (i0, q0) = (p_pos(node[idx]), p_state(node[idx]));
                if ix.can_output(q0 as usize) && walk.mark(i0 as usize * qn + q0 as usize) {
                    walk.stack.push((i0, q0));
                }
                idx += 1;
            }
            while let Some((i, q)) = walk.stack.pop() {
                let iu = i as usize;
                if iu == t.len {
                    continue;
                }
                let row = &t.mask[iu * w..(iu + 1) * w];
                for tr in ix.state(q as usize) {
                    // Match + target-aliveness in one precomputed bit.
                    if row[tr.word as usize] & tr.mask == 0 {
                        continue;
                    }
                    if tr.label < 0 {
                        if iu + 1 < t.len
                            && ix.can_output(tr.to as usize)
                            && walk.mark((iu + 1) * qn + tr.to as usize)
                        {
                            walk.stack.push((i + 1, tr.to));
                        }
                        continue;
                    }
                    let or = t.offsets[iu * l + tr.label as usize];
                    let end = if has_pivot { or.end } else { or.mid };
                    if or.start == end {
                        continue;
                    }
                    let target = (iu + 1) * qn + tr.to as usize;
                    let eps = t.eps_fin_bit(target);
                    let items = &t.outs[or.start as usize..end as usize];
                    if dense {
                        for &item in items {
                            d.raw.push(posting(item, s, i + 1, tr.to, eps));
                            let a = &mut stats.acc[item as usize];
                            if a.count == 0 {
                                stats.items.push(item);
                            }
                            a.count += 1;
                            if a.last_seq != s {
                                a.last_seq = s;
                                a.support += t.weight;
                            }
                            if eps && a.emit_last_seq != s {
                                a.emit_last_seq = s;
                                a.emit_support += t.weight;
                            }
                        }
                    } else {
                        for &item in items {
                            d.raw.push(posting(item, s, i + 1, tr.to, eps));
                        }
                    }
                }
            }
            walk.clear();
        }
        d.grouped.clear();
        d.runs.clear();
        if dense {
            // Linear stable scatter: frequent items only, ascending.
            stats.items.sort_unstable();
            let mut pos = 0usize;
            for &item in &stats.items {
                let a = &mut stats.acc[item as usize];
                if a.support >= sigma {
                    let len = a.count as usize;
                    d.runs.push((item, pos..pos + len, a.emit_support));
                    a.count = pos as u32; // becomes the write cursor
                    pos += len;
                }
            }
            d.grouped.resize(pos, 0);
            for &p in &d.raw {
                let a = &mut stats.acc[p_item(p) as usize];
                if a.support >= sigma {
                    d.grouped[a.count as usize] = p;
                    a.count += 1;
                }
            }
            for &item in &stats.items {
                stats.acc[item as usize] = FRESH_ACC;
            }
            stats.items.clear();
        } else {
            // Sparse fallback: order and deduplicate, then scan for runs.
            d.raw.sort_unstable();
            d.raw.dedup();
            std::mem::swap(&mut d.raw, &mut d.grouped);
            let pairs = &d.grouped;
            let mut start = 0;
            while start < pairs.len() {
                let w = p_item(pairs[start]);
                let mut end = start;
                while end < pairs.len() && p_item(pairs[end]) == w {
                    end += 1;
                }
                let (support, emit) = Self::run_supports(views, &pairs[start..end]);
                if support >= sigma {
                    d.runs.push((w, start..end, emit));
                }
                start = end;
            }
        }
    }

    /// Expands one search-tree node; `support` is the node's precomputed
    /// ε-completion (emission) support. Returns `false` iff the sink
    /// stopped the traversal.
    #[allow(clippy::too_many_arguments)]
    fn expand(
        &self,
        views: &[TableView<'_>],
        node: &[Posting],
        depth: usize,
        has_pivot: bool,
        support: u64,
        prefix: &mut Sequence,
        bufs: &mut ExpandBufs,
        sink: &mut dyn FnMut(Sequence, u64) -> bool,
    ) -> bool {
        // Emit the prefix if enough sequences can complete it with ε output.
        if !prefix.is_empty()
            && support >= self.config.sigma
            && has_pivot
            && !sink(prefix.clone(), support)
        {
            return false;
        }

        while bufs.depths.len() <= depth {
            bufs.depths.push(DepthBufs::default());
        }
        let mut d = std::mem::take(&mut bufs.depths[depth]);
        self.collect_children(
            views,
            node,
            has_pivot,
            &mut bufs.walk,
            &mut bufs.stats,
            &mut d,
        );

        // Recurse per frequent child run (ascending item order); runs below
        // the prefix-support bound σ were already dropped while grouping.
        let mut keep_going = true;
        for (w, range, emit) in &d.runs {
            prefix.push(*w);
            let child_pivot = has_pivot || Some(*w) == self.config.require_pivot;
            keep_going = self.expand(
                views,
                &d.grouped[range.clone()],
                depth + 1,
                child_pivot,
                *emit,
                prefix,
                bufs,
                sink,
            );
            prefix.pop();
            if !keep_going {
                break;
            }
        }
        bufs.depths[depth] = d;
        keep_going
    }

    /// [`expand`](Self::expand) under the work-stealing scheduler: identical
    /// traversal and emission, but shallow nodes (task-relative `depth <
    /// sched.split_depth`) whose worker's deque is short split all child
    /// runs after the first off as stealable [`MineTask`]s instead of
    /// recursing into them. The split children are pushed *before* the
    /// inline descent into the first child, so thieves can start on them
    /// immediately.
    #[allow(clippy::too_many_arguments)]
    fn expand_sched(
        &self,
        views: &[TableView<'_>],
        node: &[Posting],
        depth: usize,
        has_pivot: bool,
        support: u64,
        prefix: &mut Sequence,
        bufs: &mut ExpandBufs,
        ctx: &TaskCtx<'_, MineTask>,
        sink: &mut dyn FnMut(Sequence, u64) -> bool,
    ) -> bool {
        if !prefix.is_empty()
            && support >= self.config.sigma
            && has_pivot
            && !sink(prefix.clone(), support)
        {
            return false;
        }

        while bufs.depths.len() <= depth {
            bufs.depths.push(DepthBufs::default());
        }
        let mut d = std::mem::take(&mut bufs.depths[depth]);
        self.collect_children(
            views,
            node,
            has_pivot,
            &mut bufs.walk,
            &mut bufs.stats,
            &mut d,
        );

        // Split trailing children off as tasks while this node is shallow
        // and the local queue is short; always keep the first child inline
        // (splitting everything would leave this worker with nothing but
        // its own bookkeeping).
        let inline_upto = if depth < self.sched.split_depth
            && d.runs.len() > 1
            && ctx.queued() < self.sched.share_limit
        {
            for (w, range, emit) in &d.runs[1..] {
                let mut task_prefix = Sequence::with_capacity(prefix.len() + 1);
                task_prefix.extend_from_slice(prefix);
                task_prefix.push(*w);
                ctx.spawn(MineTask {
                    prefix: task_prefix,
                    postings: d.grouped[range.clone()].to_vec(),
                    has_pivot: has_pivot || Some(*w) == self.config.require_pivot,
                    emit: *emit,
                });
            }
            1
        } else {
            d.runs.len()
        };

        let mut keep_going = true;
        for (w, range, emit) in &d.runs[..inline_upto] {
            prefix.push(*w);
            let child_pivot = has_pivot || Some(*w) == self.config.require_pivot;
            keep_going = self.expand_sched(
                views,
                &d.grouped[range.clone()],
                depth + 1,
                child_pivot,
                *emit,
                prefix,
                bufs,
                ctx,
                sink,
            );
            prefix.pop();
            if !keep_going {
                break;
            }
        }
        bufs.depths[depth] = d;
        keep_going
    }
}

/// Sequential DESQ-DFS over a whole database (each sequence has weight 1);
/// the tests' shorthand for the [`LocalMiner`] eager path.
#[cfg(test)]
pub(crate) fn desq_dfs_impl(
    db: &SequenceDb,
    fst: &Fst,
    dict: &Dictionary,
    sigma: u64,
) -> Vec<(Sequence, u64)> {
    let inputs: Vec<WeightedInput<'_>> = db.sequences.iter().map(|s| (s.as_slice(), 1)).collect();
    LocalMiner::new(fst, dict, MinerConfig::sequential(sigma))
        .mine(&inputs)
        .unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::desq_count::desq_count_impl;
    use desq_core::toy;

    fn unit_inputs(db: &SequenceDb) -> Vec<WeightedInput<'_>> {
        db.sequences.iter().map(|s| (s.as_slice(), 1)).collect()
    }

    #[test]
    fn matches_paper_result_on_toy() {
        let fx = toy::fixture();
        let out = desq_dfs_impl(&fx.db, &fx.fst, &fx.dict, 2);
        let rendered: Vec<(String, u64)> =
            out.iter().map(|(s, f)| (fx.dict.render(s), *f)).collect();
        assert_eq!(
            rendered,
            vec![
                ("a1 b".to_string(), 3),
                ("a1 A b".to_string(), 2),
                ("a1 a1 b".to_string(), 2),
            ]
        );
    }

    #[test]
    fn agrees_with_desq_count_across_sigmas() {
        let fx = toy::fixture();
        for sigma in 1..=5 {
            let dfs = desq_dfs_impl(&fx.db, &fx.fst, &fx.dict, sigma);
            let (cnt, _, _) =
                desq_count_impl(&fx.db, &fx.fst, &fx.dict, sigma, usize::MAX, 1, None).unwrap();
            assert_eq!(dfs, cnt, "sigma = {sigma}");
        }
    }

    #[test]
    fn parallel_workers_match_sequential_on_toy() {
        let fx = toy::fixture();
        let inputs = unit_inputs(&fx.db);
        for sigma in 1..=4 {
            let miner = LocalMiner::new(&fx.fst, &fx.dict, MinerConfig::sequential(sigma));
            let sequential = miner.mine(&inputs).unwrap();
            for workers in 2..=4 {
                let (parallel, stats) = miner.mine_with_workers(&inputs, workers, None).unwrap();
                assert_eq!(parallel, sequential, "sigma={sigma} workers={workers}");
                assert_eq!(stats.len(), workers);
                // Whenever anything was mined, at least one seed task ran.
                if !sequential.is_empty() {
                    assert!(stats.iter().map(|s| s.tasks).sum::<u64>() > 0);
                }
            }
        }
    }

    #[test]
    fn steal_forcing_scheduler_matches_sequential() {
        // Aggressive splitting scatters even the toy tree into many tiny
        // tasks; results must stay oracle-identical regardless of which
        // worker ends up mining which subtree.
        let fx = toy::fixture();
        let inputs = unit_inputs(&fx.db);
        for sigma in 1..=3 {
            let miner = LocalMiner::new(&fx.fst, &fx.dict, MinerConfig::sequential(sigma))
                .with_sched(SchedConfig::aggressive());
            let sequential = miner.mine(&inputs).unwrap();
            for workers in 2..=4 {
                let (parallel, stats) = miner.mine_with_workers(&inputs, workers, None).unwrap();
                assert_eq!(parallel, sequential, "sigma={sigma} workers={workers}");
                // Aggressive splitting makes one task per search-tree node
                // (beyond the inline-first chain), so the task count must
                // exceed the first-level seed count whenever the tree
                // branches.
                let tasks: u64 = stats.iter().map(|s| s.tasks).sum();
                assert!(tasks >= 1, "sigma={sigma} workers={workers}");
            }
        }
    }

    #[test]
    fn mine_each_streams_in_discovery_order_and_stops_on_demand() {
        let fx = toy::fixture();
        let inputs = unit_inputs(&fx.db);
        let miner = LocalMiner::new(&fx.fst, &fx.dict, MinerConfig::sequential(2));
        // Full stream matches the eager result as a set.
        let mut streamed = Vec::new();
        let completed = miner
            .mine_each(&inputs, &mut |s, f| {
                streamed.push((s, f));
                true
            })
            .unwrap();
        assert!(completed);
        assert_eq!(
            crate::sort_patterns(streamed.clone()),
            miner.mine(&inputs).unwrap()
        );
        // Early stop: the sink sees exactly one pattern.
        let mut n = 0;
        let completed = miner
            .mine_each(&inputs, &mut |_, _| {
                n += 1;
                false
            })
            .unwrap();
        assert!(!completed);
        assert_eq!(n, 1);
    }

    #[test]
    fn mine_each_early_stop_works_under_sharded_roots() {
        let fx = toy::fixture();
        let inputs = unit_inputs(&fx.db);
        let miner = LocalMiner::new(&fx.fst, &fx.dict, MinerConfig::sequential(1));
        for workers in 2..=4 {
            // Full parallel stream equals the eager result as a set.
            let mut streamed = Vec::new();
            let completed = miner
                .mine_each_with_workers(&inputs, workers, None, &mut |s, f| {
                    streamed.push((s, f));
                    true
                })
                .unwrap();
            assert!(completed, "workers = {workers}");
            assert_eq!(
                crate::sort_patterns(streamed),
                miner.mine(&inputs).unwrap(),
                "workers = {workers}"
            );
            // A cancelling sink sees exactly one pattern and the stream
            // reports the early stop.
            let mut n = 0;
            let completed = miner
                .mine_each_with_workers(&inputs, workers, None, &mut |_, _| {
                    n += 1;
                    false
                })
                .unwrap();
            assert!(!completed, "workers = {workers}");
            assert_eq!(n, 1, "workers = {workers}");
        }
    }

    #[test]
    fn pivot_restricted_mining_matches_fig6() {
        // Partition P_a1 of the paper's Fig. 6 yields a1 a1 b, a1 A b, a1 b.
        let fx = toy::fixture();
        let inputs = unit_inputs(&fx.db);
        let miner = LocalMiner::new(&fx.fst, &fx.dict, MinerConfig::for_pivot(2, fx.a1, false));
        let out = miner.mine(&inputs).unwrap();
        let rendered: Vec<(String, u64)> =
            out.iter().map(|(s, f)| (fx.dict.render(s), *f)).collect();
        assert_eq!(
            rendered,
            vec![
                ("a1 b".to_string(), 3),
                ("a1 A b".to_string(), 2),
                ("a1 a1 b".to_string(), 2),
            ]
        );
    }

    #[test]
    fn pivot_partition_c_is_empty_at_sigma2() {
        // All candidates with pivot c occur only in T1, so nothing is
        // frequent at σ = 2 in partition P_c (paper Fig. 3: P_c mines
        // nothing; a1 b would be found but has pivot a1 < c and must not be
        // emitted here).
        let fx = toy::fixture();
        let inputs = unit_inputs(&fx.db);
        for early_stop in [false, true] {
            let miner = LocalMiner::new(
                &fx.fst,
                &fx.dict,
                MinerConfig::for_pivot(2, fx.c, early_stop),
            );
            assert!(
                miner.mine(&inputs).unwrap().is_empty(),
                "early_stop = {early_stop}"
            );
        }
    }

    #[test]
    fn early_stopping_does_not_change_results() {
        let fx = toy::fixture();
        let inputs = unit_inputs(&fx.db);
        for sigma in 1..=3 {
            for k in 1..=fx.dict.max_fid() {
                let plain =
                    LocalMiner::new(&fx.fst, &fx.dict, MinerConfig::for_pivot(sigma, k, false))
                        .mine(&inputs)
                        .unwrap();
                let stopped =
                    LocalMiner::new(&fx.fst, &fx.dict, MinerConfig::for_pivot(sigma, k, true))
                        .mine(&inputs)
                        .unwrap();
                assert_eq!(plain, stopped, "sigma={sigma} k={k}");
            }
        }
    }

    #[test]
    fn union_of_pivot_partitions_equals_sequential_result() {
        // Item-based partitioning correctness: every frequent sequence is
        // found in exactly one partition.
        let fx = toy::fixture();
        let inputs = unit_inputs(&fx.db);
        for sigma in 1..=4 {
            let mut union: Vec<(Sequence, u64)> = Vec::new();
            for k in 1..=fx.dict.max_fid() {
                let part =
                    LocalMiner::new(&fx.fst, &fx.dict, MinerConfig::for_pivot(sigma, k, true))
                        .mine(&inputs)
                        .unwrap();
                union.extend(part);
            }
            union.sort();
            let seq = desq_dfs_impl(&fx.db, &fx.fst, &fx.dict, sigma);
            assert_eq!(union, seq, "sigma = {sigma}");
        }
    }

    #[test]
    fn weights_scale_support() {
        let fx = toy::fixture();
        let inputs: Vec<WeightedInput<'_>> =
            fx.db.sequences.iter().map(|s| (s.as_slice(), 10)).collect();
        // Weights are rescaled ×10, so keep the item filter of the
        // unweighted database (σ_effective = 2).
        let config = MinerConfig::sequential(20).with_last_frequent(fx.dict.last_frequent(2));
        let out = LocalMiner::new(&fx.fst, &fx.dict, config)
            .mine(&inputs)
            .unwrap();
        let rendered: Vec<(String, u64)> =
            out.iter().map(|(s, f)| (fx.dict.render(s), *f)).collect();
        assert_eq!(
            rendered,
            vec![
                ("a1 b".to_string(), 30),
                ("a1 A b".to_string(), 20),
                ("a1 a1 b".to_string(), 20),
            ]
        );
    }

    #[test]
    fn sparse_grouping_fallback_matches_dense() {
        // Huge frequent vocabularies group children by sorting instead of
        // dense per-item accumulators; both paths must agree — sequential,
        // parallel, and under pivot restrictions.
        let fx = toy::fixture();
        let inputs = unit_inputs(&fx.db);
        for sigma in 1..=3 {
            let dense = LocalMiner::new(&fx.fst, &fx.dict, MinerConfig::sequential(sigma));
            let sparse = LocalMiner::new(&fx.fst, &fx.dict, MinerConfig::sequential(sigma))
                .with_sparse_grouping();
            assert_eq!(
                dense.mine(&inputs).unwrap(),
                sparse.mine(&inputs).unwrap(),
                "sigma={sigma}"
            );
            assert_eq!(
                sparse.mine_with_workers(&inputs, 3, None).unwrap().0,
                dense.mine(&inputs).unwrap(),
                "sigma={sigma} parallel"
            );
            for k in 1..=fx.dict.max_fid() {
                for early_stop in [false, true] {
                    let cfg = MinerConfig::for_pivot(sigma, k, early_stop);
                    let dense = LocalMiner::new(&fx.fst, &fx.dict, cfg)
                        .mine(&inputs)
                        .unwrap();
                    let sparse = LocalMiner::new(&fx.fst, &fx.dict, cfg)
                        .with_sparse_grouping()
                        .mine(&inputs)
                        .unwrap();
                    assert_eq!(dense, sparse, "sigma={sigma} k={k} stop={early_stop}");
                }
            }
        }
    }

    #[test]
    fn mine_prepared_matches_mine_across_pivot_configs() {
        // Cores are pivot-independent: one core per sequence, mined under
        // every pivot configuration, must match the from-scratch miner.
        let fx = toy::fixture();
        let inputs = unit_inputs(&fx.db);
        let base = LocalMiner::new(&fx.fst, &fx.dict, MinerConfig::sequential(1));
        let cores: Vec<SeqCore> = fx
            .db
            .sequences
            .iter()
            .map(|s| base.prepare_core(s))
            .collect();
        // T3 is rejected; its core records that.
        assert!(!cores[2].accepts());
        assert!(cores[0].accepts());
        for sigma in 1..=3 {
            for k in 1..=fx.dict.max_fid() {
                for early_stop in [false, true] {
                    let cfg = MinerConfig::for_pivot(sigma, k, early_stop);
                    let miner = LocalMiner::new(&fx.fst, &fx.dict, cfg);
                    let prepared_inputs: Vec<(&[ItemId], &SeqCore, u64)> = fx
                        .db
                        .sequences
                        .iter()
                        .zip(&cores)
                        .map(|(s, c)| (s.as_slice(), c, 1))
                        .collect();
                    assert_eq!(
                        miner.mine_prepared(&prepared_inputs),
                        miner.mine(&inputs).unwrap(),
                        "sigma={sigma} k={k} stop={early_stop}"
                    );
                }
            }
        }
    }

    #[test]
    fn tables_mark_rejected_sequences_dead() {
        let fx = toy::fixture();
        let inputs = unit_inputs(&fx.db);
        let miner = LocalMiner::new(&fx.fst, &fx.dict, MinerConfig::sequential(2));
        let tables = miner.prepare_tables(&inputs, 2).unwrap();
        assert_eq!(tables.len(), fx.db.len());
        // T3 = c d c b has no accepting run; its table is empty.
        assert!(!tables.accepts(2));
        assert_eq!(tables.num_match_bits(2), 0);
        // Accepted sequences carry precomputed match bits.
        assert!(tables.accepts(0));
        assert!(tables.num_match_bits(0) > 0);
        // Parallel and sequential table building agree (the parallel path
        // rebases per-chunk arenas onto one set).
        let seq_tables = miner.prepare_tables(&inputs, 1).unwrap();
        assert_eq!(seq_tables.len(), tables.len());
        for s in 0..tables.len() {
            assert_eq!(tables.accepts(s), seq_tables.accepts(s));
            assert_eq!(tables.num_match_bits(s), seq_tables.num_match_bits(s));
        }
    }

    #[test]
    fn empty_input_yields_nothing() {
        let fx = toy::fixture();
        let out = LocalMiner::new(&fx.fst, &fx.dict, MinerConfig::sequential(1))
            .mine(&[])
            .unwrap();
        assert!(out.is_empty());
        let (out, timings) = LocalMiner::new(&fx.fst, &fx.dict, MinerConfig::sequential(1))
            .mine_with_workers(&[], 4, None)
            .unwrap();
        assert!(out.is_empty());
        assert_eq!(timings.len(), 4);
    }
}
