//! DESQ-DFS: pattern growth over `(sequence, position, state)` projections.
//!
//! Mining starts with the empty prefix and expands it by one output item at
//! a time, forming a search tree (Fig. 6 of the paper). Each node holds a
//! *projected database*: snapshots `(T, i, q)` from which the prefix can be
//! produced — sequence `T`, last-read position `i`, current FST state `q`.
//! Expanding a node resumes FST simulation from every snapshot: transitions
//! with ε output are followed silently; the first transition that produces
//! output extends the prefix.
//!
//! A prefix is *emitted* when enough (weighted) sequences can complete it —
//! i.e. consume their remaining items with ε output and end in a final
//! state. A node is *expanded* while enough sequences remain in its
//! projection (prefix support is antimonotone; π-support is not).
//!
//! [`LocalMiner`] adds the partition-local restrictions of D-SEQ
//! (Sec. V-C): at partition `P_k` no expansion uses items `> k`, only pivot
//! sequences (max item = `k`) are emitted, and the *early stopping*
//! heuristic drops snapshots that can no longer produce the pivot item.

use desq_core::fst::{Grid, OutputLabel};
use desq_core::fx::FxHashMap;
use desq_core::{Dictionary, Fst, ItemId, Sequence, SequenceDb};

/// Configuration of a [`LocalMiner`].
#[derive(Debug, Clone, Copy)]
pub struct MinerConfig {
    /// Minimum support threshold σ.
    pub sigma: u64,
    /// If set, expansions never use items greater than this (item-based
    /// partitioning: partition `P_k` owns no sequence with items `> k`).
    pub max_item: Option<ItemId>,
    /// If set, only sequences containing this item (their pivot, given
    /// `max_item = Some(k)`) are emitted.
    pub require_pivot: Option<ItemId>,
    /// Early-stopping heuristic (Sec. V-C): per input sequence, determine
    /// the last position that can produce the pivot item and stop using the
    /// sequence for non-pivot prefixes beyond it. Only effective when
    /// `require_pivot` is set.
    pub early_stop: bool,
    /// Largest fid considered frequent. `None` derives it from `sigma` and
    /// the dictionary's f-list; distributed callers pass the value computed
    /// on the *global* database, which stays correct when local inputs are
    /// weighted aggregates.
    pub last_frequent: Option<ItemId>,
}

impl MinerConfig {
    /// Unrestricted sequential mining at threshold `sigma`.
    pub fn sequential(sigma: u64) -> MinerConfig {
        MinerConfig {
            sigma,
            max_item: None,
            require_pivot: None,
            early_stop: false,
            last_frequent: None,
        }
    }

    /// Partition-local mining for pivot `k` (used by D-SEQ).
    pub fn for_pivot(sigma: u64, k: ItemId, early_stop: bool) -> MinerConfig {
        MinerConfig {
            sigma,
            max_item: Some(k),
            require_pivot: Some(k),
            early_stop,
            last_frequent: None,
        }
    }

    /// Overrides the frequent-item boundary (see `last_frequent`).
    pub fn with_last_frequent(mut self, fid: ItemId) -> MinerConfig {
        self.last_frequent = Some(fid);
        self
    }
}

/// Pattern-growth miner over a set of weighted input sequences.
pub struct LocalMiner<'a> {
    fst: &'a Fst,
    dict: &'a Dictionary,
    config: MinerConfig,
}

/// One projected-database snapshot: (input index, last-read position, state).
type Snapshot = (u32, u32, u32);

/// Per-sequence simulation tables, computed once per input sequence.
struct SeqCtx {
    weight: u64,
    grid: Grid,
    /// `eps_fin[i * |Q| + q]`: from `(i, q)`, the rest of the sequence can be
    /// consumed producing only ε, ending in a final state.
    eps_fin: Vec<bool>,
    num_states: usize,
    len: usize,
    /// Last position that can output the pivot item (`usize::MAX` = none).
    last_pivot_pos: usize,
}

impl<'a> LocalMiner<'a> {
    /// Creates a miner for the given FST and dictionary.
    pub fn new(fst: &'a Fst, dict: &'a Dictionary, config: MinerConfig) -> Self {
        LocalMiner { fst, dict, config }
    }

    /// Mines the weighted input collection; returns `(pattern, frequency)`
    /// pairs sorted lexicographically.
    pub fn mine(&self, inputs: &[(Sequence, u64)]) -> Vec<(Sequence, u64)> {
        let mut out = Vec::new();
        self.mine_each(inputs, &mut |pattern, freq| {
            out.push((pattern, freq));
            true
        });
        crate::sort_patterns(out)
    }

    /// Streams every frequent pattern to `sink` as it is discovered (DFS
    /// pre-order over the search tree), without materializing or sorting
    /// the result set. The sink returns `false` to stop mining early;
    /// `mine_each` then returns `false` as well.
    pub fn mine_each(
        &self,
        inputs: &[(Sequence, u64)],
        sink: &mut dyn FnMut(Sequence, u64) -> bool,
    ) -> bool {
        let ctxs: Vec<SeqCtx> = inputs
            .iter()
            .map(|(seq, w)| self.prepare(seq, *w))
            .collect();

        // Root projection: every accepted sequence at (0, initial).
        let mut root: Vec<Snapshot> = Vec::new();
        for (idx, ctx) in ctxs.iter().enumerate() {
            if ctx.grid.accepts() {
                root.push((idx as u32, 0, self.fst.initial()));
            }
        }

        let mut prefix: Sequence = Vec::new();
        self.expand(inputs, &ctxs, &root, &mut prefix, sink)
    }

    fn prepare(&self, seq: &[ItemId], weight: u64) -> SeqCtx {
        let grid = Grid::build(self.fst, self.dict, seq);
        let n = seq.len();
        let q = self.fst.num_states();
        let mut eps_fin = vec![false; (n + 1) * q];
        for s in 0..q as u32 {
            eps_fin[n * q + s as usize] = self.fst.is_final(s);
        }
        for i in (0..n).rev() {
            for s in 0..q as u32 {
                let ok = self.fst.transitions(s).iter().any(|tr| {
                    matches!(tr.output, OutputLabel::None)
                        && tr.matches(seq[i], self.dict)
                        && eps_fin[(i + 1) * q + tr.to as usize]
                });
                eps_fin[i * q + s as usize] = ok;
            }
        }
        let last_pivot_pos = match (self.config.require_pivot, self.config.early_stop) {
            (Some(k), true) => self
                .fst
                .last_pivot_position(seq, k, self.dict)
                .unwrap_or(usize::MAX),
            _ => usize::MAX,
        };
        SeqCtx {
            weight,
            grid,
            eps_fin,
            num_states: q,
            len: n,
            last_pivot_pos,
        }
    }

    /// Weighted count of distinct sequences with a snapshot satisfying `pred`.
    fn weighted_distinct(
        ctxs: &[SeqCtx],
        snaps: &[Snapshot],
        mut pred: impl FnMut(&SeqCtx, u32, u32) -> bool,
    ) -> u64 {
        // Snapshots are sorted by sequence index.
        let mut total = 0u64;
        let mut last: Option<u32> = None;
        for &(s, i, q) in snaps {
            if last == Some(s) {
                continue;
            }
            if pred(&ctxs[s as usize], i, q) {
                total += ctxs[s as usize].weight;
                last = Some(s);
            }
        }
        total
    }

    /// Expands one search-tree node; returns `false` iff the sink stopped
    /// the traversal.
    fn expand(
        &self,
        inputs: &[(Sequence, u64)],
        ctxs: &[SeqCtx],
        snaps: &[Snapshot],
        prefix: &mut Sequence,
        sink: &mut dyn FnMut(Sequence, u64) -> bool,
    ) -> bool {
        // Emit the prefix if enough sequences can complete it with ε output.
        if !prefix.is_empty() {
            let support = Self::weighted_distinct(ctxs, snaps, |ctx, i, q| {
                ctx.eps_fin[i as usize * ctx.num_states + q as usize]
            });
            if support >= self.config.sigma {
                let pivot_ok = match self.config.require_pivot {
                    Some(k) => prefix.contains(&k),
                    None => true,
                };
                if pivot_ok && !sink(prefix.clone(), support) {
                    return false;
                }
            }
        }

        // Build children: resume simulation from every snapshot, following
        // ε-output transitions silently until an output-producing transition
        // extends the prefix.
        let max_item = self.config.max_item.unwrap_or(ItemId::MAX);
        let last_frequent = self
            .config
            .last_frequent
            .unwrap_or_else(|| self.dict.last_frequent(self.config.sigma));
        let prefix_has_pivot = match self.config.require_pivot {
            Some(k) => prefix.contains(&k),
            None => true,
        };

        let mut children: FxHashMap<ItemId, Vec<Snapshot>> = FxHashMap::default();
        let mut outbuf: Vec<ItemId> = Vec::new();
        // ε-walk worklist and visited set, reused across snapshots.
        let mut stack: Vec<(u32, u32)> = Vec::new();
        let mut visited: Vec<(u32, u32)> = Vec::new();

        for &(s, i0, q0) in snaps {
            let ctx = &ctxs[s as usize];
            let seq = &inputs[s as usize].0;
            stack.clear();
            visited.clear();
            stack.push((i0, q0));
            visited.push((i0, q0));
            while let Some((i, q)) = stack.pop() {
                let i_us = i as usize;
                if i_us == ctx.len {
                    continue;
                }
                for tr in self.fst.transitions(q) {
                    if !tr.matches(seq[i_us], self.dict) {
                        continue;
                    }
                    if !ctx.grid.is_alive(i_us + 1, tr.to) {
                        continue;
                    }
                    if matches!(tr.output, OutputLabel::None) {
                        let coord = (i + 1, tr.to);
                        if !visited.contains(&coord) {
                            visited.push(coord);
                            stack.push(coord);
                        }
                        continue;
                    }
                    outbuf.clear();
                    tr.outputs(seq[i_us], self.dict, &mut outbuf);
                    for &w in &outbuf {
                        // fids are frequency ranks: w is frequent iff
                        // w <= last_frequent.
                        if w > max_item || w > last_frequent {
                            continue;
                        }
                        // Early stopping: if neither the prefix nor this
                        // expansion contains the pivot and no later position
                        // can produce it, the snapshot is useless.
                        if let Some(k) = self.config.require_pivot {
                            if self.config.early_stop
                                && !prefix_has_pivot
                                && w != k
                                && i_us >= ctx.last_pivot_pos
                            {
                                continue;
                            }
                        }
                        children.entry(w).or_default().push((s, i + 1, tr.to));
                    }
                }
            }
        }

        // Deterministic order; dedup snapshots; recurse while the prefix
        // support bound σ can still be met.
        let mut items: Vec<ItemId> = children.keys().copied().collect();
        items.sort_unstable();
        for w in items {
            let mut snaps = children.remove(&w).unwrap();
            snaps.sort_unstable();
            snaps.dedup();
            let prefix_support = Self::weighted_distinct(ctxs, &snaps, |_, _, _| true);
            if prefix_support < self.config.sigma {
                continue;
            }
            prefix.push(w);
            let keep_going = self.expand(inputs, ctxs, &snaps, prefix, sink);
            prefix.pop();
            if !keep_going {
                return false;
            }
        }
        true
    }
}

/// Sequential DESQ-DFS over a whole database (each sequence has weight 1).
pub(crate) fn desq_dfs_impl(
    db: &SequenceDb,
    fst: &Fst,
    dict: &Dictionary,
    sigma: u64,
) -> Vec<(Sequence, u64)> {
    let inputs: Vec<(Sequence, u64)> = db.sequences.iter().map(|s| (s.clone(), 1)).collect();
    LocalMiner::new(fst, dict, MinerConfig::sequential(sigma)).mine(&inputs)
}

/// Sequential DESQ-DFS over a whole database (each sequence has weight 1).
///
/// Note that this signature cannot surface validation errors (σ = 0 is
/// simply never frequent-checked); the session API validates σ once and
/// returns `Error::Invalid` uniformly.
#[deprecated(
    since = "0.1.0",
    note = "use desq::session::MiningSession with AlgorithmSpec::DesqDfs \
            (or desq_miner::algo::DesqDfs via the Miner trait)"
)]
pub fn desq_dfs(db: &SequenceDb, fst: &Fst, dict: &Dictionary, sigma: u64) -> Vec<(Sequence, u64)> {
    desq_dfs_impl(db, fst, dict, sigma)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::desq_count::desq_count_impl;
    use desq_core::toy;

    #[test]
    fn matches_paper_result_on_toy() {
        let fx = toy::fixture();
        let out = desq_dfs_impl(&fx.db, &fx.fst, &fx.dict, 2);
        let rendered: Vec<(String, u64)> =
            out.iter().map(|(s, f)| (fx.dict.render(s), *f)).collect();
        assert_eq!(
            rendered,
            vec![
                ("a1 b".to_string(), 3),
                ("a1 A b".to_string(), 2),
                ("a1 a1 b".to_string(), 2),
            ]
        );
    }

    #[test]
    fn agrees_with_desq_count_across_sigmas() {
        let fx = toy::fixture();
        for sigma in 1..=5 {
            let dfs = desq_dfs_impl(&fx.db, &fx.fst, &fx.dict, sigma);
            let (cnt, _) = desq_count_impl(&fx.db, &fx.fst, &fx.dict, sigma, usize::MAX).unwrap();
            assert_eq!(dfs, cnt, "sigma = {sigma}");
        }
    }

    #[test]
    fn mine_each_streams_in_discovery_order_and_stops_on_demand() {
        let fx = toy::fixture();
        let inputs: Vec<(Sequence, u64)> = fx.db.sequences.iter().map(|s| (s.clone(), 1)).collect();
        let miner = LocalMiner::new(&fx.fst, &fx.dict, MinerConfig::sequential(2));
        // Full stream matches the eager result as a set.
        let mut streamed = Vec::new();
        let completed = miner.mine_each(&inputs, &mut |s, f| {
            streamed.push((s, f));
            true
        });
        assert!(completed);
        assert_eq!(crate::sort_patterns(streamed.clone()), miner.mine(&inputs));
        // Early stop: the sink sees exactly one pattern.
        let mut n = 0;
        let completed = miner.mine_each(&inputs, &mut |_, _| {
            n += 1;
            false
        });
        assert!(!completed);
        assert_eq!(n, 1);
    }

    #[test]
    fn pivot_restricted_mining_matches_fig6() {
        // Partition P_a1 of the paper's Fig. 6 yields a1 a1 b, a1 A b, a1 b.
        let fx = toy::fixture();
        let inputs: Vec<(Sequence, u64)> = fx.db.sequences.iter().map(|s| (s.clone(), 1)).collect();
        let miner = LocalMiner::new(&fx.fst, &fx.dict, MinerConfig::for_pivot(2, fx.a1, false));
        let out = miner.mine(&inputs);
        let rendered: Vec<(String, u64)> =
            out.iter().map(|(s, f)| (fx.dict.render(s), *f)).collect();
        assert_eq!(
            rendered,
            vec![
                ("a1 b".to_string(), 3),
                ("a1 A b".to_string(), 2),
                ("a1 a1 b".to_string(), 2),
            ]
        );
    }

    #[test]
    fn pivot_partition_c_is_empty_at_sigma2() {
        // All candidates with pivot c occur only in T1, so nothing is
        // frequent at σ = 2 in partition P_c (paper Fig. 3: P_c mines
        // nothing; a1 b would be found but has pivot a1 < c and must not be
        // emitted here).
        let fx = toy::fixture();
        let inputs: Vec<(Sequence, u64)> = fx.db.sequences.iter().map(|s| (s.clone(), 1)).collect();
        for early_stop in [false, true] {
            let miner = LocalMiner::new(
                &fx.fst,
                &fx.dict,
                MinerConfig::for_pivot(2, fx.c, early_stop),
            );
            assert!(miner.mine(&inputs).is_empty(), "early_stop = {early_stop}");
        }
    }

    #[test]
    fn early_stopping_does_not_change_results() {
        let fx = toy::fixture();
        let inputs: Vec<(Sequence, u64)> = fx.db.sequences.iter().map(|s| (s.clone(), 1)).collect();
        for sigma in 1..=3 {
            for k in 1..=fx.dict.max_fid() {
                let plain =
                    LocalMiner::new(&fx.fst, &fx.dict, MinerConfig::for_pivot(sigma, k, false))
                        .mine(&inputs);
                let stopped =
                    LocalMiner::new(&fx.fst, &fx.dict, MinerConfig::for_pivot(sigma, k, true))
                        .mine(&inputs);
                assert_eq!(plain, stopped, "sigma={sigma} k={k}");
            }
        }
    }

    #[test]
    fn union_of_pivot_partitions_equals_sequential_result() {
        // Item-based partitioning correctness: every frequent sequence is
        // found in exactly one partition.
        let fx = toy::fixture();
        let inputs: Vec<(Sequence, u64)> = fx.db.sequences.iter().map(|s| (s.clone(), 1)).collect();
        for sigma in 1..=4 {
            let mut union: Vec<(Sequence, u64)> = Vec::new();
            for k in 1..=fx.dict.max_fid() {
                let part =
                    LocalMiner::new(&fx.fst, &fx.dict, MinerConfig::for_pivot(sigma, k, true))
                        .mine(&inputs);
                union.extend(part);
            }
            union.sort();
            let seq = desq_dfs_impl(&fx.db, &fx.fst, &fx.dict, sigma);
            assert_eq!(union, seq, "sigma = {sigma}");
        }
    }

    #[test]
    fn weights_scale_support() {
        let fx = toy::fixture();
        let inputs: Vec<(Sequence, u64)> =
            fx.db.sequences.iter().map(|s| (s.clone(), 10)).collect();
        // Weights are rescaled ×10, so keep the item filter of the
        // unweighted database (σ_effective = 2).
        let config = MinerConfig::sequential(20).with_last_frequent(fx.dict.last_frequent(2));
        let out = LocalMiner::new(&fx.fst, &fx.dict, config).mine(&inputs);
        let rendered: Vec<(String, u64)> =
            out.iter().map(|(s, f)| (fx.dict.render(s), *f)).collect();
        assert_eq!(
            rendered,
            vec![
                ("a1 b".to_string(), 30),
                ("a1 A b".to_string(), 20),
                ("a1 a1 b".to_string(), 20),
            ]
        );
    }

    #[test]
    fn empty_input_yields_nothing() {
        let fx = toy::fixture();
        let out = LocalMiner::new(&fx.fst, &fx.dict, MinerConfig::sequential(1)).mine(&[]);
        assert!(out.is_empty());
    }
}
