//! # desq-miner
//!
//! Local (single-machine) frequent-sequence miners:
//!
//! * [`desq_dfs`] — the DESQ-DFS pattern-growth algorithm over projected
//!   databases of `(sequence, position, FST state)` snapshots. This is both
//!   the sequential baseline of Tab. V and, through [`LocalMiner`]'s pivot
//!   restrictions and early stopping, the local mining phase of D-SEQ
//!   (Sec. V-C).
//! * [`desq_count`] — DESQ-COUNT: per-sequence candidate generation plus
//!   counting; doubles as the brute-force reference implementation that all
//!   other miners are validated against.
//! * [`prefixspan`] — classic PrefixSpan (maximum-length constraint only,
//!   arbitrary gaps, no hierarchy): the computation MLlib's distributed
//!   PrefixSpan performs, used in the Fig. 13 comparison.
//! * [`gapminer`] — pattern growth under maximum-gap / maximum-length /
//!   hierarchy constraints: the local miner of MG-FSM and LASH (Fig. 12).
//!
//! All four run behind the unified mining API through the
//! [`desq_core::mining::Miner`] adapters in [`algo`] (the deprecated
//! free-function entry points were removed; see `docs/MIGRATION.md` in the
//! repository root). Parallel runs of DESQ-DFS and DESQ-COUNT share the
//! work-stealing task scheduler in [`sched`]; DESQ-DFS additionally picks
//! between its flat-table and lean counting execution paths per run (see
//! [`algo::DesqDfs`] and `docs/ARCHITECTURE.md`).

pub mod algo;
pub mod desq_count;
pub mod desq_dfs;
pub mod gapminer;
pub mod prefixspan;
pub mod sched;

pub use desq_dfs::{LocalMiner, MinerConfig, SeqCore, SeqTables, WeightedInput};
pub use gapminer::GapMiner;
pub use prefixspan::PrefixSpan;
pub use sched::{SchedConfig, WorkerStats};

use desq_core::Sequence;

/// Sorts mining output lexicographically, in place, by value.
///
/// The results of all miners are *sets*; the lexicographic order is the
/// documented invariant of `MiningResult::patterns` (see
/// [`desq_core::mining::MiningResult`]) that makes outputs directly
/// comparable across algorithms. Patterns are distinct, so the unstable
/// sort is observationally identical to a stable one and avoids the
/// stable sort's allocation.
pub fn sort_patterns(mut patterns: Vec<(Sequence, u64)>) -> Vec<(Sequence, u64)> {
    patterns.sort_unstable();
    patterns
}
