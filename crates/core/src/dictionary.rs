//! Item dictionary: vocabulary, hierarchy, f-list and frequency encoding.
//!
//! Items are arranged in a directed acyclic graph that expresses how items
//! generalize (Sec. II of the paper): `u ⇒ v` when `u` is a child of `v`, and
//! `anc(w)` / `desc(w)` are the reflexive-transitive closures upwards and
//! downwards.
//!
//! Construction happens in two steps, mirroring the preprocessing of the
//! paper ("computing item frequencies and converting the dataset to a
//! frequency-based encoding"):
//!
//! 1. [`DictionaryBuilder`] assembles the vocabulary and hierarchy using
//!    provisional ids in insertion order, and validates acyclicity.
//! 2. [`DictionaryBuilder::freeze`] computes the *f-list* — hierarchy-aware
//!    document frequencies `f(w, D)` (the number of input sequences that
//!    contain `w` or one of its descendants) — and recodes every item to its
//!    frequency rank ("fid"): fid 1 is the most frequent item, ties broken by
//!    insertion order. The input database is recoded along.
//!
//! With this encoding the paper's total order on items (`w1 < w2` iff
//! `f(w1) > f(w2)`) is integer order on fids, "item is frequent" is
//! `fid <= dict.last_frequent(sigma)`, and the pivot item of a sequence is
//! its maximum fid.

use crate::error::{Error, Result};
use crate::fx::FxHashMap;
use crate::sequence::{ItemId, Sequence, SequenceDb, EPSILON};

/// Builder for a [`Dictionary`]. Items get provisional ids (1-based) in
/// insertion order; [`freeze`](DictionaryBuilder::freeze) converts them to
/// frequency ranks.
#[derive(Debug, Default, Clone)]
pub struct DictionaryBuilder {
    names: Vec<String>,
    index: FxHashMap<String, ItemId>,
    parents: Vec<Vec<ItemId>>,
}

impl DictionaryBuilder {
    /// Creates an empty builder. Id 0 is reserved for ε.
    pub fn new() -> Self {
        DictionaryBuilder {
            names: vec!["ε".to_string()],
            index: FxHashMap::default(),
            parents: vec![Vec::new()],
        }
    }

    /// Inserts an item (if new) and returns its provisional id.
    pub fn item(&mut self, name: &str) -> ItemId {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = self.names.len() as ItemId;
        self.names.push(name.to_string());
        self.parents.push(Vec::new());
        self.index.insert(name.to_string(), id);
        id
    }

    /// Declares that `child` generalizes directly to `parent` (`child ⇒ parent`).
    /// Both items are inserted if missing. Duplicate edges are ignored.
    pub fn edge(&mut self, child: &str, parent: &str) {
        let c = self.item(child);
        let p = self.item(parent);
        if !self.parents[c as usize].contains(&p) {
            self.parents[c as usize].push(p);
        }
    }

    /// Convenience: inserts `child` with the given parents.
    pub fn item_with_parents(&mut self, child: &str, parents: &[&str]) -> ItemId {
        let id = self.item(child);
        for p in parents {
            self.edge(child, p);
        }
        id
    }

    /// Number of items inserted so far (excluding ε).
    pub fn len(&self) -> usize {
        self.names.len() - 1
    }

    /// True if no items were inserted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Provisional id of `name`, if present.
    pub fn id_of(&self, name: &str) -> Option<ItemId> {
        self.index.get(name).copied()
    }

    /// Validates acyclicity and computes, for every item, its ancestor set
    /// (including itself) under provisional ids.
    fn ancestor_closure(&self) -> Result<Vec<Vec<ItemId>>> {
        let n = self.names.len();
        // Kahn topological order over ⇒ edges (child -> parent).
        let mut indegree = vec![0usize; n]; // number of children pointing at item
        for ps in &self.parents {
            for &p in ps {
                indegree[p as usize] += 1;
            }
        }
        let mut stack: Vec<ItemId> = (1..n as ItemId)
            .filter(|&i| indegree[i as usize] == 0)
            .collect();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = stack.pop() {
            order.push(i);
            for &p in &self.parents[i as usize] {
                indegree[p as usize] -= 1;
                if indegree[p as usize] == 0 {
                    stack.push(p);
                }
            }
        }
        if order.len() != n - 1 {
            // Some item never reached indegree 0: it lies on a cycle.
            let culprit = (1..n)
                .find(|&i| indegree[i] > 0)
                .map(|i| self.names[i].clone())
                .unwrap_or_default();
            return Err(Error::CyclicHierarchy(culprit));
        }
        // Children-before-parents order lets us propagate ancestor sets
        // bottom-up... actually we need parents computed before children, so
        // process in reverse order (parents first).
        let mut anc: Vec<Vec<ItemId>> = vec![Vec::new(); n];
        for &i in order.iter().rev() {
            let mut set = vec![i];
            for &p in &self.parents[i as usize] {
                for &a in &anc[p as usize] {
                    if !set.contains(&a) {
                        set.push(a);
                    }
                }
            }
            set.sort_unstable();
            anc[i as usize] = set;
        }
        Ok(anc)
    }

    /// Computes the f-list over `db` (sequences of provisional ids), recodes
    /// items to frequency ranks, and returns the frozen dictionary together
    /// with the recoded database.
    ///
    /// `f(w, D)` counts the input sequences containing `w` *or a descendant
    /// of `w`* (hierarchy-aware document frequency, cf. Fig. 2c where
    /// `f(A) = 4` although `A` never occurs literally).
    pub fn freeze(self, db: &SequenceDb) -> Result<(Dictionary, SequenceDb)> {
        let anc = self.ancestor_closure()?;
        let n = self.names.len();

        // Document frequencies under provisional ids.
        let mut doc_freq = vec![0u64; n];
        let mut seen: Vec<u32> = vec![u32::MAX; n]; // last sequence index that touched item
        for (t, seq) in db.sequences.iter().enumerate() {
            for &it in seq {
                debug_assert!((it as usize) < n, "sequence item out of range");
                for &a in &anc[it as usize] {
                    if seen[a as usize] != t as u32 {
                        seen[a as usize] = t as u32;
                        doc_freq[a as usize] += 1;
                    }
                }
            }
        }

        // Rank by (frequency desc, insertion order asc). fid 0 stays ε.
        let mut by_rank: Vec<ItemId> = (1..n as ItemId).collect();
        by_rank.sort_by(|&a, &b| {
            doc_freq[b as usize]
                .cmp(&doc_freq[a as usize])
                .then(a.cmp(&b))
        });
        let mut old_to_new = vec![EPSILON; n];
        for (rank, &old) in by_rank.iter().enumerate() {
            old_to_new[old as usize] = rank as ItemId + 1;
        }

        // Rebuild all id-indexed structures under fids.
        let mut names = vec!["ε".to_string()];
        let mut freqs = vec![0u64];
        let mut parents: Vec<Box<[ItemId]>> = vec![Box::from([])];
        let mut ancestors: Vec<Box<[ItemId]>> = vec![Box::from([])];
        for &old in &by_rank {
            names.push(self.names[old as usize].clone());
            freqs.push(doc_freq[old as usize]);
            let mut ps: Vec<ItemId> = self.parents[old as usize]
                .iter()
                .map(|&p| old_to_new[p as usize])
                .collect();
            ps.sort_unstable();
            parents.push(ps.into_boxed_slice());
            let mut ans: Vec<ItemId> = anc[old as usize]
                .iter()
                .map(|&a| old_to_new[a as usize])
                .collect();
            ans.sort_unstable();
            ancestors.push(ans.into_boxed_slice());
        }
        let mut children: Vec<Vec<ItemId>> = vec![Vec::new(); n];
        for (fid, ps) in parents.iter().enumerate().skip(1) {
            for &p in ps.iter() {
                children[p as usize].push(fid as ItemId);
            }
        }
        let index = names
            .iter()
            .enumerate()
            .skip(1)
            .map(|(i, s)| (s.clone(), i as ItemId))
            .collect();

        let dict = Dictionary {
            names,
            index,
            parents,
            children: children.into_iter().map(Vec::into_boxed_slice).collect(),
            ancestors,
            doc_freq: freqs,
        };

        let recoded = SequenceDb::new(
            db.sequences
                .iter()
                .map(|s| {
                    s.iter()
                        .map(|&it| old_to_new[it as usize])
                        .collect::<Sequence>()
                })
                .collect(),
        );
        Ok((dict, recoded))
    }
}

/// A frozen, frequency-encoded item dictionary with hierarchy and f-list.
#[derive(Debug, Clone)]
pub struct Dictionary {
    names: Vec<String>,
    index: FxHashMap<String, ItemId>,
    parents: Vec<Box<[ItemId]>>,
    children: Vec<Box<[ItemId]>>,
    /// Ancestors including self, sorted ascending. Indexed by fid.
    ancestors: Vec<Box<[ItemId]>>,
    /// Hierarchy-aware document frequency, non-increasing in fid.
    doc_freq: Vec<u64>,
}

impl Dictionary {
    /// Number of items (excluding ε).
    pub fn len(&self) -> usize {
        self.names.len() - 1
    }

    /// True if the dictionary holds no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Largest valid fid.
    pub fn max_fid(&self) -> ItemId {
        self.len() as ItemId
    }

    /// Resolves an item by name.
    pub fn id_of(&self, name: &str) -> Option<ItemId> {
        self.index.get(name).copied()
    }

    /// The display name of an item ("ε" for [`EPSILON`]).
    pub fn name(&self, fid: ItemId) -> &str {
        &self.names[fid as usize]
    }

    /// Renders a sequence as space-separated item names.
    pub fn render(&self, seq: &[ItemId]) -> String {
        seq.iter()
            .map(|&w| self.name(w))
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Direct generalizations (parents) of an item.
    pub fn parents(&self, fid: ItemId) -> &[ItemId] {
        &self.parents[fid as usize]
    }

    /// Direct specializations (children) of an item.
    pub fn children(&self, fid: ItemId) -> &[ItemId] {
        &self.children[fid as usize]
    }

    /// `anc(w)`: ancestors of `w` including `w`, sorted ascending by fid.
    pub fn ancestors(&self, fid: ItemId) -> &[ItemId] {
        &self.ancestors[fid as usize]
    }

    /// True iff `a ∈ anc(d)`, i.e. `d ⇒* a` (includes `a == d`).
    #[inline]
    pub fn is_ancestor(&self, a: ItemId, d: ItemId) -> bool {
        self.ancestors[d as usize].binary_search(&a).is_ok()
    }

    /// `desc(w)`: all descendants of `w` including `w` (computed on demand).
    pub fn descendants(&self, fid: ItemId) -> Vec<ItemId> {
        let mut out = vec![fid];
        let mut stack = vec![fid];
        while let Some(i) = stack.pop() {
            for &c in self.children(i) {
                if !out.contains(&c) {
                    out.push(c);
                    stack.push(c);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Hierarchy-aware document frequency `f(w, D)` from the f-list.
    #[inline]
    pub fn doc_freq(&self, fid: ItemId) -> u64 {
        self.doc_freq[fid as usize]
    }

    /// The largest fid that is still frequent at threshold `sigma`
    /// (0 if no item is frequent). Because fids are frequency ranks, an item
    /// is frequent iff `fid <= last_frequent(sigma)`.
    pub fn last_frequent(&self, sigma: u64) -> ItemId {
        // doc_freq[1..] is non-increasing; find the last index with freq >= sigma.
        let tail = &self.doc_freq[1..];
        tail.partition_point(|&f| f >= sigma) as ItemId
    }

    /// True iff `f(fid, D) >= sigma`.
    #[inline]
    pub fn is_frequent(&self, fid: ItemId, sigma: u64) -> bool {
        fid != EPSILON && self.doc_freq[fid as usize] >= sigma
    }

    /// Mean number of ancestors (including self) per item — the
    /// "mean ancestors" statistic of Tab. II.
    pub fn mean_ancestors(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let total: usize = self.ancestors.iter().skip(1).map(|a| a.len()).sum();
        total as f64 / self.len() as f64
    }

    /// Maximum number of ancestors (including self) over all items.
    pub fn max_ancestors(&self) -> usize {
        self.ancestors
            .iter()
            .skip(1)
            .map(|a| a.len())
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy;

    #[test]
    fn toy_flist_matches_paper_fig2c() {
        let fx = toy::fixture();
        let d = &fx.dict;
        // Order: b < A < d < a1 < c < e < a2 with f = 5,4,3,3,2,1,1.
        let expect = [
            ("b", 5),
            ("A", 4),
            ("d", 3),
            ("a1", 3),
            ("c", 2),
            ("e", 1),
            ("a2", 1),
        ];
        for (rank, (name, f)) in expect.iter().enumerate() {
            let fid = (rank + 1) as ItemId;
            assert_eq!(d.name(fid), *name, "rank {rank}");
            assert_eq!(d.doc_freq(fid), *f, "freq of {name}");
        }
    }

    #[test]
    fn toy_hierarchy() {
        let fx = toy::fixture();
        let d = &fx.dict;
        let (a1, a2, big_a, b) = (fx.a1, fx.a2, fx.big_a, fx.b);
        assert_eq!(d.ancestors(a1), &[big_a, a1]); // A < a1 so sorted ascending
        assert!(d.is_ancestor(big_a, a1));
        assert!(d.is_ancestor(big_a, a2));
        assert!(d.is_ancestor(a1, a1));
        assert!(!d.is_ancestor(a1, big_a));
        assert!(!d.is_ancestor(b, a1));
        let mut desc = d.descendants(big_a);
        desc.sort_unstable();
        assert_eq!(desc, vec![big_a, a1, a2]);
    }

    #[test]
    fn frequency_thresholds() {
        let fx = toy::fixture();
        let d = &fx.dict;
        // sigma = 2: frequent items are b, A, d, a1, c (fids 1..=5).
        assert_eq!(d.last_frequent(2), 5);
        assert!(d.is_frequent(fx.c, 2));
        assert!(!d.is_frequent(fx.e, 2));
        assert!(!d.is_frequent(EPSILON, 2));
        // sigma = 4: only b and A.
        assert_eq!(d.last_frequent(4), 2);
        // sigma = 1: everything.
        assert_eq!(d.last_frequent(1), 7);
        // sigma = 100: nothing.
        assert_eq!(d.last_frequent(100), 0);
    }

    #[test]
    fn recoded_database_round_trips_names() {
        let fx = toy::fixture();
        assert_eq!(fx.dict.render(&fx.db.sequences[0]), "a1 c d c b");
        assert_eq!(fx.dict.render(&fx.db.sequences[1]), "e e a1 e a1 e b");
        assert_eq!(fx.dict.render(&fx.db.sequences[3]), "a2 d b");
    }

    #[test]
    fn cyclic_hierarchy_rejected() {
        let mut b = DictionaryBuilder::new();
        b.edge("x", "y");
        b.edge("y", "z");
        b.edge("z", "x");
        let db = SequenceDb::new(vec![vec![b.id_of("x").unwrap()]]);
        let err = b.freeze(&db).unwrap_err();
        assert!(matches!(err, Error::CyclicHierarchy(_)));
    }

    #[test]
    fn self_loop_rejected() {
        let mut b = DictionaryBuilder::new();
        b.edge("x", "x");
        let db = SequenceDb::new(vec![]);
        assert!(matches!(b.freeze(&db), Err(Error::CyclicHierarchy(_))));
    }

    #[test]
    fn diamond_dag_ancestors_deduplicated() {
        // x => u, x => v, u => r, v => r : anc(x) = {x, u, v, r}
        let mut b = DictionaryBuilder::new();
        b.edge("x", "u");
        b.edge("x", "v");
        b.edge("u", "r");
        b.edge("v", "r");
        let x = b.id_of("x").unwrap();
        let db = SequenceDb::new(vec![vec![x], vec![x]]);
        let (d, _) = b.freeze(&db).unwrap();
        let xf = d.id_of("x").unwrap();
        assert_eq!(d.ancestors(xf).len(), 4);
        // All four items occur in both sequences (via closure): equal freq 2.
        for fid in 1..=4 {
            assert_eq!(d.doc_freq(fid), 2);
        }
        assert!((d.mean_ancestors() - (4 + 2 + 2 + 1) as f64 / 4.0).abs() < 1e-9);
        assert_eq!(d.max_ancestors(), 4);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut b = DictionaryBuilder::new();
        let p = b.item("p");
        let q = b.item("q");
        let db = SequenceDb::new(vec![vec![p, q]]);
        let (d, _) = b.freeze(&db).unwrap();
        assert_eq!(d.name(1), "p");
        assert_eq!(d.name(2), "q");
    }

    #[test]
    fn items_never_in_data_rank_last() {
        let mut b = DictionaryBuilder::new();
        let x = b.item("x");
        b.item("ghost");
        let db = SequenceDb::new(vec![vec![x]]);
        let (d, recoded) = b.freeze(&db).unwrap();
        assert_eq!(d.id_of("x"), Some(1));
        assert_eq!(d.id_of("ghost"), Some(2));
        assert_eq!(d.doc_freq(2), 0);
        assert_eq!(recoded.sequences, vec![vec![1]]);
    }
}
