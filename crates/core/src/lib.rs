//! # desq-core
//!
//! The DESQ computational model for frequent sequence mining (FSM) with
//! *flexible subsequence constraints*, as used by the distributed D-SEQ and
//! D-CAND algorithms of
//!
//! > A. Renz-Wieland, M. Bertsch, R. Gemulla:
//! > *Scalable Frequent Sequence Mining with Flexible Subsequence Constraints*,
//! > ICDE 2019.
//!
//! This crate provides the shared substrate:
//!
//! * [`Dictionary`]: an item vocabulary arranged in a directed acyclic
//!   *hierarchy* (items generalize to ancestors), together with the *f-list*
//!   (hierarchy-aware document frequencies) and the frequency-based item
//!   encoding of the paper. After recoding, item ids ("fids") are frequency
//!   ranks: fid 1 is the most frequent item, and the paper's total order `<`
//!   (`w1 < w2` iff `f(w1) > f(w2)`) is plain integer order. The *pivot item*
//!   of a sequence (Sec. III-B) is simply its maximum fid.
//! * [`PatEx`]: the pattern-expression language of DESQ (regular expressions
//!   with capture groups, hierarchies and generalizations), with a parser
//!   ([`PatEx::parse`]) and a pretty-printer.
//! * [`Fst`]: compilation of pattern expressions into finite-state
//!   transducers (Sec. IV) via Thompson construction and ε-elimination, plus
//!   FST *simulation*: the position–state [`Grid`](fst::Grid) with dead-end
//!   memoization, enumeration of accepting runs, and generation of the
//!   candidate subsequences `G_π(T)` / `G^σ_π(T)`.
//! * [`mining`]: the unified mining API substrate — the [`Miner`] trait,
//!   [`MiningContext`] requests, [`Limits`], and the uniform
//!   [`MiningResult`] / [`MiningMetrics`] every algorithm returns. The
//!   ergonomic builder on top lives in the facade crate
//!   (`desq::session::MiningSession`).
//!
//! The running example of the paper (Fig. 2–8) is available as a reusable
//! fixture in [`toy`]; most unit tests in this workspace assert against it.
//! `docs/ARCHITECTURE.md` in the repository root maps how this substrate —
//! the CSR [`FstIndex`](fst::FstIndex), the flat run tables of
//! [`fst::flat`], and the [`mining`] API — is consumed by the miners, the
//! BSP engine and the distributed algorithms.
//!
//! ```
//! use desq_core::{toy, fst::candidates};
//!
//! let fx = toy::fixture();
//! // G_πex(T5) = { a1b, a1a1b, a1Ab }   (paper, Sec. II)
//! let cands = candidates::generate(&fx.fst, &fx.dict, &fx.db.sequences[4], None, usize::MAX)
//!     .unwrap();
//! assert_eq!(cands.len(), 3);
//! ```

pub mod codec;
pub mod dictionary;
pub mod error;
#[cfg(feature = "failpoints")]
pub mod fault;
pub mod fst;
pub mod fx;
pub mod mining;
pub mod pexp;
pub mod retry;
pub mod sequence;
pub mod toy;

pub use dictionary::{Dictionary, DictionaryBuilder};
pub use error::{Error, Result};
pub use fst::{Fst, OptLevel};
pub use mining::{CancelToken, Limits, Miner, MiningContext, MiningMetrics, MiningResult};
pub use pexp::PatEx;
pub use retry::RetryPolicy;
pub use sequence::{ItemId, Sequence, SequenceDb, EPSILON};
