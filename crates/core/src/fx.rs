//! A small FxHash-style hasher, plus the byte-keyed hashing primitives of
//! the interned hot paths.
//!
//! Mining code is dominated by integer-keyed hash maps (item ids, state ids,
//! interned labels). The default SipHash is needlessly slow for this workload;
//! the perf guidance for this workspace recommends an Fx-style multiply-xor
//! hash. `rustc-hash` is not on the allowed dependency list, so we carry the
//! ~40-line algorithm here (same recurrence as rustc's `FxHasher`).
//!
//! The *interned* hot paths — the BSP combine shuffle (PR 4) and the flat
//! candidate-counting sink ([`crate::fst::flat`], PR 5) — avoid `Hasher`
//! entirely: keys are pre-encoded byte strings hashed **once** with
//! [`hash_bytes`], and lookups run over an open-addressing [`ProbeTable`]
//! whose entries live in caller-side arenas. These primitives are the
//! canonical homes of what `desq_bsp::engine` originally carried; the
//! `desq_bsp` paths re-export them for compatibility.
//!
//! Not DoS-resistant — do not use for attacker-controlled keys.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Murmur-style finalizer: low bits end up depending on every input bit.
#[inline]
fn avalanche(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x
}

/// Fx-style multiply-xor hash over 8-byte words (plus a length mix so
/// zero-padded tails of different lengths differ), finalized with a
/// murmur-style avalanche. Hashed **once** per encoded key; the result is
/// reused for routing ([`bucket_of`]), [`ProbeTable`] probing and
/// reduce-side merging.
#[inline]
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = 0u64;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let word = u64::from_le_bytes(c.try_into().unwrap());
        h = (h.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut buf = [0u8; 8];
        buf[..rem.len()].copy_from_slice(rem);
        h = (h.rotate_left(5) ^ u64::from_le_bytes(buf)).wrapping_mul(SEED);
    }
    h = (h.rotate_left(5) ^ bytes.len() as u64).wrapping_mul(SEED);
    avalanche(h)
}

/// [`hash_bytes`]-quality hash over a `u32` slice (two items per mixing
/// word plus a length mix, finalized with the same avalanche). Used where
/// the key material is an item sequence that has not been byte-encoded
/// yet — e.g. the candidate count table probes on raw items and only
/// encodes on first insertion.
#[inline]
pub fn hash_items(items: &[u32]) -> u64 {
    let mut h = 0u64;
    let mut chunks = items.chunks_exact(2);
    for c in &mut chunks {
        let word = u64::from(c[0]) | u64::from(c[1]) << 32;
        h = (h.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
    if let [last] = chunks.remainder() {
        h = (h.rotate_left(5) ^ u64::from(*last)).wrapping_mul(SEED);
    }
    h = (h.rotate_left(5) ^ items.len() as u64).wrapping_mul(SEED);
    avalanche(h)
}

/// Mixes two [`hash_bytes`] hashes (e.g. a key hash and a payload hash)
/// into one composite table hash.
#[inline]
pub fn mix_hashes(a: u64, b: u64) -> u64 {
    avalanche(a ^ b.wrapping_mul(SEED))
}

/// Bucket of a pre-computed [`hash_bytes`] hash among `buckets` buckets:
/// multiply-shift ("fastrange") reduction — unbiased for any bucket count,
/// no division.
#[inline]
pub fn bucket_of(hash: u64, buckets: usize) -> usize {
    ((u128::from(hash) * buckets as u128) >> 64) as usize
}

/// Open-addressing index table mapping pre-computed 64-bit hashes to `u32`
/// entry indices; key equality is delegated to the caller (entries live in
/// caller-side arenas, so the table itself stores no keys and never
/// re-hashes bytes on probe). Linear probing over a power-of-two slot
/// array.
///
/// # Contract
///
/// Callers own the entry storage and must:
///
/// * pass monotonically growing `len` values to
///   [`grow_if_needed`](ProbeTable::grow_if_needed) **before** every
///   insertion (the table never tracks its own occupancy);
/// * resolve equality in [`find`](ProbeTable::find)'s `eq` callback —
///   typically "stored hash matches, then stored bytes match";
/// * only [`insert`](ProbeTable::insert) into a slot obtained from the
///   immediately preceding `find` (`Err(slot)` is invalidated by any
///   intervening mutation).
pub struct ProbeTable {
    slots: Vec<u32>,
}

const EMPTY_SLOT: u32 = u32::MAX;

impl Default for ProbeTable {
    fn default() -> ProbeTable {
        ProbeTable::new()
    }
}

impl ProbeTable {
    /// An empty table with a small initial capacity.
    pub fn new() -> ProbeTable {
        ProbeTable {
            slots: vec![EMPTY_SLOT; 16],
        }
    }

    /// Grows the table when `len` entries reach 7/8 occupancy (doubling,
    /// or 4× once past 4Ki slots — large tables amortize rehashing over
    /// fewer growth steps); `hash_of` recovers an entry's hash for
    /// rehashing.
    #[inline]
    pub fn grow_if_needed(&mut self, len: usize, hash_of: impl Fn(u32) -> u64) {
        if len * 8 < self.slots.len() * 7 {
            return;
        }
        let factor = if self.slots.len() >= 4096 { 4 } else { 2 };
        let doubled = self.slots.len() * factor;
        let old = std::mem::replace(&mut self.slots, vec![EMPTY_SLOT; doubled]);
        let mask = self.slots.len() - 1;
        for s in old {
            if s != EMPTY_SLOT {
                let mut pos = hash_of(s) as usize & mask;
                while self.slots[pos] != EMPTY_SLOT {
                    pos = (pos + 1) & mask;
                }
                self.slots[pos] = s;
            }
        }
    }

    /// Probes for `hash`; `eq(idx)` confirms a candidate entry. Returns
    /// `Ok(idx)` when found, `Err(slot)` with the insertion slot otherwise
    /// (valid until the next mutation).
    #[inline]
    pub fn find(
        &self,
        hash: u64,
        mut eq: impl FnMut(u32) -> bool,
    ) -> std::result::Result<u32, usize> {
        let mask = self.slots.len() - 1;
        let mut pos = hash as usize & mask;
        loop {
            let s = self.slots[pos];
            if s == EMPTY_SLOT {
                return Err(pos);
            }
            if eq(s) {
                return Ok(s);
            }
            pos = (pos + 1) & mask;
        }
    }

    /// Fills the insertion slot returned by a failed
    /// [`find`](ProbeTable::find) with entry index `idx`.
    #[inline]
    pub fn insert(&mut self, slot: usize, idx: u32) {
        self.slots[slot] = idx;
    }
}

/// Multiply-xor hasher with the same recurrence as rustc's `FxHasher`.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_spreads() {
        let mut m: FxHashMap<u32, u32> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&123], 246);

        let mut h1 = FxHasher::default();
        h1.write_u64(42);
        let mut h2 = FxHasher::default();
        h2.write_u64(42);
        assert_eq!(h1.finish(), h2.finish());

        let mut h3 = FxHasher::default();
        h3.write_u64(43);
        assert_ne!(h1.finish(), h3.finish());
    }

    #[test]
    fn hash_bytes_distinguishes_zero_padded_tails() {
        assert_ne!(hash_bytes(b""), hash_bytes(b"\0"));
        assert_ne!(hash_bytes(b"\0"), hash_bytes(b"\0\0"));
        assert_ne!(hash_bytes(b"a"), hash_bytes(b"a\0"));
    }

    #[test]
    fn bucket_of_is_stable_and_in_range() {
        let h = hash_bytes(&42u32.to_le_bytes());
        assert_eq!(bucket_of(h, 8), bucket_of(h, 8));
        for buckets in [1usize, 3, 7, 8, 13] {
            for k in 0u32..100 {
                assert!(bucket_of(hash_bytes(&k.to_le_bytes()), buckets) < buckets);
            }
        }
    }

    #[test]
    fn probe_table_finds_inserted_entries_across_growth() {
        // Entries live caller-side: keys are the u64s themselves.
        let mut table = ProbeTable::new();
        let mut keys: Vec<u64> = Vec::new();
        let mut hashes: Vec<u64> = Vec::new();
        for k in 0u64..500 {
            let h = hash_bytes(&k.to_le_bytes());
            table.grow_if_needed(keys.len(), |i| hashes[i as usize]);
            match table.find(h, |i| keys[i as usize] == k) {
                Ok(_) => panic!("{k} not yet inserted"),
                Err(slot) => {
                    keys.push(k);
                    hashes.push(h);
                    table.insert(slot, keys.len() as u32 - 1);
                }
            }
        }
        for k in 0u64..500 {
            let h = hash_bytes(&k.to_le_bytes());
            let idx = table.find(h, |i| keys[i as usize] == k).expect("inserted");
            assert_eq!(keys[idx as usize], k);
        }
        assert!(table
            .find(hash_bytes(&12_345u64.to_le_bytes()), |i| keys[i as usize]
                == 12_345)
            .is_err());
    }

    #[test]
    fn byte_stream_matches_varied_lengths() {
        // Different byte strings must (very likely) hash differently.
        let mut seen = FxHashSet::default();
        for len in 0..32usize {
            let bytes: Vec<u8> = (1..=len as u8).collect();
            let mut h = FxHasher::default();
            h.write(&bytes);
            seen.insert(h.finish());
        }
        assert_eq!(seen.len(), 32);
    }
}
