//! A small FxHash-style hasher.
//!
//! Mining code is dominated by integer-keyed hash maps (item ids, state ids,
//! interned labels). The default SipHash is needlessly slow for this workload;
//! the perf guidance for this workspace recommends an Fx-style multiply-xor
//! hash. `rustc-hash` is not on the allowed dependency list, so we carry the
//! ~40-line algorithm here (same recurrence as rustc's `FxHasher`).
//!
//! Not DoS-resistant — do not use for attacker-controlled keys.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-xor hasher with the same recurrence as rustc's `FxHasher`.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_spreads() {
        let mut m: FxHashMap<u32, u32> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&123], 246);

        let mut h1 = FxHasher::default();
        h1.write_u64(42);
        let mut h2 = FxHasher::default();
        h2.write_u64(42);
        assert_eq!(h1.finish(), h2.finish());

        let mut h3 = FxHasher::default();
        h3.write_u64(43);
        assert_ne!(h1.finish(), h3.finish());
    }

    #[test]
    fn byte_stream_matches_varied_lengths() {
        // Different byte strings must (very likely) hash differently.
        let mut seen = FxHashSet::default();
        for len in 0..32usize {
            let bytes: Vec<u8> = (1..=len as u8).collect();
            let mut h = FxHasher::default();
            h.write(&bytes);
            seen.insert(h.finish());
        }
        assert_eq!(seen.len(), 32);
    }
}
