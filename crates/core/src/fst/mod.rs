//! Finite-state transducers (FSTs) for subsequence predicates (Sec. IV).
//!
//! An FST "translates" an input sequence `T` into its candidate subsequences
//! `G_π(T)`: every transition *matches* a set of input items (`in_δ`) and
//! computes a set of output items for the matched item (`out_δ`, always
//! ancestors of the input or ε). A run consumes the whole input sequence;
//! accepting runs (ending in a final state) produce candidate subsequences by
//! taking the Cartesian product of the per-position output sets.
//!
//! [`Fst::compile`] builds the transducer from a [`PatEx`] via Thompson
//! construction and ε-elimination. [`Grid`] is the position–state grid of
//! Sec. V-A used to memoize dead ends, [`runs`] enumerates accepting runs,
//! and [`candidates`] materializes `G_π(T)` / `G^σ_π(T)`.

pub mod candidates;
mod compile;
pub mod flat;
mod grid;
pub mod index;
mod minim;
pub mod nfa;
pub mod opt;
pub mod runs;

pub use flat::{CandidateCounter, RunScratch, RunWalker};
pub use grid::Grid;
pub use index::{FstIndex, TrRef};
pub use opt::OptLevel;

use crate::dictionary::Dictionary;
use crate::error::Result;
use crate::pexp::PatEx;
use crate::sequence::{ItemId, EPSILON};

/// The input label `in_δ` of a transition: the set of items it matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum InputLabel {
    /// Matches any item (`.` expressions).
    Any,
    /// Matches exactly this item (`w=` expressions).
    Exact(ItemId),
    /// Matches any descendant of this item, including itself (`w` expressions).
    Desc(ItemId),
}

impl InputLabel {
    /// True iff this label matches input item `t`.
    #[inline]
    pub fn matches(&self, t: ItemId, dict: &Dictionary) -> bool {
        match *self {
            InputLabel::Any => true,
            InputLabel::Exact(w) => t == w,
            InputLabel::Desc(w) => dict.is_ancestor(w, t),
        }
    }
}

/// The output function `out_δ` of a transition, evaluated on the matched item.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OutputLabel {
    /// Produces ε (uncaptured transitions).
    None,
    /// Produces the matched item: `(w)`, `(.)`.
    Matched,
    /// Produces the matched item or any of its ancestors: `(.^)`;
    /// with a bound `w`, only ancestors that are descendants of `w`: `(w^)`.
    Generalize(Option<ItemId>),
    /// Always produces this fixed item: `(w=)`, `(w^=)`.
    Const(ItemId),
}

impl OutputLabel {
    /// Appends the output set `out_δ(t)` to `buf`; ε is represented as
    /// [`EPSILON`]. The output is sorted ascending (ancestor lists are).
    #[inline]
    pub fn outputs(&self, t: ItemId, dict: &Dictionary, buf: &mut Vec<ItemId>) {
        match *self {
            OutputLabel::None => buf.push(EPSILON),
            OutputLabel::Matched => buf.push(t),
            OutputLabel::Const(w) => buf.push(w),
            OutputLabel::Generalize(None) => buf.extend_from_slice(dict.ancestors(t)),
            OutputLabel::Generalize(Some(w)) => {
                for &a in dict.ancestors(t) {
                    if dict.is_ancestor(w, a) {
                        buf.push(a);
                    }
                }
            }
        }
    }
}

/// A transition of the FST: matches one input item and produces an output set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Transition {
    /// Acceptable input items.
    pub input: InputLabel,
    /// Output computation for the accepted item.
    pub output: OutputLabel,
    /// Target state.
    pub to: u32,
}

impl Transition {
    /// True iff this transition matches input item `t`.
    #[inline]
    pub fn matches(&self, t: ItemId, dict: &Dictionary) -> bool {
        self.input.matches(t, dict)
    }

    /// Appends the output set `out_δ(t)` to `buf`. ε is represented as
    /// [`EPSILON`]. The output is sorted ascending (ancestor lists are).
    #[inline]
    pub fn outputs(&self, t: ItemId, dict: &Dictionary, buf: &mut Vec<ItemId>) {
        self.output.outputs(t, dict, buf)
    }

    /// True if the transition can produce a non-ε output.
    #[inline]
    pub fn produces_output(&self) -> bool {
        !matches!(self.output, OutputLabel::None)
    }
}

/// A compiled finite-state transducer.
///
/// States are dense `u32` ids; every transition consumes exactly one input
/// item (ε-input transitions are eliminated at compile time). States that
/// cannot reach a final state are pruned.
#[derive(Debug, Clone)]
pub struct Fst {
    initial: u32,
    finals: Vec<bool>,
    states: Vec<Vec<Transition>>,
    /// State count after ε-removal and pruning but before the optional
    /// determinization/minimization passes (equals `states.len()` at
    /// [`OptLevel::None`]).
    pre_states: u32,
    /// Transition count before the optional optimizer passes.
    pre_transitions: u32,
}

impl Fst {
    /// Compiles a pattern expression against a dictionary at full
    /// optimization ([`OptLevel::Full`]; see [`opt`] for the pipeline).
    ///
    /// Fails with [`crate::Error::UnknownItem`] if the expression references
    /// an item that is not in the dictionary.
    pub fn compile(pexp: &PatEx, dict: &Dictionary) -> Result<Fst> {
        compile::compile(pexp, dict, OptLevel::Full)
    }

    /// Compiles a pattern expression at an explicit [`OptLevel`] —
    /// [`OptLevel::None`] keeps the Thompson-shaped automaton (ε-removal
    /// and pruning only) for oracle comparison against the optimized one.
    pub fn compile_with(pexp: &PatEx, dict: &Dictionary, level: OptLevel) -> Result<Fst> {
        compile::compile(pexp, dict, level)
    }

    /// The initial state.
    #[inline]
    pub fn initial(&self) -> u32 {
        self.initial
    }

    /// Number of states.
    #[inline]
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// Total number of transitions.
    pub fn num_transitions(&self) -> usize {
        self.states.iter().map(|s| s.len()).sum()
    }

    /// Number of states *before* the optimizer's determinization and
    /// minimization passes (after ε-removal and pruning, which every
    /// [`OptLevel`] performs) — together with [`num_states`](Self::num_states)
    /// this measures the optimizer's state reduction. Equal to
    /// `num_states()` when compiled at [`OptLevel::None`].
    #[inline]
    pub fn states_before_opt(&self) -> usize {
        self.pre_states as usize
    }

    /// Number of transitions before the optimizer's determinization and
    /// minimization passes (see [`states_before_opt`](Self::states_before_opt)).
    #[inline]
    pub fn transitions_before_opt(&self) -> usize {
        self.pre_transitions as usize
    }

    /// Outgoing transitions of state `q`.
    #[inline]
    pub fn transitions(&self, q: u32) -> &[Transition] {
        &self.states[q as usize]
    }

    /// True iff `q` is a final state.
    #[inline]
    pub fn is_final(&self, q: u32) -> bool {
        self.finals[q as usize]
    }

    /// True iff the FST accepts the empty input sequence.
    pub fn accepts_empty(&self) -> bool {
        self.is_final(self.initial)
    }

    /// Renders the FST in Graphviz dot format (for debugging and
    /// documentation; Fig. 4 of the paper is this output for the running
    /// example's πex).
    pub fn to_dot(&self, dict: &Dictionary) -> String {
        use std::fmt::Write;
        let mut out = String::from("digraph fst {\n  rankdir=LR;\n  node [shape=circle];\n");
        for q in 0..self.num_states() as u32 {
            if self.is_final(q) {
                let _ = writeln!(out, "  q{q} [shape=doublecircle];");
            }
        }
        let _ = writeln!(out, "  start [shape=point];\n  start -> q{};", self.initial);
        for q in 0..self.num_states() as u32 {
            for tr in self.transitions(q) {
                let input = match tr.input {
                    InputLabel::Any => ".".to_string(),
                    InputLabel::Exact(w) => format!("{}=", dict.name(w)),
                    InputLabel::Desc(w) => dict.name(w).to_string(),
                };
                let label = match tr.output {
                    OutputLabel::None => input,
                    OutputLabel::Matched => format!("({input})"),
                    OutputLabel::Generalize(None) => format!("({input}^)"),
                    OutputLabel::Generalize(Some(_)) => format!("({input}^)"),
                    OutputLabel::Const(w) => format!("({input}:{})", dict.name(w)),
                };
                let _ = writeln!(out, "  q{q} -> q{} [label=\"{label}\"];", tr.to);
            }
        }
        out.push_str("}\n");
        out
    }

    /// The last position of `seq` (0-based) whose item can produce `k` as an
    /// output on *some* transition of this FST, or `None` if no position can.
    ///
    /// Used by the early-stopping heuristic of D-SEQ's local mining
    /// (Sec. V-C): beyond this position, an expansion that does not yet
    /// contain the pivot item can never produce it.
    pub fn last_pivot_position(
        &self,
        seq: &[ItemId],
        k: ItemId,
        dict: &Dictionary,
    ) -> Option<usize> {
        // Only output-producing transitions matter, and the same (input,
        // output) pair behaves identically regardless of its source state —
        // hoist and dedup them once instead of rescanning all states'
        // transition lists at every position.
        let mut producers: Vec<(InputLabel, OutputLabel)> = self
            .states
            .iter()
            .flatten()
            .filter(|tr| tr.produces_output())
            .map(|tr| (tr.input, tr.output))
            .collect();
        producers.sort_unstable();
        producers.dedup();
        let mut buf = Vec::new();
        for (i, &t) in seq.iter().enumerate().rev() {
            // k must be an ancestor of t for any transition to output it
            // (out_δ(t) ⊆ anc(t) ∪ {ε}).
            if !dict.is_ancestor(k, t) {
                continue;
            }
            for &(input, output) in &producers {
                let tr = Transition {
                    input,
                    output,
                    to: 0,
                };
                if tr.matches(t, dict) {
                    buf.clear();
                    tr.outputs(t, dict, &mut buf);
                    if buf.contains(&k) {
                        return Some(i);
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy;

    #[test]
    fn toy_fst_structure_is_sane() {
        let fx = toy::fixture();
        assert!(fx.fst.num_states() >= 3);
        assert!(fx.fst.num_transitions() >= 6);
        assert!(!fx.fst.accepts_empty());
    }

    #[test]
    fn transition_matching_respects_hierarchy() {
        let fx = toy::fixture();
        let d = &fx.dict;
        let t = Transition {
            input: InputLabel::Desc(fx.big_a),
            output: OutputLabel::Matched,
            to: 0,
        };
        assert!(t.matches(fx.a1, d));
        assert!(t.matches(fx.a2, d));
        assert!(t.matches(fx.big_a, d));
        assert!(!t.matches(fx.b, d));

        let e = Transition {
            input: InputLabel::Exact(fx.big_a),
            output: OutputLabel::Matched,
            to: 0,
        };
        assert!(!e.matches(fx.a1, d));
        assert!(e.matches(fx.big_a, d));
    }

    #[test]
    fn transition_outputs() {
        let fx = toy::fixture();
        let d = &fx.dict;
        let mut buf = Vec::new();

        let gen = Transition {
            input: InputLabel::Any,
            output: OutputLabel::Generalize(None),
            to: 0,
        };
        gen.outputs(fx.a1, d, &mut buf);
        assert_eq!(buf, vec![fx.big_a, fx.a1]); // anc(a1) = {A, a1}, ascending

        buf.clear();
        let bounded = Transition {
            input: InputLabel::Desc(fx.big_a),
            output: OutputLabel::Generalize(Some(fx.big_a)),
            to: 0,
        };
        bounded.outputs(fx.a1, d, &mut buf);
        assert_eq!(buf, vec![fx.big_a, fx.a1]);

        buf.clear();
        let konst = Transition {
            input: InputLabel::Desc(fx.big_a),
            output: OutputLabel::Const(fx.big_a),
            to: 0,
        };
        konst.outputs(fx.a2, d, &mut buf);
        assert_eq!(buf, vec![fx.big_a]);

        buf.clear();
        let none = Transition {
            input: InputLabel::Any,
            output: OutputLabel::None,
            to: 0,
        };
        none.outputs(fx.a1, d, &mut buf);
        assert_eq!(buf, vec![crate::EPSILON]);
    }

    #[test]
    fn dot_export_shows_fig4_structure() {
        let fx = toy::fixture();
        let dot = fx.fst.to_dot(&fx.dict);
        // 3 states like the paper's Fig. 4, with the capture labels visible.
        assert!(dot.contains("digraph fst"));
        assert!(dot.contains("(A)"), "{dot}");
        assert!(dot.contains("(b)"), "{dot}");
        assert!(dot.contains("doublecircle"));
        assert_eq!(dot.matches("-> q").count(), fx.fst.num_transitions() + 1);
    }

    #[test]
    fn last_pivot_position_finds_rightmost_producer() {
        let fx = toy::fixture();
        // T2 = e e a1 e a1 e b; the rightmost position that can output a1 is 4.
        let t2 = &fx.db.sequences[1];
        assert_eq!(fx.fst.last_pivot_position(t2, fx.a1, &fx.dict), Some(4));
        // A can also be produced at position 4 (via generalization of a1).
        assert_eq!(fx.fst.last_pivot_position(t2, fx.big_a, &fx.dict), Some(4));
        // b is produced at position 6.
        assert_eq!(fx.fst.last_pivot_position(t2, fx.b, &fx.dict), Some(6));
        // c can never be produced from T2.
        assert_eq!(fx.fst.last_pivot_position(t2, fx.c, &fx.dict), None);
    }
}
