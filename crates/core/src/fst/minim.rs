//! Shared state-merging machinery: signature hashing over a partition of
//! automaton states.
//!
//! Generalized from D-CAND's incremental-DAWG construction (now
//! [`nfa`](super::nfa), hoisted from `desq_dist`): a state's *signature*
//! captures everything observable about it under the current partition —
//! acceptance plus its outgoing edges with targets replaced by their class
//! ids — and states with equal signatures merge. Two usage patterns share
//! [`hash_round`]:
//!
//! * **Acyclic, one pass** ([`nfa::TrieBuilder::minimize`](super::nfa::TrieBuilder::minimize)):
//!   visiting states in reverse-topological order, every child's class is
//!   already assigned when its parent is hashed, so a single round reaches
//!   the fixpoint — the classic DAWG merge.
//! * **Cyclic, iterated** ([`refine_to_fixpoint`], used by the FST
//!   optimizer's suffix-sharing pass): signatures embed the *previous*
//!   round's classes and rounds repeat until the class count is stable —
//!   Moore-style refinement computing the coarsest forward bisimulation.

use std::hash::Hash;

use crate::fx::FxHashMap;

/// One signature-hashing round: visits states in `order`, assigns each a
/// dense class id (equal signatures ⇒ equal class) into `classes`, and
/// returns the number of distinct classes assigned.
///
/// `sig_of(q, classes)` sees the classes slice *as updated so far this
/// round*: with a reverse-topological `order` over an acyclic graph the
/// children's entries are already this round's, so one round suffices;
/// cyclic callers must ignore the slice's in-progress entries and read a
/// snapshot of the previous round instead (see [`refine_to_fixpoint`]).
pub(crate) fn hash_round<Sig: Eq + Hash>(
    order: impl Iterator<Item = usize>,
    classes: &mut [u32],
    mut sig_of: impl FnMut(usize, &[u32]) -> Sig,
) -> u32 {
    let mut map: FxHashMap<Sig, u32> = FxHashMap::default();
    for q in order {
        let sig = sig_of(q, classes);
        let fresh = map.len() as u32;
        classes[q] = *map.entry(sig).or_insert(fresh);
    }
    map.len() as u32
}

/// Iterates [`hash_round`] with a previous-round snapshot until the class
/// count is stable, returning the final class count. `sig_of(q, prev)`
/// receives the *previous* round's classes and must include `prev[q]`
/// itself in the signature so that rounds only ever split classes (the
/// stable-count termination test relies on it).
///
/// Seed `classes` with the initial partition (e.g. acceptance as 0/1).
pub(crate) fn refine_to_fixpoint<Sig: Eq + Hash>(
    classes: &mut [u32],
    mut sig_of: impl FnMut(usize, &[u32]) -> Sig,
) -> u32 {
    let n = classes.len();
    let mut num = 0u32;
    loop {
        let prev = classes.to_vec();
        let m = hash_round(0..n, classes, |q, _| sig_of(q, &prev));
        if m == num {
            return m;
        }
        num = m;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acyclic_single_round_merges_equal_leaves() {
        // A tiny trie: 0 -> {1, 2}, both leaves accepting. Signature =
        // (accept, sorted (label, class) edges).
        let edges: Vec<Vec<(u8, usize)>> = vec![vec![(b'a', 1), (b'b', 2)], vec![], vec![]];
        let accept = [false, true, true];
        let mut classes = vec![0u32; 3];
        let n = hash_round((0..3).rev(), &mut classes, |q, cls| {
            let e: Vec<(u8, u32)> = edges[q].iter().map(|&(l, c)| (l, cls[c])).collect();
            (accept[q], e)
        });
        assert_eq!(n, 2);
        assert_eq!(classes[1], classes[2]);
        assert_ne!(classes[0], classes[1]);
    }

    #[test]
    fn cyclic_fixpoint_distinguishes_by_depth() {
        // A 3-state chain into a rejecting sink with a self-loop: state i
        // accepts after (2 - i) more steps, so no two chain states may
        // merge even though a single round cannot tell states 0 and 1
        // apart.
        let next = [1usize, 2, 3, 3];
        let accept = [false, false, true, false];
        let mut classes: Vec<u32> = accept.iter().map(|&a| u32::from(a)).collect();
        let n = refine_to_fixpoint(&mut classes, |q, prev| (prev[q], prev[next[q]]));
        assert_eq!(n, 4);
    }

    #[test]
    fn cyclic_fixpoint_merges_bisimilar_loops() {
        // Two disjoint accepting self-loop states are bisimilar.
        let next = [0usize, 1];
        let accept = [true, true];
        let mut classes: Vec<u32> = accept.iter().map(|&a| u32::from(a)).collect();
        let n = refine_to_fixpoint(&mut classes, |q, prev| (prev[q], prev[next[q]]));
        assert_eq!(n, 1);
        assert_eq!(classes[0], classes[1]);
    }
}
