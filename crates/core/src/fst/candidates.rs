//! Candidate subsequence generation: `G_π(T)` and `G^σ_π(T)` (Sec. II–III).
//!
//! Each accepting run produces a sequence of output sets; the candidate
//! subsequences of the run are the Cartesian product of those sets (ε
//! contributes nothing). `G_π(T)` is the union over all accepting runs.
//! This is the *reference semantics* used by the NAÏVE / SEMI-NAÏVE
//! baselines and by correctness tests; D-SEQ and D-CAND avoid materializing
//! it.

use super::{runs, Fst, Grid};
use crate::dictionary::Dictionary;
use crate::error::{Error, Result};
use crate::fx::FxHashSet;
use crate::sequence::{ItemId, Sequence, EPSILON};

/// Generates the candidate subsequences of `seq`.
///
/// * `sigma = None`: unfiltered `G_π(T)`.
/// * `sigma = Some(σ)`: `G^σ_π(T)` — candidates consisting only of items with
///   `f(w, D) >= σ` (support antimonotonicity, Sec. III-A).
///
/// `budget` bounds the total work (accepting runs walked plus candidates
/// materialized); exceeding it returns [`Error::ResourceExhausted`]. This is
/// the mechanism by which the harness reproduces the paper's out-of-memory
/// failures of the naïve algorithms without exhausting actual memory.
pub fn generate(
    fst: &Fst,
    dict: &Dictionary,
    seq: &[ItemId],
    sigma: Option<u64>,
    budget: usize,
) -> Result<FxHashSet<Sequence>> {
    let grid = Grid::build(fst, dict, seq);
    let mut out: FxHashSet<Sequence> = FxHashSet::default();
    if !grid.accepts() {
        return Ok(out);
    }
    let mut work = 0usize;
    let mut exhausted = false;
    // Output-set pool, reused across runs and positions: `pool[..used]`
    // holds the current run's non-ε sets, later slots keep their
    // allocations for the next run.
    let mut pool: Vec<Vec<ItemId>> = Vec::new();
    let mut current: Sequence = Vec::new();
    let completed = runs::for_each_accepting_run(fst, dict, seq, &grid, |path| {
        work += 1;
        if work > budget {
            exhausted = true;
            return false;
        }
        // Materialize (filtered) output sets for this run.
        let mut used = 0;
        let mut dead = false;
        for (tr, &t) in path.iter().zip(seq) {
            if used == pool.len() {
                pool.push(Vec::new());
            }
            let buf = &mut pool[used];
            buf.clear();
            tr.outputs(t, dict, buf);
            if let Some(s) = sigma {
                buf.retain(|&w| w == EPSILON || dict.is_frequent(w, s));
            }
            if buf.is_empty() {
                // The run cannot produce an all-frequent candidate through
                // this transition.
                dead = true;
                break;
            }
            if *buf != [EPSILON] {
                used += 1;
            }
        }
        if dead {
            return true;
        }
        // Cartesian product over non-ε sets.
        current.clear();
        if !product(&pool[..used], 0, &mut current, &mut out, budget, &mut work) {
            exhausted = true;
            return false;
        }
        true
    });
    if exhausted || !completed {
        return Err(Error::ResourceExhausted(format!(
            "candidate generation exceeded budget of {budget}"
        )));
    }
    // The run of all-ε outputs produces the empty candidate; exclude it.
    out.remove(&Vec::new());
    Ok(out)
}

fn product(
    sets: &[Vec<ItemId>],
    depth: usize,
    current: &mut Sequence,
    out: &mut FxHashSet<Sequence>,
    budget: usize,
    work: &mut usize,
) -> bool {
    if depth == sets.len() {
        *work += 1;
        if *work > budget {
            return false;
        }
        out.insert(current.clone());
        return true;
    }
    for &w in &sets[depth] {
        if w == EPSILON {
            // Mixed sets never contain ε by construction, but be permissive.
            if !product(sets, depth + 1, current, out, budget, work) {
                return false;
            }
            continue;
        }
        current.push(w);
        let ok = product(sets, depth + 1, current, out, budget, work);
        current.pop();
        if !ok {
            return false;
        }
    }
    true
}

/// Per-sequence candidate statistics, the basis of Tab. IV of the paper.
#[derive(Debug, Clone, Copy, Default)]
pub struct CandidateStats {
    /// Number of candidate subsequences (`|G^σ_π(T)|`).
    pub candidates: usize,
    /// True if the sequence produced at least one candidate ("matched").
    pub matched: bool,
}

/// Computes [`CandidateStats`] for one input sequence.
pub fn stats(
    fst: &Fst,
    dict: &Dictionary,
    seq: &[ItemId],
    sigma: Option<u64>,
    budget: usize,
) -> Result<CandidateStats> {
    let cands = generate(fst, dict, seq, sigma, budget)?;
    Ok(CandidateStats {
        candidates: cands.len(),
        matched: !cands.is_empty(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy;

    fn named(dict: &Dictionary, cands: &FxHashSet<Sequence>) -> Vec<String> {
        let mut v: Vec<String> = cands.iter().map(|s| dict.render(s)).collect();
        v.sort();
        v
    }

    #[test]
    fn toy_candidates_match_paper_fig3() {
        let fx = toy::fixture();
        let d = &fx.dict;

        // T1 = a1 c d c b
        let c1 = generate(&fx.fst, d, &fx.db.sequences[0], None, usize::MAX).unwrap();
        assert_eq!(
            named(d, &c1),
            vec![
                "a1 b",
                "a1 c b",
                "a1 c c b",
                "a1 c d b",
                "a1 c d c b",
                "a1 d b",
                "a1 d c b"
            ]
        );

        // T2 = e e a1 e a1 e b: 11 candidates per Fig. 3.
        let c2 = generate(&fx.fst, d, &fx.db.sequences[1], None, usize::MAX).unwrap();
        assert_eq!(c2.len(), 11);
        assert_eq!(
            named(d, &c2),
            vec![
                "a1 A b",
                "a1 A e b",
                "a1 a1 b",
                "a1 a1 e b",
                "a1 b",
                "a1 e A b",
                "a1 e A e b",
                "a1 e a1 b",
                "a1 e a1 e b",
                "a1 e b",
                "a1 e e b"
            ]
        );

        // T3 produces nothing.
        let c3 = generate(&fx.fst, d, &fx.db.sequences[2], None, usize::MAX).unwrap();
        assert!(c3.is_empty());

        // T4 = a2 d b.
        let c4 = generate(&fx.fst, d, &fx.db.sequences[3], None, usize::MAX).unwrap();
        assert_eq!(named(d, &c4), vec!["a2 b", "a2 d b"]);

        // T5 = a1 a1 b.
        let c5 = generate(&fx.fst, d, &fx.db.sequences[4], None, usize::MAX).unwrap();
        assert_eq!(named(d, &c5), vec!["a1 A b", "a1 a1 b", "a1 b"]);
    }

    #[test]
    fn sigma_filters_infrequent_items() {
        let fx = toy::fixture();
        let d = &fx.dict;
        // With σ = 2, e and a2 are infrequent.
        let c2 = generate(&fx.fst, d, &fx.db.sequences[1], Some(2), usize::MAX).unwrap();
        assert_eq!(named(d, &c2), vec!["a1 A b", "a1 a1 b", "a1 b"]);
        let c4 = generate(&fx.fst, d, &fx.db.sequences[3], Some(2), usize::MAX).unwrap();
        assert!(c4.is_empty(), "all T4 candidates contain infrequent a2");
    }

    #[test]
    fn budget_exhaustion_reported() {
        let fx = toy::fixture();
        let err = generate(&fx.fst, &fx.dict, &fx.db.sequences[1], None, 3).unwrap_err();
        assert!(matches!(err, Error::ResourceExhausted(_)));
    }

    #[test]
    fn stats_counts() {
        let fx = toy::fixture();
        let s = stats(&fx.fst, &fx.dict, &fx.db.sequences[0], None, usize::MAX).unwrap();
        assert_eq!(s.candidates, 7);
        assert!(s.matched);
        let s3 = stats(&fx.fst, &fx.dict, &fx.db.sequences[2], None, usize::MAX).unwrap();
        assert_eq!(s3.candidates, 0);
        assert!(!s3.matched);
    }
}
