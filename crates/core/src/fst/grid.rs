//! The position–state grid of Sec. V-A.
//!
//! FST simulation on an input sequence `T` is memoized on coordinates
//! `(i, q)`: the last-read position `i` and the current state `q` fully
//! determine the remaining simulation. The grid records which coordinates
//! are *forward-reachable* (some partial run from `(0, q_S)` arrives there)
//! and which are *alive* (some accepting completion exists). Dead ends
//! (reachable but not alive — the red crosses of Fig. 5b) are never explored
//! by run enumeration or mining.

use super::Fst;
use crate::dictionary::Dictionary;
use crate::sequence::ItemId;

/// Memoized reachability over the `(position, state)` grid of one input
/// sequence.
pub struct Grid {
    n: usize,
    num_states: usize,
    /// `alive[i * num_states + q]`: coordinate is forward-reachable and an
    /// accepting run passes through it.
    alive: Vec<bool>,
}

impl Grid {
    /// Builds the grid for `seq` by a forward reachability pass followed by a
    /// backward aliveness pass. `O(|T| · |Δ|)`.
    pub fn build(fst: &Fst, dict: &Dictionary, seq: &[ItemId]) -> Grid {
        let n = seq.len();
        let q = fst.num_states();
        let idx = |i: usize, s: u32| i * q + s as usize;

        let mut fwd = vec![false; (n + 1) * q];
        fwd[idx(0, fst.initial())] = true;
        for i in 0..n {
            for s in 0..q as u32 {
                if !fwd[idx(i, s)] {
                    continue;
                }
                for tr in fst.transitions(s) {
                    if tr.matches(seq[i], dict) {
                        fwd[idx(i + 1, tr.to)] = true;
                    }
                }
            }
        }

        let mut alive = vec![false; (n + 1) * q];
        for s in 0..q as u32 {
            alive[idx(n, s)] = fwd[idx(n, s)] && fst.is_final(s);
        }
        for i in (0..n).rev() {
            for s in 0..q as u32 {
                if !fwd[idx(i, s)] {
                    continue;
                }
                let ok = fst
                    .transitions(s)
                    .iter()
                    .any(|tr| tr.matches(seq[i], dict) && alive[idx(i + 1, tr.to)]);
                alive[idx(i, s)] = ok;
            }
        }

        Grid {
            n,
            num_states: q,
            alive,
        }
    }

    /// Sequence length this grid was built for.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the sequence is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// True iff coordinate `(i, q)` lies on some accepting run.
    #[inline]
    pub fn is_alive(&self, i: usize, q: u32) -> bool {
        self.alive[i * self.num_states + q as usize]
    }

    /// True iff the FST has at least one accepting run for the sequence.
    #[inline]
    pub fn accepts(&self) -> bool {
        // Position 0 at the initial state: the initial state has id 0 only by
        // convention of the compiler; use stored aliveness of any state at
        // position 0 that is the initial one. The compiler guarantees
        // initial = 0.
        self.alive[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy;

    #[test]
    fn grid_marks_dead_ends() {
        let fx = toy::fixture();
        // T3 = c d c b has no accepting run for πex.
        let g = Grid::build(&fx.fst, &fx.dict, &fx.db.sequences[2]);
        assert!(!g.accepts());
        // T5 = a1 a1 b accepts.
        let g5 = Grid::build(&fx.fst, &fx.dict, &fx.db.sequences[4]);
        assert!(g5.accepts());
        assert_eq!(g5.len(), 3);
    }

    #[test]
    fn empty_sequence() {
        let fx = toy::fixture();
        let g = Grid::build(&fx.fst, &fx.dict, &[]);
        assert!(!g.accepts()); // πex requires at least two captured items
        assert!(g.is_empty());
    }
}
