//! A derived, cache-resident view of a compiled [`Fst`] for hot-path
//! simulation: the CSR transition index shared by DESQ-DFS local mining and
//! the distributed pivot search.
//!
//! [`FstIndex`] assigns every transition a dense *global index* `δ` in
//! state-major order (state 0's transitions first, then state 1's, …).
//! That index is the transition's bit in a per-position *match mask*: a
//! `⌈|Δ| / 64⌉`-word bitset per input position whose bit `δ` says
//! "transition `δ` matches the item at this position". Consumers build one
//! mask row per position with [`FstIndex::fill_match_row`] (one ancestor
//! check per *distinct* input label, not per transition) and afterwards
//! resolve every match question as a single bit test — no dictionary
//! access, no repeated `InputLabel::matches` evaluation.
//!
//! Output labels are interned: the distinct non-ε [`OutputLabel`]s get
//! dense indices so per-`(position, label)` output sets can live in flat
//! arenas, and [`TrRef::label`] is `-1` for ε-output transitions.
//!
//! # Reuse contract
//!
//! An index is immutable derived data, valid for exactly the [`Fst`] it
//! was built from (the construction cost is `O(|Δ|·|states|)` and the
//! structure is small — build it **once per FST** and share it freely
//! across threads, sequences and mining phases; it is `Sync`). Consumers
//! must uphold:
//!
//! * global transition order is state-major and stable: bit `δ` of a match
//!   mask always refers to `inputs()[δ]`, and `state(q)` yields exactly the
//!   transitions of `q` in that order;
//! * mask rows passed to bit tests must have been filled by
//!   [`fill_match_row`](FstIndex::fill_match_row) (or derived from such a
//!   row by *clearing* bits, e.g. to fold in grid aliveness — setting
//!   extra bits is undefined);
//! * interned label indices are only meaningful against the same index
//!   (`labels()[i]`).

use std::sync::atomic::{AtomicU64, Ordering};

use super::{Fst, InputLabel, OutputLabel};
use crate::dictionary::Dictionary;
use crate::sequence::ItemId;

/// Source of unique per-construction [`FstIndex::generation`] ids.
static NEXT_GENERATION: AtomicU64 = AtomicU64::new(1);

/// A transition inside an [`FstIndex`]: its bit in the per-position match
/// mask, its target state, and its interned output label (`-1` = ε).
#[derive(Debug, Clone, Copy)]
pub struct TrRef {
    /// The transition's bit within mask word [`TrRef::word`].
    pub mask: u64,
    /// The mask word holding this transition's bit.
    pub word: u16,
    /// Interned output-label index (into [`FstIndex::labels`]), or `-1`
    /// for ε output.
    pub label: i16,
    /// Target state.
    pub to: u32,
}

/// Derived per-FST transition index (see the [module docs](self)).
#[derive(Debug, Clone)]
pub struct FstIndex {
    /// Match-mask words per position (`⌈|Δ| / 64⌉`).
    words: usize,
    /// Distinct non-ε output labels in intern order.
    labels: Vec<OutputLabel>,
    /// Per label: union of the label's transition bits (is any transition
    /// with this label matching at a position?).
    label_masks: Vec<Vec<u64>>,
    /// Input labels in global transition order (mask bit order), with the
    /// target state for aliveness pruning of the masks.
    inputs: Vec<(InputLabel, u32)>,
    /// Distinct input labels with the union bit mask of their transitions:
    /// the mask build evaluates each distinct label once per position
    /// instead of once per transition.
    distinct_inputs: Vec<(InputLabel, Vec<u64>)>,
    /// Per transition (global order): index of its label in
    /// `distinct_inputs` — lets lazy consumers evaluate a label on first
    /// touch and reuse the verdict for every transition sharing it.
    distinct_of: Vec<u16>,
    /// All states' transitions, flattened; state `q` owns
    /// `trs[state_offsets[q]..state_offsets[q + 1]]`.
    trs: Vec<TrRef>,
    state_offsets: Vec<u32>,
    /// Per state: can an output-producing transition still be reached via
    /// ε-output transitions? Closure walks never need to enter states where
    /// this is `false` (e.g. the trailing `.*` of unanchored constraints) —
    /// they accept input but can only produce ε forever.
    can_output: Vec<bool>,
    /// Distinct `(input, output)` pairs of output-producing transitions
    /// (a pair behaves identically regardless of its source state) —
    /// hoisted once so per-sequence scans (the early-stopping heuristic)
    /// never re-collect and re-sort them.
    producers: Vec<(InputLabel, OutputLabel)>,
    /// Whether this FST fits the flat step-table fast path of
    /// [`flat`](super::flat): at most 32 states and at most 64 transitions
    /// (one mask word).
    step_table_eligible: bool,
    /// The same predicate evaluated on the automaton's pre-optimization
    /// size ([`Fst::states_before_opt`] / [`Fst::transitions_before_opt`]):
    /// would the un-optimized machine have fit? Comparing the two tells the
    /// optimizer's eligibility win per constraint.
    step_table_eligible_before_opt: bool,
    /// Process-unique construction id (see [`generation`](Self::generation)).
    generation: u64,
}

/// The flat step-table fast-path predicate (see `fst::flat`): one
/// transition-mask word and a `u64`-packable state set.
fn fits_step_table(states: usize, transitions: usize) -> bool {
    states <= 32 && transitions <= 64
}

impl FstIndex {
    /// Builds the index. Panics if the FST exceeds the packed [`TrRef`]
    /// field widths (unreachable for compiled pattern expressions, but
    /// cheap to guarantee).
    pub fn new(fst: &Fst) -> FstIndex {
        let mut labels: Vec<OutputLabel> = Vec::new();
        let mut inputs: Vec<(InputLabel, u32)> = Vec::new();
        let mut trs: Vec<TrRef> = Vec::new();
        let mut state_offsets: Vec<u32> = Vec::with_capacity(fst.num_states() + 1);
        state_offsets.push(0);
        for q in 0..fst.num_states() as u32 {
            for tr in fst.transitions(q) {
                let d = inputs.len();
                inputs.push((tr.input, tr.to));
                let label = if matches!(tr.output, OutputLabel::None) {
                    -1
                } else {
                    match labels.iter().position(|&l| l == tr.output) {
                        Some(i) => i as i16,
                        None => {
                            labels.push(tr.output);
                            labels.len() as i16 - 1
                        }
                    }
                };
                trs.push(TrRef {
                    mask: 1u64 << (d % 64),
                    word: (d / 64) as u16,
                    label,
                    to: tr.to,
                });
            }
            state_offsets.push(trs.len() as u32);
        }
        assert!(
            labels.len() <= i16::MAX as usize,
            "FST has too many distinct output labels to index"
        );
        assert!(
            inputs.len() <= 64 * (u16::MAX as usize + 1),
            "FST has too many transitions to index"
        );
        let words = inputs.len().div_ceil(64).max(1);
        let mut label_masks = vec![vec![0u64; words]; labels.len()];
        for tr in &trs {
            if tr.label >= 0 {
                label_masks[tr.label as usize][tr.word as usize] |= tr.mask;
            }
        }
        let mut distinct_inputs: Vec<(InputLabel, Vec<u64>)> = Vec::new();
        let mut distinct_of: Vec<u16> = Vec::with_capacity(inputs.len());
        for (d, &(input, _)) in inputs.iter().enumerate() {
            let di = match distinct_inputs.iter().position(|(l, _)| *l == input) {
                Some(i) => i,
                None => {
                    distinct_inputs.push((input, vec![0u64; words]));
                    distinct_inputs.len() - 1
                }
            };
            distinct_inputs[di].1[d / 64] |= 1 << (d % 64);
            distinct_of.push(di as u16);
        }
        assert!(
            distinct_inputs.len() <= u16::MAX as usize,
            "FST has too many distinct input labels to index"
        );
        let nq = fst.num_states();
        let mut can_output: Vec<bool> = (0..nq as u32)
            .map(|q| fst.transitions(q).iter().any(|tr| tr.produces_output()))
            .collect();
        loop {
            let mut changed = false;
            for q in 0..nq as u32 {
                if !can_output[q as usize]
                    && fst.transitions(q).iter().any(|tr| {
                        matches!(tr.output, OutputLabel::None) && can_output[tr.to as usize]
                    })
                {
                    can_output[q as usize] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let mut producers: Vec<(InputLabel, OutputLabel)> = (0..nq as u32)
            .flat_map(|q| fst.transitions(q))
            .filter(|tr| tr.produces_output())
            .map(|tr| (tr.input, tr.output))
            .collect();
        producers.sort_unstable();
        producers.dedup();
        FstIndex {
            words,
            labels,
            label_masks,
            inputs,
            distinct_inputs,
            distinct_of,
            trs,
            state_offsets,
            can_output,
            producers,
            step_table_eligible: fits_step_table(fst.num_states(), fst.num_transitions()),
            step_table_eligible_before_opt: fits_step_table(
                fst.states_before_opt(),
                fst.transitions_before_opt(),
            ),
            generation: NEXT_GENERATION.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// A process-unique id minted at construction (clones keep their
    /// source's id — they are the same derived data). Caches that persist
    /// across jobs key their contents on this instead of the index's
    /// address, which the allocator may recycle.
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Match-mask words per position (`⌈|Δ| / 64⌉`, at least 1).
    #[inline]
    pub fn words(&self) -> usize {
        self.words
    }

    /// Whether the indexed FST fits the flat step-table fast path (≤ 32
    /// states, ≤ 64 transitions — a single mask word per position).
    #[inline]
    pub fn step_table_eligible(&self) -> bool {
        self.step_table_eligible
    }

    /// Whether the automaton would have fit the step-table fast path
    /// *before* the optimizer ran (evaluated on
    /// [`Fst::states_before_opt`] / [`Fst::transitions_before_opt`]).
    /// `!before && after` means the optimizer shrank the machine into the
    /// fast path.
    #[inline]
    pub fn step_table_eligible_before_opt(&self) -> bool {
        self.step_table_eligible_before_opt
    }

    /// The distinct non-ε output labels in intern order ([`TrRef::label`]
    /// indexes into this slice).
    #[inline]
    pub fn labels(&self) -> &[OutputLabel] {
        &self.labels
    }

    /// Number of interned (non-ε) output labels.
    #[inline]
    pub fn num_labels(&self) -> usize {
        self.labels.len()
    }

    /// Union of the transition bits of interned label `li`: AND it with a
    /// position's mask row to test "does any transition with this label
    /// match here?".
    #[inline]
    pub fn label_mask(&self, li: usize) -> &[u64] {
        &self.label_masks[li]
    }

    /// Input labels and target states in global transition (mask bit)
    /// order.
    #[inline]
    pub fn inputs(&self) -> &[(InputLabel, u32)] {
        &self.inputs
    }

    /// Transitions of state `q`, in global order.
    #[inline]
    pub fn state(&self, q: usize) -> &[TrRef] {
        &self.trs[self.state_offsets[q] as usize..self.state_offsets[q + 1] as usize]
    }

    /// The distinct input labels with the union bit masks of their
    /// transitions (indexable by [`state_distinct`](Self::state_distinct)
    /// entries).
    #[inline]
    pub fn distinct_inputs(&self) -> &[(InputLabel, Vec<u64>)] {
        &self.distinct_inputs
    }

    /// Per transition of state `q` (parallel to [`state`](Self::state)):
    /// the index of its input label in
    /// [`distinct_inputs`](Self::distinct_inputs). Lazy consumers evaluate
    /// a distinct label once per position on first touch and reuse the
    /// verdict for every transition sharing it.
    #[inline]
    pub fn state_distinct(&self, q: usize) -> &[u16] {
        &self.distinct_of[self.state_offsets[q] as usize..self.state_offsets[q + 1] as usize]
    }

    /// True iff state `q` can still reach an output-producing transition
    /// through ε-output transitions alone.
    #[inline]
    pub fn can_output(&self, q: usize) -> bool {
        self.can_output[q]
    }

    /// The last position of `seq` (0-based) whose item can produce `k` on
    /// *some* transition, or `None` if no position can — the early-stopping
    /// bound of Sec. V-C. Equivalent to [`Fst::last_pivot_position`] but
    /// over the pre-hoisted producer pairs (no per-call collection or
    /// sorting); `buf` is caller scratch for output materialization.
    pub fn last_pivot_position(
        &self,
        seq: &[ItemId],
        k: ItemId,
        dict: &Dictionary,
        buf: &mut Vec<ItemId>,
    ) -> Option<usize> {
        for (i, &t) in seq.iter().enumerate().rev() {
            // k must be an ancestor of t for any transition to output it
            // (out_δ(t) ⊆ anc(t) ∪ {ε}).
            if !dict.is_ancestor(k, t) {
                continue;
            }
            for &(input, output) in &self.producers {
                if input.matches(t, dict) {
                    buf.clear();
                    output.outputs(t, dict, buf);
                    if buf.contains(&k) {
                        return Some(i);
                    }
                }
            }
        }
        None
    }

    /// Fills `row` (a zeroed `words()`-long slice) with the match mask of
    /// input item `t`: bit `δ` is set iff transition `δ` matches `t`. One
    /// ancestor check per distinct input label.
    #[inline]
    pub fn fill_match_row(&self, t: ItemId, dict: &Dictionary, row: &mut [u64]) {
        for (input, bits) in &self.distinct_inputs {
            if input.matches(t, dict) {
                for (r, b) in row.iter_mut().zip(bits) {
                    *r |= b;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy;

    #[test]
    fn global_order_is_state_major_and_bits_are_distinct() {
        let fx = toy::fixture();
        let ix = FstIndex::new(&fx.fst);
        let mut d = 0usize;
        for q in 0..fx.fst.num_states() {
            for (tr, ixtr) in fx.fst.transitions(q as u32).iter().zip(ix.state(q)) {
                assert_eq!(ix.inputs()[d].0, tr.input);
                assert_eq!(ixtr.to, tr.to);
                assert_eq!(ixtr.word as usize, d / 64);
                assert_eq!(ixtr.mask, 1u64 << (d % 64));
                d += 1;
            }
        }
        assert_eq!(d, fx.fst.num_transitions());
        assert_eq!(ix.words(), d.div_ceil(64).max(1));
    }

    #[test]
    fn match_rows_agree_with_transition_matching() {
        let fx = toy::fixture();
        let ix = FstIndex::new(&fx.fst);
        for t in 1..=fx.dict.max_fid() {
            let mut row = vec![0u64; ix.words()];
            ix.fill_match_row(t, &fx.dict, &mut row);
            let mut d = 0usize;
            for q in 0..fx.fst.num_states() {
                for tr in fx.fst.transitions(q as u32) {
                    let bit = row[d / 64] >> (d % 64) & 1 != 0;
                    assert_eq!(bit, tr.matches(t, &fx.dict), "item {t}, transition {d}");
                    d += 1;
                }
            }
        }
    }

    #[test]
    fn last_pivot_position_matches_fst_scan() {
        let fx = toy::fixture();
        let ix = FstIndex::new(&fx.fst);
        let mut buf = Vec::new();
        for seq in &fx.db.sequences {
            for k in 1..=fx.dict.max_fid() {
                assert_eq!(
                    ix.last_pivot_position(seq, k, &fx.dict, &mut buf),
                    fx.fst.last_pivot_position(seq, k, &fx.dict),
                    "seq {seq:?}, k {k}"
                );
            }
        }
    }

    #[test]
    fn step_table_eligibility_matches_the_fast_path_predicate() {
        let fx = toy::fixture();
        let ix = FstIndex::new(&fx.fst);
        assert_eq!(
            ix.step_table_eligible(),
            fx.fst.num_states() <= 32 && fx.fst.num_transitions() <= 64
        );
        // The toy FST is tiny both before and after optimization.
        assert!(ix.step_table_eligible());
        assert!(ix.step_table_eligible_before_opt());
    }

    #[test]
    fn labels_are_interned_and_eps_is_negative() {
        let fx = toy::fixture();
        let ix = FstIndex::new(&fx.fst);
        for q in 0..fx.fst.num_states() {
            for (tr, ixtr) in fx.fst.transitions(q as u32).iter().zip(ix.state(q)) {
                if tr.produces_output() {
                    assert_eq!(ix.labels()[ixtr.label as usize], tr.output);
                } else {
                    assert_eq!(ixtr.label, -1);
                }
            }
        }
    }
}
