//! The compile-time FST optimizer pipeline.
//!
//! [`Fst::compile`] hands the raw Thompson NFST to [`optimize`], which runs
//! up to four passes:
//!
//! 1. **ε-removal** — ε-closure rewriting: FST state `q` gets the consuming
//!    edges of every NFST state in `closure(q)` and is final iff the closure
//!    contains the NFST's final state. The compiled [`Fst`] representation
//!    cannot hold ε-input edges, so this pass runs at every [`OptLevel`].
//! 2. **Dead-state pruning** — forward reachability from the initial state
//!    intersected with backward co-reachability to a final state (the
//!    conservative label-free analysis also mirrored by
//!    [`FstIndex`](super::FstIndex)'s `can_output`); the initial state is
//!    always kept and renumbered to id 0. Runs at every [`OptLevel`].
//! 3. **Functional (pair-)determinization** — subset construction treating
//!    each distinct `(input, output)` label pair as one alphabet symbol.
//!    The pair-string language (and therefore every candidate set, pattern
//!    and support) is preserved exactly; duplicate accepting runs with
//!    identical pair-strings merge, so run enumeration shrinks. The pass is
//!    *skipped* when the output relation is non-functional — some state
//!    carries the same input label with two different non-ε outputs
//!    (e.g. `(A)|(A^)`), where determinism over pairs cannot be reconciled
//!    with the output ambiguity and subset growth buys nothing — or when
//!    the subset construction exceeds the blowup guard. ε-outputs are
//!    exempt from the functionality test: the uncaptured `.*` context of
//!    unanchored constraints must not disable the pass.
//! 4. **Suffix-sharing minimization** — Moore-style refinement to the
//!    coarsest forward bisimulation over the shared [`minim`] machinery
//!    (generalized from D-CAND's DAWG construction in [`nfa`](super::nfa)).
//!    Beyond size, this restores the paper's automaton shapes: Thompson
//!    turns `.*` into an entry edge plus a loop state, the quotient
//!    collapses them into a genuine self-loop — exactly the shape (Fig. 4)
//!    that D-SEQ's "state change = relevant position" rewriting heuristic
//!    (Sec. V-B) relies on.
//!
//! Passes 3 and 4 only apply at [`OptLevel::Full`]; the determinized
//! automaton is kept only if it is no larger than the merely minimized one,
//! so full optimization never regresses the automaton size. The state and
//! transition counts *before* passes 3–4 are recorded on the [`Fst`]
//! ([`Fst::states_before_opt`] / [`Fst::transitions_before_opt`]) and flow
//! into `MiningMetrics` and the `desq-serve` stats so the reduction is
//! observable end to end.

use super::compile::NState;
use super::{minim, Fst, InputLabel, OutputLabel, Transition};
use crate::fx::FxHashSet;

/// How hard [`Fst::compile`] optimizes the compiled automaton.
///
/// [`OptLevel::None`] stops after ε-removal and dead-state pruning (both
/// required to produce a valid [`Fst`] at all) and exists for oracle
/// comparison — the BENCH_9 harness and the `optimized_fst_matches_oracle`
/// property test mine the same constraints at both levels and require
/// identical patterns and supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OptLevel {
    /// ε-removal and pruning only (the automaton is left as Thompson
    /// construction shaped it).
    None,
    /// The whole pipeline: ε-removal, pruning, guarded pair-determinization
    /// and suffix-sharing minimization. The default.
    #[default]
    Full,
}

/// Cap on subset-construction growth: determinization is abandoned (the
/// un-determinized automaton is kept) once it creates more than
/// `max(32, 2n)` subsets for an `n`-state input.
fn blowup_cap(n: usize) -> usize {
    (2 * n).max(32)
}

/// Runs the optimizer pipeline on the raw Thompson NFST (see the
/// [module docs](self) for the passes).
pub(super) fn optimize(nstates: &[NState], start: u32, nfinal: u32, level: OptLevel) -> Fst {
    let (finals, states) = remove_epsilon(nstates, nfinal);
    let (finals, states) = prune(start, finals, states);
    let pre_states = states.len() as u32;
    let pre_transitions = states.iter().map(|s| s.len()).sum::<usize>() as u32;
    let (finals, states) = match level {
        OptLevel::None => (finals, states),
        OptLevel::Full => {
            let (bf, bs) = minimize(&finals, &states);
            match determinize(&finals, &states) {
                Some((df, ds)) => {
                    let (df, ds) = minimize(&df, &ds);
                    let (dn, dt) = (ds.len(), ds.iter().map(|s| s.len()).sum::<usize>());
                    let (bn, bt) = (bs.len(), bs.iter().map(|s| s.len()).sum::<usize>());
                    // Keep the determinized automaton only when it is
                    // strictly smaller. On a size tie the minimized
                    // original wins: determinization reorders states and
                    // edges, and when it buys no size reduction that
                    // reshuffle has shown up as a mining slowdown on the
                    // range-unrolled T-constraints.
                    if (dn, dt) < (bn, bt) {
                        (df, ds)
                    } else {
                        (bf, bs)
                    }
                }
                None => (bf, bs),
            }
        }
    };
    Fst {
        initial: 0,
        finals,
        states,
        pre_states,
        pre_transitions,
    }
}

/// ε-closure of `s` (including `s`), iterative.
fn closure(states: &[NState], s: u32, out: &mut Vec<u32>, seen: &mut FxHashSet<u32>) {
    out.clear();
    seen.clear();
    let mut stack = vec![s];
    seen.insert(s);
    while let Some(q) = stack.pop() {
        out.push(q);
        for &t in &states[q as usize].eps {
            if seen.insert(t) {
                stack.push(t);
            }
        }
    }
}

/// Pass 1 — ε-removal by closure rewriting: FST state `q` corresponds to
/// NFST state `q`; its transitions are the consuming edges of every state
/// in `closure(q)`, and it is final iff its closure contains `nfinal`.
fn remove_epsilon(nstates: &[NState], nfinal: u32) -> (Vec<bool>, Vec<Vec<Transition>>) {
    let n = nstates.len();
    let mut ftrans: Vec<Vec<Transition>> = vec![Vec::new(); n];
    let mut ffinal = vec![false; n];
    let mut cl = Vec::new();
    let mut seen = FxHashSet::default();
    for q in 0..n as u32 {
        closure(nstates, q, &mut cl, &mut seen);
        let mut dedup: FxHashSet<Transition> = FxHashSet::default();
        for &c in &cl {
            if c == nfinal {
                ffinal[q as usize] = true;
            }
            if let Some((input, output, to)) = nstates[c as usize].consume {
                dedup.insert(Transition { input, output, to });
            }
        }
        let mut trs: Vec<Transition> = dedup.into_iter().collect();
        trs.sort_by_key(|t| (t.to, t.input, t.output));
        ftrans[q as usize] = trs;
    }
    (ffinal, ftrans)
}

/// Pass 2 — dead/unreachable-state pruning: keep states that are forward
/// reachable from `initial` *and* co-reachable to some final state
/// (conservative: labels are ignored), then renumber densely with the
/// initial state at id 0 (kept even when dead).
fn prune(
    initial: u32,
    ffinal: Vec<bool>,
    ftrans: Vec<Vec<Transition>>,
) -> (Vec<bool>, Vec<Vec<Transition>>) {
    let n = ftrans.len();
    // Forward reachability from the start.
    let mut reach = vec![false; n];
    let mut stack = vec![initial];
    reach[initial as usize] = true;
    while let Some(q) = stack.pop() {
        for tr in &ftrans[q as usize] {
            if !reach[tr.to as usize] {
                reach[tr.to as usize] = true;
                stack.push(tr.to);
            }
        }
    }

    // Co-reachability: states from which some final state is reachable.
    let mut rev: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (q, trs) in ftrans.iter().enumerate() {
        for tr in trs {
            rev[tr.to as usize].push(q as u32);
        }
    }
    let mut co = vec![false; n];
    let mut stack: Vec<u32> = (0..n as u32).filter(|&q| ffinal[q as usize]).collect();
    for &q in &stack {
        co[q as usize] = true;
    }
    while let Some(q) = stack.pop() {
        for &p in &rev[q as usize] {
            if !co[p as usize] {
                co[p as usize] = true;
                stack.push(p);
            }
        }
    }

    // Keep live states (reachable and co-reachable) plus the initial state.
    let keep: Vec<bool> = (0..n).map(|q| reach[q] && co[q]).collect();
    let mut remap = vec![u32::MAX; n];
    let mut next = 0u32;
    // The initial state always gets id 0, live or not.
    remap[initial as usize] = 0;
    next += 1;
    for q in 0..n {
        if keep[q] && remap[q] == u32::MAX {
            remap[q] = next;
            next += 1;
        }
    }

    let mut states = vec![Vec::new(); next as usize];
    let mut finals = vec![false; next as usize];
    for q in 0..n {
        if remap[q] == u32::MAX {
            continue;
        }
        finals[remap[q] as usize] = ffinal[q];
        let mut trs: Vec<Transition> = ftrans[q]
            .iter()
            .filter(|t| keep[t.to as usize])
            .map(|t| Transition {
                input: t.input,
                output: t.output,
                to: remap[t.to as usize],
            })
            .collect();
        trs.sort_by_key(|t| (t.to, t.input, t.output));
        states[remap[q] as usize] = trs;
    }
    (finals, states)
}

/// True iff some state carries the same input label with two different
/// non-ε output labels — the output relation is then non-functional and
/// pair-determinization is skipped (see the [module docs](self)).
fn non_functional(states: &[Vec<Transition>]) -> bool {
    let mut pairs: Vec<(InputLabel, OutputLabel)> = Vec::new();
    for trs in states {
        pairs.clear();
        pairs.extend(
            trs.iter()
                .filter(|t| !matches!(t.output, OutputLabel::None))
                .map(|t| (t.input, t.output)),
        );
        pairs.sort_unstable();
        pairs.dedup();
        if pairs.windows(2).any(|w| w[0].0 == w[1].0) {
            return true;
        }
    }
    false
}

/// Pass 3 — subset construction over the `(input, output)` pair alphabet.
/// Returns `None` when the pass is skipped (non-functional output relation
/// or blowup guard tripped); the result is otherwise deterministic over
/// pairs, with state 0 the initial subset `{0}` and every state reachable
/// and co-reachable by construction.
fn determinize(
    finals: &[bool],
    states: &[Vec<Transition>],
) -> Option<(Vec<bool>, Vec<Vec<Transition>>)> {
    if non_functional(states) {
        return None;
    }
    let cap = blowup_cap(states.len());
    let mut ids: crate::fx::FxHashMap<Vec<u32>, u32> = crate::fx::FxHashMap::default();
    let mut subsets: Vec<Vec<u32>> = vec![vec![0]];
    let mut dfinals: Vec<bool> = vec![finals[0]];
    let mut dstates: Vec<Vec<Transition>> = Vec::new();
    ids.insert(vec![0], 0);
    let mut i = 0;
    while i < subsets.len() {
        // Union the member states' edges and group them by label pair
        // (sorting by (input, output, to) makes each group's target list
        // sorted and dedup-ready).
        let mut edges: Vec<Transition> = subsets[i]
            .iter()
            .flat_map(|&q| states[q as usize].iter().copied())
            .collect();
        edges.sort_unstable_by_key(|t| (t.input, t.output, t.to));
        edges.dedup();
        let mut trs: Vec<Transition> = Vec::new();
        let mut j = 0;
        while j < edges.len() {
            let (input, output) = (edges[j].input, edges[j].output);
            let mut targets: Vec<u32> = Vec::new();
            while j < edges.len() && edges[j].input == input && edges[j].output == output {
                targets.push(edges[j].to);
                j += 1;
            }
            let next_id = subsets.len() as u32;
            let to = *ids.entry(targets.clone()).or_insert_with(|| {
                dfinals.push(targets.iter().any(|&q| finals[q as usize]));
                subsets.push(targets);
                next_id
            });
            if subsets.len() > cap {
                return None;
            }
            trs.push(Transition { input, output, to });
        }
        trs.sort_by_key(|t| (t.to, t.input, t.output));
        dstates.push(trs);
        i += 1;
    }
    Some((dfinals, dstates))
}

/// Pass 4 — suffix-sharing minimization: merges forward-bisimilar states
/// (identical finality and identical transition signatures up to the
/// current partition) via [`minim::refine_to_fixpoint`], then renumbers so
/// the initial class is state 0 (callers rely on it). Language- and
/// output-preserving.
fn minimize(finals: &[bool], states: &[Vec<Transition>]) -> (Vec<bool>, Vec<Vec<Transition>>) {
    let n = states.len();
    let mut class: Vec<u32> = finals.iter().map(|&f| u32::from(f)).collect();
    let num = minim::refine_to_fixpoint(&mut class, |q, prev| {
        let mut edges: Vec<(InputLabel, OutputLabel, u32)> = states[q]
            .iter()
            .map(|t| (t.input, t.output, prev[t.to as usize]))
            .collect();
        edges.sort_unstable();
        edges.dedup();
        (prev[q], edges)
    });

    let m = num as usize;
    let mut q_states: Vec<Vec<Transition>> = vec![Vec::new(); m];
    let mut q_finals = vec![false; m];
    let mut filled = vec![false; m];
    for q in 0..n {
        let g = class[q] as usize;
        q_finals[g] |= finals[q];
        if filled[g] {
            continue;
        }
        filled[g] = true;
        let mut trs: Vec<Transition> = states[q]
            .iter()
            .map(|t| Transition {
                input: t.input,
                output: t.output,
                to: class[t.to as usize],
            })
            .collect();
        trs.sort_by_key(|t| (t.to, t.input, t.output));
        trs.dedup();
        q_states[g] = trs;
    }
    // Renumber so the initial class is state 0.
    let init = class[0];
    if init != 0 {
        q_states.swap(0, init as usize);
        q_finals.swap(0, init as usize);
        for trs in q_states.iter_mut() {
            for t in trs.iter_mut() {
                if t.to == init {
                    t.to = 0;
                } else if t.to == 0 {
                    t.to = init;
                }
            }
            trs.sort_by_key(|t| (t.to, t.input, t.output));
        }
    }
    (q_finals, q_states)
}

#[cfg(test)]
mod tests {
    use super::super::Grid;
    use super::*;
    use crate::dictionary::Dictionary;
    use crate::toy;
    use crate::PatEx;

    fn compile_at(expr: &str, dict: &Dictionary, level: OptLevel) -> Fst {
        Fst::compile_with(&PatEx::parse(expr).unwrap().unanchored(), dict, level).unwrap()
    }

    /// The FST has no ε-input edges by representation; "idempotence" of the
    /// ε-removal pass means re-running the pipeline on an already-compiled
    /// automaton (reinterpreted as an ε-free NFST) changes nothing.
    #[test]
    fn eps_removal_is_idempotent() {
        let fx = toy::fixture();
        for level in [OptLevel::None, OptLevel::Full] {
            let fst = compile_at("(A)(b)", &fx.dict, level);
            // Rebuild the NFST view: one NState per state, no ε edges —
            // remove_epsilon must reproduce the transitions verbatim.
            // States with several consuming edges are modelled by chaining
            // through ε-connected satellite states, which the closure then
            // folds back together.
            let mut nstates: Vec<NState> =
                (0..fst.num_states()).map(|_| NState::default()).collect();
            for q in 0..fst.num_states() {
                for tr in fst.transitions(q as u32) {
                    let sat = nstates.len() as u32;
                    nstates.push(NState {
                        eps: Vec::new(),
                        consume: Some((tr.input, tr.output, tr.to)),
                    });
                    nstates[q].eps.push(sat);
                }
            }
            let nfinal = nstates.len() as u32;
            nstates.push(NState::default());
            for q in 0..fst.num_states() as u32 {
                if fst.is_final(q) {
                    nstates[q as usize].eps.push(nfinal);
                }
            }
            let (finals, states) = remove_epsilon(&nstates, nfinal);
            for q in 0..fst.num_states() {
                assert_eq!(finals[q], fst.is_final(q as u32));
                assert_eq!(states[q], fst.transitions(q as u32), "state {q}");
            }
        }
    }

    #[test]
    fn pruning_drops_deliberately_dead_states() {
        // A hand-built ε-free automaton: 0 --(b)--> 1(final), plus an
        // unreachable state 2 and a dead-end state 3 reachable from 0.
        let fx = toy::fixture();
        let t = |to: u32| Transition {
            input: InputLabel::Desc(fx.b),
            output: OutputLabel::Matched,
            to,
        };
        let states = vec![vec![t(1), t(3)], vec![], vec![t(1)], vec![]];
        let finals = vec![false, true, false, false];
        let (pf, ps) = prune(0, finals, states);
        assert_eq!(ps.len(), 2, "unreachable and dead states pruned");
        assert_eq!(ps[0], vec![t(1)], "the dead branch's transition is gone");
        assert!(!pf[0]);
        assert!(pf[1]);
    }

    #[test]
    fn determinization_skips_non_functional_pexps() {
        // `(A)|(A^)`: the same input label from the shared start with two
        // different non-ε outputs — the output relation is non-functional.
        let fx = toy::fixture();
        let fst = compile_at("(A)|(A^)", &fx.dict, OptLevel::None);
        let finals: Vec<bool> = (0..fst.num_states() as u32)
            .map(|q| fst.is_final(q))
            .collect();
        let states: Vec<Vec<Transition>> = (0..fst.num_states() as u32)
            .map(|q| fst.transitions(q).to_vec())
            .collect();
        assert!(non_functional(&states));
        assert!(determinize(&finals, &states).is_none());
        // The compiled Full automaton still minimizes and stays correct.
        let full = compile_at("(A)|(A^)", &fx.dict, OptLevel::Full);
        assert!(full.num_states() <= fst.num_states());
    }

    #[test]
    fn functional_pexps_do_determinize() {
        let fx = toy::fixture();
        let fst = compile_at("(A)(b)", &fx.dict, OptLevel::None);
        let finals: Vec<bool> = (0..fst.num_states() as u32)
            .map(|q| fst.is_final(q))
            .collect();
        let states: Vec<Vec<Transition>> = (0..fst.num_states() as u32)
            .map(|q| fst.transitions(q).to_vec())
            .collect();
        assert!(!non_functional(&states));
        let (df, ds) = determinize(&finals, &states).expect("functional: not skipped");
        // Deterministic over pairs: no state carries two transitions with
        // the same (input, output) pair.
        for trs in &ds {
            let mut pairs: Vec<_> = trs.iter().map(|t| (t.input, t.output)).collect();
            pairs.sort_unstable();
            let len = pairs.len();
            pairs.dedup();
            assert_eq!(pairs.len(), len, "duplicate pair symbol");
        }
        assert_eq!(df.len(), ds.len());
    }

    #[test]
    fn full_is_never_larger_than_none() {
        let fx = toy::fixture();
        for expr in [
            "(A)(b)",
            "(A)|(A^)",
            "[(b)]*",
            "(.^){2}",
            "(b){2,3}",
            toy::PATTERN,
        ] {
            let none = compile_at(expr, &fx.dict, OptLevel::None);
            let full = compile_at(expr, &fx.dict, OptLevel::Full);
            assert!(
                full.num_states() <= none.num_states()
                    && full.num_transitions() <= none.num_transitions(),
                "{expr}: full {}s/{}t vs none {}s/{}t",
                full.num_states(),
                full.num_transitions(),
                none.num_states(),
                none.num_transitions()
            );
            assert_eq!(full.states_before_opt(), none.num_states());
            assert_eq!(full.transitions_before_opt(), none.num_transitions());
        }
    }

    #[test]
    fn both_levels_accept_the_same_toy_sequences() {
        let fx = toy::fixture();
        for expr in ["(A)(b)", "(A)|(A^)", "[(b)|(c)]+", toy::PATTERN] {
            let none = compile_at(expr, &fx.dict, OptLevel::None);
            let full = compile_at(expr, &fx.dict, OptLevel::Full);
            for seq in &fx.db.sequences {
                assert_eq!(
                    Grid::build(&full, &fx.dict, seq).accepts(),
                    Grid::build(&none, &fx.dict, seq).accepts(),
                    "{expr} on {seq:?}"
                );
            }
        }
    }
}
