//! Pattern expression → FST compilation.
//!
//! A standard Thompson construction produces a transducer with ε-input
//! edges; ε-elimination then yields the final [`Fst`] in which every
//! transition consumes exactly one input item. Dead states (states from
//! which no final state is reachable) are pruned, transitions deduplicated,
//! and states renumbered densely.

use super::{Fst, InputLabel, OutputLabel, Transition};
use crate::dictionary::Dictionary;
use crate::error::{Error, Result};
use crate::fx::FxHashSet;
use crate::pexp::PatEx;

/// Thompson-style NFST state: any number of ε edges plus at most one
/// consuming edge.
#[derive(Default, Clone)]
struct NState {
    eps: Vec<u32>,
    consume: Option<(InputLabel, OutputLabel, u32)>,
}

struct Builder<'a> {
    states: Vec<NState>,
    dict: &'a Dictionary,
}

/// A sub-automaton under construction, with unique entry and exit states.
#[derive(Clone, Copy)]
struct Frag {
    start: u32,
    end: u32,
}

impl<'a> Builder<'a> {
    fn state(&mut self) -> u32 {
        self.states.push(NState::default());
        (self.states.len() - 1) as u32
    }

    fn eps(&mut self, from: u32, to: u32) {
        self.states[from as usize].eps.push(to);
    }

    fn atom(&mut self, input: InputLabel, output: OutputLabel) -> Frag {
        let start = self.state();
        let end = self.state();
        self.states[start as usize].consume = Some((input, output, end));
        Frag { start, end }
    }

    fn compile(&mut self, e: &PatEx, captured: bool) -> Result<Frag> {
        match e {
            PatEx::Item { name, exact, up } => {
                let w = self
                    .dict
                    .id_of(name)
                    .ok_or_else(|| Error::UnknownItem(name.clone()))?;
                let input = if *exact && !*up {
                    // `w=` matches exactly w.
                    InputLabel::Exact(w)
                } else {
                    // `w`, `w^`, `w^=` match any descendant of w.
                    InputLabel::Desc(w)
                };
                let output = if !captured {
                    OutputLabel::None
                } else {
                    match (up, exact) {
                        (false, false) => OutputLabel::Matched,            // (w)
                        (false, true) => OutputLabel::Const(w),            // (w=)
                        (true, false) => OutputLabel::Generalize(Some(w)), // (w^)
                        (true, true) => OutputLabel::Const(w), // (w^=): always generalize to w
                    }
                };
                Ok(self.atom(input, output))
            }
            PatEx::Dot { up } => {
                let output = if !captured {
                    OutputLabel::None
                } else if *up {
                    OutputLabel::Generalize(None) // (.^)
                } else {
                    OutputLabel::Matched // (.)
                };
                Ok(self.atom(InputLabel::Any, output))
            }
            PatEx::Capture(inner) => self.compile(inner, true),
            PatEx::Concat(es) => {
                let mut iter = es.iter();
                let first = self.compile(iter.next().expect("non-empty concat"), captured)?;
                let mut end = first.end;
                for e in iter {
                    let next = self.compile(e, captured)?;
                    self.eps(end, next.start);
                    end = next.end;
                }
                Ok(Frag {
                    start: first.start,
                    end,
                })
            }
            PatEx::Alt(es) => {
                let start = self.state();
                let end = self.state();
                for e in es {
                    let f = self.compile(e, captured)?;
                    self.eps(start, f.start);
                    self.eps(f.end, end);
                }
                Ok(Frag { start, end })
            }
            PatEx::Star(inner) => {
                let start = self.state();
                let end = self.state();
                let f = self.compile(inner, captured)?;
                self.eps(start, f.start);
                self.eps(start, end);
                self.eps(f.end, f.start);
                self.eps(f.end, end);
                Ok(Frag { start, end })
            }
            PatEx::Plus(inner) => {
                let start = self.state();
                let end = self.state();
                let f = self.compile(inner, captured)?;
                self.eps(start, f.start);
                self.eps(f.end, f.start);
                self.eps(f.end, end);
                Ok(Frag { start, end })
            }
            PatEx::Optional(inner) => {
                let start = self.state();
                let end = self.state();
                let f = self.compile(inner, captured)?;
                self.eps(start, f.start);
                self.eps(start, end);
                self.eps(f.end, end);
                Ok(Frag { start, end })
            }
            PatEx::Range { inner, min, max } => {
                // Unroll: min mandatory copies, then either a star (max =
                // None) or max - min optional copies. Each copy is an
                // independent re-compilation of the inner expression.
                let start = self.state();
                let mut cur = start;
                for _ in 0..*min {
                    let f = self.compile(inner, captured)?;
                    self.eps(cur, f.start);
                    cur = f.end;
                }
                match max {
                    None => {
                        let f = self.compile(&PatEx::Star(inner.clone()), captured)?;
                        self.eps(cur, f.start);
                        cur = f.end;
                    }
                    Some(m) => {
                        // Optional tail copies; each can be skipped straight
                        // to the end.
                        let end = self.state();
                        for _ in *min..*m {
                            let f = self.compile(inner, captured)?;
                            self.eps(cur, end);
                            self.eps(cur, f.start);
                            cur = f.end;
                        }
                        self.eps(cur, end);
                        cur = end;
                    }
                }
                Ok(Frag { start, end: cur })
            }
        }
    }
}

/// ε-closure of `s` (including `s`), iterative.
fn closure(states: &[NState], s: u32, out: &mut Vec<u32>, seen: &mut FxHashSet<u32>) {
    out.clear();
    seen.clear();
    let mut stack = vec![s];
    seen.insert(s);
    while let Some(q) = stack.pop() {
        out.push(q);
        for &t in &states[q as usize].eps {
            if seen.insert(t) {
                stack.push(t);
            }
        }
    }
}

pub(super) fn compile(pexp: &PatEx, dict: &Dictionary) -> Result<Fst> {
    let mut b = Builder {
        states: Vec::new(),
        dict,
    };
    let frag = b.compile(pexp, false)?;
    let nstates = b.states;
    let nfinal = frag.end;

    // ε-elimination: state q of the FST corresponds to NFST state q; its
    // transitions are the consuming edges of every state in closure(q); it is
    // final if its closure contains the NFST final state.
    let n = nstates.len();
    let mut ftrans: Vec<Vec<Transition>> = vec![Vec::new(); n];
    let mut ffinal = vec![false; n];
    let mut cl = Vec::new();
    let mut seen = FxHashSet::default();
    for q in 0..n as u32 {
        closure(&nstates, q, &mut cl, &mut seen);
        let mut dedup: FxHashSet<Transition> = FxHashSet::default();
        for &c in &cl {
            if c == nfinal {
                ffinal[q as usize] = true;
            }
            if let Some((input, output, to)) = nstates[c as usize].consume {
                dedup.insert(Transition { input, output, to });
            }
        }
        let mut trs: Vec<Transition> = dedup.into_iter().collect();
        trs.sort_by_key(|t| (t.to, t.input, t.output));
        ftrans[q as usize] = trs;
    }

    // Forward reachability from the start.
    let mut reach = vec![false; n];
    let mut stack = vec![frag.start];
    reach[frag.start as usize] = true;
    while let Some(q) = stack.pop() {
        for tr in &ftrans[q as usize] {
            if !reach[tr.to as usize] {
                reach[tr.to as usize] = true;
                stack.push(tr.to);
            }
        }
    }

    // Co-reachability: states from which some final state is reachable.
    // (Conservative: ignores input labels.)
    let mut rev: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (q, trs) in ftrans.iter().enumerate() {
        for tr in trs {
            rev[tr.to as usize].push(q as u32);
        }
    }
    let mut co = vec![false; n];
    let mut stack: Vec<u32> = (0..n as u32).filter(|&q| ffinal[q as usize]).collect();
    for &q in &stack {
        co[q as usize] = true;
    }
    while let Some(q) = stack.pop() {
        for &p in &rev[q as usize] {
            if !co[p as usize] {
                co[p as usize] = true;
                stack.push(p);
            }
        }
    }

    // Keep live states (reachable and co-reachable) plus the initial state.
    let keep: Vec<bool> = (0..n).map(|q| reach[q] && co[q]).collect();
    let mut remap = vec![u32::MAX; n];
    let mut next = 0u32;
    // The initial state always gets id 0, live or not.
    remap[frag.start as usize] = 0;
    next += 1;
    for q in 0..n {
        if keep[q] && remap[q] == u32::MAX {
            remap[q] = next;
            next += 1;
        }
    }

    let mut states = vec![Vec::new(); next as usize];
    let mut finals = vec![false; next as usize];
    for q in 0..n {
        if remap[q] == u32::MAX {
            continue;
        }
        finals[remap[q] as usize] = ffinal[q];
        let mut trs: Vec<Transition> = ftrans[q]
            .iter()
            .filter(|t| keep[t.to as usize])
            .map(|t| Transition {
                input: t.input,
                output: t.output,
                to: remap[t.to as usize],
            })
            .collect();
        trs.sort_by_key(|t| (t.to, t.input, t.output));
        states[remap[q] as usize] = trs;
    }

    let (initial, finals, states) = quotient(0, finals, states);
    Ok(Fst {
        initial,
        finals,
        states,
    })
}

/// Merges forward-bisimilar states (identical finality and identical
/// transition signatures up to the current partition), iterated to a
/// fixpoint. Language- and output-preserving.
///
/// This matters beyond size: the Thompson construction turns `.*` into an
/// entry transition followed by a loop state, whereas the quotient collapses
/// them into a genuine self-loop — exactly the shape the paper's FSTs have
/// (Fig. 4) and the shape D-SEQ's "state change = relevant position"
/// rewriting heuristic (Sec. V-B) relies on.
fn quotient(
    initial: u32,
    finals: Vec<bool>,
    states: Vec<Vec<Transition>>,
) -> (u32, Vec<bool>, Vec<Vec<Transition>>) {
    /// State signature under the current partition: own group plus the
    /// deduplicated `(input, output, target group)` edge set.
    type Signature = (u32, Vec<(InputLabel, OutputLabel, u32)>);

    let n = states.len();
    let mut group: Vec<u32> = finals.iter().map(|&f| u32::from(f)).collect();
    // Refinement only splits groups, so a stable group count means a stable
    // partition.
    let mut num_groups = 0u32;
    loop {
        let mut sig_map: crate::fx::FxHashMap<Signature, u32> = crate::fx::FxHashMap::default();
        let mut next_group = vec![0u32; n];
        for q in 0..n {
            let mut edges: Vec<(InputLabel, OutputLabel, u32)> = states[q]
                .iter()
                .map(|t| (t.input, t.output, group[t.to as usize]))
                .collect();
            edges.sort_unstable();
            edges.dedup();
            let fresh = sig_map.len() as u32;
            next_group[q] = *sig_map.entry((group[q], edges)).or_insert(fresh);
        }
        let new_num = sig_map.len() as u32;
        group = next_group;
        if new_num == num_groups {
            break;
        }
        num_groups = new_num;
    }

    let m = num_groups as usize;
    let mut q_states: Vec<Vec<Transition>> = vec![Vec::new(); m];
    let mut q_finals = vec![false; m];
    let mut filled = vec![false; m];
    for q in 0..n {
        let g = group[q] as usize;
        q_finals[g] |= finals[q];
        if filled[g] {
            continue;
        }
        filled[g] = true;
        let mut trs: Vec<Transition> = states[q]
            .iter()
            .map(|t| Transition {
                input: t.input,
                output: t.output,
                to: group[t.to as usize],
            })
            .collect();
        trs.sort_by_key(|t| (t.to, t.input, t.output));
        trs.dedup();
        q_states[g] = trs;
    }
    // Renumber so the initial group is state 0 (callers rely on it).
    let init = group[initial as usize];
    if init != 0 {
        q_states.swap(0, init as usize);
        q_finals.swap(0, init as usize);
        for trs in q_states.iter_mut() {
            for t in trs.iter_mut() {
                if t.to == init {
                    t.to = 0;
                } else if t.to == 0 {
                    t.to = init;
                }
            }
        }
    }
    (0, q_finals, q_states)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy;
    use crate::PatEx;

    fn accepts(fst: &Fst, dict: &Dictionary, seq: &[crate::ItemId]) -> bool {
        super::super::Grid::build(fst, dict, seq).accepts()
    }

    #[test]
    fn simple_concat() {
        let fx = toy::fixture();
        let fst = Fst::compile(&PatEx::parse("(a1)(b)").unwrap(), &fx.dict).unwrap();
        assert!(accepts(&fst, &fx.dict, &[fx.a1, fx.b]));
        assert!(!accepts(&fst, &fx.dict, &[fx.a1]));
        assert!(!accepts(&fst, &fx.dict, &[fx.b, fx.a1]));
        assert!(!accepts(&fst, &fx.dict, &[fx.a1, fx.b, fx.b]));
    }

    #[test]
    fn hierarchy_matching_in_input() {
        let fx = toy::fixture();
        // `A` (no =) matches descendants a1, a2, A.
        let fst = Fst::compile(&PatEx::parse("(A)").unwrap(), &fx.dict).unwrap();
        for w in [fx.a1, fx.a2, fx.big_a] {
            assert!(accepts(&fst, &fx.dict, &[w]));
        }
        assert!(!accepts(&fst, &fx.dict, &[fx.b]));
        // `A=` matches only A itself.
        let fst = Fst::compile(&PatEx::parse("(A=)").unwrap(), &fx.dict).unwrap();
        assert!(accepts(&fst, &fx.dict, &[fx.big_a]));
        assert!(!accepts(&fst, &fx.dict, &[fx.a1]));
    }

    #[test]
    fn star_and_plus_and_optional() {
        let fx = toy::fixture();
        let d = &fx.dict;
        let star = Fst::compile(&PatEx::parse("[(b)]*").unwrap(), d).unwrap();
        assert!(star.accepts_empty());
        assert!(accepts(&star, d, &[fx.b, fx.b, fx.b]));

        let plus = Fst::compile(&PatEx::parse("[(b)]+").unwrap(), d).unwrap();
        assert!(!plus.accepts_empty());
        assert!(accepts(&plus, d, &[fx.b]));
        assert!(accepts(&plus, d, &[fx.b, fx.b]));

        let opt = Fst::compile(&PatEx::parse("(b)?").unwrap(), d).unwrap();
        assert!(opt.accepts_empty());
        assert!(accepts(&opt, d, &[fx.b]));
        assert!(!accepts(&opt, d, &[fx.b, fx.b]));
    }

    #[test]
    fn ranges_unroll_correctly() {
        let fx = toy::fixture();
        let d = &fx.dict;
        let r = Fst::compile(&PatEx::parse("(b){2,3}").unwrap(), d).unwrap();
        assert!(!accepts(&r, d, &[fx.b]));
        assert!(accepts(&r, d, &[fx.b, fx.b]));
        assert!(accepts(&r, d, &[fx.b, fx.b, fx.b]));
        assert!(!accepts(&r, d, &[fx.b, fx.b, fx.b, fx.b]));

        let open = Fst::compile(&PatEx::parse("(b){2,}").unwrap(), d).unwrap();
        assert!(!accepts(&open, d, &[fx.b]));
        assert!(accepts(&open, d, &[fx.b; 5]));

        let zero = Fst::compile(&PatEx::parse("(b){0,2}").unwrap(), d).unwrap();
        assert!(zero.accepts_empty());
        assert!(accepts(&zero, d, &[fx.b, fx.b]));
        assert!(!accepts(&zero, d, &[fx.b, fx.b, fx.b]));
    }

    #[test]
    fn alternation() {
        let fx = toy::fixture();
        let d = &fx.dict;
        let alt = Fst::compile(&PatEx::parse("(b)|(c)").unwrap(), d).unwrap();
        assert!(accepts(&alt, d, &[fx.b]));
        assert!(accepts(&alt, d, &[fx.c]));
        assert!(!accepts(&alt, d, &[fx.d]));
    }

    #[test]
    fn unknown_item_rejected() {
        let fx = toy::fixture();
        let err = Fst::compile(&PatEx::parse("(zzz)").unwrap(), &fx.dict).unwrap_err();
        assert!(matches!(err, Error::UnknownItem(_)));
    }

    #[test]
    fn dead_states_pruned() {
        let fx = toy::fixture();
        // `(e)(zzz)`-style dead branches aside, compare sizes of a redundant
        // alternation: both branches identical → dedup keeps it small.
        let fst1 = Fst::compile(&PatEx::parse("(b)|(b)").unwrap(), &fx.dict).unwrap();
        let fst2 = Fst::compile(&PatEx::parse("(b)").unwrap(), &fx.dict).unwrap();
        // Same language; pruned/deduplicated automaton should not blow up.
        assert!(fst1.num_states() <= fst2.num_states() + 2);
    }

    #[test]
    fn toy_fst_equivalent_to_paper_fig4() {
        // The compiled FST for πex must accept exactly the inputs the paper's
        // hand-drawn FST accepts (checked on all toy sequences).
        let fx = toy::fixture();
        let expected = [true, true, false, true, true]; // T1, T2, T3, T4, T5
        for (t, want) in fx.db.sequences.iter().zip(expected) {
            assert_eq!(accepts(&fx.fst, &fx.dict, t), want, "seq {t:?}");
        }
    }
}
