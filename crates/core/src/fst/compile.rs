//! Pattern expression → FST compilation.
//!
//! A standard Thompson construction produces a transducer with ε-input
//! edges; the [`opt`](super::opt) pipeline then yields the final [`Fst`] in
//! which every transition consumes exactly one input item: ε-removal and
//! dead-state pruning always run (the representation requires them),
//! pair-determinization and suffix-sharing minimization at
//! [`OptLevel::Full`].

use super::opt::{self, OptLevel};
use super::{Fst, InputLabel, OutputLabel};
use crate::dictionary::Dictionary;
use crate::error::{Error, Result};
use crate::pexp::PatEx;

/// Thompson-style NFST state: any number of ε edges plus at most one
/// consuming edge.
#[derive(Default, Clone)]
pub(super) struct NState {
    pub(super) eps: Vec<u32>,
    pub(super) consume: Option<(InputLabel, OutputLabel, u32)>,
}

struct Builder<'a> {
    states: Vec<NState>,
    dict: &'a Dictionary,
}

/// A sub-automaton under construction, with unique entry and exit states.
#[derive(Clone, Copy)]
struct Frag {
    start: u32,
    end: u32,
}

impl<'a> Builder<'a> {
    fn state(&mut self) -> u32 {
        self.states.push(NState::default());
        (self.states.len() - 1) as u32
    }

    fn eps(&mut self, from: u32, to: u32) {
        self.states[from as usize].eps.push(to);
    }

    fn atom(&mut self, input: InputLabel, output: OutputLabel) -> Frag {
        let start = self.state();
        let end = self.state();
        self.states[start as usize].consume = Some((input, output, end));
        Frag { start, end }
    }

    fn compile(&mut self, e: &PatEx, captured: bool) -> Result<Frag> {
        match e {
            PatEx::Item { name, exact, up } => {
                let w = self
                    .dict
                    .id_of(name)
                    .ok_or_else(|| Error::UnknownItem(name.clone()))?;
                let input = if *exact && !*up {
                    // `w=` matches exactly w.
                    InputLabel::Exact(w)
                } else {
                    // `w`, `w^`, `w^=` match any descendant of w.
                    InputLabel::Desc(w)
                };
                let output = if !captured {
                    OutputLabel::None
                } else {
                    match (up, exact) {
                        (false, false) => OutputLabel::Matched,            // (w)
                        (false, true) => OutputLabel::Const(w),            // (w=)
                        (true, false) => OutputLabel::Generalize(Some(w)), // (w^)
                        (true, true) => OutputLabel::Const(w), // (w^=): always generalize to w
                    }
                };
                Ok(self.atom(input, output))
            }
            PatEx::Dot { up } => {
                let output = if !captured {
                    OutputLabel::None
                } else if *up {
                    OutputLabel::Generalize(None) // (.^)
                } else {
                    OutputLabel::Matched // (.)
                };
                Ok(self.atom(InputLabel::Any, output))
            }
            PatEx::Capture(inner) => self.compile(inner, true),
            PatEx::Concat(es) => {
                let mut iter = es.iter();
                let first = self.compile(iter.next().expect("non-empty concat"), captured)?;
                let mut end = first.end;
                for e in iter {
                    let next = self.compile(e, captured)?;
                    self.eps(end, next.start);
                    end = next.end;
                }
                Ok(Frag {
                    start: first.start,
                    end,
                })
            }
            PatEx::Alt(es) => {
                let start = self.state();
                let end = self.state();
                for e in es {
                    let f = self.compile(e, captured)?;
                    self.eps(start, f.start);
                    self.eps(f.end, end);
                }
                Ok(Frag { start, end })
            }
            PatEx::Star(inner) => {
                let start = self.state();
                let end = self.state();
                let f = self.compile(inner, captured)?;
                self.eps(start, f.start);
                self.eps(start, end);
                self.eps(f.end, f.start);
                self.eps(f.end, end);
                Ok(Frag { start, end })
            }
            PatEx::Plus(inner) => {
                let start = self.state();
                let end = self.state();
                let f = self.compile(inner, captured)?;
                self.eps(start, f.start);
                self.eps(f.end, f.start);
                self.eps(f.end, end);
                Ok(Frag { start, end })
            }
            PatEx::Optional(inner) => {
                let start = self.state();
                let end = self.state();
                let f = self.compile(inner, captured)?;
                self.eps(start, f.start);
                self.eps(start, end);
                self.eps(f.end, end);
                Ok(Frag { start, end })
            }
            PatEx::Range { inner, min, max } => {
                // Unroll: min mandatory copies, then either a star (max =
                // None) or max - min optional copies. Each copy is an
                // independent re-compilation of the inner expression.
                let start = self.state();
                let mut cur = start;
                for _ in 0..*min {
                    let f = self.compile(inner, captured)?;
                    self.eps(cur, f.start);
                    cur = f.end;
                }
                match max {
                    None => {
                        let f = self.compile(&PatEx::Star(inner.clone()), captured)?;
                        self.eps(cur, f.start);
                        cur = f.end;
                    }
                    Some(m) => {
                        // Optional tail copies; each can be skipped straight
                        // to the end.
                        let end = self.state();
                        for _ in *min..*m {
                            let f = self.compile(inner, captured)?;
                            self.eps(cur, end);
                            self.eps(cur, f.start);
                            cur = f.end;
                        }
                        self.eps(cur, end);
                        cur = end;
                    }
                }
                Ok(Frag { start, end: cur })
            }
        }
    }
}

pub(super) fn compile(pexp: &PatEx, dict: &Dictionary, level: OptLevel) -> Result<Fst> {
    let mut b = Builder {
        states: Vec::new(),
        dict,
    };
    let frag = b.compile(pexp, false)?;
    Ok(opt::optimize(&b.states, frag.start, frag.end, level))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy;
    use crate::PatEx;

    fn accepts(fst: &Fst, dict: &Dictionary, seq: &[crate::ItemId]) -> bool {
        super::super::Grid::build(fst, dict, seq).accepts()
    }

    #[test]
    fn simple_concat() {
        let fx = toy::fixture();
        let fst = Fst::compile(&PatEx::parse("(a1)(b)").unwrap(), &fx.dict).unwrap();
        assert!(accepts(&fst, &fx.dict, &[fx.a1, fx.b]));
        assert!(!accepts(&fst, &fx.dict, &[fx.a1]));
        assert!(!accepts(&fst, &fx.dict, &[fx.b, fx.a1]));
        assert!(!accepts(&fst, &fx.dict, &[fx.a1, fx.b, fx.b]));
    }

    #[test]
    fn hierarchy_matching_in_input() {
        let fx = toy::fixture();
        // `A` (no =) matches descendants a1, a2, A.
        let fst = Fst::compile(&PatEx::parse("(A)").unwrap(), &fx.dict).unwrap();
        for w in [fx.a1, fx.a2, fx.big_a] {
            assert!(accepts(&fst, &fx.dict, &[w]));
        }
        assert!(!accepts(&fst, &fx.dict, &[fx.b]));
        // `A=` matches only A itself.
        let fst = Fst::compile(&PatEx::parse("(A=)").unwrap(), &fx.dict).unwrap();
        assert!(accepts(&fst, &fx.dict, &[fx.big_a]));
        assert!(!accepts(&fst, &fx.dict, &[fx.a1]));
    }

    #[test]
    fn star_and_plus_and_optional() {
        let fx = toy::fixture();
        let d = &fx.dict;
        let star = Fst::compile(&PatEx::parse("[(b)]*").unwrap(), d).unwrap();
        assert!(star.accepts_empty());
        assert!(accepts(&star, d, &[fx.b, fx.b, fx.b]));

        let plus = Fst::compile(&PatEx::parse("[(b)]+").unwrap(), d).unwrap();
        assert!(!plus.accepts_empty());
        assert!(accepts(&plus, d, &[fx.b]));
        assert!(accepts(&plus, d, &[fx.b, fx.b]));

        let opt = Fst::compile(&PatEx::parse("(b)?").unwrap(), d).unwrap();
        assert!(opt.accepts_empty());
        assert!(accepts(&opt, d, &[fx.b]));
        assert!(!accepts(&opt, d, &[fx.b, fx.b]));
    }

    #[test]
    fn ranges_unroll_correctly() {
        let fx = toy::fixture();
        let d = &fx.dict;
        let r = Fst::compile(&PatEx::parse("(b){2,3}").unwrap(), d).unwrap();
        assert!(!accepts(&r, d, &[fx.b]));
        assert!(accepts(&r, d, &[fx.b, fx.b]));
        assert!(accepts(&r, d, &[fx.b, fx.b, fx.b]));
        assert!(!accepts(&r, d, &[fx.b, fx.b, fx.b, fx.b]));

        let open = Fst::compile(&PatEx::parse("(b){2,}").unwrap(), d).unwrap();
        assert!(!accepts(&open, d, &[fx.b]));
        assert!(accepts(&open, d, &[fx.b; 5]));

        let zero = Fst::compile(&PatEx::parse("(b){0,2}").unwrap(), d).unwrap();
        assert!(zero.accepts_empty());
        assert!(accepts(&zero, d, &[fx.b, fx.b]));
        assert!(!accepts(&zero, d, &[fx.b, fx.b, fx.b]));
    }

    #[test]
    fn alternation() {
        let fx = toy::fixture();
        let d = &fx.dict;
        let alt = Fst::compile(&PatEx::parse("(b)|(c)").unwrap(), d).unwrap();
        assert!(accepts(&alt, d, &[fx.b]));
        assert!(accepts(&alt, d, &[fx.c]));
        assert!(!accepts(&alt, d, &[fx.d]));
    }

    #[test]
    fn unknown_item_rejected() {
        let fx = toy::fixture();
        let err = Fst::compile(&PatEx::parse("(zzz)").unwrap(), &fx.dict).unwrap_err();
        assert!(matches!(err, Error::UnknownItem(_)));
    }

    #[test]
    fn dead_states_pruned() {
        let fx = toy::fixture();
        // `(e)(zzz)`-style dead branches aside, compare sizes of a redundant
        // alternation: both branches identical → dedup keeps it small.
        let fst1 = Fst::compile(&PatEx::parse("(b)|(b)").unwrap(), &fx.dict).unwrap();
        let fst2 = Fst::compile(&PatEx::parse("(b)").unwrap(), &fx.dict).unwrap();
        // Same language; pruned/deduplicated automaton should not blow up.
        assert!(fst1.num_states() <= fst2.num_states() + 2);
    }

    #[test]
    fn toy_fst_equivalent_to_paper_fig4() {
        // The compiled FST for πex must accept exactly the inputs the paper's
        // hand-drawn FST accepts (checked on all toy sequences).
        let fx = toy::fixture();
        let expected = [true, true, false, true, true]; // T1, T2, T3, T4, T5
        for (t, want) in fx.db.sequences.iter().zip(expected) {
            assert_eq!(accepts(&fx.fst, &fx.dict, t), want, "seq {t:?}");
        }
    }
}
