//! Tries and NFAs over *output item sets* — D-CAND's compact candidate
//! representation (Sec. VI-A of the paper), hoisted from `desq_dist` so the
//! FST optimizer's suffix-sharing pass and D-CAND's byte-serialized NFAs
//! share one minimization implementation (the [`minim`](super::minim)
//! signature-hashing machinery; `desq_dist::dcand::nfa` re-exports this
//! module for compatibility, mirroring the PR-5 `fx`/`codec` hoist).
//!
//! A path through the automaton is a sequence of transitions, each labelled
//! with a non-empty set of items; the automaton *represents* every item
//! sequence obtained by picking one item per transition along a path from
//! the root to an accepting state (the Cartesian semantics of FST outputs).
//!
//! [`TrieBuilder`] accumulates label-set paths (one per accepting-run
//! decomposition), [`TrieBuilder::minimize`] merges suffix-equivalent states
//! (the DAWG construction — "minimization" in the paper's ablation), and
//! [`Nfa::serialize`] / [`Nfa::deserialize`] implement the byte-level
//! encoding that flows through the shuffle, so the measured shuffle volume
//! is honest.
//!
//! ## Wire format
//!
//! A serialized NFA is a stream of transition records walked in DFS order.
//! Each record starts with a flags byte (undefined bits are a decode
//! error):
//!
//! * `HAS_SRC` (0x1) — the source state differs from the decoder's current
//!   state; its id follows as a varint and must already exist.
//! * `OLD_TARGET` (0x2) — the target already exists; its id follows the
//!   label. Otherwise the record creates a new state (ids are assigned in
//!   record order) which becomes the current state.
//! * `FINAL` (0x4) — the target state is accepting.
//!
//! After the flags (and optional source) comes the label: a varint length
//! followed by that many varint item ids.

use std::collections::BTreeSet;

use super::minim;
use crate::codec::{read_varint, write_varint};
use crate::error::{Error, Result};
use crate::sequence::{ItemId, Sequence};

const HAS_SRC: u8 = 0x1;
const OLD_TARGET: u8 = 0x2;
const FINAL: u8 = 0x4;
const VALID_FLAGS: u8 = HAS_SRC | OLD_TARGET | FINAL;

/// One automaton state: acceptance flag plus labelled transitions.
#[derive(Debug, Clone, Default)]
struct State {
    accept: bool,
    /// `(label set, target)`, label sets sorted ascending, edges sorted by
    /// label for deterministic serialization.
    edges: Vec<(Vec<ItemId>, u32)>,
}

/// An acyclic NFA over item-set labels; state 0 is the root.
#[derive(Debug, Clone)]
pub struct Nfa {
    states: Vec<State>,
}

impl Nfa {
    /// Number of states (including the root).
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// The represented set of item sequences.
    ///
    /// May be exponential in the automaton size; use [`Nfa::expand`] with a
    /// budget when the input is untrusted.
    pub fn language(&self) -> BTreeSet<Sequence> {
        self.expand(usize::MAX)
            .expect("unbounded expansion cannot exhaust")
    }

    /// The represented set of item sequences, bounded by `budget` units of
    /// expansion work.
    pub fn expand(&self, budget: usize) -> Result<BTreeSet<Sequence>> {
        let mut out = BTreeSet::new();
        let mut current = Vec::new();
        let mut work = 0usize;
        self.expand_from(0, &mut current, &mut out, budget, &mut work)?;
        Ok(out)
    }

    fn expand_from(
        &self,
        state: u32,
        current: &mut Sequence,
        out: &mut BTreeSet<Sequence>,
        budget: usize,
        work: &mut usize,
    ) -> Result<()> {
        *work += 1;
        if *work > budget {
            return Err(Error::ResourceExhausted(format!(
                "NFA expansion exceeded budget of {budget}"
            )));
        }
        let s = &self.states[state as usize];
        if s.accept && !current.is_empty() {
            out.insert(current.clone());
        }
        for (label, target) in &s.edges {
            for &w in label {
                current.push(w);
                self.expand_from(*target, current, out, budget, work)?;
                current.pop();
            }
        }
        Ok(())
    }

    /// Serializes the automaton (see the module docs for the format).
    pub fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let mut serial: Vec<Option<u32>> = vec![None; self.states.len()];
        serial[0] = Some(0);
        let mut next_id = 1u32;
        let mut current = 0u32;
        // DFS over edges; frames are (state, next edge index).
        let mut stack: Vec<(u32, usize)> = vec![(0, 0)];
        while let Some(frame) = stack.last_mut() {
            let (s, ei) = *frame;
            let edges = &self.states[s as usize].edges;
            if ei == edges.len() {
                stack.pop();
                continue;
            }
            frame.1 += 1;
            let (label, target) = &edges[ei];
            let src_id = serial[s as usize].expect("DFS visits sources first");
            let mut flags = 0u8;
            if src_id != current {
                flags |= HAS_SRC;
            }
            let old_target = serial[*target as usize];
            if old_target.is_some() {
                flags |= OLD_TARGET;
            }
            if self.states[*target as usize].accept {
                flags |= FINAL;
            }
            out.push(flags);
            if flags & HAS_SRC != 0 {
                write_varint(&mut out, u64::from(src_id));
            }
            write_varint(&mut out, label.len() as u64);
            for &w in label {
                write_varint(&mut out, u64::from(w));
            }
            match old_target {
                Some(t) => write_varint(&mut out, u64::from(t)),
                None => {
                    serial[*target as usize] = Some(next_id);
                    current = next_id;
                    next_id += 1;
                    stack.push((*target, 0));
                }
            }
        }
        out
    }

    /// Decodes a serialized automaton, validating every state reference.
    pub fn deserialize(bytes: &[u8]) -> Result<Nfa> {
        let mut states = vec![State::default()];
        let mut current = 0u32;
        let mut buf = bytes;
        while let Some((&flags, rest)) = buf.split_first() {
            buf = rest;
            if flags & !VALID_FLAGS != 0 {
                return Err(Error::Decode(format!(
                    "NFA: invalid flags byte {flags:#04x}"
                )));
            }
            let src = if flags & HAS_SRC != 0 {
                let v = read_varint(&mut buf)?;
                if v >= states.len() as u64 {
                    return Err(Error::Decode(format!(
                        "NFA: source state {v} does not exist yet"
                    )));
                }
                v as u32
            } else {
                current
            };
            let len = read_varint(&mut buf)? as usize;
            if len > buf.len() {
                return Err(Error::Decode(format!(
                    "NFA: label length {len} exceeds input"
                )));
            }
            let mut label = Vec::with_capacity(len);
            for _ in 0..len {
                let w = read_varint(&mut buf)?;
                label.push(
                    ItemId::try_from(w)
                        .map_err(|_| Error::Decode(format!("NFA: item {w} out of range")))?,
                );
            }
            let target = if flags & OLD_TARGET != 0 {
                let v = read_varint(&mut buf)?;
                if v >= states.len() as u64 {
                    return Err(Error::Decode(format!(
                        "NFA: target state {v} does not exist yet"
                    )));
                }
                if flags & FINAL != 0 {
                    states[v as usize].accept = true;
                }
                v as u32
            } else {
                let id = states.len() as u32;
                states.push(State {
                    accept: flags & FINAL != 0,
                    edges: Vec::new(),
                });
                current = id;
                id
            };
            states[src as usize].edges.push((label, target));
        }
        Ok(Nfa { states })
    }
}

/// A trie over label-set paths, the construction stage of D-CAND's
/// candidate representation.
#[derive(Debug, Clone)]
pub struct TrieBuilder {
    nodes: Vec<State>,
}

impl Default for TrieBuilder {
    fn default() -> Self {
        TrieBuilder::new()
    }
}

impl TrieBuilder {
    /// An empty trie (a lone, non-accepting root).
    pub fn new() -> TrieBuilder {
        TrieBuilder {
            nodes: vec![State::default()],
        }
    }

    /// Inserts one path of (non-empty, sorted) label sets; the node reached
    /// by the last set becomes accepting. Empty paths are ignored.
    pub fn insert(&mut self, path: &[Vec<ItemId>]) {
        if path.is_empty() {
            return;
        }
        let mut node = 0u32;
        for label in path {
            node = match self.nodes[node as usize]
                .edges
                .iter()
                .find(|(l, _)| l == label)
            {
                Some(&(_, child)) => child,
                None => {
                    let child = self.nodes.len() as u32;
                    self.nodes.push(State::default());
                    let edges = &mut self.nodes[node as usize].edges;
                    let at = edges.partition_point(|(l, _)| l < label);
                    edges.insert(at, (label.clone(), child));
                    child
                }
            };
        }
        self.nodes[node as usize].accept = true;
    }

    /// Number of trie nodes, including the root.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Converts the trie into an NFA verbatim (no state merging).
    pub fn into_nfa(self) -> Nfa {
        Nfa { states: self.nodes }
    }

    /// Converts the trie into an NFA with suffix-equivalent states merged
    /// (the incremental-DAWG minimization the paper applies before
    /// serialization). The language is preserved and the state count never
    /// grows.
    pub fn minimize(self) -> Nfa {
        // Children always have larger ids than their parents, so one
        // reverse-order signature-hashing round (the shared `minim`
        // machinery) processes every child before its parent and reaches
        // the fixpoint immediately.
        let n = self.nodes.len();
        let mut class_of = vec![0u32; n];
        let num = minim::hash_round((0..n).rev(), &mut class_of, |id, cls| {
            let node = &self.nodes[id];
            let edges: Vec<(Vec<ItemId>, u32)> = node
                .edges
                .iter()
                .map(|(l, c)| (l.clone(), cls[*c as usize]))
                .collect();
            (node.accept, edges)
        });
        // Representative node per class (any member works — equal
        // signatures mean identical label sets and child classes).
        let mut rep: Vec<u32> = vec![u32::MAX; num as usize];
        for (id, &c) in class_of.iter().enumerate() {
            if rep[c as usize] == u32::MAX {
                rep[c as usize] = id as u32;
            }
        }
        // Renumber classes in DFS order from the root's class so state 0 is
        // the root again.
        let root_class = class_of[0];
        let mut remap: Vec<Option<u32>> = vec![None; num as usize];
        let mut states: Vec<State> = Vec::new();
        let mut stack = vec![root_class];
        remap[root_class as usize] = Some(0);
        states.push(State::default());
        while let Some(class) = stack.pop() {
            let node = &self.nodes[rep[class as usize] as usize];
            let id = remap[class as usize].expect("pushed classes are mapped");
            let mut new_edges = Vec::with_capacity(node.edges.len());
            for (label, child) in &node.edges {
                let child_class = class_of[*child as usize];
                let child_id = match remap[child_class as usize] {
                    Some(c) => c,
                    None => {
                        let c = states.len() as u32;
                        remap[child_class as usize] = Some(c);
                        states.push(State::default());
                        stack.push(child_class);
                        c
                    }
                };
                new_edges.push((label.clone(), child_id));
            }
            states[id as usize] = State {
                accept: node.accept,
                edges: new_edges,
            };
        }
        Nfa { states }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paths() -> Vec<Vec<Vec<ItemId>>> {
        vec![
            vec![vec![4], vec![1]],
            vec![vec![4], vec![2, 4], vec![1]],
            vec![vec![4], vec![3], vec![1]],
            vec![vec![5], vec![3], vec![1]],
        ]
    }

    fn build(paths: &[Vec<Vec<ItemId>>]) -> TrieBuilder {
        let mut t = TrieBuilder::new();
        for p in paths {
            t.insert(p);
        }
        t
    }

    #[test]
    fn trie_language_is_cartesian_union() {
        let nfa = build(&paths()).into_nfa();
        let lang = nfa.language();
        let expect: BTreeSet<Sequence> = [
            vec![4, 1],
            vec![4, 2, 1],
            vec![4, 4, 1],
            vec![4, 3, 1],
            vec![5, 3, 1],
        ]
        .into_iter()
        .collect();
        assert_eq!(lang, expect);
    }

    #[test]
    fn minimize_preserves_language_and_shrinks() {
        let trie = build(&paths());
        let nodes = trie.num_nodes();
        let raw = trie.clone().into_nfa();
        let min = trie.minimize();
        assert_eq!(raw.language(), min.language());
        // The shared suffixes ([3] [1] and the accepting [1] states) merge.
        assert!(min.num_states() < nodes, "{} !< {nodes}", min.num_states());
    }

    #[test]
    fn serialize_roundtrips() {
        for nfa in [build(&paths()).into_nfa(), build(&paths()).minimize()] {
            let bytes = nfa.serialize();
            let back = Nfa::deserialize(&bytes).unwrap();
            assert_eq!(back.language(), nfa.language());
            assert_eq!(back.num_states(), nfa.num_states());
        }
    }

    #[test]
    fn empty_automaton_roundtrips() {
        let nfa = TrieBuilder::new().into_nfa();
        let bytes = nfa.serialize();
        assert!(bytes.is_empty());
        let back = Nfa::deserialize(&bytes).unwrap();
        assert!(back.language().is_empty());
    }

    #[test]
    fn serialization_is_deterministic() {
        // Insertion order must not leak into the minimized encoding.
        let mut a = TrieBuilder::new();
        let mut b = TrieBuilder::new();
        for p in paths() {
            a.insert(&p);
        }
        for p in paths().into_iter().rev() {
            b.insert(&p);
        }
        assert_eq!(a.minimize().serialize(), b.minimize().serialize());
    }

    #[test]
    fn corrupt_bytes_rejected() {
        assert!(matches!(
            Nfa::deserialize(&[0xff, 0x00]),
            Err(Error::Decode(_))
        ));
        assert!(matches!(
            Nfa::deserialize(&[0x01, 0x09, 0x01, 0x02]),
            Err(Error::Decode(_))
        ));
        // Truncated label.
        let good = build(&paths()).minimize().serialize();
        for cut in 1..good.len() {
            // Any prefix must either decode cleanly (record boundary) or
            // error — never panic.
            let _ = Nfa::deserialize(&good[..cut]);
        }
    }

    #[test]
    fn expansion_budget_respected() {
        let nfa = build(&paths()).into_nfa();
        assert!(matches!(nfa.expand(2), Err(Error::ResourceExhausted(_))));
        assert_eq!(nfa.expand(1_000).unwrap(), nfa.language());
    }
}
