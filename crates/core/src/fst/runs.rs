//! Enumeration of accepting runs (Sec. IV).
//!
//! A *run* for `T = t1...tn` is a sequence of `n` transitions starting in the
//! initial state and consuming every item; it is *accepting* if it ends in a
//! final state. [`for_each_accepting_run`] walks all accepting runs in
//! depth-first order, pruning dead ends with the [`Grid`]. The number of
//! accepting runs can be exponential in `|T|`; callers either bound the walk
//! (return `false` from the visitor to stop) or rely on grid-based dynamic
//! programming instead (pivot search of D-SEQ does the latter).

use super::{Fst, Grid, Transition};
use crate::dictionary::Dictionary;
use crate::sequence::ItemId;

/// Walks every accepting run of `fst` on `seq`, invoking `visit` with the
/// transitions of the run (one per position). `visit` returns `false` to
/// abort the walk; the function returns `false` iff it was aborted.
pub fn for_each_accepting_run<'f>(
    fst: &'f Fst,
    dict: &Dictionary,
    seq: &[ItemId],
    grid: &Grid,
    mut visit: impl FnMut(&[&'f Transition]) -> bool,
) -> bool {
    let n = seq.len();
    if !grid.accepts() {
        return true;
    }
    // frame = (position, state, index of next transition to try)
    let mut frames: Vec<(usize, u32, usize)> = vec![(0, fst.initial(), 0)];
    let mut path: Vec<&Transition> = Vec::with_capacity(n);

    while let Some(frame) = frames.last_mut() {
        let (i, q, ti) = *frame;
        if i == n {
            // Complete run; grid guarantees aliveness ⇒ final state.
            debug_assert!(fst.is_final(q));
            if !visit(&path) {
                return false;
            }
            frames.pop();
            path.pop();
            continue;
        }
        // Find the next viable transition.
        let trs = fst.transitions(q);
        let mut found = None;
        for (j, tr) in trs.iter().enumerate().skip(ti) {
            if tr.matches(seq[i], dict) && grid.is_alive(i + 1, tr.to) {
                found = Some((j, tr));
                break;
            }
        }
        match found {
            Some((j, tr)) => {
                frame.2 = j + 1;
                path.push(tr);
                frames.push((i + 1, tr.to, 0));
            }
            None => {
                frames.pop();
                path.pop();
            }
        }
    }
    true
}

/// Counts accepting runs, up to `limit`.
pub fn count_accepting_runs(
    fst: &Fst,
    dict: &Dictionary,
    seq: &[ItemId],
    grid: &Grid,
    limit: usize,
) -> usize {
    let mut count = 0usize;
    for_each_accepting_run(fst, dict, seq, grid, |_| {
        count += 1;
        count < limit
    });
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy;

    #[test]
    fn toy_t5_has_three_accepting_runs() {
        // Paper, Sec. IV: the accepting runs for T5 are r1, r2, r3.
        let fx = toy::fixture();
        let t5 = &fx.db.sequences[4];
        let grid = Grid::build(&fx.fst, &fx.dict, t5);
        let mut runs = Vec::new();
        for_each_accepting_run(&fx.fst, &fx.dict, t5, &grid, |path| {
            let outs: Vec<Vec<crate::ItemId>> = path
                .iter()
                .zip(t5)
                .map(|(tr, &t)| {
                    let mut buf = Vec::new();
                    tr.outputs(t, &fx.dict, &mut buf);
                    buf
                })
                .collect();
            runs.push(outs);
            true
        });
        assert_eq!(runs.len(), 3);
        // One of the runs produces {a1}-{a1,A}-{b} (run r3 of the paper).
        let r3 = vec![vec![fx.a1], vec![fx.big_a, fx.a1], vec![fx.b]];
        assert!(runs.contains(&r3), "runs: {runs:?}");
    }

    #[test]
    fn no_runs_for_rejected_sequence() {
        let fx = toy::fixture();
        let t3 = &fx.db.sequences[2];
        let grid = Grid::build(&fx.fst, &fx.dict, t3);
        let n = count_accepting_runs(&fx.fst, &fx.dict, t3, &grid, usize::MAX);
        assert_eq!(n, 0);
    }

    #[test]
    fn early_abort_stops_enumeration() {
        let fx = toy::fixture();
        let t2 = &fx.db.sequences[1];
        let grid = Grid::build(&fx.fst, &fx.dict, t2);
        let total = count_accepting_runs(&fx.fst, &fx.dict, t2, &grid, usize::MAX);
        assert!(total > 2, "T2 should have several accepting runs");
        let capped = count_accepting_runs(&fx.fst, &fx.dict, t2, &grid, 2);
        assert_eq!(capped, 2);
    }
}
