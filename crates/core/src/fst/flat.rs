//! The flat counting path: accepting-run enumeration over pre-filtered
//! per-position output sets, plus the interned candidate-counting sink
//! (PR 5).
//!
//! [`candidates::generate`](super::candidates::generate) is the *reference
//! semantics* of `G^σ_π(T)`: per sequence it builds a fresh
//! [`Grid`](super::Grid), re-evaluates
//! [`Transition::outputs`](super::Transition::outputs) inside the
//! run loop (one allocation per position per run), and materializes the
//! Cartesian products into a `FxHashSet<Vec<ItemId>>`. This module is the
//! production path for every algorithm that *counts* those candidates —
//! DESQ-COUNT, the NAÏVE / SEMI-NAÏVE baselines, and D-CAND's map-side run
//! decomposition:
//!
//! * [`RunWalker`] simulates the FST over the shared CSR [`FstIndex`]:
//!   per-position bit-packed match masks with grid aliveness folded in, and
//!   σ-filtered output sets materialized **once per `(position, label)`**
//!   into a flat arena — the run loop performs no dictionary access, no
//!   output re-evaluation and no allocation. All per-sequence state lives
//!   in a caller-provided [`RunScratch`] (one per worker thread, reused
//!   across sequences).
//! * [`CandidateCounter`] counts *interned* candidates: probing hashes
//!   the raw item slice once with [`fx::hash_items`] into an
//!   open-addressing [`fx::ProbeTable`] over flat arenas, and the
//!   canonical [`codec::encode_item_seq`] byte key is produced at most
//!   once per distinct candidate — no `Vec<ItemId>` keys, no
//!   per-candidate allocation after warm-up.
//!
//! # Equivalence contract
//!
//! [`RunWalker::count_candidates`] is observationally equivalent to
//! [`candidates::generate`](super::candidates::generate): it walks the same
//! accepting runs in the same depth-first order, applies the same σ filter,
//! charges the same work units against the same budget (one per accepting
//! run walked plus one per candidate materialized, duplicates included),
//! raises [`Error::ResourceExhausted`] at exactly the same effective work
//! bound, and observes exactly the candidates of `G^σ_π(T)` (each once per
//! input sequence). The property tests in `tests/proptest_invariants.rs`
//! enforce this on random dictionaries, pattern expressions and databases.

use super::index::FstIndex;
use super::{Fst, InputLabel};
use crate::codec;
use crate::dictionary::Dictionary;
use crate::error::{Error, Result};
use crate::fx::{self, ProbeTable};
use crate::sequence::{ItemId, Sequence};

#[inline]
fn set_bit(bits: &mut [u64], i: usize) {
    bits[i / 64] |= 1 << (i % 64);
}

/// Evaluates distinct input label `d` on item `t`, memoizing hierarchy
/// (`Desc`) verdicts in the per-item `cache` (low byte = evaluated bits,
/// high byte = match bits; labels beyond the cached eight fall back to a
/// direct check). `Any` and `Exact` labels are cheaper than the cache.
#[inline]
fn match_cached(
    label: &InputLabel,
    d: u16,
    t: ItemId,
    dict: &Dictionary,
    cache: &mut [u16],
) -> bool {
    match *label {
        InputLabel::Any => true,
        InputLabel::Exact(w) => t == w,
        InputLabel::Desc(w) => {
            if d < 8 {
                let e = &mut cache[t as usize];
                let eval_bit = 1u16 << d;
                if *e & eval_bit == 0 {
                    let m = dict.is_ancestor(w, t);
                    *e |= eval_bit | (u16::from(m) << (8 + d));
                }
                *e & (1 << (8 + d)) != 0
            } else {
                dict.is_ancestor(w, t)
            }
        }
    }
}

#[inline]
fn get_bit(bits: &[u64], i: usize) -> bool {
    bits[i / 64] >> (i % 64) & 1 != 0
}

/// One DFS frame of the run walk: input position, FST state, index of the
/// next transition of the state to try, and whether descending into this
/// frame pushed an output-set entry (ε-output transitions push nothing).
struct Frame {
    pos: u32,
    state: u32,
    next: u32,
    pushed: bool,
}

/// Reusable per-thread scratch of the flat run walk: match-mask rows, grid
/// bitsets, the output-set arena and the DFS stacks.
///
/// Create one per worker thread (`RunScratch::default()`) and pass it to
/// every [`RunWalker`] call the thread makes; after warm-up the walk
/// allocates nothing per sequence.
#[derive(Default)]
pub struct RunScratch {
    /// Per-position match masks (`n × words`), pruned to transitions whose
    /// target coordinate is alive.
    mask: Vec<u64>,
    /// Forward-reachability bitset over `(position, state)` cells.
    fwd: Vec<u64>,
    /// Aliveness bitset (forward-reachable ∧ accepting completion exists).
    alive: Vec<u64>,
    /// Arena range of the σ-filtered output set per
    /// `(position, interned label)`.
    out_off: Vec<(u32, u32)>,
    /// Output-set arena.
    outs: Vec<ItemId>,
    /// Raw output buffer of one `(position, label)` materialization.
    outbuf: Vec<ItemId>,
    /// Per-item match cache for hierarchy (`Desc`) input labels, shared
    /// across all sequences of the job: bit `d` of the low byte = label `d`
    /// evaluated for this item, bit `d` of the high byte = it matched.
    /// Keyed to the [`FstIndex::generation`] id via `cache_key` (an index
    /// is only valid with the dictionary its FST was compiled against, so
    /// the id covers both).
    cache: Vec<u16>,
    cache_key: u64,
    /// Small-FST step table (`words() == 1` and ≤ 32 states): per
    /// `(item, state)` one `(match-row bits, next-state mask)` pair, filled
    /// lazily per item — a frontier step is then one load per frontier
    /// state instead of one label evaluation per transition.
    step: Vec<u64>,
    /// Per item: step-table rows filled.
    step_filled: Vec<u8>,
    /// DFS frames (one per consumed position plus the root).
    frames: Vec<Frame>,
    /// Arena ranges of the non-ε output sets along the current run.
    path_sets: Vec<(u32, u32)>,
    /// Candidate item buffer of the Cartesian-product descent.
    items: Vec<ItemId>,
}

/// The σ-filtered, ε-free output sets of one accepting run, in position
/// order (borrowed from the walk's arena — valid only inside the visitor).
pub struct RunSets<'w> {
    ranges: &'w [(u32, u32)],
    arena: &'w [ItemId],
    dead: bool,
}

impl<'w> RunSets<'w> {
    /// True iff some position's output set σ-filtered to empty: the run
    /// cannot produce an all-frequent candidate. Dead runs still count one
    /// unit of enumeration work (the reference semantics walks them too)
    /// but produce no candidates; [`set`](RunSets::set) may return empty
    /// slices on a dead run.
    #[inline]
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Number of non-ε output sets (the length of the run's candidates).
    #[inline]
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// True iff the run produced only ε (its sole candidate is empty).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// The `j`-th non-ε output set, sorted ascending.
    #[inline]
    pub fn set(&self, j: usize) -> &'w [ItemId] {
        let (s, e) = self.ranges[j];
        &self.arena[s as usize..e as usize]
    }

    /// The sets in position order (cloneable — consumers may take several
    /// passes without collecting).
    pub fn iter(&self) -> impl Iterator<Item = &'w [ItemId]> + Clone + '_ {
        (0..self.len()).map(|j| self.set(j))
    }
}

/// Flat accepting-run enumeration for one FST over one dictionary (see the
/// [module docs](self)).
///
/// Construction borrows a shared [`FstIndex`] (build it once per FST); the
/// per-sequence state lives in a caller-provided [`RunScratch`].
pub struct RunWalker<'a> {
    fst: &'a Fst,
    dict: &'a Dictionary,
    index: &'a FstIndex,
    max_item: ItemId,
}

impl<'a> RunWalker<'a> {
    /// A walker whose output sets keep only items `<= max_item` — pass
    /// `dict.last_frequent(sigma)` for the `G^σ_π(T)` filter (fids are
    /// frequency ranks, so the comparison is exactly support
    /// antimonotonicity's frequency test).
    pub fn new(fst: &'a Fst, dict: &'a Dictionary, index: &'a FstIndex, max_item: ItemId) -> Self {
        RunWalker {
            fst,
            dict,
            index,
            max_item,
        }
    }

    /// An unfiltered walker (`G_π(T)` semantics — the NAÏVE baseline).
    pub fn unfiltered(fst: &'a Fst, dict: &'a Dictionary, index: &'a FstIndex) -> Self {
        RunWalker::new(fst, dict, index, ItemId::MAX)
    }

    /// Builds the per-sequence tables in `scratch`: match masks (pruned by
    /// aliveness), forward-reachability and aliveness bitsets. Returns
    /// `true` iff the FST accepts `seq`; rejected sequences short-circuit
    /// after the forward pass.
    ///
    /// The forward pass is *frontier-driven and lazy*: at every position,
    /// only the distinct input labels of transitions leaving
    /// forward-reachable states are evaluated (each at most once per
    /// position), so selective constraints whose deep states are rarely
    /// reached pay far less than a full per-position mask fill. Mask bits
    /// of transitions from unreachable states stay unset — harmless,
    /// because the backward pass and the walk only consult bits of
    /// forward-reachable sources.
    fn prepare(&self, seq: &[ItemId], scratch: &mut RunScratch) -> bool {
        let ix = self.index;
        let n = seq.len();
        let qn = self.fst.num_states();
        let w = ix.words();
        let qw = qn.div_ceil(64).max(1);
        let distinct = ix.distinct_inputs();

        scratch.mask.clear();
        scratch.mask.resize(n * w, 0);
        scratch.fwd.clear();
        scratch.fwd.resize((n + 1) * qw, 0);
        // The per-item label cache persists across sequences; (re)key it to
        // this walker's index. The generation id is minted per construction
        // (addresses can be recycled by the allocator), and an FstIndex is
        // only ever valid against the dictionary its FST was compiled with,
        // so the index identity covers the dictionary too.
        let cache_key = self.index.generation();
        let cache_len = self.dict.max_fid() as usize + 1;
        if scratch.cache_key != cache_key || scratch.cache.len() != cache_len {
            scratch.cache.clear();
            scratch.cache.resize(cache_len, 0);
            scratch.step.clear();
            scratch.step_filled.clear();
            scratch.cache_key = cache_key;
        }
        // Small FSTs (every compiled Tab. III constraint) take the
        // step-table path: one mask word, one frontier word.
        let fast = ix.step_table_eligible();
        debug_assert_eq!(fast, w == 1 && qw == 1 && qn <= 32);
        if fast && scratch.step.len() != cache_len * qn * 2 {
            scratch.step.clear();
            scratch.step.resize(cache_len * qn * 2, 0);
            scratch.step_filled.clear();
            scratch.step_filled.resize(cache_len, 0);
        }

        scratch.fwd[self.fst.initial() as usize / 64] |= 1 << (self.fst.initial() % 64);
        if fast {
            for (i, &t) in seq.iter().enumerate() {
                if scratch.step_filled[t as usize] == 0 {
                    self.fill_step(t, qn, &mut scratch.step, &mut scratch.cache);
                    scratch.step_filled[t as usize] = 1;
                }
                let steps = &scratch.step[t as usize * qn * 2..];
                let mut fbits = scratch.fwd[i];
                let (mut row, mut next) = (0u64, 0u64);
                while fbits != 0 {
                    let q = fbits.trailing_zeros() as usize;
                    fbits &= fbits - 1;
                    row |= steps[q * 2];
                    next |= steps[q * 2 + 1];
                }
                scratch.mask[i] = row;
                scratch.fwd[i + 1] = next;
            }
        } else {
            for (i, &t) in seq.iter().enumerate() {
                let row = &mut scratch.mask[i * w..(i + 1) * w];
                let (head, tail) = scratch.fwd.split_at_mut((i + 1) * qw);
                let frontier = &head[i * qw..];
                let next = &mut tail[..qw];
                let cache = &mut scratch.cache;
                for (fw, fword) in frontier.iter().enumerate() {
                    let mut fbits = *fword;
                    while fbits != 0 {
                        let q = fw * 64 + fbits.trailing_zeros() as usize;
                        fbits &= fbits - 1;
                        let dts = ix.state_distinct(q);
                        for (tr, &d) in ix.state(q).iter().zip(dts) {
                            // Only bits of transitions actually leaving the
                            // frontier are set — exactly the bits the
                            // backward pass and the walk consult.
                            if match_cached(&distinct[d as usize].0, d, t, self.dict, cache) {
                                row[tr.word as usize] |= tr.mask;
                                next[tr.to as usize / 64] |= 1 << (tr.to % 64);
                            }
                        }
                    }
                }
            }
        }
        let mut any_final = false;
        for q in 0..qn as u32 {
            if get_bit(&scratch.fwd[n * qw..], q as usize) && self.fst.is_final(q) {
                any_final = true;
            }
        }
        if !any_final {
            return false;
        }
        // Rejected sequences (the common case under selective constraints)
        // never pay for the aliveness table.
        scratch.alive.clear();
        scratch.alive.resize((n + 1) * qw, 0);
        for q in 0..qn as u32 {
            if get_bit(&scratch.fwd[n * qw..], q as usize) && self.fst.is_final(q) {
                set_bit(&mut scratch.alive[n * qw..], q as usize);
            }
        }
        let inputs = ix.inputs();
        for i in (0..n).rev() {
            let row = &mut scratch.mask[i * w..(i + 1) * w];
            let (head, tail) = scratch.alive.split_at_mut((i + 1) * qw);
            let alive_cur = &mut head[i * qw..];
            let alive_next = &tail[..qw];
            let frontier = &scratch.fwd[i * qw..(i + 1) * qw];
            for (fw, fword) in frontier.iter().enumerate() {
                let mut fbits = *fword;
                while fbits != 0 {
                    let q = fw * 64 + fbits.trailing_zeros() as usize;
                    fbits &= fbits - 1;
                    let ok = ix.state(q).iter().any(|tr| {
                        row[tr.word as usize] & tr.mask != 0 && get_bit(alive_next, tr.to as usize)
                    });
                    if ok {
                        set_bit(alive_cur, q);
                    }
                }
            }
            // Fold aliveness into the match bits (iterating set bits only:
            // lazily filled rows are sparse): one bit test then answers
            // "matches ∧ target alive" for the whole walk.
            for (wi, word) in row.iter_mut().enumerate() {
                let mut bits = *word;
                while bits != 0 {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let to = inputs[wi * 64 + b].1 as usize;
                    if !get_bit(alive_next, to) {
                        *word &= !(1 << b);
                    }
                }
            }
        }
        get_bit(&scratch.alive, self.fst.initial() as usize)
    }

    /// Fills the step-table rows of item `t`: for every state, the match
    /// row of its transitions on `t` and the resulting next-state mask.
    /// Runs once per distinct item of the job (Zipf-distributed inputs
    /// amortize it to nearly nothing).
    fn fill_step(&self, t: ItemId, qn: usize, step: &mut [u64], cache: &mut [u16]) {
        let ix = self.index;
        let distinct = ix.distinct_inputs();
        let base = t as usize * qn * 2;
        for q in 0..qn {
            let (mut row, mut next) = (0u64, 0u64);
            for (tr, &d) in ix.state(q).iter().zip(ix.state_distinct(q)) {
                if match_cached(&distinct[d as usize].0, d, t, self.dict, cache) {
                    row |= tr.mask;
                    next |= 1 << tr.to;
                }
            }
            step[base + q * 2] = row;
            step[base + q * 2 + 1] = next;
        }
    }

    /// Materializes the σ-filtered output set of every
    /// `(position, interned label)` pair with at least one viable
    /// transition into the scratch arena. Empty ranges mark σ-dead pairs.
    fn build_outputs(&self, seq: &[ItemId], scratch: &mut RunScratch) {
        let ix = self.index;
        let w = ix.words();
        let l = ix.num_labels();
        scratch.out_off.clear();
        scratch.outs.clear();
        for (i, &t) in seq.iter().enumerate() {
            let row = &scratch.mask[i * w..(i + 1) * w];
            for li in 0..l {
                let used = ix.label_mask(li).iter().zip(row).any(|(lm, m)| lm & m != 0);
                if !used {
                    scratch.out_off.push((0, 0));
                    continue;
                }
                let start = scratch.outs.len() as u32;
                scratch.outbuf.clear();
                ix.labels()[li].outputs(t, self.dict, &mut scratch.outbuf);
                scratch.outs.extend(
                    scratch
                        .outbuf
                        .iter()
                        .copied()
                        .filter(|&w| w <= self.max_item),
                );
                scratch.out_off.push((start, scratch.outs.len() as u32));
            }
        }
    }

    /// Builds the flat run tables for `seq` in `scratch` — the match-mask /
    /// aliveness grid plus the σ-filtered per-`(position, label)` output
    /// arena. Returns `true` iff the FST accepts `seq` (rejected sequences
    /// stop after the forward pass and build no output sets). Exposed for
    /// benchmarks; [`for_each_run`](Self::for_each_run) calls it
    /// internally.
    pub fn build_tables(&self, seq: &[ItemId], scratch: &mut RunScratch) -> bool {
        if !self.prepare(seq, scratch) {
            return false;
        }
        self.build_outputs(seq, scratch);
        true
    }

    /// Walks every accepting run of the FST on `seq` in the same
    /// depth-first order as [`runs::for_each_accepting_run`](super::runs::for_each_accepting_run),
    /// invoking `visit` with the run's σ-filtered non-ε output sets.
    /// `visit` returns `false` to abort the walk; the function returns
    /// `false` iff it was aborted.
    pub fn for_each_run(
        &self,
        seq: &[ItemId],
        scratch: &mut RunScratch,
        mut visit: impl FnMut(&RunSets<'_>) -> bool,
    ) -> bool {
        if !self.build_tables(seq, scratch) {
            return true;
        }
        let n = seq.len();
        let w = self.index.words();
        let l = self.index.num_labels();
        let RunScratch {
            frames,
            path_sets,
            mask,
            out_off,
            outs,
            ..
        } = scratch;
        frames.clear();
        path_sets.clear();
        frames.push(Frame {
            pos: 0,
            state: self.fst.initial(),
            next: 0,
            pushed: false,
        });
        // Number of σ-dead (empty) sets on the current path.
        let mut dead = 0usize;
        while let Some(frame) = frames.last_mut() {
            let (i, q, ti) = (frame.pos as usize, frame.state, frame.next as usize);
            if i == n {
                // Complete run; aliveness pruning guarantees a final state.
                debug_assert!(self.fst.is_final(q));
                let sets = RunSets {
                    ranges: path_sets,
                    arena: outs,
                    dead: dead > 0,
                };
                if !visit(&sets) {
                    return false;
                }
                let f = frames.pop().expect("frame exists");
                if f.pushed {
                    let (s, e) = path_sets.pop().expect("pushed set exists");
                    if s == e {
                        dead -= 1;
                    }
                }
                continue;
            }
            // Find the next viable transition (match bit = matches ∧ alive).
            let row = &mask[i * w..(i + 1) * w];
            let trs = self.index.state(q as usize);
            let mut found = None;
            for (j, tr) in trs.iter().enumerate().skip(ti) {
                if row[tr.word as usize] & tr.mask != 0 {
                    found = Some((j, tr));
                    break;
                }
            }
            match found {
                Some((j, tr)) => {
                    frame.next = j as u32 + 1;
                    let pushed = tr.label >= 0;
                    if pushed {
                        let r = out_off[i * l + tr.label as usize];
                        if r.0 == r.1 {
                            dead += 1;
                        }
                        path_sets.push(r);
                    }
                    frames.push(Frame {
                        pos: i as u32 + 1,
                        state: tr.to,
                        next: 0,
                        pushed,
                    });
                }
                None => {
                    let f = frames.pop().expect("frame exists");
                    if f.pushed {
                        let (s, e) = path_sets.pop().expect("pushed set exists");
                        if s == e {
                            dead -= 1;
                        }
                    }
                }
            }
        }
        true
    }

    /// Counts the candidates `G^σ_π(T)` of `seq` into `counter` — the flat
    /// equivalent of [`candidates::generate`](super::candidates::generate)
    /// (see the [equivalence contract](self)).
    ///
    /// Every candidate is observed once per input sequence with `weight`;
    /// `on_new` fires on each first observation with the candidate's items
    /// and the counter (shuffle emitters call
    /// [`CandidateCounter::last_key`] for the canonical bytes — pure
    /// counters pass a no-op and never pay for an encoding; `on_new` must
    /// not call `begin_sequence`/`observe` itself). `budget` bounds the
    /// work (accepting runs walked plus candidates materialized) exactly
    /// like the reference; exceeding it returns
    /// [`Error::ResourceExhausted`].
    pub fn count_candidates(
        &self,
        seq: &[ItemId],
        weight: u64,
        budget: usize,
        scratch: &mut RunScratch,
        counter: &mut CandidateCounter,
        mut on_new: impl FnMut(&[ItemId], &mut CandidateCounter),
    ) -> Result<()> {
        counter.begin_sequence(weight);
        let mut items = std::mem::take(&mut scratch.items);
        let mut work = 0usize;
        let mut exhausted = false;
        let completed = self.for_each_run(seq, scratch, |sets| {
            work += 1;
            if work > budget {
                exhausted = true;
                return false;
            }
            if sets.is_dead() {
                return true;
            }
            items.clear();
            if !product_count(sets, 0, &mut items, counter, &mut on_new, budget, &mut work) {
                exhausted = true;
                return false;
            }
            true
        });
        scratch.items = items;
        if exhausted || !completed {
            return Err(Error::ResourceExhausted(format!(
                "candidate counting exceeded budget of {budget}"
            )));
        }
        Ok(())
    }
}

/// Cartesian-product descent over a run's output sets, observing each
/// complete candidate. Returns `false` on budget exhaustion.
fn product_count(
    sets: &RunSets<'_>,
    depth: usize,
    items: &mut Vec<ItemId>,
    counter: &mut CandidateCounter,
    on_new: &mut impl FnMut(&[ItemId], &mut CandidateCounter),
    budget: usize,
    work: &mut usize,
) -> bool {
    if depth == sets.len() {
        *work += 1;
        if *work > budget {
            return false;
        }
        // The all-ε run's empty candidate is charged but never counted
        // (the reference removes it after generation).
        if !items.is_empty() && counter.observe(items) {
            on_new(items, counter);
        }
        return true;
    }
    for &w in sets.set(depth) {
        items.push(w);
        let ok = product_count(sets, depth + 1, items, counter, on_new, budget, work);
        items.pop();
        if !ok {
            return false;
        }
    }
    true
}

/// One interned candidate: its [`fx::hash_items`] hash, the exclusive end
/// offsets of its item and canonical-byte ranges in the counter's arenas
/// (starts come from the previous entry), its per-sequence epoch stamp and
/// accumulated weight.
struct CountEntry {
    hash: u64,
    items_end: u32,
    key_end: u32,
    last_epoch: u32,
    count: u64,
}

/// An interned candidate-count table: candidates live in flat arenas and
/// are counted through an open-addressing [`ProbeTable`] — no
/// `Vec<ItemId>` keys, no per-candidate allocation after warm-up.
///
/// # Count-table contract
///
/// * Probing hashes and compares the raw item slices ([`fx::hash_items`]);
///   the candidate's canonical [`codec::encode_item_seq`] bytes are
///   produced **exactly once per distinct candidate** — at first insertion
///   — and stored alongside, so duplicate observations (the common case
///   inside Cartesian products) never re-encode. [`last_key`](Self::last_key)
///   exposes the stored bytes for shuffle emission.
/// * Counting is **per input sequence**: [`begin_sequence`](Self::begin_sequence)
///   opens a sequence with its weight, and [`observe`](Self::observe) adds
///   that weight at most once per distinct candidate per open sequence (an
///   epoch stamp per entry — no per-sequence clearing or allocation).
/// * Worker-local tables merge with [`merge`](Self::merge) on the calling
///   thread (weights add; no locks anywhere), and
///   [`patterns`](Self::patterns) returns the interned
///   candidates as sorted-ready `(Sequence, count)` pairs.
#[derive(Default)]
pub struct CandidateCounter {
    table: ProbeTable,
    entries: Vec<CountEntry>,
    /// Item arena; entry `i` owns `items[entries[i-1].items_end..entries[i].items_end]`.
    items: Vec<ItemId>,
    /// Canonical-encoding arena, parallel to `items` (empty unless
    /// [`with_keys`](Self::with_keys)).
    key_data: Vec<u8>,
    /// Store canonical encodings at insert time (shuffle consumers); plain
    /// counters skip the encode entirely and [`last_key`](Self::last_key)
    /// encodes on demand.
    store_keys: bool,
    /// On-demand encode scratch of [`last_key`](Self::last_key).
    keybuf: Vec<u8>,
    /// Entry index of the most recent `observe`.
    last: u32,
    epoch: u32,
    weight: u64,
    observed: u64,
}

impl CandidateCounter {
    /// An empty counter that never materializes canonical key bytes on its
    /// own (pure counting — DESQ-COUNT workers, D-CAND reducers).
    pub fn new() -> CandidateCounter {
        CandidateCounter::default()
    }

    /// An empty counter that stores each distinct candidate's canonical
    /// encoding at insert time, so [`last_key`](Self::last_key) is a slice
    /// lookup — for callers that emit every first observation into a
    /// shuffle (the NAÏVE / SEMI-NAÏVE mappers).
    pub fn with_keys() -> CandidateCounter {
        CandidateCounter {
            store_keys: true,
            ..CandidateCounter::default()
        }
    }

    /// Opens a new input sequence contributing `weight` per distinct
    /// candidate. Must be called before [`observe`](Self::observe).
    pub fn begin_sequence(&mut self, weight: u64) {
        self.epoch += 1;
        // u32::MAX is the fresh-entry sentinel ("never observed"); an
        // epoch reaching it would silently drop first observations.
        assert!(
            self.epoch < u32::MAX,
            "more than u32::MAX - 1 sequences in one counter"
        );
        self.weight = weight;
    }

    /// Observes one candidate for the open sequence. Returns `true` iff
    /// this is the candidate's first observation for this sequence (its
    /// count was bumped); the canonical encoding is then available via
    /// [`last_key`](Self::last_key).
    pub fn observe(&mut self, items: &[ItemId]) -> bool {
        debug_assert!(self.epoch > 0, "call begin_sequence before observe");
        let idx = self.intern(fx::hash_items(items), items) as usize;
        self.last = idx as u32;
        let entry = &mut self.entries[idx];
        if entry.last_epoch == self.epoch {
            return false;
        }
        entry.last_epoch = self.epoch;
        entry.count += self.weight;
        self.observed += 1;
        true
    }

    /// The canonical byte encoding of the most recently observed
    /// candidate: a stored-arena slice under [`with_keys`](Self::with_keys),
    /// an on-demand encode otherwise.
    #[inline]
    pub fn last_key(&mut self) -> &[u8] {
        if self.store_keys {
            return self.key(self.last as usize);
        }
        let mut keybuf = std::mem::take(&mut self.keybuf);
        keybuf.clear();
        codec::encode_item_seq(self.entry_items(self.last as usize), &mut keybuf);
        self.keybuf = keybuf;
        &self.keybuf
    }

    /// Number of distinct candidates interned.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff no candidate has been interned.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total first-per-sequence observations — the work metric of
    /// DESQ-COUNT (candidate occurrences counted).
    #[inline]
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// The items of entry `i`.
    #[inline]
    fn entry_items(&self, i: usize) -> &[ItemId] {
        let start = if i == 0 {
            0
        } else {
            self.entries[i - 1].items_end as usize
        };
        &self.items[start..self.entries[i].items_end as usize]
    }

    /// The canonical key bytes of entry `i`.
    #[inline]
    fn key(&self, i: usize) -> &[u8] {
        let start = if i == 0 {
            0
        } else {
            self.entries[i - 1].key_end as usize
        };
        &self.key_data[start..self.entries[i].key_end as usize]
    }

    fn intern(&mut self, hash: u64, items: &[ItemId]) -> u32 {
        let (table, entries) = (&mut self.table, &self.entries);
        table.grow_if_needed(entries.len(), |i| entries[i as usize].hash);
        let arena = &self.items;
        let slice_of = |i: u32| {
            let start = if i == 0 {
                0
            } else {
                entries[i as usize - 1].items_end as usize
            };
            &arena[start..entries[i as usize].items_end as usize]
        };
        match table.find(hash, |i| {
            entries[i as usize].hash == hash && slice_of(i) == items
        }) {
            Ok(i) => i,
            Err(slot) => {
                // The u32 arena offsets and ids must not wrap (a counter
                // would need > 4 Gi of distinct candidate items).
                assert!(
                    self.items.len() + items.len() <= u32::MAX as usize
                        && self.entries.len() < u32::MAX as usize,
                    "candidate count table exceeds the u32 offset range"
                );
                let id = self.entries.len() as u32;
                self.items.extend_from_slice(items);
                if self.store_keys {
                    // The one and only encoding of this candidate.
                    codec::encode_item_seq(items, &mut self.key_data);
                }
                self.entries.push(CountEntry {
                    hash,
                    items_end: self.items.len() as u32,
                    key_end: self.key_data.len() as u32,
                    count: 0,
                    // Never equal to an active epoch (epochs count from 1).
                    last_epoch: u32::MAX,
                });
                self.table.insert(slot, id);
                id
            }
        }
    }

    /// Iterates every interned candidate as
    /// `(items, canonical bytes, count)` — the NAÏVE mappers drain a
    /// partition's counter through this once, emitting each distinct
    /// candidate with its accumulated weight instead of once per input
    /// sequence. Requires [`with_keys`](Self::with_keys).
    pub fn iter_with_keys(&self) -> impl Iterator<Item = (&[ItemId], &[u8], u64)> + '_ {
        debug_assert!(self.store_keys, "iter_with_keys requires with_keys()");
        (0..self.len()).map(|i| (self.entry_items(i), self.key(i), self.entries[i].count))
    }

    /// Merges another counter's entries into this one (weights add). The
    /// intended use is combining owned per-worker partials on the calling
    /// thread.
    pub fn merge(&mut self, other: &CandidateCounter) {
        for i in 0..other.len() {
            let idx = self.intern(other.entries[i].hash, other.entry_items(i)) as usize;
            self.entries[idx].count += other.entries[i].count;
        }
        self.observed += other.observed;
    }

    /// Returns every interned candidate with count `>= min_count` as
    /// `(Sequence, count)` pairs (unordered — callers sort).
    pub fn patterns(&self, min_count: u64) -> Vec<(Sequence, u64)> {
        let mut out = Vec::new();
        for i in 0..self.len() {
            let count = self.entries[i].count;
            if count < min_count {
                continue;
            }
            out.push((self.entry_items(i).to_vec(), count));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::candidates;
    use super::*;
    use crate::fx::FxHashMap;
    use crate::toy;

    /// Reference counting over `candidates::generate` for one database.
    fn oracle_counts(
        fst: &Fst,
        dict: &Dictionary,
        seqs: &[Sequence],
        sigma: Option<u64>,
        budget: usize,
    ) -> Result<Vec<(Sequence, u64)>> {
        let mut counts: FxHashMap<Sequence, u64> = FxHashMap::default();
        for seq in seqs {
            for c in candidates::generate(fst, dict, seq, sigma, budget)? {
                *counts.entry(c).or_insert(0) += 1;
            }
        }
        let mut out: Vec<(Sequence, u64)> = counts.into_iter().collect();
        out.sort();
        Ok(out)
    }

    fn flat_counts(
        fst: &Fst,
        dict: &Dictionary,
        seqs: &[Sequence],
        sigma: Option<u64>,
        budget: usize,
    ) -> Result<Vec<(Sequence, u64)>> {
        let index = FstIndex::new(fst);
        let walker = match sigma {
            Some(s) => RunWalker::new(fst, dict, &index, dict.last_frequent(s)),
            None => RunWalker::unfiltered(fst, dict, &index),
        };
        let mut scratch = RunScratch::default();
        let mut counter = CandidateCounter::new();
        for seq in seqs {
            walker.count_candidates(seq, 1, budget, &mut scratch, &mut counter, |_, _| {})?;
        }
        let mut out = counter.patterns(0);
        out.sort();
        Ok(out)
    }

    #[test]
    fn flat_counts_match_oracle_on_toy() {
        let fx = toy::fixture();
        for sigma in [None, Some(1), Some(2), Some(3), Some(10)] {
            let oracle = oracle_counts(&fx.fst, &fx.dict, &fx.db.sequences, sigma, usize::MAX);
            let flat = flat_counts(&fx.fst, &fx.dict, &fx.db.sequences, sigma, usize::MAX);
            assert_eq!(flat.unwrap(), oracle.unwrap(), "sigma {sigma:?}");
        }
    }

    #[test]
    fn budget_exhaustion_parity_on_toy() {
        let fx = toy::fixture();
        for budget in 0..40 {
            for sigma in [None, Some(2)] {
                let oracle = oracle_counts(&fx.fst, &fx.dict, &fx.db.sequences, sigma, budget);
                let flat = flat_counts(&fx.fst, &fx.dict, &fx.db.sequences, sigma, budget);
                match (oracle, flat) {
                    (Ok(a), Ok(b)) => assert_eq!(b, a, "budget {budget} sigma {sigma:?}"),
                    (Err(Error::ResourceExhausted(_)), Err(Error::ResourceExhausted(_))) => {}
                    (a, b) => {
                        panic!("budget {budget} sigma {sigma:?}: oracle {a:?} vs flat {b:?}")
                    }
                }
            }
        }
    }

    #[test]
    fn run_sets_match_runs_module_on_toy() {
        // The walker's per-run sets equal the (unfiltered) output sets the
        // `runs` module materializes per transition.
        use super::super::{runs, Grid};
        let fx = toy::fixture();
        let index = FstIndex::new(&fx.fst);
        let walker = RunWalker::unfiltered(&fx.fst, &fx.dict, &index);
        let mut scratch = RunScratch::default();
        for seq in &fx.db.sequences {
            let mut expect: Vec<Vec<Vec<ItemId>>> = Vec::new();
            let grid = Grid::build(&fx.fst, &fx.dict, seq);
            runs::for_each_accepting_run(&fx.fst, &fx.dict, seq, &grid, |path| {
                let mut sets = Vec::new();
                for (tr, &t) in path.iter().zip(seq) {
                    if !tr.produces_output() {
                        continue;
                    }
                    let mut buf = Vec::new();
                    tr.outputs(t, &fx.dict, &mut buf);
                    sets.push(buf);
                }
                expect.push(sets);
                true
            });
            let mut got: Vec<Vec<Vec<ItemId>>> = Vec::new();
            walker.for_each_run(seq, &mut scratch, |sets| {
                assert!(!sets.is_dead(), "unfiltered runs are never dead");
                got.push(sets.iter().map(<[ItemId]>::to_vec).collect());
                true
            });
            assert_eq!(got, expect, "seq {seq:?}");
        }
    }

    #[test]
    fn counter_dedups_within_a_sequence_and_merges() {
        let mut a = CandidateCounter::new();
        a.begin_sequence(1);
        assert!(a.observe(&[1, 2]));
        assert!(!a.observe(&[1, 2]), "same sequence: no double count");
        assert!(a.observe(&[1]));
        a.begin_sequence(3);
        assert!(a.observe(&[1, 2]), "new sequence counts again");
        assert_eq!(a.observed(), 3);

        let mut b = CandidateCounter::new();
        b.begin_sequence(10);
        assert!(b.observe(&[1, 2]));
        assert!(b.observe(&[9]));

        a.merge(&b);
        let mut got = a.patterns(0);
        got.sort();
        assert_eq!(
            got,
            vec![(vec![1], 1), (vec![1, 2], 14), (vec![9], 10)],
            "weights add across merges"
        );
        // Threshold filters.
        let mut sigma = a.patterns(10);
        sigma.sort();
        assert_eq!(sigma, vec![(vec![1, 2], 14), (vec![9], 10)]);
    }

    #[test]
    fn walker_rejects_and_accepts_like_the_grid() {
        let fx = toy::fixture();
        let index = FstIndex::new(&fx.fst);
        let walker = RunWalker::unfiltered(&fx.fst, &fx.dict, &index);
        let mut scratch = RunScratch::default();
        // T3 is rejected: no runs visited.
        let mut visits = 0;
        walker.for_each_run(&fx.db.sequences[2], &mut scratch, |_| {
            visits += 1;
            true
        });
        assert_eq!(visits, 0);
        // T5 has exactly the paper's three accepting runs.
        walker.for_each_run(&fx.db.sequences[4], &mut scratch, |_| {
            visits += 1;
            true
        });
        assert_eq!(visits, 3);
    }
}
