//! The running example of the paper (Fig. 2): a reusable fixture.
//!
//! Sequence database `D_ex`:
//!
//! ```text
//! T1: a1 c d c b          T4: a2 d b
//! T2: e e a1 e a1 e b     T5: a1 a1 b
//! T3: c d c b
//! ```
//!
//! Hierarchy: `a1 ⇒ A`, `a2 ⇒ A`. Item frequencies (hierarchy-aware document
//! frequencies, Fig. 2c): b:5, A:4, d:3, a1:3, c:2, e:1, a2:1, which is also
//! the total order `b < A < d < a1 < c < e < a2` used throughout the paper's
//! examples.
//!
//! The example subsequence constraint is `πex` (paper notation
//! `.*(A)[(.↑).*]*(b).*`). We write it `.*(A)[(.^)|.]*(b).*`: the paper's
//! Fig. 4 FST has independent `.` and `(.↑)` self-loops at `q1`, i.e. matched
//! items between `(A)` and `(b)` may be captured-and-generalized or skipped
//! in any interleaving — which is what `[(.^)|.]*` compiles to, and what the
//! candidate sets of Fig. 3 require (e.g. `a1 d b ∈ G_πex(T1)` skips the `c`
//! right after the match of `(A)`).

use crate::dictionary::{Dictionary, DictionaryBuilder};
use crate::fst::Fst;
use crate::pexp::PatEx;
use crate::sequence::{ItemId, SequenceDb};

/// The paper's running example, frozen and compiled.
pub struct Toy {
    /// Frequency-encoded dictionary (Fig. 2b/2c).
    pub dict: Dictionary,
    /// Recoded sequence database (Fig. 2a); order T1..T5.
    pub db: SequenceDb,
    /// The pattern expression πex.
    pub pexp: PatEx,
    /// πex compiled to an FST (Fig. 4).
    pub fst: Fst,
    /// fid of item `b` (1).
    pub b: ItemId,
    /// fid of item `A` (2).
    pub big_a: ItemId,
    /// fid of item `d` (3).
    pub d: ItemId,
    /// fid of item `a1` (4).
    pub a1: ItemId,
    /// fid of item `c` (5).
    pub c: ItemId,
    /// fid of item `e` (6).
    pub e: ItemId,
    /// fid of item `a2` (7).
    pub a2: ItemId,
}

/// The example pattern expression of the paper, in ASCII syntax
/// (see the module docs for why the middle is `[(.^)|.]*`).
pub const PATTERN: &str = ".*(A)[(.^)|.]*(b).*";

/// Builds the running example.
pub fn fixture() -> Toy {
    let mut b = DictionaryBuilder::new();
    // Insertion order serves as the tie-break, matching Fig. 2c exactly:
    // f(d) = f(a1) = 3 with d < a1, and f(e) = f(a2) = 1 with e < a2.
    for name in ["b", "A", "d", "a1", "c", "e", "a2"] {
        b.item(name);
    }
    b.edge("a1", "A");
    b.edge("a2", "A");

    let g = |name: &str, b: &DictionaryBuilder| b.id_of(name).unwrap();
    let raw = SequenceDb::new(vec![
        vec![g("a1", &b), g("c", &b), g("d", &b), g("c", &b), g("b", &b)],
        vec![
            g("e", &b),
            g("e", &b),
            g("a1", &b),
            g("e", &b),
            g("a1", &b),
            g("e", &b),
            g("b", &b),
        ],
        vec![g("c", &b), g("d", &b), g("c", &b), g("b", &b)],
        vec![g("a2", &b), g("d", &b), g("b", &b)],
        vec![g("a1", &b), g("a1", &b), g("b", &b)],
    ]);

    let (dict, db) = b.freeze(&raw).expect("toy hierarchy is acyclic");
    let pexp = PatEx::parse(PATTERN).expect("toy pattern parses");
    let fst = Fst::compile(&pexp, &dict).expect("toy pattern compiles");

    let id = |n: &str| dict.id_of(n).unwrap();
    Toy {
        b: id("b"),
        big_a: id("A"),
        d: id("d"),
        a1: id("a1"),
        c: id("c"),
        e: id("e"),
        a2: id("a2"),
        dict,
        db,
        pexp,
        fst,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fids_are_the_paper_order() {
        let fx = fixture();
        assert_eq!(
            (fx.b, fx.big_a, fx.d, fx.a1, fx.c, fx.e, fx.a2),
            (1, 2, 3, 4, 5, 6, 7)
        );
    }

    #[test]
    fn database_shape() {
        let fx = fixture();
        assert_eq!(fx.db.len(), 5);
        assert_eq!(fx.db.sequences[4], vec![fx.a1, fx.a1, fx.b]);
    }
}
