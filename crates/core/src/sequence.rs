//! Sequences and sequence databases.
//!
//! After dictionary freezing (see [`crate::dictionary`]), items are encoded as
//! *fids* — frequency ranks, with fid 1 the most frequent item. The paper's
//! total item order `<` (less-frequent items are *larger*) is then plain
//! integer order on fids, so the *pivot item* of a sequence (its largest item
//! w.r.t. `<`, Sec. III-B) is its maximum fid.

/// An item identifier (frequency rank after recoding; raw id before).
pub type ItemId = u32;

/// The reserved id for ε, the empty output. ε is smaller than every item.
pub const EPSILON: ItemId = 0;

/// An input or output sequence: a list of items.
pub type Sequence = Vec<ItemId>;

/// The pivot item of a sequence: its maximum item id (Sec. III-B).
///
/// Returns [`EPSILON`] for the empty sequence.
#[inline]
pub fn pivot(seq: &[ItemId]) -> ItemId {
    seq.iter().copied().max().unwrap_or(EPSILON)
}

/// A sequence database `D = { T1, ..., T|D| }`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SequenceDb {
    /// The input sequences. Input sequences are assumed distinct in the
    /// paper's exposition; the implementation does not rely on it (support
    /// counts sequences by index).
    pub sequences: Vec<Sequence>,
}

impl SequenceDb {
    /// Creates a database from raw sequences.
    pub fn new(sequences: Vec<Sequence>) -> Self {
        SequenceDb { sequences }
    }

    /// Number of input sequences.
    pub fn len(&self) -> usize {
        self.sequences.len()
    }

    /// True if the database holds no sequences.
    pub fn is_empty(&self) -> bool {
        self.sequences.is_empty()
    }

    /// Total number of items across all sequences.
    pub fn total_items(&self) -> usize {
        self.sequences.iter().map(|s| s.len()).sum()
    }

    /// Length of the longest sequence.
    pub fn max_len(&self) -> usize {
        self.sequences.iter().map(|s| s.len()).max().unwrap_or(0)
    }

    /// Mean sequence length.
    pub fn mean_len(&self) -> f64 {
        if self.sequences.is_empty() {
            0.0
        } else {
            self.total_items() as f64 / self.sequences.len() as f64
        }
    }

    /// Splits the database into `n` contiguous chunks of near-equal size
    /// (the "machines" of the distributed setting).
    pub fn partition(&self, n: usize) -> Vec<&[Sequence]> {
        let n = n.max(1);
        let len = self.sequences.len();
        let base = len / n;
        let extra = len % n;
        let mut out = Vec::with_capacity(n);
        let mut start = 0;
        for i in 0..n {
            let sz = base + usize::from(i < extra);
            out.push(&self.sequences[start..start + sz]);
            start += sz;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pivot_is_max_item() {
        assert_eq!(pivot(&[3, 1, 2]), 3);
        assert_eq!(pivot(&[7]), 7);
        assert_eq!(pivot(&[]), EPSILON);
    }

    #[test]
    fn stats() {
        let db = SequenceDb::new(vec![vec![1, 2, 3], vec![4], vec![5, 6]]);
        assert_eq!(db.len(), 3);
        assert_eq!(db.total_items(), 6);
        assert_eq!(db.max_len(), 3);
        assert!((db.mean_len() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn partition_covers_all_sequences_evenly() {
        let db = SequenceDb::new((0..10).map(|i| vec![i]).collect());
        let parts = db.partition(3);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts.iter().map(|p| p.len()).sum::<usize>(), 10);
        // sizes differ by at most one
        let sizes: Vec<_> = parts.iter().map(|p| p.len()).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
        let flat: Vec<_> = parts.concat();
        assert_eq!(flat, db.sequences);
    }

    #[test]
    fn partition_more_workers_than_sequences() {
        let db = SequenceDb::new(vec![vec![1], vec![2]]);
        let parts = db.partition(5);
        assert_eq!(parts.len(), 5);
        assert_eq!(parts.iter().map(|p| p.len()).sum::<usize>(), 2);
    }
}
