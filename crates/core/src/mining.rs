//! The unified mining API substrate: one [`Miner`] trait, one
//! [`MiningResult`], one validation path — shared by all eight algorithms
//! of this reproduction (DESQ-DFS, DESQ-COUNT, PrefixSpan, the gap miner,
//! NAÏVE, SEMI-NAÏVE, D-SEQ, D-CAND) plus the LASH and MLlib baselines.
//!
//! The paper's value proposition is that *one* declarative constraint
//! language drives *many* execution strategies. This module is the
//! corresponding *request/response* surface: a [`MiningContext`] describes
//! what to mine (database, dictionary, compiled constraint, threshold,
//! [`Limits`], parallelism), every algorithm implements [`Miner`], and every
//! run returns a [`MiningResult`] whose [`MiningMetrics`] are uniform across
//! sequential and distributed execution.
//!
//! The ergonomic entry point — a builder that compiles pattern expressions
//! and dispatches on an algorithm enum — lives in the facade crate
//! (`desq::session::MiningSession`); this module holds only the pieces the
//! algorithm crates need to implement.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use crate::{Dictionary, Error, Fst, Result, Sequence, SequenceDb};

/// Default per-sequence work budget (candidates generated, accepting runs
/// walked, NFA expansion steps — whatever the algorithm's unit of work is).
///
/// Large enough that realistic workloads never hit it, small enough that a
/// runaway constraint (e.g. `T1` at very low σ) aborts with a descriptive
/// [`Error::ResourceExhausted`] instead of exhausting memory — the analog
/// of the paper's executor memory limit.
pub const DEFAULT_BUDGET: usize = 10_000_000;

/// Resource limits of one mining run, validated once at session build time.
///
/// Replaces the bare positional `budget: usize` arguments of the historical
/// free functions (`desq_count(db, fst, dict, sigma, budget)`), whose
/// call-site ordering was a foot-gun.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Per-sequence work budget; exceeding it aborts the run with
    /// [`Error::ResourceExhausted`]. See [`DEFAULT_BUDGET`].
    pub budget: usize,
    /// Upper bound on the number of result patterns. Exceeding it is an
    /// error (never a silent truncation): the run aborts with
    /// [`Error::ResourceExhausted`] naming the limit.
    pub max_patterns: usize,
    /// Wall-clock deadline of the whole run, measured from its start.
    /// Exceeding it aborts with [`Error::DeadlineExceeded`] — the
    /// wall-clock complement of the work-unit `budget`. `None` (the
    /// default) means unbounded time.
    pub deadline: Option<Duration>,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            budget: DEFAULT_BUDGET,
            max_patterns: usize::MAX,
            deadline: None,
        }
    }
}

impl Limits {
    /// Unbounded limits (the historical `usize::MAX` behavior).
    pub fn unbounded() -> Limits {
        Limits {
            budget: usize::MAX,
            max_patterns: usize::MAX,
            deadline: None,
        }
    }

    /// Overrides the work budget.
    pub fn with_budget(mut self, budget: usize) -> Limits {
        self.budget = budget;
        self
    }

    /// Overrides the pattern cap.
    pub fn with_max_patterns(mut self, max_patterns: usize) -> Limits {
        self.max_patterns = max_patterns;
        self
    }

    /// Sets a wall-clock deadline for the run.
    pub fn with_deadline(mut self, deadline: Duration) -> Limits {
        self.deadline = Some(deadline);
        self
    }

    /// Validates the limits (all bounds must be positive).
    pub fn validate(&self) -> Result<()> {
        if self.budget == 0 {
            return Err(Error::Invalid(
                "work budget must be positive (use Limits::unbounded() for no limit)".into(),
            ));
        }
        if self.max_patterns == 0 {
            return Err(Error::Invalid(
                "max_patterns must be positive (use Limits::unbounded() for no limit)".into(),
            ));
        }
        if self.deadline == Some(Duration::ZERO) {
            return Err(Error::Invalid(
                "deadline must be positive (omit it for unbounded time)".into(),
            ));
        }
        Ok(())
    }
}

/// Why a [`CancelToken`] tripped.
const LIVE: u8 = 0;
const CANCELLED: u8 = 1;
const DEADLINE: u8 = 2;
const PANICKED: u8 = 3;

struct CancelInner {
    state: AtomicU8,
    /// Armed at most once (first arm wins); read lock-free afterwards.
    deadline: OnceLock<(Instant, Duration)>,
    /// A caller-supplied note attached to the first trip (e.g. the panic
    /// payload); set best-effort before the state flips.
    note: OnceLock<String>,
}

/// Cooperative cancellation shared by every worker of one mining run.
///
/// A token is a cheap [`Arc`]-backed handle: the session (or the serving
/// layer) creates one, threads it through [`MiningContext::cancel`], and
/// every execution layer — the work-stealing scheduler, the BSP engine's
/// map/combine/reduce phases, the streaming sink — polls it at task
/// granularity. Three things trip a token:
///
/// * [`cancel`](Self::cancel) — an external abort (client disconnected,
///   server draining);
/// * an armed wall-clock deadline passing (checked by
///   [`checkpoint`](Self::checkpoint));
/// * [`mark_panicked`](Self::mark_panicked) — a worker task panicked and
///   the panic was caught at the task boundary.
///
/// Once tripped a token stays tripped, and
/// [`stop_reason`](Self::stop_reason) reports the corresponding
/// [`Error`] variant; the *first* trip wins. The hot-path check
/// ([`is_stopped`](Self::is_stopped)) is a single relaxed atomic load.
#[derive(Clone)]
pub struct CancelToken {
    inner: Arc<CancelInner>,
}

impl Default for CancelToken {
    fn default() -> CancelToken {
        CancelToken::new()
    }
}

impl std::fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CancelToken")
            .field("stopped", &self.is_stopped())
            .finish()
    }
}

impl CancelToken {
    /// A live token with no deadline.
    pub fn new() -> CancelToken {
        CancelToken {
            inner: Arc::new(CancelInner {
                state: AtomicU8::new(LIVE),
                deadline: OnceLock::new(),
                note: OnceLock::new(),
            }),
        }
    }

    /// A live token whose deadline (measured from now) is already armed.
    pub fn with_deadline(deadline: Duration) -> CancelToken {
        let token = CancelToken::new();
        token.arm_deadline(deadline);
        token
    }

    /// Arms a wall-clock deadline measured from now. A token's deadline
    /// can be armed at most once: the first call wins and later calls are
    /// ignored (returning `false`), so an externally supplied token keeps
    /// the earliest deadline it was given.
    pub fn arm_deadline(&self, deadline: Duration) -> bool {
        self.inner
            .deadline
            .set((Instant::now() + deadline, deadline))
            .is_ok()
    }

    /// Trips the token with an external-cancellation reason. Idempotent;
    /// a no-op if the token already tripped for another reason.
    pub fn cancel(&self) {
        self.trip(CANCELLED, None);
    }

    /// Trips the token recording a caught worker panic; `payload` is the
    /// stringified panic payload.
    pub fn mark_panicked(&self, payload: &str) {
        self.trip(PANICKED, Some(payload));
    }

    fn trip(&self, state: u8, note: Option<&str>) {
        if let Some(note) = note {
            let _ = self.inner.note.set(note.to_string());
        }
        let _ =
            self.inner
                .state
                .compare_exchange(LIVE, state, Ordering::Release, Ordering::Relaxed);
    }

    /// Hot-path poll: true once the token has tripped for any reason.
    /// Does *not* check the wall clock — pair it with periodic
    /// [`checkpoint`](Self::checkpoint) calls at task granularity.
    #[inline]
    pub fn is_stopped(&self) -> bool {
        self.inner.state.load(Ordering::Relaxed) != LIVE
    }

    /// Task-granularity poll: checks the tripped state *and* the armed
    /// deadline against the wall clock, tripping the token if the
    /// deadline has passed. Returns the stop reason as an error so call
    /// sites can `token.checkpoint()?`.
    pub fn checkpoint(&self) -> Result<()> {
        if !self.is_stopped() {
            if let Some(&(at, budget)) = self.inner.deadline.get() {
                if Instant::now() >= at {
                    self.trip(DEADLINE, Some(&format!("{budget:?}")));
                }
            }
        }
        match self.stop_reason() {
            Some(err) => Err(err),
            None => Ok(()),
        }
    }

    /// The [`Error`] this token tripped with, or `None` while live.
    pub fn stop_reason(&self) -> Option<Error> {
        let note = || {
            self.inner
                .note
                .get()
                .cloned()
                .unwrap_or_else(|| "mining run".into())
        };
        match self.inner.state.load(Ordering::Acquire) {
            CANCELLED => Some(Error::Cancelled(note())),
            DEADLINE => Some(Error::DeadlineExceeded(note())),
            PANICKED => Some(Error::WorkerPanicked(note())),
            _ => None,
        }
    }
}

/// Renders a caught panic payload (the `Box<dyn Any>` from
/// `catch_unwind`) as a message, the way the default panic hook does.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The single σ check shared by every algorithm and by the session builder.
///
/// Historically this check was duplicated across `desq_count`, `d_seq`,
/// `d_cand` and `naive` (and missing from `desq_dfs`); it now lives here
/// and nowhere else.
pub fn validate_sigma(sigma: u64) -> Result<()> {
    if sigma == 0 {
        Err(Error::Invalid(
            "sigma must be positive (σ = 0 would make every candidate frequent)".into(),
        ))
    } else {
        Ok(())
    }
}

/// How an algorithm that owns several execution strategies should pick one.
///
/// Today only DESQ-DFS consults this: its *flat* path materializes
/// bit-packed simulation tables per input sequence (fast on large pattern
/// spaces, but the table build is pure overhead on cheap constraints),
/// while its *lean* path runs the candidate-counting walk directly over
/// the CSR FST index with no per-sequence materialization. See
/// `docs/ARCHITECTURE.md` for the cost model behind `Auto`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ExecutionPolicy {
    /// Let a small sampling cost model choose per run (the default). If the
    /// chosen lean path exhausts the work budget, the run transparently
    /// falls back to the flat path instead of erroring.
    #[default]
    Auto,
    /// Always materialize the flat tables (the only choice for streaming
    /// runs, which need the table-backed expansion).
    Flat,
    /// Always run the lean counting path. Budget exhaustion is reported as
    /// [`Error::ResourceExhausted`] — no silent fallback.
    Lean,
}

/// One mining request: everything a [`Miner`] needs to run.
///
/// The FST is optional because the traditional-constraint miners
/// (PrefixSpan, the gap miner, LASH, MLlib-PrefixSpan) encode their
/// constraint in algorithm parameters instead of a compiled pattern
/// expression; FST-based miners obtain it through [`MiningContext::fst`],
/// which produces a descriptive error when absent.
#[derive(Clone, Copy)]
pub struct MiningContext<'a> {
    /// The input sequence database.
    pub db: &'a SequenceDb,
    /// The frozen dictionary (hierarchy + f-list encoding).
    pub dict: &'a Dictionary,
    /// The compiled subsequence constraint, if the algorithm needs one.
    pub fst: Option<&'a Fst>,
    /// Minimum support threshold σ (validated positive).
    pub sigma: u64,
    /// Resource limits.
    pub limits: Limits,
    /// Worker threads for distributed algorithms (sequential miners ignore
    /// it and report 1 in their metrics).
    pub workers: usize,
    /// Number of map partitions ("machines") for distributed algorithms.
    pub partitions: usize,
    /// Number of shuffle buckets (reduce tasks) for distributed
    /// algorithms; usually equals `workers`.
    pub reducers: usize,
    /// Execution-path selection for algorithms with several strategies
    /// (see [`ExecutionPolicy`]).
    pub exec: ExecutionPolicy,
    /// Cooperative cancellation for this run (deadline, external abort,
    /// panic isolation). `None` means the run cannot be cancelled — the
    /// historical behavior; the session facade always supplies one.
    pub cancel: Option<&'a CancelToken>,
}

impl<'a> MiningContext<'a> {
    /// A sequential single-worker context with default limits.
    pub fn sequential(db: &'a SequenceDb, dict: &'a Dictionary, sigma: u64) -> MiningContext<'a> {
        MiningContext {
            db,
            dict,
            fst: None,
            sigma,
            limits: Limits::default(),
            workers: 1,
            partitions: 1,
            reducers: 1,
            exec: ExecutionPolicy::Auto,
            cancel: None,
        }
    }

    /// Attaches a compiled constraint.
    pub fn with_fst(mut self, fst: &'a Fst) -> MiningContext<'a> {
        self.fst = Some(fst);
        self
    }

    /// Overrides the limits.
    pub fn with_limits(mut self, limits: Limits) -> MiningContext<'a> {
        self.limits = limits;
        self
    }

    /// Sets worker threads and map partitions for distributed execution
    /// (the reducer count follows the worker count; override it afterwards
    /// with [`with_reducers`](Self::with_reducers)).
    pub fn with_parallelism(mut self, workers: usize, partitions: usize) -> MiningContext<'a> {
        self.workers = workers;
        self.partitions = partitions;
        self.reducers = workers;
        self
    }

    /// Overrides the number of shuffle buckets (reduce tasks).
    pub fn with_reducers(mut self, reducers: usize) -> MiningContext<'a> {
        self.reducers = reducers;
        self
    }

    /// Overrides the execution-path selection policy.
    pub fn with_execution_policy(mut self, exec: ExecutionPolicy) -> MiningContext<'a> {
        self.exec = exec;
        self
    }

    /// Attaches a cancellation token.
    pub fn with_cancel(mut self, cancel: &'a CancelToken) -> MiningContext<'a> {
        self.cancel = Some(cancel);
        self
    }

    /// The compiled constraint, or a descriptive error if none was given.
    pub fn fst(&self) -> Result<&'a Fst> {
        self.fst.ok_or_else(|| {
            Error::Invalid(
                "this algorithm requires a subsequence constraint: \
                 provide a pattern expression or a pre-compiled FST"
                    .into(),
            )
        })
    }

    /// Validates the whole request (σ, limits, parallelism) in one place.
    pub fn validate(&self) -> Result<()> {
        validate_sigma(self.sigma)?;
        self.limits.validate()?;
        if self.workers == 0 {
            return Err(Error::Invalid("worker count must be positive".into()));
        }
        if self.partitions == 0 {
            return Err(Error::Invalid("partition count must be positive".into()));
        }
        if self.reducers == 0 {
            return Err(Error::Invalid("reducer count must be positive".into()));
        }
        Ok(())
    }
}

/// Uniform measurements of one mining run.
///
/// Distributed algorithms fill the shuffle fields from the BSP engine's
/// job metrics; sequential miners report wall time and work counts with
/// legitimately-zero shuffle volume (nothing is communicated).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MiningMetrics {
    /// End-to-end wall-clock nanoseconds of the run.
    pub wall_nanos: u64,
    /// Wall-clock nanoseconds of the map (+ combine + serialize) phase;
    /// 0 for sequential miners (no separate map phase).
    pub map_nanos: u64,
    /// Wall-clock nanoseconds of the reduce ("mine") phase; for sequential
    /// miners this equals the whole mining time.
    pub reduce_nanos: u64,
    /// Number of input sequences mined.
    pub input_sequences: u64,
    /// Work records produced before combining: mapper emissions for
    /// distributed algorithms, generated candidates / emitted patterns for
    /// sequential ones.
    pub emitted_records: u64,
    /// Records written to the shuffle after combining (0 when sequential).
    pub shuffle_records: u64,
    /// Distinct payload byte strings written to the shuffle by combining
    /// jobs (post-interning; 0 when sequential or not combining). The gap
    /// to `shuffle_records` measures how much payload sharing saved.
    pub shuffle_payloads: u64,
    /// Total serialized shuffle volume in bytes (0 when sequential).
    pub shuffle_bytes: u64,
    /// Shuffle bytes received per reducer (empty when sequential).
    pub reducer_bytes: Vec<u64>,
    /// Result patterns produced.
    pub output_records: u64,
    /// Worker threads used (1 for sequential miners).
    pub workers: u64,
    /// Wall-clock nanoseconds each local-mining worker spent in its
    /// scheduling loop (mining plus stealing plus idling), indexed by
    /// worker. **Semantics:** always has exactly `workers` entries for
    /// algorithms that mine locally — a sequential run reports a
    /// single-entry vector holding its mining wall time (it used to be
    /// silently empty). Only algorithms with no per-worker breakdown at
    /// all (e.g. pure BSP map/reduce phases) leave it empty.
    pub worker_nanos: Vec<u64>,
    /// Tasks executed by the work-stealing local-mining scheduler, summed
    /// over workers (a sequential run is one task; 0 when the algorithm
    /// does not use the scheduler).
    pub tasks: u64,
    /// Successful steals between scheduler workers, summed over workers
    /// (always 0 for sequential runs; high values on skewed search trees
    /// are the scheduler doing its job).
    pub steals: u64,
    /// Map/reduce tasks that were re-executed because the peer running
    /// them died or went silent mid-superstep (networked BSP only; 0 for
    /// in-process runs — their tasks cannot be lost).
    pub retried_tasks: u64,
    /// Peers declared dead because they exceeded their liveness window
    /// during this run (networked BSP only).
    pub peer_timeouts: u64,
    /// Wall-clock nanoseconds of the single longest map or reduce task —
    /// the straggler. A high value against `map_nanos`/`reduce_nanos`
    /// means one task dominated the phase.
    pub max_task_nanos: u64,
    /// True iff the run stopped early through its [`CancelToken`] (or a
    /// streaming consumer dropped the stream): the other counters
    /// describe a *partial* run.
    pub cancelled: bool,
    /// FST states before the optimizer's determinization/minimization
    /// passes (after ε-removal and pruning, which the representation
    /// requires; 0 when the run had no compiled FST).
    pub fst_states_before: u64,
    /// FST states actually mined with (after the full optimizer pipeline;
    /// equals `fst_states_before` at [`OptLevel::None`](crate::OptLevel)).
    pub fst_states_after: u64,
    /// FST transitions before determinization/minimization (0 when the run
    /// had no compiled FST).
    pub fst_transitions_before: u64,
    /// FST transitions actually mined with.
    pub fst_transitions_after: u64,
}

impl MiningMetrics {
    /// Metrics of a sequential run: wall time, input/output counts and a
    /// work counter, with zero communication. The single worker's
    /// `worker_nanos` entry is the run's wall time and it counts as one
    /// scheduler task (see the field docs on
    /// [`worker_nanos`](Self::worker_nanos)).
    pub fn sequential(wall_nanos: u64, input_sequences: u64, work: u64, output: u64) -> Self {
        MiningMetrics {
            wall_nanos,
            map_nanos: 0,
            reduce_nanos: wall_nanos,
            input_sequences,
            emitted_records: work,
            shuffle_records: 0,
            shuffle_payloads: 0,
            shuffle_bytes: 0,
            reducer_bytes: Vec::new(),
            output_records: output,
            workers: 1,
            worker_nanos: vec![wall_nanos],
            tasks: 1,
            steals: 0,
            retried_tasks: 0,
            peer_timeouts: 0,
            max_task_nanos: 0,
            cancelled: false,
            fst_states_before: 0,
            fst_states_after: 0,
            fst_transitions_before: 0,
            fst_transitions_after: 0,
        }
    }

    /// Metrics of a shared-memory parallel run: like
    /// [`sequential`](Self::sequential), but with the worker count and the
    /// per-worker mining wall times filled in from `worker_nanos` (one entry
    /// per worker thread; an empty vector reports a single worker).
    pub fn local_parallel(
        wall_nanos: u64,
        input_sequences: u64,
        work: u64,
        output: u64,
        worker_nanos: Vec<u64>,
    ) -> Self {
        let workers = worker_nanos.len().max(1) as u64;
        MiningMetrics {
            workers,
            worker_nanos,
            ..MiningMetrics::sequential(wall_nanos, input_sequences, work, output)
        }
    }

    /// Fills in the work-stealing scheduler counters (total tasks executed
    /// and successful inter-worker steals).
    pub fn with_scheduler(mut self, tasks: u64, steals: u64) -> Self {
        self.tasks = tasks;
        self.steals = steals;
        self
    }

    /// Appends the wire encoding of these metrics to `buf`.
    ///
    /// **Wire format** (all integers LEB128 varints, see [`crate::codec`]):
    /// the scalar fields in declaration order — `wall_nanos`, `map_nanos`,
    /// `reduce_nanos`, `input_sequences`, `emitted_records`,
    /// `shuffle_records`, `shuffle_payloads`, `shuffle_bytes` — then
    /// `reducer_bytes` as `varint(len)` + one varint per entry, then
    /// `output_records`, `workers`, `worker_nanos` (same list shape),
    /// `tasks`, `steals`, `retried_tasks`, `peer_timeouts`,
    /// `max_task_nanos`, then `cancelled` as a 0/1 varint, then the FST
    /// size counters `fst_states_before`, `fst_states_after`,
    /// `fst_transitions_before`, `fst_transitions_after`. Used by the
    /// `desq-serve` daemon to ship the terminal metrics frame of a query
    /// response; [`decode`](Self::decode) is the exact inverse.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        use crate::codec::write_varint;
        for v in [
            self.wall_nanos,
            self.map_nanos,
            self.reduce_nanos,
            self.input_sequences,
            self.emitted_records,
            self.shuffle_records,
            self.shuffle_payloads,
            self.shuffle_bytes,
        ] {
            write_varint(buf, v);
        }
        write_varint(buf, self.reducer_bytes.len() as u64);
        for &v in &self.reducer_bytes {
            write_varint(buf, v);
        }
        write_varint(buf, self.output_records);
        write_varint(buf, self.workers);
        write_varint(buf, self.worker_nanos.len() as u64);
        for &v in &self.worker_nanos {
            write_varint(buf, v);
        }
        write_varint(buf, self.tasks);
        write_varint(buf, self.steals);
        write_varint(buf, self.retried_tasks);
        write_varint(buf, self.peer_timeouts);
        write_varint(buf, self.max_task_nanos);
        write_varint(buf, self.cancelled as u64);
        write_varint(buf, self.fst_states_before);
        write_varint(buf, self.fst_states_after);
        write_varint(buf, self.fst_transitions_before);
        write_varint(buf, self.fst_transitions_after);
    }

    /// Decodes one [`encode`](Self::encode) record, advancing `buf`.
    /// Rejects truncated input and list lengths exceeding the remaining
    /// bytes.
    pub fn decode(buf: &mut &[u8]) -> Result<MiningMetrics> {
        use crate::codec::read_varint;
        let mut m = MiningMetrics::default();
        for field in [
            &mut m.wall_nanos,
            &mut m.map_nanos,
            &mut m.reduce_nanos,
            &mut m.input_sequences,
            &mut m.emitted_records,
            &mut m.shuffle_records,
            &mut m.shuffle_payloads,
            &mut m.shuffle_bytes,
        ] {
            *field = read_varint(buf)?;
        }
        m.reducer_bytes = decode_u64_list(buf)?;
        m.output_records = read_varint(buf)?;
        m.workers = read_varint(buf)?;
        m.worker_nanos = decode_u64_list(buf)?;
        m.tasks = read_varint(buf)?;
        m.steals = read_varint(buf)?;
        m.retried_tasks = read_varint(buf)?;
        m.peer_timeouts = read_varint(buf)?;
        m.max_task_nanos = read_varint(buf)?;
        m.cancelled = match read_varint(buf)? {
            0 => false,
            1 => true,
            other => {
                return Err(Error::Decode(format!(
                    "metrics cancelled flag: expected 0 or 1, got {other}"
                )))
            }
        };
        m.fst_states_before = read_varint(buf)?;
        m.fst_states_after = read_varint(buf)?;
        m.fst_transitions_before = read_varint(buf)?;
        m.fst_transitions_after = read_varint(buf)?;
        Ok(m)
    }

    /// Fills the FST size counters from a compiled automaton (before = the
    /// post-ε-removal/pruning machine the optimizer started from, after =
    /// the machine actually mined with).
    pub fn record_fst(&mut self, fst: &crate::fst::Fst) {
        self.fst_states_before = fst.states_before_opt() as u64;
        self.fst_states_after = fst.num_states() as u64;
        self.fst_transitions_before = fst.transitions_before_opt() as u64;
        self.fst_transitions_after = fst.num_transitions() as u64;
    }

    /// Map-phase wall time in seconds.
    pub fn map_secs(&self) -> f64 {
        self.map_nanos as f64 / 1e9
    }

    /// Reduce-("mine"-)phase wall time in seconds.
    pub fn reduce_secs(&self) -> f64 {
        self.reduce_nanos as f64 / 1e9
    }

    /// End-to-end wall time in seconds (falls back to map + reduce when no
    /// end-to-end measurement was taken).
    pub fn total_secs(&self) -> f64 {
        if self.wall_nanos > 0 {
            self.wall_nanos as f64 / 1e9
        } else {
            self.map_secs() + self.reduce_secs()
        }
    }

    /// Ratio of the largest reducer's byte volume to the mean — 1.0 is a
    /// perfectly balanced shuffle (and the sequential value).
    pub fn balance(&self) -> f64 {
        if self.reducer_bytes.is_empty() || self.shuffle_bytes == 0 {
            return 1.0;
        }
        let max = *self.reducer_bytes.iter().max().unwrap() as f64;
        let mean = self.shuffle_bytes as f64 / self.reducer_bytes.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// Combine effectiveness: emitted records per shuffled record.
    pub fn combine_ratio(&self) -> f64 {
        if self.shuffle_records == 0 {
            1.0
        } else {
            self.emitted_records as f64 / self.shuffle_records as f64
        }
    }
}

/// Decodes a varint-length-prefixed list of varints (the list shape used
/// by [`MiningMetrics::encode`]); never pre-allocates beyond what the
/// remaining input could encode.
fn decode_u64_list(buf: &mut &[u8]) -> Result<Vec<u64>> {
    let len = crate::codec::read_varint(buf)? as usize;
    if len > buf.len() {
        return Err(Error::Decode(format!(
            "metrics list: length {len} exceeds remaining input"
        )));
    }
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(crate::codec::read_varint(buf)?);
    }
    Ok(out)
}

/// Outcome of one mining run — identical shape for every algorithm.
///
/// **Invariant:** `patterns` is sorted lexicographically by pattern (the
/// results of all miners are *sets*; the sort makes them directly
/// comparable across algorithms). Every [`Miner`] implementation upholds
/// this; `tests/paper_example.rs` asserts it in one place for all
/// algorithms. Streaming consumers that do not need the ordering can use
/// the facade's `PatternStream` instead, which yields patterns in
/// discovery order without the eager sort.
#[derive(Debug, Clone)]
pub struct MiningResult {
    /// The frequent sequences with their frequencies, sorted
    /// lexicographically (identical across all algorithms under the same
    /// constraint).
    pub patterns: Vec<(Sequence, u64)>,
    /// Uniform run measurements.
    pub metrics: MiningMetrics,
}

impl MiningResult {
    /// True iff `patterns` satisfies the documented sortedness invariant.
    pub fn is_sorted(&self) -> bool {
        self.patterns.windows(2).all(|w| w[0] < w[1])
    }
}

/// One frequent-sequence-mining algorithm behind the unified API.
///
/// Implementations exist for every algorithm in the workspace: the
/// sequential miners in `desq-miner` (`algo::{DesqDfs, DesqCount,
/// PrefixSpan, GapMiner}`), the distributed algorithms in `desq-dist`
/// (`algo::{Naive, DSeq, DCand}`), and the specialized baselines in
/// `desq-baselines` (`algo::{Lash, Mllib}`). Implementations must
/// validate the context (or rely on the session having done so), honor
/// [`MiningContext::limits`], and return sorted patterns (see
/// [`MiningResult`]).
pub trait Miner {
    /// Display name of the algorithm (e.g. `"D-SEQ"`).
    fn name(&self) -> &'static str;

    /// Runs the algorithm on one request.
    fn mine(&self, ctx: &MiningContext<'_>) -> Result<MiningResult>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy;

    #[test]
    fn limits_default_and_validation() {
        let l = Limits::default();
        assert_eq!(l.budget, DEFAULT_BUDGET);
        assert_eq!(l.max_patterns, usize::MAX);
        assert!(l.validate().is_ok());
        assert!(matches!(
            Limits::default().with_budget(0).validate(),
            Err(Error::Invalid(_))
        ));
        assert!(matches!(
            Limits::default().with_max_patterns(0).validate(),
            Err(Error::Invalid(_))
        ));
        assert!(Limits::unbounded().validate().is_ok());
    }

    #[test]
    fn sigma_validator_is_the_single_source_of_truth() {
        assert!(validate_sigma(1).is_ok());
        let err = validate_sigma(0).unwrap_err();
        assert!(matches!(err, Error::Invalid(ref m) if m.contains("sigma")));
    }

    #[test]
    fn context_validation_covers_all_fields() {
        let fx = toy::fixture();
        let ok = MiningContext::sequential(&fx.db, &fx.dict, 2).with_fst(&fx.fst);
        assert!(ok.validate().is_ok());
        assert!(ok.fst().is_ok());

        let no_fst = MiningContext::sequential(&fx.db, &fx.dict, 2);
        assert!(matches!(no_fst.fst(), Err(Error::Invalid(_))));

        let zero_sigma = MiningContext::sequential(&fx.db, &fx.dict, 0);
        assert!(matches!(zero_sigma.validate(), Err(Error::Invalid(_))));

        let mut bad_workers = ok;
        bad_workers.workers = 0;
        assert!(matches!(bad_workers.validate(), Err(Error::Invalid(_))));

        let mut bad_parts = ok;
        bad_parts.partitions = 0;
        assert!(matches!(bad_parts.validate(), Err(Error::Invalid(_))));
    }

    #[test]
    fn sequential_metrics_report_work() {
        let m = MiningMetrics::sequential(2_000_000_000, 5, 17, 3);
        assert!((m.total_secs() - 2.0).abs() < 1e-9);
        assert!((m.reduce_secs() - 2.0).abs() < 1e-9);
        assert_eq!(m.input_sequences, 5);
        assert_eq!(m.emitted_records, 17);
        assert_eq!(m.output_records, 3);
        assert_eq!(m.workers, 1);
        // The sequential-run fix: one worker entry holding the wall time
        // (previously silently empty), one task, no steals.
        assert_eq!(m.worker_nanos, vec![2_000_000_000]);
        assert_eq!((m.tasks, m.steals), (1, 0));
        assert_eq!(m.balance(), 1.0);
        assert_eq!(m.combine_ratio(), 1.0);
    }

    #[test]
    fn scheduler_counters_attach_via_builder() {
        let m = MiningMetrics::local_parallel(10, 5, 17, 3, vec![4, 6]).with_scheduler(42, 7);
        assert_eq!(m.workers, 2);
        assert_eq!(m.worker_nanos, vec![4, 6]);
        assert_eq!((m.tasks, m.steals), (42, 7));
    }

    #[test]
    fn metrics_wire_encoding_roundtrips() {
        let mut m = MiningMetrics::local_parallel(123, 5, 17, 3, vec![40, 60]).with_scheduler(9, 2);
        m.map_nanos = 7;
        m.shuffle_records = 11;
        m.shuffle_payloads = 4;
        m.shuffle_bytes = 99;
        m.reducer_bytes = vec![33, 66, 0];
        m.retried_tasks = 2;
        m.peer_timeouts = 1;
        m.max_task_nanos = 55;
        m.cancelled = true;
        m.fst_states_before = 14;
        m.fst_states_after = 3;
        m.fst_transitions_before = 21;
        m.fst_transitions_after = 8;
        let mut buf = Vec::new();
        m.encode(&mut buf);
        let mut s = buf.as_slice();
        assert_eq!(MiningMetrics::decode(&mut s).unwrap(), m);
        assert!(s.is_empty());
        // Every truncation is a decode error, never a panic or a silent
        // partial read.
        for cut in 0..buf.len() {
            let mut s = &buf[..cut];
            assert!(MiningMetrics::decode(&mut s).is_err(), "cut at {cut}");
        }
        // The cancelled flag is strictly 0/1 on the wire. The four FST
        // size counters follow it; with all four zero the flag is the
        // fifth-to-last byte.
        m.fst_states_before = 0;
        m.fst_states_after = 0;
        m.fst_transitions_before = 0;
        m.fst_transitions_after = 0;
        buf.clear();
        m.encode(&mut buf);
        let at = buf.len() - 5;
        buf[at] = 2;
        let mut s = buf.as_slice();
        assert!(matches!(
            MiningMetrics::decode(&mut s),
            Err(Error::Decode(_))
        ));
    }

    #[test]
    fn record_fst_fills_size_counters() {
        let fx = toy::fixture();
        let mut m = MiningMetrics::default();
        m.record_fst(&fx.fst);
        assert_eq!(m.fst_states_after, fx.fst.num_states() as u64);
        assert_eq!(m.fst_transitions_after, fx.fst.num_transitions() as u64);
        // The optimizer never grows the machine.
        assert!(m.fst_states_before >= m.fst_states_after);
        assert!(m.fst_transitions_before >= m.fst_transitions_after);
    }

    #[test]
    fn cancel_token_trips_once_and_keeps_the_first_reason() {
        let token = CancelToken::new();
        assert!(!token.is_stopped());
        assert!(token.checkpoint().is_ok());
        assert!(token.stop_reason().is_none());

        token.cancel();
        assert!(token.is_stopped());
        assert!(matches!(token.stop_reason(), Some(Error::Cancelled(_))));
        // A later panic does not overwrite the first trip.
        token.mark_panicked("boom");
        assert!(matches!(token.stop_reason(), Some(Error::Cancelled(_))));
        assert!(matches!(token.checkpoint(), Err(Error::Cancelled(_))));

        // Clones share state.
        let clone = token.clone();
        assert!(clone.is_stopped());
    }

    #[test]
    fn cancel_token_deadline_trips_at_checkpoint() {
        let token = CancelToken::with_deadline(Duration::ZERO);
        // The hot-path poll alone never consults the clock...
        assert!(!token.is_stopped());
        // ...but a checkpoint does, and trips the token for everyone.
        assert!(matches!(
            token.checkpoint(),
            Err(Error::DeadlineExceeded(_))
        ));
        assert!(token.is_stopped());

        // A generous deadline does not trip.
        let slack = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(slack.checkpoint().is_ok());
        // Arming is first-wins.
        assert!(!slack.arm_deadline(Duration::ZERO));
        assert!(slack.checkpoint().is_ok());
    }

    #[test]
    fn panic_trips_with_the_payload() {
        let token = CancelToken::new();
        let payload = std::panic::catch_unwind(|| panic!("task exploded")).unwrap_err();
        token.mark_panicked(&panic_message(payload.as_ref()));
        match token.stop_reason() {
            Some(Error::WorkerPanicked(msg)) => assert!(msg.contains("task exploded")),
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
    }

    #[test]
    fn limits_deadline_validates_positive() {
        let l = Limits::default().with_deadline(Duration::from_millis(5));
        assert!(l.validate().is_ok());
        assert!(matches!(
            Limits::default().with_deadline(Duration::ZERO).validate(),
            Err(Error::Invalid(_))
        ));
    }

    #[test]
    fn execution_policy_defaults_to_auto() {
        let fx = toy::fixture();
        let ctx = MiningContext::sequential(&fx.db, &fx.dict, 2);
        assert_eq!(ctx.exec, ExecutionPolicy::Auto);
        let lean = ctx.with_execution_policy(ExecutionPolicy::Lean);
        assert_eq!(lean.exec, ExecutionPolicy::Lean);
    }

    #[test]
    fn sortedness_invariant_helper() {
        let sorted = MiningResult {
            patterns: vec![(vec![1], 2), (vec![1, 2], 1), (vec![2], 9)],
            metrics: MiningMetrics::default(),
        };
        assert!(sorted.is_sorted());
        let unsorted = MiningResult {
            patterns: vec![(vec![2], 9), (vec![1], 2)],
            metrics: MiningMetrics::default(),
        };
        assert!(!unsorted.is_sorted());
    }
}
