//! Bounded, jittered exponential backoff — the one audited retry
//! schedule shared by everything in the workspace that talks over a
//! socket: the `desq-serve` client retries transient failures with it,
//! and the networked BSP shuffle transport uses it for worker
//! (re)connection attempts.
//!
//! The policy is *pure schedule*: it decides how long attempt `n` sleeps,
//! not what counts as transient — each caller keeps its own transience
//! predicate next to its own error type.

use std::time::Duration;

/// Bounded, jittered exponential backoff.
///
/// Attempt `n` (0-based) sleeps `base_delay · 2ⁿ` capped at `max_delay`,
/// plus a deterministic jitter of up to half that delay derived from
/// `seed` — concurrent peers with different seeds spread out instead of
/// retrying in lockstep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (total attempts = `max_retries+1`).
    pub max_retries: u32,
    /// Backoff of the first retry.
    pub base_delay: Duration,
    /// Upper bound on any single backoff (pre-jitter).
    pub max_delay: Duration,
    /// Seed of the deterministic jitter sequence.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 5,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(500),
            seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

impl RetryPolicy {
    /// The sleep before retry `attempt` (0-based): exponential backoff
    /// with deterministic jitter in `[0, delay/2]`.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(2u32.saturating_pow(attempt))
            .min(self.max_delay);
        // xorshift* keyed by (seed, attempt): reproducible per peer,
        // decorrelated across peers with different seeds.
        let mut x = self.seed
            ^ (u64::from(attempt)
                .wrapping_add(1)
                .wrapping_mul(0x2545_F491_4F6C_DD1D));
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let half = exp.as_nanos() as u64 / 2;
        let jitter = if half == 0 { 0 } else { x % half };
        exp + Duration::from_nanos(jitter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_is_capped_and_jitter_is_bounded() {
        let policy = RetryPolicy {
            max_retries: 8,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(100),
            seed: 42,
        };
        let mut prev_base = Duration::ZERO;
        for attempt in 0..8 {
            let base = policy
                .base_delay
                .saturating_mul(2u32.saturating_pow(attempt))
                .min(policy.max_delay);
            let d = policy.backoff(attempt);
            assert!(d >= base, "attempt {attempt}: {d:?} < base {base:?}");
            assert!(
                d <= base + base / 2 + Duration::from_nanos(1),
                "attempt {attempt}: jitter exceeds half the delay: {d:?}"
            );
            assert!(base >= prev_base, "backoff must not shrink");
            prev_base = base;
        }
        // Deterministic per seed, different across seeds.
        assert_eq!(policy.backoff(3), policy.backoff(3));
        let other = RetryPolicy { seed: 43, ..policy };
        assert_ne!(policy.backoff(3), other.backoff(3));
    }

    #[test]
    fn zero_base_delay_does_not_divide_by_zero() {
        let policy = RetryPolicy {
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            ..RetryPolicy::default()
        };
        assert_eq!(policy.backoff(0), Duration::ZERO);
        assert_eq!(policy.backoff(31), Duration::ZERO);
    }
}
