//! Varint and item-sequence byte codecs — the wire format shared by the
//! shuffle layer (`desq-bsp`) and the flat counting path
//! ([`crate::fst::flat`]).
//!
//! The format is LEB128 varints for integers; item *sequences* (candidate
//! subsequences, rewritten inputs, projected suffixes) additionally get an
//! adaptive delta codec ([`encode_item_seq`] / [`decode_item_seq`]).
//! Frequency-ranked encoding makes frequent items small numbers, which is
//! precisely why the paper's preprocessing recodes items by frequency —
//! varints make that compactness pay off on the wire and in interned count
//! tables.
//!
//! These functions originally lived in `desq_bsp::codec`; they moved here
//! in PR 5 so the candidate-counting sink (which encodes each candidate
//! once and counts interned byte keys) can share the exact shuffle format
//! without a dependency on the engine crate. `desq_bsp::codec` re-exports
//! them, so existing paths keep working.

use crate::error::{Error, Result};

/// Encodes `v` as a LEB128 varint.
#[inline]
pub fn write_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Decodes a LEB128 varint, advancing `buf`.
#[inline]
pub fn read_varint(buf: &mut &[u8]) -> Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let (&byte, rest) = buf
            .split_first()
            .ok_or_else(|| Error::Decode("varint: unexpected end of input".into()))?;
        *buf = rest;
        if shift >= 64 {
            return Err(Error::Decode("varint: overflow".into()));
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Appends a length-prefixed byte string: `varint(len)` followed by the
/// raw bytes. The inverse is [`read_bytes`].
#[inline]
pub fn write_bytes(buf: &mut Vec<u8>, bytes: &[u8]) {
    write_varint(buf, bytes.len() as u64);
    buf.extend_from_slice(bytes);
}

/// Decodes one [`write_bytes`] record, advancing `buf` and returning the
/// byte string as a borrowed slice. Rejects lengths exceeding the
/// remaining input (hostile length prefixes never allocate).
#[inline]
pub fn read_bytes<'a>(buf: &mut &'a [u8]) -> Result<&'a [u8]> {
    let len = read_varint(buf)? as usize;
    if len > buf.len() {
        return Err(Error::Decode(format!(
            "byte string: length {len} exceeds remaining input ({})",
            buf.len()
        )));
    }
    let (bytes, rest) = buf.split_at(len);
    *buf = rest;
    Ok(bytes)
}

/// Appends a length-prefixed UTF-8 string ([`write_bytes`] of the bytes).
#[inline]
pub fn write_str(buf: &mut Vec<u8>, s: &str) {
    write_bytes(buf, s.as_bytes());
}

/// Decodes one [`write_str`] record; rejects invalid UTF-8.
#[inline]
pub fn read_str<'a>(buf: &mut &'a [u8]) -> Result<&'a str> {
    let bytes = read_bytes(buf)?;
    std::str::from_utf8(bytes).map_err(|e| Error::Decode(format!("string: invalid UTF-8: {e}")))
}

/// Zigzag-encodes a signed delta (small magnitudes → small varints).
#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Encoded varint byte length of `v` (`⌈significant bits / 7⌉`, min 1).
#[inline]
pub fn varint_len(v: u64) -> usize {
    let bits = 64 - (v | 1).leading_zeros() as usize;
    bits.div_ceil(7)
}

/// Appends the adaptive varint/delta encoding of an item sequence to
/// `buf`.
///
/// Wire format: `varint(len << 1 | mode)`, then the items — mode 0 encodes
/// every item as a plain varint, mode 1 encodes `varint(items[0])`
/// followed by `zigzag_varint(items[i] - items[i-1])` per remaining item.
/// The encoder counts both sizes and picks the smaller one: neighbors of
/// similar frequency rank compress under deltas, while uncorrelated
/// (e.g. Zipf-random) ids stay at their plain-varint size instead of
/// paying the zigzag sign bit. The empty sequence encodes as the single
/// byte `0`.
///
/// The encoding is *canonical*: equal item sequences always produce equal
/// bytes (the mode choice is a pure function of the items), so encoded
/// byte strings can stand in for the sequences themselves as hash-table
/// keys — the contract the interned counting and combine paths rely on.
pub fn encode_item_seq(items: &[u32], buf: &mut Vec<u8>) {
    let mut plain = 0usize;
    let mut delta = 0usize;
    let mut prev = 0i64;
    for (i, &w) in items.iter().enumerate() {
        plain += varint_len(u64::from(w));
        delta += if i == 0 {
            varint_len(u64::from(w))
        } else {
            varint_len(zigzag(i64::from(w) - prev))
        };
        prev = i64::from(w);
    }
    let mode = u64::from(delta < plain);
    write_varint(buf, (items.len() as u64) << 1 | mode);
    let mut prev = 0i64;
    for (i, &w) in items.iter().enumerate() {
        if mode == 0 || i == 0 {
            write_varint(buf, u64::from(w));
        } else {
            write_varint(buf, zigzag(i64::from(w) - prev));
        }
        prev = i64::from(w);
    }
}

/// Decodes one [`encode_item_seq`] record, *appending* the items to `out`
/// (arena-style — callers accumulate many sequences into one flat buffer).
/// Returns the number of items decoded. Rejects truncated input, hostile
/// lengths and deltas leaving the `u32` item range.
pub fn decode_item_seq(buf: &mut &[u8], out: &mut Vec<u32>) -> Result<usize> {
    let head = read_varint(buf)?;
    let len = (head >> 1) as usize;
    let delta_mode = head & 1 == 1;
    // Never pre-allocate more than the remaining input could encode
    // (1 byte per item minimum).
    if len > buf.len() {
        return Err(Error::Decode(format!(
            "item sequence: length {len} exceeds input"
        )));
    }
    out.reserve(len);
    let mut prev = 0i64;
    for i in 0..len {
        let raw = read_varint(buf)?;
        let v = if delta_mode && i > 0 {
            prev.checked_add(unzigzag(raw))
                .ok_or_else(|| Error::Decode("item sequence: delta overflow".into()))?
        } else {
            i64::try_from(raw).map_err(|_| Error::Decode("item sequence: item".into()))?
        };
        let item =
            u32::try_from(v).map_err(|_| Error::Decode(format!("item out of range: {v}")))?;
        out.push(item);
        prev = v;
    }
    Ok(len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_and_str_records_roundtrip() {
        let mut buf = Vec::new();
        write_bytes(&mut buf, b"abc");
        write_str(&mut buf, "σ=10");
        write_bytes(&mut buf, b"");
        let mut s = buf.as_slice();
        assert_eq!(read_bytes(&mut s).unwrap(), b"abc");
        assert_eq!(read_str(&mut s).unwrap(), "σ=10");
        assert_eq!(read_bytes(&mut s).unwrap(), b"");
        assert!(s.is_empty());
    }

    #[test]
    fn byte_records_reject_hostile_lengths_and_bad_utf8() {
        // Length prefix far beyond the remaining input.
        let mut hostile = Vec::new();
        write_varint(&mut hostile, u64::MAX / 2);
        let mut s = hostile.as_slice();
        assert!(read_bytes(&mut s).is_err());
        // Valid byte record that is not UTF-8.
        let mut buf = Vec::new();
        write_bytes(&mut buf, &[0xff, 0xfe]);
        let mut s = buf.as_slice();
        assert!(read_str(&mut s).is_err());
        let mut s = buf.as_slice();
        assert_eq!(read_bytes(&mut s).unwrap(), &[0xff, 0xfe]);
    }

    #[test]
    fn varint_boundaries() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut s = buf.as_slice();
            assert_eq!(read_varint(&mut s).unwrap(), v);
            assert!(s.is_empty());
            assert_eq!(buf.len(), varint_len(v));
        }
    }

    #[test]
    fn varint_is_compact_for_small_values() {
        let mut buf = Vec::new();
        write_varint(&mut buf, 5);
        assert_eq!(buf.len(), 1);
        buf.clear();
        write_varint(&mut buf, 300);
        assert_eq!(buf.len(), 2);
    }

    #[test]
    fn varint_overflow_rejected() {
        let buf = [0xffu8; 11];
        let mut s = &buf[..];
        assert!(read_varint(&mut s).is_err());
    }

    fn item_seq_roundtrip(items: &[u32]) {
        let mut buf = Vec::new();
        encode_item_seq(items, &mut buf);
        let mut s = buf.as_slice();
        let mut out = Vec::new();
        let n = decode_item_seq(&mut s, &mut out).unwrap();
        assert_eq!(n, items.len());
        assert_eq!(out, items);
        assert!(s.is_empty());
    }

    #[test]
    fn item_seq_roundtrips() {
        item_seq_roundtrip(&[]);
        item_seq_roundtrip(&[0]);
        item_seq_roundtrip(&[7, 7, 7]);
        item_seq_roundtrip(&[1, 1000, 3, u32::MAX, 0, u32::MAX]);
        item_seq_roundtrip(&(0..200).collect::<Vec<u32>>());
    }

    #[test]
    fn item_seq_decode_appends_arena_style() {
        let mut buf = Vec::new();
        encode_item_seq(&[5, 6], &mut buf);
        encode_item_seq(&[9], &mut buf);
        let mut s = buf.as_slice();
        let mut arena = vec![1u32];
        assert_eq!(decode_item_seq(&mut s, &mut arena).unwrap(), 2);
        assert_eq!(decode_item_seq(&mut s, &mut arena).unwrap(), 1);
        assert_eq!(arena, vec![1, 5, 6, 9]);
        assert!(s.is_empty());
    }

    #[test]
    fn item_seq_truncation_and_hostile_lengths_rejected() {
        let mut buf = Vec::new();
        encode_item_seq(&[3, 900, 12], &mut buf);
        for cut in 0..buf.len() {
            let mut s = &buf[..cut];
            let mut out = Vec::new();
            assert!(decode_item_seq(&mut s, &mut out).is_err(), "cut at {cut}");
        }
        let mut hostile = Vec::new();
        write_varint(&mut hostile, u64::MAX / 2);
        let mut s = hostile.as_slice();
        assert!(decode_item_seq(&mut s, &mut Vec::new()).is_err());
    }

    #[test]
    fn item_seq_out_of_range_delta_rejected() {
        // Delta mode, len 2, first item u32::MAX, delta +2 → leaves the
        // item range.
        let mut buf = Vec::new();
        write_varint(&mut buf, 2 << 1 | 1);
        write_varint(&mut buf, u64::from(u32::MAX));
        write_varint(&mut buf, super::zigzag(2));
        let mut s = buf.as_slice();
        assert!(decode_item_seq(&mut s, &mut Vec::new()).is_err());
    }

    #[test]
    fn item_seq_picks_the_smaller_mode() {
        // Clustered ranks → delta mode; uncorrelated large ids → plain.
        let clustered: Vec<u32> = (0..32u32).map(|i| 50_000 + i).collect();
        let mut buf = Vec::new();
        encode_item_seq(&clustered, &mut buf);
        assert_eq!(buf[0] & 1, 1, "clustered ids should use delta mode");
        let jumpy: Vec<u32> = (0..32u32)
            .map(|i| if i % 2 == 0 { 3 } else { 1_000_000 })
            .collect();
        let mut plain_buf = Vec::new();
        encode_item_seq(&jumpy, &mut plain_buf);
        assert_eq!(plain_buf[0] & 1, 0, "alternating ids should stay plain");
    }

    #[test]
    fn encoding_is_canonical_per_item_sequence() {
        // Equal sequences → equal bytes, distinct sequences → distinct
        // bytes (the interned-count-table key contract).
        let seqs: Vec<Vec<u32>> = vec![
            vec![],
            vec![1],
            vec![1, 2],
            vec![2, 1],
            vec![1, 2, 3],
            vec![300, 299, 301],
        ];
        let mut encodings = Vec::new();
        for s in &seqs {
            let mut a = Vec::new();
            encode_item_seq(s, &mut a);
            let mut b = Vec::new();
            encode_item_seq(s, &mut b);
            assert_eq!(a, b);
            encodings.push(a);
        }
        for i in 0..encodings.len() {
            for j in 0..i {
                assert_ne!(encodings[i], encodings[j], "{:?} vs {:?}", seqs[i], seqs[j]);
            }
        }
    }
}
