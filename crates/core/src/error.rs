//! Error type shared across the workspace.

use std::fmt;

/// Errors produced by the DESQ model and the mining algorithms built on it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Pattern-expression syntax error with byte offset into the input.
    Parse { msg: String, pos: usize },
    /// A pattern expression referenced an item that is not in the dictionary.
    UnknownItem(String),
    /// The hierarchy under construction contains a cycle through this item.
    CyclicHierarchy(String),
    /// A configured resource budget (candidate count, NFA size, shuffle
    /// volume, ...) was exceeded. Mirrors the out-of-memory failures the
    /// paper reports for NAÏVE / SEMI-NAÏVE / D-CAND on loose constraints.
    ResourceExhausted(String),
    /// Malformed bytes encountered while decoding shuffle data.
    Decode(String),
    /// Invalid configuration or input for an operation.
    Invalid(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse { msg, pos } => write!(f, "parse error at byte {pos}: {msg}"),
            Error::UnknownItem(name) => write!(f, "unknown item: {name:?}"),
            Error::CyclicHierarchy(name) => {
                write!(f, "item hierarchy contains a cycle through {name:?}")
            }
            Error::ResourceExhausted(what) => write!(f, "resource budget exhausted: {what}"),
            Error::Decode(msg) => write!(f, "decode error: {msg}"),
            Error::Invalid(msg) => write!(f, "invalid input: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_renders_context() {
        let e = Error::Parse {
            msg: "unexpected ']'".into(),
            pos: 7,
        };
        assert_eq!(e.to_string(), "parse error at byte 7: unexpected ']'");
        assert!(Error::UnknownItem("VRB".into()).to_string().contains("VRB"));
        assert!(Error::ResourceExhausted("candidates > 10".into())
            .to_string()
            .contains("candidates"));
    }
}
