//! Error type shared across the workspace.

use std::fmt;

/// Errors produced by the DESQ model and the mining algorithms built on it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Pattern-expression syntax error with byte offset into the input.
    Parse { msg: String, pos: usize },
    /// A pattern expression referenced an item that is not in the dictionary.
    UnknownItem(String),
    /// The hierarchy under construction contains a cycle through this item.
    CyclicHierarchy(String),
    /// A configured resource budget (candidate count, NFA size, shuffle
    /// volume, ...) was exceeded. Mirrors the out-of-memory failures the
    /// paper reports for NAÏVE / SEMI-NAÏVE / D-CAND on loose constraints.
    ResourceExhausted(String),
    /// Malformed bytes encountered while decoding shuffle data.
    Decode(String),
    /// Invalid configuration or input for an operation.
    Invalid(String),
    /// The run's wall-clock deadline passed before it finished
    /// (see `mining::Limits::deadline` and `mining::CancelToken`).
    DeadlineExceeded(String),
    /// The run was cancelled from outside (client went away, server
    /// drain, explicit `CancelToken::cancel`).
    Cancelled(String),
    /// A worker task panicked; the panic was caught at the task boundary,
    /// the run was cancelled, and the panic payload is reported here
    /// instead of aborting the process.
    WorkerPanicked(String),
    /// A networked peer could not be reached at all: connection attempts
    /// exhausted their retry budget, or no worker joined a distributed
    /// job within its grace window. Permanent for this run — retrying
    /// inside the run already happened.
    PeerUnreachable(String),
    /// A networked peer was connected but went silent past its liveness
    /// window (no frames, no heartbeats). Its in-flight work is re-executed
    /// elsewhere when possible; the error surfaces when it is not.
    PeerTimedOut(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse { msg, pos } => write!(f, "parse error at byte {pos}: {msg}"),
            Error::UnknownItem(name) => write!(f, "unknown item: {name:?}"),
            Error::CyclicHierarchy(name) => {
                write!(f, "item hierarchy contains a cycle through {name:?}")
            }
            Error::ResourceExhausted(what) => write!(f, "resource budget exhausted: {what}"),
            Error::Decode(msg) => write!(f, "decode error: {msg}"),
            Error::Invalid(msg) => write!(f, "invalid input: {msg}"),
            Error::DeadlineExceeded(what) => write!(f, "deadline exceeded: {what}"),
            Error::Cancelled(what) => write!(f, "cancelled: {what}"),
            Error::WorkerPanicked(msg) => write!(f, "worker panicked: {msg}"),
            Error::PeerUnreachable(msg) => write!(f, "peer unreachable: {msg}"),
            Error::PeerTimedOut(msg) => write!(f, "peer timed out: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_renders_context() {
        let e = Error::Parse {
            msg: "unexpected ']'".into(),
            pos: 7,
        };
        assert_eq!(e.to_string(), "parse error at byte 7: unexpected ']'");
        assert!(Error::UnknownItem("VRB".into()).to_string().contains("VRB"));
        assert!(Error::ResourceExhausted("candidates > 10".into())
            .to_string()
            .contains("candidates"));
        assert!(Error::DeadlineExceeded("100ms".into())
            .to_string()
            .contains("deadline"));
        assert!(Error::Cancelled("drain".into())
            .to_string()
            .contains("drain"));
        assert!(Error::WorkerPanicked("boom".into())
            .to_string()
            .contains("panicked"));
        assert!(Error::PeerUnreachable("127.0.0.1:9".into())
            .to_string()
            .contains("unreachable"));
        assert!(Error::PeerTimedOut("worker 3".into())
            .to_string()
            .contains("timed out"));
    }
}
