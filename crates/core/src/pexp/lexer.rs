//! Tokenizer for pattern expressions.

use crate::error::{Error, Result};

/// A lexical token of the pattern-expression language.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// Item name (bare identifier or quoted string).
    Ident(String),
    /// Non-negative integer (inside `{...}`).
    Number(u32),
    Dot,
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Star,
    Plus,
    Question,
    Pipe,
    Comma,
    /// `^` (the paper's ↑).
    Up,
    /// `=`.
    Eq,
}

/// Tokenizer that tracks byte offsets for error reporting.
pub struct Lexer<'a> {
    input: &'a str,
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over `input`.
    pub fn new(input: &'a str) -> Self {
        Lexer {
            input,
            chars: input.char_indices().peekable(),
        }
    }

    /// Tokenizes the whole input, returning `(token, byte_offset)` pairs.
    pub fn tokenize(mut self) -> Result<Vec<(Token, usize)>> {
        let mut out = Vec::new();
        while let Some(&(pos, c)) = self.chars.peek() {
            if c.is_whitespace() {
                self.chars.next();
                continue;
            }
            let tok = match c {
                '.' => self.single(Token::Dot),
                '(' => self.single(Token::LParen),
                ')' => self.single(Token::RParen),
                '[' => self.single(Token::LBracket),
                ']' => self.single(Token::RBracket),
                '{' => self.single(Token::LBrace),
                '}' => self.single(Token::RBrace),
                '*' => self.single(Token::Star),
                '+' => self.single(Token::Plus),
                '?' => self.single(Token::Question),
                '|' => self.single(Token::Pipe),
                ',' => self.single(Token::Comma),
                '^' | '↑' => self.single(Token::Up),
                '=' => self.single(Token::Eq),
                '\'' => self.quoted(pos)?,
                c if c.is_ascii_digit() => self.number(pos)?,
                c if is_ident_start(c) => self.ident(pos),
                other => {
                    return Err(Error::Parse {
                        msg: format!("unexpected character {other:?}"),
                        pos,
                    })
                }
            };
            out.push((tok, pos));
        }
        Ok(out)
    }

    fn single(&mut self, tok: Token) -> Token {
        self.chars.next();
        tok
    }

    fn quoted(&mut self, start: usize) -> Result<Token> {
        self.chars.next(); // opening quote
        let mut name = String::new();
        for (_, c) in self.chars.by_ref() {
            if c == '\'' {
                return Ok(Token::Ident(name));
            }
            name.push(c);
        }
        Err(Error::Parse {
            msg: "unterminated quoted item".into(),
            pos: start,
        })
    }

    fn number(&mut self, start: usize) -> Result<Token> {
        let mut end = start;
        while let Some(&(pos, c)) = self.chars.peek() {
            if c.is_ascii_digit() {
                end = pos + c.len_utf8();
                self.chars.next();
            } else {
                break;
            }
        }
        self.input[start..end]
            .parse::<u32>()
            .map(Token::Number)
            .map_err(|_| Error::Parse {
                msg: "number too large".into(),
                pos: start,
            })
    }

    fn ident(&mut self, start: usize) -> Token {
        let mut end = start;
        while let Some(&(pos, c)) = self.chars.peek() {
            if is_ident_continue(c) {
                end = pos + c.len_utf8();
                self.chars.next();
            } else {
                break;
            }
        }
        Token::Ident(self.input[start..end].to_string())
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_' || c == '-'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<Token> {
        Lexer::new(s)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|(t, _)| t)
            .collect()
    }

    #[test]
    fn tokenizes_operators_and_idents() {
        assert_eq!(
            toks(".*(A)"),
            vec![
                Token::Dot,
                Token::Star,
                Token::LParen,
                Token::Ident("A".into()),
                Token::RParen
            ]
        );
        assert_eq!(
            toks("w^= x{1,2}"),
            vec![
                Token::Ident("w".into()),
                Token::Up,
                Token::Eq,
                Token::Ident("x".into()),
                Token::LBrace,
                Token::Number(1),
                Token::Comma,
                Token::Number(2),
                Token::RBrace,
            ]
        );
    }

    #[test]
    fn unicode_up_arrow_accepted() {
        assert_eq!(toks("w↑"), vec![Token::Ident("w".into()), Token::Up]);
    }

    #[test]
    fn quoted_strings() {
        assert_eq!(
            toks("'A Storm of Swords'"),
            vec![Token::Ident("A Storm of Swords".into())]
        );
        assert!(Lexer::new("'oops").tokenize().is_err());
    }

    #[test]
    fn idents_with_dash_and_digits() {
        assert_eq!(toks("pop-cd2"), vec![Token::Ident("pop-cd2".into())]);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Lexer::new("a & b").tokenize().is_err());
    }

    #[test]
    fn offsets_reported() {
        let toks = Lexer::new("ab cd").tokenize().unwrap();
        assert_eq!(toks[0].1, 0);
        assert_eq!(toks[1].1, 3);
    }
}
