//! DESQ pattern expressions (Sec. II, Tab. I of the paper).
//!
//! Pattern expressions are regular expressions over items, extended with
//!
//! * **capture groups** `( E )` — only captured parts produce output,
//! * **hierarchies** — an item expression `w` matches any descendant of `w`
//!   (use `w=` to match exactly `w`), and
//! * **generalizations** `↑` — written `^` in this implementation: a captured
//!   `(w^)` may output the matched item or any of its ancestors up to `w`;
//!   `(w^=)` always generalizes fully (outputs `w`); `(.^)` outputs the
//!   matched item or any of its ancestors.
//!
//! Syntax (ASCII rendition of the paper's notation):
//!
//! ```text
//! E  :=  w | w= | w^ | w^= | . | .^            item / dot expressions
//!     |  ( E )                                 capture group
//!     |  [ E ]                                 grouping (no capture)
//!     |  E*  E+  E?  E{n}  E{n,}  E{n,m}  E{,m} repetition
//!     |  E1 E2                                 concatenation
//!     |  E1 | E2                               alternation
//! ```
//!
//! Item names are identifiers (`VERB`, `a1`, `lives_in`, ...) or
//! single-quoted strings (`'MP3 Players'`). The example constraint of the
//! paper is written `.*(A)[(.^)|.]*(b).*`.

mod lexer;
mod parser;

use std::fmt;

pub use lexer::{Lexer, Token};

/// Abstract syntax tree of a pattern expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatEx {
    /// `w`, `w=`, `w^`, `w^=`: match a (descendant of) item `w`.
    Item {
        /// Item name, resolved against the dictionary at FST-compile time.
        name: String,
        /// `=`: match exactly `w` instead of any descendant.
        exact: bool,
        /// `^`: when captured, allow/force generalization.
        up: bool,
    },
    /// `.` or `.^`: match any item.
    Dot {
        /// `^`: when captured, output ancestors of the matched item as well.
        up: bool,
    },
    /// `( E )`: capture group — matched items inside produce output.
    Capture(Box<PatEx>),
    /// Juxtaposition `E1 E2 ...`.
    Concat(Vec<PatEx>),
    /// Alternation `E1 | E2 | ...`.
    Alt(Vec<PatEx>),
    /// `E*`.
    Star(Box<PatEx>),
    /// `E+`.
    Plus(Box<PatEx>),
    /// `E?`.
    Optional(Box<PatEx>),
    /// `E{min,max}` (`max = None` for `{min,}`).
    Range {
        inner: Box<PatEx>,
        min: u32,
        max: Option<u32>,
    },
}

impl PatEx {
    /// Parses a pattern expression from its textual form.
    pub fn parse(input: &str) -> crate::Result<PatEx> {
        parser::parse(input)
    }

    /// True if this node needs brackets when a postfix operator is applied.
    fn is_atom(&self) -> bool {
        matches!(
            self,
            PatEx::Item { .. } | PatEx::Dot { .. } | PatEx::Capture(_)
        )
    }

    /// Wraps the expression with uncaptured `.*` context on both sides:
    /// `E` becomes `.* E .*`.
    ///
    /// DESQ matches pattern expressions *within* an input sequence (items
    /// before and after the match are skipped without producing output), so
    /// application constraints like `ENTITY (VERB+) ENTITY` are used
    /// unanchored. FST runs, however, always consume the whole input
    /// sequence (Sec. IV), which is why the paper's running example spells
    /// the context out: `πex = .*(A)[...]*(b).*`. The constraint library of
    /// Tab. III applies this wrapper to the expressions as printed.
    pub fn unanchored(self) -> PatEx {
        let dotstar = || PatEx::Star(Box::new(PatEx::Dot { up: false }));
        PatEx::Concat(vec![dotstar(), self, dotstar()])
    }

    /// Number of AST nodes (used to bound generated expressions in tests).
    pub fn size(&self) -> usize {
        match self {
            PatEx::Item { .. } | PatEx::Dot { .. } => 1,
            PatEx::Capture(e)
            | PatEx::Star(e)
            | PatEx::Plus(e)
            | PatEx::Optional(e)
            | PatEx::Range { inner: e, .. } => 1 + e.size(),
            PatEx::Concat(es) | PatEx::Alt(es) => 1 + es.iter().map(PatEx::size).sum::<usize>(),
        }
    }
}

fn needs_quotes(name: &str) -> bool {
    name.is_empty()
        || name
            .chars()
            .any(|c| !(c.is_alphanumeric() || c == '_' || c == '-' || c == '\''))
        || name.chars().next().is_some_and(|c| c.is_ascii_digit())
}

impl fmt::Display for PatEx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatEx::Item { name, exact, up } => {
                if needs_quotes(name) {
                    write!(f, "'{name}'")?;
                } else {
                    write!(f, "{name}")?;
                }
                if *up {
                    write!(f, "^")?;
                }
                if *exact {
                    write!(f, "=")?;
                }
                Ok(())
            }
            PatEx::Dot { up } => {
                write!(f, ".")?;
                if *up {
                    write!(f, "^")?;
                }
                Ok(())
            }
            PatEx::Capture(e) => write!(f, "({e})"),
            PatEx::Concat(es) => {
                let mut first = true;
                for e in es {
                    if !first {
                        write!(f, " ")?;
                    }
                    first = false;
                    if matches!(e, PatEx::Alt(_) | PatEx::Concat(_)) {
                        write!(f, "[{e}]")?;
                    } else {
                        write!(f, "{e}")?;
                    }
                }
                Ok(())
            }
            PatEx::Alt(es) => {
                let mut first = true;
                for e in es {
                    if !first {
                        write!(f, "|")?;
                    }
                    first = false;
                    if matches!(e, PatEx::Alt(_)) {
                        write!(f, "[{e}]")?;
                    } else {
                        write!(f, "{e}")?;
                    }
                }
                Ok(())
            }
            PatEx::Star(e) => write_postfix(f, e, "*"),
            PatEx::Plus(e) => write_postfix(f, e, "+"),
            PatEx::Optional(e) => write_postfix(f, e, "?"),
            PatEx::Range { inner, min, max } => {
                let suffix = match max {
                    Some(m) if *m == *min => format!("{{{min}}}"),
                    Some(m) => format!("{{{min},{m}}}"),
                    None => format!("{{{min},}}"),
                };
                write_postfix(f, inner, &suffix)
            }
        }
    }
}

fn write_postfix(f: &mut fmt::Formatter<'_>, inner: &PatEx, op: &str) -> fmt::Result {
    if inner.is_atom() {
        write!(f, "{inner}{op}")
    } else {
        write!(f, "[{inner}]{op}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(s: &str) -> String {
        PatEx::parse(s).unwrap().to_string()
    }

    #[test]
    fn parses_paper_example() {
        let e = PatEx::parse(".*(A)[(.^)|.]*(b).*").unwrap();
        // .* (A) [...]* (b) .*  — five concatenated factors.
        match &e {
            PatEx::Concat(es) => assert_eq!(es.len(), 5),
            other => panic!("expected concat, got {other:?}"),
        }
        // The display form re-parses to the same AST.
        let shown = e.to_string();
        assert_eq!(PatEx::parse(&shown).unwrap(), e);
    }

    #[test]
    fn parses_item_modifiers() {
        assert_eq!(
            PatEx::parse("w").unwrap(),
            PatEx::Item {
                name: "w".into(),
                exact: false,
                up: false
            }
        );
        assert_eq!(
            PatEx::parse("w=").unwrap(),
            PatEx::Item {
                name: "w".into(),
                exact: true,
                up: false
            }
        );
        assert_eq!(
            PatEx::parse("w^").unwrap(),
            PatEx::Item {
                name: "w".into(),
                exact: false,
                up: true
            }
        );
        assert_eq!(
            PatEx::parse("w^=").unwrap(),
            PatEx::Item {
                name: "w".into(),
                exact: true,
                up: true
            }
        );
        assert_eq!(PatEx::parse(".^").unwrap(), PatEx::Dot { up: true });
    }

    #[test]
    fn parses_ranges() {
        let e = PatEx::parse("[.]{0,2}").unwrap();
        assert_eq!(
            e,
            PatEx::Range {
                inner: Box::new(PatEx::Dot { up: false }),
                min: 0,
                max: Some(2)
            }
        );
        assert_eq!(
            PatEx::parse(".{3}").unwrap(),
            PatEx::Range {
                inner: Box::new(PatEx::Dot { up: false }),
                min: 3,
                max: Some(3)
            }
        );
        assert_eq!(
            PatEx::parse(".{2,}").unwrap(),
            PatEx::Range {
                inner: Box::new(PatEx::Dot { up: false }),
                min: 2,
                max: None
            }
        );
        // {,m} is shorthand for {0,m} (used by constraint T1 of the paper).
        assert_eq!(
            PatEx::parse(".{,4}").unwrap(),
            PatEx::Range {
                inner: Box::new(PatEx::Dot { up: false }),
                min: 0,
                max: Some(4)
            }
        );
    }

    #[test]
    fn parses_paper_constraints() {
        // From Tab. III of the paper (names adapted).
        for s in [
            "ENTITY (VERB+ NOUN+? PREP?) ENTITY",
            "(ENTITY^ VERB+ NOUN+? PREP? ENTITY^)",
            "(ENTITY^ be^=) DET? [ADV? ADJ? NOUN]",
            "(.^){3} NOUN",
            "[(.^). .]|[. (.^).]|[. .(.^)]",
            "(Electr^)[.{0,2}(Electr^)]{1,4}",
            "(Book)[.{0,2}(Book)]{1,4}",
            "DigitalCamera[.{0,3}(.^)]{1,4}",
            "(.)[.*(.)]{,4}",
            "(.)[.{0,1}(.)]{1,4}",
            "(.^)[.{0,1}(.^)]{1,4}",
        ] {
            let e = PatEx::parse(s).unwrap_or_else(|err| panic!("{s}: {err}"));
            let shown = e.to_string();
            assert_eq!(PatEx::parse(&shown).unwrap(), e, "roundtrip of {s}");
        }
    }

    #[test]
    fn quoted_items() {
        let e = PatEx::parse("('MP3 Players')").unwrap();
        assert_eq!(
            e,
            PatEx::Capture(Box::new(PatEx::Item {
                name: "MP3 Players".into(),
                exact: false,
                up: false
            }))
        );
        assert_eq!(roundtrip("('MP3 Players')"), "('MP3 Players')");
    }

    #[test]
    fn alternation_binds_weakest() {
        let e = PatEx::parse("a b|c").unwrap();
        match e {
            PatEx::Alt(es) => {
                assert_eq!(es.len(), 2);
                assert!(matches!(&es[0], PatEx::Concat(v) if v.len() == 2));
            }
            other => panic!("expected alt, got {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed() {
        for s in [
            "", "(", "[a", "a)", "a{2", "a{3,1}", "a|", "*", ".=", "a{}", "'x",
        ] {
            assert!(PatEx::parse(s).is_err(), "should reject {s:?}");
        }
    }

    #[test]
    fn display_wraps_ambiguous_children() {
        // Star over a concat needs brackets; over an atom it does not.
        let e = PatEx::Star(Box::new(PatEx::Concat(vec![
            PatEx::Dot { up: false },
            PatEx::Dot { up: false },
        ])));
        assert_eq!(e.to_string(), "[. .]*");
        assert_eq!(PatEx::parse("[. .]*").unwrap(), e);
    }

    #[test]
    fn size_counts_nodes() {
        let e = PatEx::parse(".*(A)[(.^)|.]*(b).*").unwrap();
        assert!(e.size() > 8);
    }
}
