//! Recursive-descent parser for pattern expressions.
//!
//! Grammar (highest to lowest precedence):
//!
//! ```text
//! primary := '.' '^'? | IDENT ('^')? ('=')? | '(' alt ')' | '[' alt ']'
//! postfix := primary ('*' | '+' | '?' | '{' bounds '}')*
//! concat  := postfix+
//! alt     := concat ('|' concat)*
//! ```

use super::lexer::{Lexer, Token};
use super::PatEx;
use crate::error::{Error, Result};

pub(super) fn parse(input: &str) -> Result<PatEx> {
    let tokens = Lexer::new(input).tokenize()?;
    let mut p = Parser {
        tokens,
        pos: 0,
        input_len: input.len(),
    };
    let e = p.alt()?;
    if let Some((tok, at)) = p.peek_with_pos() {
        return Err(Error::Parse {
            msg: format!("unexpected {tok:?}"),
            pos: at,
        });
    }
    Ok(e)
}

struct Parser {
    tokens: Vec<(Token, usize)>,
    pos: usize,
    input_len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn peek_with_pos(&self) -> Option<(&Token, usize)> {
        self.tokens.get(self.pos).map(|(t, p)| (t, *p))
    }

    fn here(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|(_, p)| *p)
            .unwrap_or(self.input_len)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &Token) -> Result<()> {
        match self.peek() {
            Some(t) if t == want => {
                self.pos += 1;
                Ok(())
            }
            other => Err(Error::Parse {
                msg: format!("expected {want:?}, found {other:?}"),
                pos: self.here(),
            }),
        }
    }

    fn alt(&mut self) -> Result<PatEx> {
        let mut branches = vec![self.concat()?];
        while matches!(self.peek(), Some(Token::Pipe)) {
            self.bump();
            branches.push(self.concat()?);
        }
        Ok(if branches.len() == 1 {
            branches.pop().unwrap()
        } else {
            PatEx::Alt(branches)
        })
    }

    fn concat(&mut self) -> Result<PatEx> {
        let mut factors = vec![self.postfix()?];
        while self.starts_primary() {
            factors.push(self.postfix()?);
        }
        Ok(if factors.len() == 1 {
            factors.pop().unwrap()
        } else {
            PatEx::Concat(factors)
        })
    }

    fn starts_primary(&self) -> bool {
        matches!(
            self.peek(),
            Some(Token::Dot | Token::Ident(_) | Token::LParen | Token::LBracket)
        )
    }

    fn postfix(&mut self) -> Result<PatEx> {
        let mut e = self.primary()?;
        loop {
            match self.peek() {
                Some(Token::Star) => {
                    self.bump();
                    e = PatEx::Star(Box::new(e));
                }
                Some(Token::Plus) => {
                    self.bump();
                    e = PatEx::Plus(Box::new(e));
                }
                Some(Token::Question) => {
                    self.bump();
                    e = PatEx::Optional(Box::new(e));
                }
                Some(Token::LBrace) => {
                    let at = self.here();
                    self.bump();
                    let (min, max) = self.bounds(at)?;
                    e = PatEx::Range {
                        inner: Box::new(e),
                        min,
                        max,
                    };
                }
                _ => break,
            }
        }
        Ok(e)
    }

    /// Parses `n`, `n,`, `n,m` or `,m` followed by `}`.
    fn bounds(&mut self, at: usize) -> Result<(u32, Option<u32>)> {
        let min = match self.peek() {
            Some(Token::Number(n)) => {
                let n = *n;
                self.bump();
                Some(n)
            }
            _ => None,
        };
        let (min, max) = if matches!(self.peek(), Some(Token::Comma)) {
            self.bump();
            let max = match self.peek() {
                Some(Token::Number(m)) => {
                    let m = *m;
                    self.bump();
                    Some(m)
                }
                _ => None,
            };
            match (min, max) {
                (None, None) => {
                    return Err(Error::Parse {
                        msg: "empty repetition bounds".into(),
                        pos: at,
                    })
                }
                (mn, mx) => (mn.unwrap_or(0), mx),
            }
        } else {
            match min {
                Some(n) => (n, Some(n)),
                None => {
                    return Err(Error::Parse {
                        msg: "empty repetition bounds".into(),
                        pos: at,
                    })
                }
            }
        };
        if let Some(m) = max {
            if m < min {
                return Err(Error::Parse {
                    msg: format!("repetition maximum {m} below minimum {min}"),
                    pos: at,
                });
            }
        }
        self.expect(&Token::RBrace)?;
        Ok((min, max))
    }

    fn primary(&mut self) -> Result<PatEx> {
        let at = self.here();
        match self.bump() {
            Some(Token::Dot) => {
                let up = self.eat_up();
                if matches!(self.peek(), Some(Token::Eq)) {
                    return Err(Error::Parse {
                        msg: "'.' cannot take '='".into(),
                        pos: at,
                    });
                }
                Ok(PatEx::Dot { up })
            }
            Some(Token::Ident(name)) => {
                let up = self.eat_up();
                let exact = self.eat_eq();
                Ok(PatEx::Item { name, exact, up })
            }
            Some(Token::LParen) => {
                let inner = self.alt()?;
                self.expect(&Token::RParen)?;
                Ok(PatEx::Capture(Box::new(inner)))
            }
            Some(Token::LBracket) => {
                let inner = self.alt()?;
                self.expect(&Token::RBracket)?;
                Ok(inner)
            }
            other => Err(Error::Parse {
                msg: format!("expected item, '.', '(' or '[', found {other:?}"),
                pos: at,
            }),
        }
    }

    fn eat_up(&mut self) -> bool {
        if matches!(self.peek(), Some(Token::Up)) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_eq(&mut self) -> bool {
        if matches!(self.peek(), Some(Token::Eq)) {
            self.bump();
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::PatEx;

    #[test]
    fn capture_groups_versus_brackets() {
        let cap = PatEx::parse("(a b)").unwrap();
        assert!(matches!(cap, PatEx::Capture(_)));
        let grp = PatEx::parse("[a b]").unwrap();
        assert!(matches!(grp, PatEx::Concat(_)));
    }

    #[test]
    fn postfix_chains() {
        // a*? = Optional(Star(a))
        let e = PatEx::parse("a*?").unwrap();
        assert!(matches!(e, PatEx::Optional(inner) if matches!(*inner, PatEx::Star(_))));
    }

    #[test]
    fn nested_ranges() {
        let e = PatEx::parse("[a{1,2}]{3}").unwrap();
        match e {
            PatEx::Range {
                inner,
                min: 3,
                max: Some(3),
            } => {
                assert!(matches!(
                    *inner,
                    PatEx::Range {
                        min: 1,
                        max: Some(2),
                        ..
                    }
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn error_positions_point_at_problem() {
        let err = PatEx::parse("abc )").unwrap_err();
        match err {
            crate::Error::Parse { pos, .. } => assert_eq!(pos, 4),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn deeply_nested_ok() {
        let mut s = String::new();
        for _ in 0..200 {
            s.push('[');
        }
        s.push('a');
        for _ in 0..200 {
            s.push(']');
        }
        assert!(PatEx::parse(&s).is_ok());
    }
}
