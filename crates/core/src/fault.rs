//! Deterministic fault injection for the chaos test suites.
//!
//! Only compiled with the `failpoints` cargo feature — production builds
//! contain *no* failpoint code, not even a branch. With the feature on,
//! execution layers call [`point`] at named sites; a test configures a
//! site with [`configure`] to deterministically panic, delay, or return
//! an error on chosen hits, and the chaos suites assert the system
//! degrades the way its failure-domain design promises.
//!
//! # Site catalog
//!
//! | site                 | layer                  | fires inside |
//! |----------------------|------------------------|--------------|
//! | `sched::task_run`    | work-stealing scheduler| every task body (panic is caught at the task boundary) |
//! | `bsp::reduce_merge`  | BSP engine             | every reduce task |
//! | `serve::before_reply`| daemon                 | between mining and the terminal frame |
//! | `store::compile`     | FST cache              | under a cache miss, before compilation |
//!
//! # Determinism
//!
//! A [`FailSpec`] fires by *hit index*, not by sampling: `skip` hits pass
//! through untouched, then `times` hits fire the action, then the site is
//! transparent again. Hit counters are per site and reset by
//! [`clear`] / [`clear_all`]. Tests that need "random-looking but
//! reproducible" schedules derive `skip` from a seed themselves — the
//! registry stays a pure counter machine.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Duration;

use crate::{Error, Result};

/// What a tripped failpoint does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailAction {
    /// Panic with `"failpoint <site>"` — exercises the catch_unwind
    /// boundaries.
    Panic,
    /// Sleep for the given duration — exercises deadlines and timeouts.
    Delay(Duration),
    /// Return `Error::Invalid("failpoint <site>")` from [`point`] — at
    /// sites without a `Result` path this panics instead.
    Err,
}

/// When and what a site fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailSpec {
    /// Hits that pass through before the first firing.
    pub skip: u64,
    /// Number of firing hits after `skip` (`u64::MAX` = forever).
    pub times: u64,
    /// The injected behavior.
    pub action: FailAction,
}

impl FailSpec {
    /// Fire `action` on every hit, forever.
    pub fn always(action: FailAction) -> FailSpec {
        FailSpec {
            skip: 0,
            times: u64::MAX,
            action,
        }
    }

    /// Fire `action` exactly once, on the `(skip + 1)`-th hit.
    pub fn once_after(skip: u64, action: FailAction) -> FailSpec {
        FailSpec {
            skip,
            times: 1,
            action,
        }
    }
}

struct SiteState {
    spec: FailSpec,
    hits: u64,
}

fn registry() -> &'static Mutex<HashMap<String, SiteState>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, SiteState>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

fn lock() -> std::sync::MutexGuard<'static, HashMap<String, SiteState>> {
    // A panic *injected by this registry* unwinds through call sites that
    // may hold no locks here, but a test thread asserting while another
    // injects can still poison the map — recovery is safe, the map is
    // always in a consistent state between operations.
    registry().lock().unwrap_or_else(PoisonError::into_inner)
}

/// Arms `site` with `spec`, resetting its hit counter.
pub fn configure(site: &str, spec: FailSpec) {
    lock().insert(site.to_string(), SiteState { spec, hits: 0 });
}

/// Disarms `site`.
pub fn clear(site: &str) {
    lock().remove(site);
}

/// Disarms every site (call between chaos test cases).
pub fn clear_all() {
    lock().clear();
}

/// Number of times `site` was hit since it was configured (0 if not
/// configured) — lets tests assert a site was actually exercised.
pub fn hits(site: &str) -> u64 {
    lock().get(site).map_or(0, |s| s.hits)
}

/// A named failpoint. Unconfigured sites return `Ok(())` immediately;
/// configured sites count the hit and fire their action when the hit
/// index falls in the armed window.
pub fn point(site: &str) -> Result<()> {
    let action = {
        let mut map = lock();
        let Some(state) = map.get_mut(site) else {
            return Ok(());
        };
        let hit = state.hits;
        state.hits += 1;
        let firing = hit >= state.spec.skip
            && (state.spec.times == u64::MAX || hit - state.spec.skip < state.spec.times);
        if !firing {
            return Ok(());
        }
        state.spec.action.clone()
        // The lock drops before the action runs: a Panic must not poison
        // the registry and a Delay must not serialize other sites.
    };
    match action {
        FailAction::Panic => panic!("failpoint {site}"),
        FailAction::Delay(d) => {
            std::thread::sleep(d);
            Ok(())
        }
        FailAction::Err => Err(Error::Invalid(format!("failpoint {site}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global; each test uses its own site names
    // so the suite stays order-independent.

    #[test]
    fn unconfigured_sites_are_transparent() {
        assert!(point("fault-test::nowhere").is_ok());
        assert_eq!(hits("fault-test::nowhere"), 0);
    }

    #[test]
    fn err_fires_in_the_armed_window_only() {
        configure(
            "fault-test::window",
            FailSpec {
                skip: 2,
                times: 1,
                action: FailAction::Err,
            },
        );
        assert!(point("fault-test::window").is_ok());
        assert!(point("fault-test::window").is_ok());
        assert!(matches!(
            point("fault-test::window"),
            Err(Error::Invalid(msg)) if msg.contains("fault-test::window")
        ));
        assert!(point("fault-test::window").is_ok());
        assert_eq!(hits("fault-test::window"), 4);
        clear("fault-test::window");
        assert!(point("fault-test::window").is_ok());
    }

    #[test]
    fn panic_action_panics_with_the_site_name() {
        configure("fault-test::boom", FailSpec::always(FailAction::Panic));
        let err = std::panic::catch_unwind(|| point("fault-test::boom")).unwrap_err();
        let msg = crate::mining::panic_message(err.as_ref());
        assert!(msg.contains("fault-test::boom"), "{msg}");
        clear("fault-test::boom");
    }

    #[test]
    fn delay_action_sleeps() {
        configure(
            "fault-test::slow",
            FailSpec::always(FailAction::Delay(Duration::from_millis(20))),
        );
        let t0 = std::time::Instant::now();
        assert!(point("fault-test::slow").is_ok());
        assert!(t0.elapsed() >= Duration::from_millis(20));
        clear("fault-test::slow");
    }
}
