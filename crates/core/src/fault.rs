//! Deterministic fault injection for the chaos test suites.
//!
//! Only compiled with the `failpoints` cargo feature — production builds
//! contain *no* failpoint code, not even a branch. With the feature on,
//! execution layers call [`point`] at named sites; a test configures a
//! site with [`configure`] to deterministically panic, delay, or return
//! an error on chosen hits, and the chaos suites assert the system
//! degrades the way its failure-domain design promises.
//!
//! # Site catalog
//!
//! | site                 | layer                  | fires inside |
//! |----------------------|------------------------|--------------|
//! | `sched::task_run`    | work-stealing scheduler| every task body (panic is caught at the task boundary) |
//! | `bsp::reduce_merge`  | BSP engine             | every reduce task |
//! | `serve::before_reply`| daemon                 | between mining and the terminal frame |
//! | `store::compile`     | FST cache              | under a cache miss, before compilation |
//! | `net::send_frame`    | shuffle transport      | before every frame write on a shuffle link (both ends) |
//! | `net::accept`        | shuffle transport      | when the coordinator accepts a worker connection |
//! | `net::heartbeat`     | shuffle transport      | before every worker heartbeat send |
//!
//! # Determinism
//!
//! A [`FailSpec`] fires by *hit index*, not by sampling: `skip` hits pass
//! through untouched, then `times` hits fire the action, then the site is
//! transparent again. Hit counters are per site and reset by
//! [`clear`] / [`clear_all`]. Tests that need "random-looking but
//! reproducible" schedules derive `skip` from a seed themselves — the
//! registry stays a pure counter machine.
//!
//! # Cross-process configuration
//!
//! Failpoints must also fire inside *child processes* — the chaos suite
//! for the networked shuffle spawns real worker processes and kills one
//! mid-superstep. A child cannot be configured through this registry's
//! in-process API, so specs travel in the `DESQ_FAILPOINTS` environment
//! variable and the child arms them at startup with [`init_from_env`]:
//!
//! ```text
//! DESQ_FAILPOINTS = entry (";" entry)*
//! entry           = site "=" spec
//! spec            = ["skip(" n ")."] ["times(" n ")."] action
//! action          = "panic" | "err" | "delay(" millis ")" | "exit(" code ")"
//! ```
//!
//! Examples: `net::send_frame=skip(3).exit(17)` kills the process on its
//! 4th frame send; `bsp::reduce_merge=times(2).err` fails the first two
//! reduce tasks; `net::heartbeat=delay(500)` stalls every heartbeat by
//! half a second. Omitted `skip` defaults to 0, omitted `times` to
//! "forever". [`FailSpec::from_env`] parses a single spec string and
//! rejects hostile input (unknown actions, overflowing counters, empty
//! sites) with a typed error instead of guessing.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Duration;

use crate::{Error, Result};

/// What a tripped failpoint does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailAction {
    /// Panic with `"failpoint <site>"` — exercises the catch_unwind
    /// boundaries.
    Panic,
    /// Sleep for the given duration — exercises deadlines and timeouts.
    Delay(Duration),
    /// Return `Error::Invalid("failpoint <site>")` from [`point`] — at
    /// sites without a `Result` path this panics instead.
    Err,
    /// Terminate the whole process with the given exit code — the real
    /// worker-death injection for cross-process chaos tests. Unlike
    /// [`Panic`](FailAction::Panic), nothing catches this: sockets close
    /// mid-frame exactly as they would when a machine dies.
    Exit(i32),
}

/// When and what a site fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailSpec {
    /// Hits that pass through before the first firing.
    pub skip: u64,
    /// Number of firing hits after `skip` (`u64::MAX` = forever).
    pub times: u64,
    /// The injected behavior.
    pub action: FailAction,
}

impl FailSpec {
    /// Fire `action` on every hit, forever.
    pub fn always(action: FailAction) -> FailSpec {
        FailSpec {
            skip: 0,
            times: u64::MAX,
            action,
        }
    }

    /// Fire `action` exactly once, on the `(skip + 1)`-th hit.
    pub fn once_after(skip: u64, action: FailAction) -> FailSpec {
        FailSpec {
            skip,
            times: 1,
            action,
        }
    }

    /// Parses the environment spec grammar (see the module docs):
    /// `[skip(<n>).][times(<n>).]<action>` with `action` one of `panic`,
    /// `err`, `delay(<millis>)`, `exit(<code>)`. Hostile input — unknown
    /// actions, non-numeric or overflowing counters, empty specs, stray
    /// clauses — yields [`Error::Invalid`], never a panic or a default.
    pub fn from_env(spec: &str) -> Result<FailSpec> {
        fn clause_arg<'s>(clause: &'s str, name: &str) -> Result<Option<&'s str>> {
            let Some(rest) = clause.strip_prefix(name) else {
                return Ok(None);
            };
            rest.strip_prefix('(')
                .and_then(|r| r.strip_suffix(')'))
                .map(Some)
                .ok_or_else(|| {
                    Error::Invalid(format!(
                        "failpoint spec clause {clause:?}: expected {name}(…)"
                    ))
                })
        }
        fn parse_u64(what: &str, s: &str) -> Result<u64> {
            s.trim().parse().map_err(|_| {
                Error::Invalid(format!(
                    "failpoint spec: {what} {s:?} is not a valid number"
                ))
            })
        }

        let mut skip = 0u64;
        let mut times = u64::MAX;
        let mut rest = spec.trim();
        if rest.is_empty() {
            return Err(Error::Invalid("failpoint spec is empty".into()));
        }
        // Leading `skip(n).` then `times(n).` clauses, each at most once.
        for (name, slot) in [("skip", &mut skip), ("times", &mut times)] {
            if let Some((head, tail)) = rest.split_once('.') {
                if let Some(arg) = clause_arg(head.trim(), name)? {
                    *slot = parse_u64(name, arg)?;
                    rest = tail.trim();
                }
            }
        }
        let action = match rest {
            "panic" => FailAction::Panic,
            "err" => FailAction::Err,
            other => {
                if let Some(ms) = clause_arg(other, "delay")? {
                    FailAction::Delay(Duration::from_millis(parse_u64("delay", ms)?))
                } else if let Some(code) = clause_arg(other, "exit")? {
                    let code = code.trim().parse::<i32>().map_err(|_| {
                        Error::Invalid(format!(
                            "failpoint spec: exit code {code:?} is not a valid i32"
                        ))
                    })?;
                    FailAction::Exit(code)
                } else {
                    return Err(Error::Invalid(format!(
                        "failpoint spec: unknown action {other:?} \
                         (expected panic, err, delay(ms) or exit(code))"
                    )));
                }
            }
        };
        Ok(FailSpec {
            skip,
            times,
            action,
        })
    }
}

struct SiteState {
    spec: FailSpec,
    hits: u64,
}

fn registry() -> &'static Mutex<HashMap<String, SiteState>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, SiteState>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

fn lock() -> std::sync::MutexGuard<'static, HashMap<String, SiteState>> {
    // A panic *injected by this registry* unwinds through call sites that
    // may hold no locks here, but a test thread asserting while another
    // injects can still poison the map — recovery is safe, the map is
    // always in a consistent state between operations.
    registry().lock().unwrap_or_else(PoisonError::into_inner)
}

/// Arms `site` with `spec`, resetting its hit counter.
pub fn configure(site: &str, spec: FailSpec) {
    lock().insert(site.to_string(), SiteState { spec, hits: 0 });
}

/// Disarms `site`.
pub fn clear(site: &str) {
    lock().remove(site);
}

/// Disarms every site (call between chaos test cases).
pub fn clear_all() {
    lock().clear();
}

/// Number of times `site` was hit since it was configured (0 if not
/// configured) — lets tests assert a site was actually exercised.
pub fn hits(site: &str) -> u64 {
    lock().get(site).map_or(0, |s| s.hits)
}

/// A named failpoint. Unconfigured sites return `Ok(())` immediately;
/// configured sites count the hit and fire their action when the hit
/// index falls in the armed window.
pub fn point(site: &str) -> Result<()> {
    let action = {
        let mut map = lock();
        let Some(state) = map.get_mut(site) else {
            return Ok(());
        };
        let hit = state.hits;
        state.hits += 1;
        let firing = hit >= state.spec.skip
            && (state.spec.times == u64::MAX || hit - state.spec.skip < state.spec.times);
        if !firing {
            return Ok(());
        }
        state.spec.action.clone()
        // The lock drops before the action runs: a Panic must not poison
        // the registry and a Delay must not serialize other sites.
    };
    match action {
        FailAction::Panic => panic!("failpoint {site}"),
        FailAction::Delay(d) => {
            std::thread::sleep(d);
            Ok(())
        }
        FailAction::Err => Err(Error::Invalid(format!("failpoint {site}"))),
        FailAction::Exit(code) => {
            eprintln!("failpoint {site}: exiting with code {code}");
            std::process::exit(code)
        }
    }
}

/// Arms every failpoint named in the `DESQ_FAILPOINTS` environment
/// variable (see the module docs for the format) and returns how many
/// sites were configured. Child processes of the chaos suites call this
/// at startup; a missing or empty variable arms nothing. Malformed
/// entries are an error — a chaos test with a typo'd spec must fail
/// loudly, not silently run fault-free.
pub fn init_from_env() -> Result<usize> {
    let Ok(raw) = std::env::var("DESQ_FAILPOINTS") else {
        return Ok(0);
    };
    let mut armed = 0;
    for entry in raw.split(';').filter(|e| !e.trim().is_empty()) {
        let (site, spec) = entry.split_once('=').ok_or_else(|| {
            Error::Invalid(format!(
                "DESQ_FAILPOINTS entry {entry:?}: expected site=spec"
            ))
        })?;
        let site = site.trim();
        if site.is_empty() {
            return Err(Error::Invalid(format!(
                "DESQ_FAILPOINTS entry {entry:?}: empty site name"
            )));
        }
        configure(site, FailSpec::from_env(spec.trim())?);
        armed += 1;
    }
    Ok(armed)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global; each test uses its own site names
    // so the suite stays order-independent.

    #[test]
    fn unconfigured_sites_are_transparent() {
        assert!(point("fault-test::nowhere").is_ok());
        assert_eq!(hits("fault-test::nowhere"), 0);
    }

    #[test]
    fn err_fires_in_the_armed_window_only() {
        configure(
            "fault-test::window",
            FailSpec {
                skip: 2,
                times: 1,
                action: FailAction::Err,
            },
        );
        assert!(point("fault-test::window").is_ok());
        assert!(point("fault-test::window").is_ok());
        assert!(matches!(
            point("fault-test::window"),
            Err(Error::Invalid(msg)) if msg.contains("fault-test::window")
        ));
        assert!(point("fault-test::window").is_ok());
        assert_eq!(hits("fault-test::window"), 4);
        clear("fault-test::window");
        assert!(point("fault-test::window").is_ok());
    }

    #[test]
    fn panic_action_panics_with_the_site_name() {
        configure("fault-test::boom", FailSpec::always(FailAction::Panic));
        let err = std::panic::catch_unwind(|| point("fault-test::boom")).unwrap_err();
        let msg = crate::mining::panic_message(err.as_ref());
        assert!(msg.contains("fault-test::boom"), "{msg}");
        clear("fault-test::boom");
    }

    #[test]
    fn env_spec_grammar_parses() {
        assert_eq!(
            FailSpec::from_env("panic").unwrap(),
            FailSpec::always(FailAction::Panic)
        );
        assert_eq!(
            FailSpec::from_env("err").unwrap(),
            FailSpec::always(FailAction::Err)
        );
        assert_eq!(
            FailSpec::from_env("delay(250)").unwrap(),
            FailSpec::always(FailAction::Delay(Duration::from_millis(250)))
        );
        assert_eq!(
            FailSpec::from_env("exit(17)").unwrap(),
            FailSpec::always(FailAction::Exit(17))
        );
        assert_eq!(
            FailSpec::from_env("skip(3).exit(1)").unwrap(),
            FailSpec {
                skip: 3,
                times: u64::MAX,
                action: FailAction::Exit(1),
            }
        );
        assert_eq!(
            FailSpec::from_env("times(2).err").unwrap(),
            FailSpec {
                skip: 0,
                times: 2,
                action: FailAction::Err,
            }
        );
        assert_eq!(
            FailSpec::from_env(" skip(1).times(4).delay(10) ").unwrap(),
            FailSpec {
                skip: 1,
                times: 4,
                action: FailAction::Delay(Duration::from_millis(10)),
            }
        );
    }

    #[test]
    fn env_spec_rejects_hostile_input() {
        for bad in [
            "",
            "   ",
            "boom",
            "panic.",
            "skip(2)",                          // clause without an action
            "skip().panic",                     // empty counter
            "skip(x).panic",                    // non-numeric counter
            "skip(18446744073709551616).panic", // u64 overflow
            "delay(-5)",
            "delay(1.5)",
            "delay(9999999999999999999999)",
            "exit(99999999999999)", // i32 overflow
            "exit()",
            "times(1).times(2).panic", // duplicate clause
            "skip(1)panic",            // missing separator
        ] {
            assert!(
                matches!(FailSpec::from_env(bad), Err(Error::Invalid(_))),
                "spec {bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn init_from_env_arms_every_entry() {
        // Env vars are process-global: use unique site names and restore
        // the variable afterwards.
        std::env::set_var(
            "DESQ_FAILPOINTS",
            "fault-test::env_a=skip(1).err; fault-test::env_b=times(1).err;;",
        );
        let armed = init_from_env().unwrap();
        std::env::remove_var("DESQ_FAILPOINTS");
        assert_eq!(armed, 2);
        assert!(point("fault-test::env_a").is_ok());
        assert!(point("fault-test::env_a").is_err());
        assert!(point("fault-test::env_b").is_err());
        assert!(point("fault-test::env_b").is_ok());
        clear("fault-test::env_a");
        clear("fault-test::env_b");

        std::env::set_var("DESQ_FAILPOINTS", "no-equals-sign");
        let err = init_from_env().unwrap_err();
        std::env::remove_var("DESQ_FAILPOINTS");
        assert!(matches!(err, Error::Invalid(_)));
    }

    #[test]
    fn delay_action_sleeps() {
        configure(
            "fault-test::slow",
            FailSpec::always(FailAction::Delay(Duration::from_millis(20))),
        );
        let t0 = std::time::Instant::now();
        assert!(point("fault-test::slow").is_ok());
        assert!(t0.elapsed() >= Duration::from_millis(20));
        clear("fault-test::slow");
    }
}
