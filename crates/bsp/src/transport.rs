//! Pluggable shuffle transports: how a BSP job's map and reduce tasks are
//! scheduled and how their bytes move.
//!
//! [`ShuffleTransport`] abstracts exactly the byte-space boundary of the
//! engine: map tasks produce [`MapTaskOut`] (already-encoded bucket
//! chunks), reduce tasks turn a bucket's chunks into encoded outputs.
//! [`InProcess`] runs them on the engine's own thread pool — the default,
//! with zero overhead over the classic single-process path. A
//! [`NetCoordinator`] farms the *same* tasks out to worker processes over
//! TCP, turning the engine into the driver of a small cluster.
//!
//! # Wire protocol
//!
//! Frames are length-prefixed like the `desq-serve` protocol:
//! `varint(payload_len) payload`, payload = tag byte + fields in the
//! `desq_core::codec` varint format. Lengths are validated against a
//! configurable cap *before* any allocation. A connection starts with the
//! worker's [`Frame::Hello`] carrying the protocol version and a job
//! fingerprint; the coordinator silently drops incompatible peers (the
//! worker sees the close, reconnects, and eventually reports
//! [`Error::PeerUnreachable`] when its retry budget is spent).
//!
//! # Failure model
//!
//! - **Backpressure**: at most [`NetConfig::credits`] task frames are in
//!   flight per peer link; a slow worker throttles its own assignment
//!   stream instead of unbounded queueing.
//! - **Liveness**: every read on a shuffle link carries a deadline
//!   ([`NetConfig::liveness`]); both sides send [`Frame::Heartbeat`] on
//!   idle links every [`NetConfig::heartbeat`]. A peer silent past the
//!   window is declared dead (`JobMetrics::peer_timeouts`).
//! - **Re-execution**: map and reduce tasks are pure over immutable
//!   partitions, so when a peer dies mid-superstep its in-flight tasks are
//!   simply re-queued to surviving peers (`JobMetrics::retried_tasks`).
//!   Results are deduplicated by `(epoch, task)` — first completion wins,
//!   a stale duplicate from a peer presumed dead is ignored.
//! - **Reconnect**: workers reconnect under the shared
//!   [`desq_core::retry::RetryPolicy`] schedule with a global attempt
//!   budget; a coordinator with zero live peers for
//!   [`NetConfig::peer_wait`] fails the job with a typed
//!   [`Error::PeerUnreachable`] instead of hanging.
//!
//! Failpoints (feature `failpoints`): `net::send_frame` before every frame
//! write, `net::accept` on every accepted connection, `net::heartbeat`
//! before every worker heartbeat — see `desq_core::fault` for the
//! cross-process `DESQ_FAILPOINTS` grammar.

use std::collections::VecDeque;
use std::io::{self, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use desq_core::mining::panic_message;
use desq_core::retry::RetryPolicy;
use parking_lot::Mutex;

use crate::codec::{read_varint, write_varint};
use crate::engine::{Engine, MapTaskOut};
use crate::error::{Error, Result};

/// Version byte of the shuffle wire protocol. Bump on any frame layout
/// change; the coordinator rejects mismatched workers at the handshake.
pub const NET_PROTOCOL_VERSION: u8 = 1;

/// Robustness counters of one transport phase, merged into
/// [`JobMetrics`](crate::JobMetrics) by the engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseStats {
    /// Tasks re-queued after their assigned peer died or timed out.
    pub retried_tasks: u64,
    /// Peers declared dead for silence past the liveness window.
    pub peer_timeouts: u64,
    /// Wall nanoseconds of the slowest single task (straggler).
    pub max_task_nanos: u64,
}

/// How a BSP job's tasks are executed and its shuffle bytes moved.
///
/// Both phases receive a `local` closure that executes one task in this
/// process — the in-process transport calls it directly; a networked
/// transport ignores it and ships task ids to workers that hold the same
/// closures. Implementations must return exactly one result per task, in
/// task order, plus the phase's robustness counters.
pub trait ShuffleTransport: Sync {
    /// Executes map tasks `0..tasks`, returning their outputs in task order.
    fn map_phase(
        &self,
        engine: &Engine,
        tasks: usize,
        local: &(dyn Fn(usize) -> Result<MapTaskOut> + Sync),
    ) -> Result<(Vec<MapTaskOut>, PhaseStats)>;

    /// Executes one reduce task per bucket over the regrouped chunks,
    /// returning each bucket's encoded outputs in bucket order.
    fn reduce_phase(
        &self,
        engine: &Engine,
        chunks: Vec<Vec<Vec<u8>>>,
        local: &ReduceTaskFn<'_>,
    ) -> Result<(Vec<Vec<u8>>, PhaseStats)>;
}

/// A reduce task body: the bucket index plus that bucket's regrouped
/// chunks in, the bucket's encoded output out.
pub type ReduceTaskFn<'a> = dyn Fn(usize, &[Vec<u8>]) -> Result<Vec<u8>> + Sync + 'a;

/// The worker-side reduce handler: a task id plus its shipped chunks.
pub(crate) type WorkerReduceFn<'a> = dyn Fn(u64, &[Vec<u8>]) -> Result<Vec<u8>> + 'a;

/// The default transport: tasks run on the engine's own worker threads,
/// bytes never leave the process. Zero overhead over the classic path.
#[derive(Debug, Clone, Copy, Default)]
pub struct InProcess;

impl ShuffleTransport for InProcess {
    fn map_phase(
        &self,
        engine: &Engine,
        tasks: usize,
        local: &(dyn Fn(usize) -> Result<MapTaskOut> + Sync),
    ) -> Result<(Vec<MapTaskOut>, PhaseStats)> {
        let max = AtomicU64::new(0);
        let outs = engine.run_tasks(tasks, local, &max)?;
        Ok((
            outs,
            PhaseStats {
                max_task_nanos: max.into_inner(),
                ..PhaseStats::default()
            },
        ))
    }

    fn reduce_phase(
        &self,
        engine: &Engine,
        chunks: Vec<Vec<Vec<u8>>>,
        local: &ReduceTaskFn<'_>,
    ) -> Result<(Vec<Vec<u8>>, PhaseStats)> {
        let max = AtomicU64::new(0);
        let outs = engine.run_tasks(chunks.len(), |b| local(b, &chunks[b]), &max)?;
        Ok((
            outs,
            PhaseStats {
                max_task_nanos: max.into_inner(),
                ..PhaseStats::default()
            },
        ))
    }
}

// ---------------------------------------------------------------- frames

/// One shuffle-link message. Task frames carry the phase `epoch` so that
/// results of a re-executed superstep can never be confused with stale
/// results from a peer that was presumed dead and answered late.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Worker handshake: protocol version and job fingerprint.
    Hello { version: u8, fingerprint: u64 },
    /// Keepalive on an idle link (either direction).
    Heartbeat,
    /// Coordinator → worker: run map task `task` of phase `epoch`.
    MapTask { epoch: u64, task: u64 },
    /// Worker → coordinator: map task output (bucket chunks + accounting).
    MapOut {
        epoch: u64,
        task: u64,
        emitted: u64,
        shuffled: u64,
        payloads: u64,
        task_nanos: u64,
        buckets: Vec<Vec<u8>>,
    },
    /// Coordinator → worker: reduce bucket `task` over these chunks.
    ReduceTask {
        epoch: u64,
        task: u64,
        chunks: Vec<Vec<u8>>,
    },
    /// Worker → coordinator: one bucket's encoded reduce outputs.
    ReduceOut {
        epoch: u64,
        task: u64,
        task_nanos: u64,
        out: Vec<u8>,
    },
    /// Worker → coordinator: the task failed deterministically; the job
    /// aborts with this error (re-execution would fail identically).
    TaskErr { epoch: u64, task: u64, error: Error },
    /// Coordinator → worker: job over, disconnect cleanly.
    End,
}

fn write_bytes(buf: &mut Vec<u8>, bytes: &[u8]) {
    write_varint(buf, bytes.len() as u64);
    buf.extend_from_slice(bytes);
}

fn read_bytes(s: &mut &[u8]) -> Result<Vec<u8>> {
    let len = read_varint(s)? as usize;
    if len > s.len() {
        return Err(Error::Decode(format!(
            "byte string: length {len} exceeds input"
        )));
    }
    let (head, rest) = s.split_at(len);
    *s = rest;
    Ok(head.to_vec())
}

fn write_byte_list(buf: &mut Vec<u8>, list: &[Vec<u8>]) {
    write_varint(buf, list.len() as u64);
    for b in list {
        write_bytes(buf, b);
    }
}

fn read_byte_list(s: &mut &[u8]) -> Result<Vec<Vec<u8>>> {
    let n = read_varint(s)? as usize;
    if n > s.len() {
        return Err(Error::Decode(format!("byte list: count {n} exceeds input")));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(read_bytes(s)?);
    }
    Ok(out)
}

fn take_u8(s: &mut &[u8]) -> Result<u8> {
    let (&b, rest) = s
        .split_first()
        .ok_or_else(|| Error::Decode("frame: unexpected end of input".into()))?;
    *s = rest;
    Ok(b)
}

fn write_error(buf: &mut Vec<u8>, e: &Error) {
    let (kind, msg) = match e {
        Error::Decode(m) => (0u8, m),
        Error::ResourceExhausted(m) => (1, m),
        Error::DeadlineExceeded(m) => (2, m),
        Error::Cancelled(m) => (3, m),
        Error::WorkerPanicked(m) => (4, m),
        Error::Worker(m) => (5, m),
        Error::PeerUnreachable(m) => (6, m),
        Error::PeerTimedOut(m) => (7, m),
    };
    buf.push(kind);
    write_bytes(buf, msg.as_bytes());
}

fn read_error(s: &mut &[u8]) -> Result<Error> {
    let kind = take_u8(s)?;
    let msg = String::from_utf8(read_bytes(s)?)
        .map_err(|_| Error::Decode("error message is not UTF-8".into()))?;
    Ok(match kind {
        0 => Error::Decode(msg),
        1 => Error::ResourceExhausted(msg),
        2 => Error::DeadlineExceeded(msg),
        3 => Error::Cancelled(msg),
        4 => Error::WorkerPanicked(msg),
        5 => Error::Worker(msg),
        6 => Error::PeerUnreachable(msg),
        7 => Error::PeerTimedOut(msg),
        k => return Err(Error::Decode(format!("unknown error kind {k}"))),
    })
}

impl Frame {
    /// Serializes the frame payload (tag byte + fields, no length prefix).
    pub fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Frame::Hello {
                version,
                fingerprint,
            } => {
                buf.push(1);
                buf.push(*version);
                write_varint(buf, *fingerprint);
            }
            Frame::Heartbeat => buf.push(2),
            Frame::MapTask { epoch, task } => {
                buf.push(3);
                write_varint(buf, *epoch);
                write_varint(buf, *task);
            }
            Frame::MapOut {
                epoch,
                task,
                emitted,
                shuffled,
                payloads,
                task_nanos,
                buckets,
            } => {
                buf.push(4);
                write_varint(buf, *epoch);
                write_varint(buf, *task);
                write_varint(buf, *emitted);
                write_varint(buf, *shuffled);
                write_varint(buf, *payloads);
                write_varint(buf, *task_nanos);
                write_byte_list(buf, buckets);
            }
            Frame::ReduceTask {
                epoch,
                task,
                chunks,
            } => {
                buf.push(5);
                write_varint(buf, *epoch);
                write_varint(buf, *task);
                write_byte_list(buf, chunks);
            }
            Frame::ReduceOut {
                epoch,
                task,
                task_nanos,
                out,
            } => {
                buf.push(6);
                write_varint(buf, *epoch);
                write_varint(buf, *task);
                write_varint(buf, *task_nanos);
                write_bytes(buf, out);
            }
            Frame::TaskErr { epoch, task, error } => {
                buf.push(7);
                write_varint(buf, *epoch);
                write_varint(buf, *task);
                write_error(buf, error);
            }
            Frame::End => buf.push(8),
        }
    }

    /// Decodes one frame payload, rejecting trailing garbage.
    pub fn decode(payload: &[u8]) -> Result<Frame> {
        let mut s = payload;
        let tag = take_u8(&mut s)?;
        let frame = match tag {
            1 => Frame::Hello {
                version: take_u8(&mut s)?,
                fingerprint: read_varint(&mut s)?,
            },
            2 => Frame::Heartbeat,
            3 => Frame::MapTask {
                epoch: read_varint(&mut s)?,
                task: read_varint(&mut s)?,
            },
            4 => Frame::MapOut {
                epoch: read_varint(&mut s)?,
                task: read_varint(&mut s)?,
                emitted: read_varint(&mut s)?,
                shuffled: read_varint(&mut s)?,
                payloads: read_varint(&mut s)?,
                task_nanos: read_varint(&mut s)?,
                buckets: read_byte_list(&mut s)?,
            },
            5 => Frame::ReduceTask {
                epoch: read_varint(&mut s)?,
                task: read_varint(&mut s)?,
                chunks: read_byte_list(&mut s)?,
            },
            6 => Frame::ReduceOut {
                epoch: read_varint(&mut s)?,
                task: read_varint(&mut s)?,
                task_nanos: read_varint(&mut s)?,
                out: read_bytes(&mut s)?,
            },
            7 => Frame::TaskErr {
                epoch: read_varint(&mut s)?,
                task: read_varint(&mut s)?,
                error: read_error(&mut s)?,
            },
            8 => Frame::End,
            t => return Err(Error::Decode(format!("unknown frame tag {t}"))),
        };
        if !s.is_empty() {
            return Err(Error::Decode(format!(
                "frame: {} trailing bytes after tag {tag}",
                s.len()
            )));
        }
        Ok(frame)
    }

    /// Full wire bytes: `varint(payload_len) payload`. Fails (without
    /// sending anything) when the payload exceeds `max_frame`.
    fn to_wire(&self, max_frame: usize) -> io::Result<Vec<u8>> {
        let mut payload = Vec::new();
        self.encode(&mut payload);
        if payload.len() > max_frame {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame payload {} exceeds cap {max_frame}", payload.len()),
            ));
        }
        let mut wire = Vec::with_capacity(payload.len() + 10);
        write_varint(&mut wire, payload.len() as u64);
        wire.extend_from_slice(&payload);
        Ok(wire)
    }
}

/// Writes pre-serialized wire bytes, with the `net::send_frame` failpoint
/// in front (a failpoint `Err` surfaces as an I/O error — a broken link —
/// and an `Exit` action kills the process mid-send, which is exactly how
/// the chaos suite murders a worker).
fn send_wire<W: Write>(w: &mut W, wire: &[u8]) -> io::Result<()> {
    #[cfg(feature = "failpoints")]
    desq_core::fault::point("net::send_frame")
        .map_err(|e| io::Error::new(io::ErrorKind::Other, e.to_string()))?;
    w.write_all(wire)?;
    w.flush()
}

/// Writes one length-prefixed frame.
pub fn write_net_frame<W: Write>(w: &mut W, frame: &Frame, max_frame: usize) -> io::Result<()> {
    let wire = frame.to_wire(max_frame)?;
    send_wire(w, &wire)
}

/// Reads one length-prefixed frame, rejecting oversized or overlong
/// length prefixes *before* allocating the payload buffer.
pub fn read_net_frame<R: Read>(r: &mut R, max_frame: usize) -> io::Result<Frame> {
    let mut len: u64 = 0;
    let mut shift = 0u32;
    loop {
        let mut b = [0u8; 1];
        r.read_exact(&mut b)?;
        if shift >= 64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "frame length varint overflows u64",
            ));
        }
        len |= u64::from(b[0] & 0x7F) << shift;
        if b[0] & 0x80 == 0 {
            break;
        }
        shift += 7;
    }
    if len > max_frame as u64 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds cap {max_frame}"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Frame::decode(&payload).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

// ------------------------------------------------------------ coordinator

/// Tuning knobs of a networked shuffle link.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Task frames in flight per peer link (bounded-credit backpressure).
    pub credits: usize,
    /// A peer silent for this long is declared dead.
    pub liveness: Duration,
    /// Idle links carry a heartbeat at this interval (keep it well under
    /// `liveness`; 4× headroom is the default).
    pub heartbeat: Duration,
    /// Reconnect schedule and budget for workers.
    pub retry: RetryPolicy,
    /// Hard cap on a single frame's payload bytes, enforced before
    /// allocation on reads and before transmission on writes.
    pub max_frame: usize,
    /// How long the coordinator tolerates *zero* live workers before
    /// failing the job with [`Error::PeerUnreachable`].
    pub peer_wait: Duration,
    /// Job identity: workers carrying a different fingerprint (different
    /// corpus/config build) are rejected at the handshake.
    pub fingerprint: u64,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            credits: 2,
            liveness: Duration::from_secs(2),
            heartbeat: Duration::from_millis(500),
            retry: RetryPolicy::default(),
            max_frame: 64 << 20,
            peer_wait: Duration::from_secs(10),
            fingerprint: 0,
        }
    }
}

enum Event {
    Frame { peer: usize, frame: Frame },
    Dead { peer: usize, timed_out: bool },
}

struct Peer {
    stream: TcpStream,
    alive: bool,
    /// Hello received and validated.
    ready: bool,
    in_flight: Vec<u64>,
    last_write: Instant,
}

/// Marks a peer dead and re-queues its unfinished in-flight tasks.
fn fail_peer(
    p: &mut Peer,
    results: &[Option<Frame>],
    queue: &mut VecDeque<u64>,
    stats: &mut PhaseStats,
    timed_out: bool,
) {
    if !p.alive {
        return;
    }
    p.alive = false;
    let _ = p.stream.shutdown(Shutdown::Both);
    for t in p.in_flight.drain(..) {
        if (t as usize) < results.len() && results[t as usize].is_none() {
            queue.push_back(t);
            stats.retried_tasks += 1;
        }
    }
    if timed_out {
        stats.peer_timeouts += 1;
    }
}

/// The driver side of a networked BSP job: accepts worker connections and
/// schedules the job's task frames over them.
///
/// Peers persist across the map and reduce phases of one job; the
/// coordinator is single-job ([`ShuffleTransport::reduce_phase`] ends it
/// by sending [`Frame::End`] to every live worker). The driver process
/// does not execute tasks itself — it is a pure scheduler, so at least one
/// worker must join within [`NetConfig::peer_wait`].
pub struct NetCoordinator {
    listener: TcpListener,
    cfg: NetConfig,
    peers: Mutex<Vec<Peer>>,
    epoch: AtomicU64,
    tx: Sender<Event>,
    rx: Mutex<Receiver<Event>>,
    finished: AtomicBool,
}

impl NetCoordinator {
    /// Binds the coordinator's listening socket (use port 0 for an
    /// OS-assigned port, then [`local_addr`](Self::local_addr)).
    pub fn bind(addr: impl ToSocketAddrs, cfg: NetConfig) -> io::Result<NetCoordinator> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let (tx, rx) = channel();
        Ok(NetCoordinator {
            listener,
            cfg,
            peers: Mutex::new(Vec::new()),
            epoch: AtomicU64::new(1),
            tx,
            rx: Mutex::new(rx),
            finished: AtomicBool::new(false),
        })
    }

    /// The address workers should connect to.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts any pending worker connections (non-blocking) and spawns a
    /// reader thread per peer.
    fn accept_peers(&self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _addr)) => {
                    #[cfg(feature = "failpoints")]
                    if desq_core::fault::point("net::accept").is_err() {
                        drop(stream);
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let _ = stream.set_write_timeout(Some(self.cfg.liveness));
                    let Ok(rstream) = stream.try_clone() else {
                        continue;
                    };
                    let id = {
                        let mut peers = self.peers.lock();
                        peers.push(Peer {
                            stream,
                            alive: true,
                            ready: false,
                            in_flight: Vec::new(),
                            last_write: Instant::now(),
                        });
                        peers.len() - 1
                    };
                    let tx = self.tx.clone();
                    let (liveness, max_frame) = (self.cfg.liveness, self.cfg.max_frame);
                    thread::spawn(move || reader_loop(id, rstream, liveness, max_frame, tx));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(_) => return,
            }
        }
    }

    /// Hands queued tasks to live peers, at most `credits` in flight each.
    fn assign(
        &self,
        wire: &[Vec<u8>],
        results: &[Option<Frame>],
        queue: &mut VecDeque<u64>,
        stats: &mut PhaseStats,
    ) {
        let mut peers = self.peers.lock();
        for p in peers.iter_mut() {
            if !p.alive || !p.ready {
                continue;
            }
            while p.in_flight.len() < self.cfg.credits {
                // Skip tasks that were completed elsewhere while re-queued.
                let Some(t) = queue.pop_front() else { return };
                if results[t as usize].is_some() {
                    continue;
                }
                match send_wire(&mut p.stream, &wire[t as usize]) {
                    Ok(()) => {
                        p.in_flight.push(t);
                        p.last_write = Instant::now();
                    }
                    Err(_) => {
                        queue.push_front(t);
                        fail_peer(p, results, queue, stats, false);
                        break;
                    }
                }
            }
        }
    }

    /// Heartbeats peers whose link has been idle for a heartbeat interval.
    fn heartbeat_idle(
        &self,
        results: &[Option<Frame>],
        queue: &mut VecDeque<u64>,
        stats: &mut PhaseStats,
    ) {
        let Ok(hb) = Frame::Heartbeat.to_wire(self.cfg.max_frame) else {
            return;
        };
        let mut peers = self.peers.lock();
        for p in peers.iter_mut() {
            if p.alive && p.ready && p.last_write.elapsed() >= self.cfg.heartbeat {
                match send_wire(&mut p.stream, &hb) {
                    Ok(()) => p.last_write = Instant::now(),
                    Err(_) => fail_peer(p, results, queue, stats, false),
                }
            }
        }
    }

    fn on_event(
        &self,
        ev: Event,
        epoch: u64,
        results: &mut [Option<Frame>],
        queue: &mut VecDeque<u64>,
        done: &mut usize,
        stats: &mut PhaseStats,
    ) -> Result<()> {
        match ev {
            Event::Frame { peer, frame } => match frame {
                Frame::Hello {
                    version,
                    fingerprint,
                } => {
                    let mut peers = self.peers.lock();
                    let p = &mut peers[peer];
                    if version == NET_PROTOCOL_VERSION && fingerprint == self.cfg.fingerprint {
                        p.ready = true;
                    } else {
                        // Incompatible build: drop it; the worker sees the
                        // close and gives up once its retry budget is spent.
                        p.alive = false;
                        let _ = p.stream.shutdown(Shutdown::Both);
                    }
                }
                Frame::Heartbeat => {}
                // A stale-epoch error (from a re-executed task that already
                // completed) falls through to the ignore arm below.
                Frame::TaskErr {
                    epoch: e, error, ..
                } if e == epoch => {
                    return Err(error);
                }
                f @ (Frame::MapOut { .. } | Frame::ReduceOut { .. }) => {
                    let (e, task, nanos) = match &f {
                        Frame::MapOut {
                            epoch,
                            task,
                            task_nanos,
                            ..
                        }
                        | Frame::ReduceOut {
                            epoch,
                            task,
                            task_nanos,
                            ..
                        } => (*epoch, *task, *task_nanos),
                        _ => unreachable!(),
                    };
                    {
                        let mut peers = self.peers.lock();
                        if let Some(p) = peers.get_mut(peer) {
                            p.in_flight.retain(|&x| x != task);
                        }
                    }
                    // Stale-epoch or duplicate results are dropped: first
                    // completion of (epoch, task) wins.
                    let t = task as usize;
                    if e == epoch && t < results.len() && results[t].is_none() {
                        stats.max_task_nanos = stats.max_task_nanos.max(nanos);
                        results[t] = Some(f);
                        *done += 1;
                    }
                }
                // Protocol noise (a task frame flowing backwards): ignore.
                _ => {}
            },
            Event::Dead { peer, timed_out } => {
                let mut peers = self.peers.lock();
                fail_peer(&mut peers[peer], results, queue, stats, timed_out);
            }
        }
        Ok(())
    }

    /// Drives one phase to completion: assigns `task_frames` to peers,
    /// re-queues on peer death, dedupes results by `(epoch, task)`.
    fn run_phase(
        &self,
        engine: &Engine,
        epoch: u64,
        task_frames: &[Frame],
    ) -> Result<(Vec<Frame>, PhaseStats)> {
        let n = task_frames.len();
        let mut wire: Vec<Vec<u8>> = Vec::with_capacity(n);
        for f in task_frames {
            wire.push(f.to_wire(self.cfg.max_frame).map_err(|e| {
                Error::ResourceExhausted(format!("task frame exceeds the frame cap: {e}"))
            })?);
        }
        // Stale in-flight bookkeeping from a previous phase (a peer that
        // kept a duplicate after the phase completed) must not leak task
        // ids into this phase's queue.
        for p in self.peers.lock().iter_mut() {
            p.in_flight.clear();
        }
        let mut queue: VecDeque<u64> = (0..n as u64).collect();
        let mut results: Vec<Option<Frame>> = (0..n).map(|_| None).collect();
        let mut done = 0usize;
        let mut stats = PhaseStats::default();
        let rx = self.rx.lock();
        let mut no_peer_since = Instant::now();
        loop {
            engine.checkpoint()?;
            self.accept_peers();
            while let Ok(ev) = rx.try_recv() {
                self.on_event(ev, epoch, &mut results, &mut queue, &mut done, &mut stats)?;
            }
            if done == n {
                break;
            }
            self.assign(&wire, &results, &mut queue, &mut stats);
            self.heartbeat_idle(&results, &mut queue, &mut stats);
            // A job with no live ready peer makes no progress; fail it
            // with a typed error instead of hanging forever.
            let live = self
                .peers
                .lock()
                .iter()
                .filter(|p| p.alive && p.ready)
                .count();
            if live > 0 {
                no_peer_since = Instant::now();
            } else if no_peer_since.elapsed() >= self.cfg.peer_wait {
                return Err(Error::PeerUnreachable(format!(
                    "no live worker for {:?} ({} of {n} tasks outstanding)",
                    self.cfg.peer_wait,
                    n - done,
                )));
            }
            match rx.recv_timeout(Duration::from_millis(20)) {
                Ok(ev) => {
                    self.on_event(ev, epoch, &mut results, &mut queue, &mut done, &mut stats)?;
                }
                Err(_) => continue,
            }
        }
        let frames = results
            .into_iter()
            .map(|r| r.expect("phase completed with every task accounted"))
            .collect();
        Ok((frames, stats))
    }

    /// Ends the job: every live worker gets an [`Frame::End`]. Idempotent;
    /// also runs on drop so an aborted job releases its workers.
    fn finish(&self) {
        if self.finished.swap(true, Ordering::SeqCst) {
            return;
        }
        let Ok(end) = Frame::End.to_wire(self.cfg.max_frame) else {
            return;
        };
        let mut peers = self.peers.lock();
        for p in peers.iter_mut() {
            if p.alive {
                let _ = send_wire(&mut p.stream, &end);
            }
        }
    }
}

impl Drop for NetCoordinator {
    fn drop(&mut self) {
        self.finish();
    }
}

impl ShuffleTransport for NetCoordinator {
    fn map_phase(
        &self,
        engine: &Engine,
        tasks: usize,
        _local: &(dyn Fn(usize) -> Result<MapTaskOut> + Sync),
    ) -> Result<(Vec<MapTaskOut>, PhaseStats)> {
        let epoch = self.epoch.fetch_add(1, Ordering::Relaxed);
        let frames: Vec<Frame> = (0..tasks as u64)
            .map(|task| Frame::MapTask { epoch, task })
            .collect();
        let (results, stats) = self.run_phase(engine, epoch, &frames)?;
        let mut outs = Vec::with_capacity(results.len());
        for f in results {
            match f {
                Frame::MapOut {
                    emitted,
                    shuffled,
                    payloads,
                    buckets,
                    ..
                } => {
                    if buckets.len() != engine.reducers() {
                        return Err(Error::Decode(format!(
                            "map output has {} buckets, engine expects {}",
                            buckets.len(),
                            engine.reducers()
                        )));
                    }
                    outs.push(MapTaskOut {
                        buckets,
                        emitted,
                        shuffled,
                        payloads,
                    });
                }
                _ => unreachable!("run_phase only accepts map outputs here"),
            }
        }
        Ok((outs, stats))
    }

    fn reduce_phase(
        &self,
        engine: &Engine,
        chunks: Vec<Vec<Vec<u8>>>,
        _local: &ReduceTaskFn<'_>,
    ) -> Result<(Vec<Vec<u8>>, PhaseStats)> {
        let epoch = self.epoch.fetch_add(1, Ordering::Relaxed);
        let frames: Vec<Frame> = chunks
            .into_iter()
            .enumerate()
            .map(|(b, chunks)| Frame::ReduceTask {
                epoch,
                task: b as u64,
                chunks,
            })
            .collect();
        let outcome = self.run_phase(engine, epoch, &frames);
        // The reduce phase is the job's last: release the workers whether
        // it succeeded or not.
        self.finish();
        let (results, stats) = outcome?;
        let outs = results
            .into_iter()
            .map(|f| match f {
                Frame::ReduceOut { out, .. } => out,
                _ => unreachable!("run_phase only accepts reduce outputs here"),
            })
            .collect();
        Ok((outs, stats))
    }
}

fn reader_loop(
    peer: usize,
    stream: TcpStream,
    liveness: Duration,
    max_frame: usize,
    tx: Sender<Event>,
) {
    let _ = stream.set_read_timeout(Some(liveness));
    let mut r = BufReader::new(stream);
    loop {
        match read_net_frame(&mut r, max_frame) {
            Ok(frame) => {
                if tx.send(Event::Frame { peer, frame }).is_err() {
                    return;
                }
            }
            Err(e) => {
                let timed_out = matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                );
                let _ = tx.send(Event::Dead { peer, timed_out });
                return;
            }
        }
    }
}

// ---------------------------------------------------------------- worker

fn write_frame_locked(
    writer: &Mutex<TcpStream>,
    frame: &Frame,
    max_frame: usize,
) -> io::Result<()> {
    let wire = frame.to_wire(max_frame)?;
    send_wire(&mut *writer.lock(), &wire)
}

/// One worker connection: handshake, serve tasks until [`Frame::End`].
/// `Ok(())` means a clean end; any error means the link failed and the
/// caller should reconnect.
fn serve_coordinator(
    stream: TcpStream,
    cfg: &NetConfig,
    on_map: &dyn Fn(u64) -> Result<MapTaskOut>,
    on_reduce: &WorkerReduceFn<'_>,
) -> io::Result<()> {
    let _ = stream.set_nodelay(true);
    stream.set_read_timeout(Some(cfg.liveness))?;
    stream.set_write_timeout(Some(cfg.liveness))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let writer = Arc::new(Mutex::new(stream));
    write_frame_locked(
        &writer,
        &Frame::Hello {
            version: NET_PROTOCOL_VERSION,
            fingerprint: cfg.fingerprint,
        },
        cfg.max_frame,
    )?;

    // Heartbeats come from a dedicated thread over the shared writer so a
    // long map/reduce task cannot starve the coordinator's liveness window.
    let stop = Arc::new(AtomicBool::new(false));
    let hb_thread = {
        let writer = Arc::clone(&writer);
        let stop = Arc::clone(&stop);
        let (interval, max_frame) = (cfg.heartbeat, cfg.max_frame);
        thread::spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                thread::sleep(interval);
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                #[cfg(feature = "failpoints")]
                if desq_core::fault::point("net::heartbeat").is_err() {
                    continue; // suppressed heartbeat, not a dead link
                }
                if write_frame_locked(&writer, &Frame::Heartbeat, max_frame).is_err() {
                    return; // the main loop will notice the broken link
                }
            }
        })
    };

    let outcome = (|| -> io::Result<()> {
        loop {
            let reply = match read_net_frame(&mut reader, cfg.max_frame)? {
                Frame::MapTask { epoch, task } => {
                    let started = Instant::now();
                    let run = catch_unwind(AssertUnwindSafe(|| on_map(task)))
                        .unwrap_or_else(|p| Err(Error::WorkerPanicked(panic_message(p.as_ref()))));
                    match run {
                        Ok(o) => Frame::MapOut {
                            epoch,
                            task,
                            emitted: o.emitted,
                            shuffled: o.shuffled,
                            payloads: o.payloads,
                            task_nanos: started.elapsed().as_nanos() as u64,
                            buckets: o.buckets,
                        },
                        Err(error) => Frame::TaskErr { epoch, task, error },
                    }
                }
                Frame::ReduceTask {
                    epoch,
                    task,
                    chunks,
                } => {
                    let started = Instant::now();
                    let run = catch_unwind(AssertUnwindSafe(|| on_reduce(task, &chunks)))
                        .unwrap_or_else(|p| Err(Error::WorkerPanicked(panic_message(p.as_ref()))));
                    match run {
                        Ok(out) => Frame::ReduceOut {
                            epoch,
                            task,
                            task_nanos: started.elapsed().as_nanos() as u64,
                            out,
                        },
                        Err(error) => Frame::TaskErr { epoch, task, error },
                    }
                }
                Frame::Heartbeat => continue,
                Frame::End => return Ok(()),
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unexpected frame from coordinator: {other:?}"),
                    ))
                }
            };
            write_frame_locked(&writer, &reply, cfg.max_frame)?;
        }
    })();
    stop.store(true, Ordering::SeqCst);
    let _ = hb_thread.join();
    outcome
}

/// The worker side of a networked job: connect (and reconnect, under the
/// retry budget) to the coordinator and serve tasks until it ends the job.
/// Used through [`Engine::run_worker`](crate::Engine::run_worker).
pub(crate) fn worker_loop(
    addr: SocketAddr,
    cfg: &NetConfig,
    on_map: &dyn Fn(u64) -> Result<MapTaskOut>,
    on_reduce: &WorkerReduceFn<'_>,
) -> Result<()> {
    // One global budget across the whole job — a link that flakes on every
    // exchange must not live forever by resetting its counter.
    let mut attempts: u32 = 0;
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => match serve_coordinator(stream, cfg, on_map, on_reduce) {
                Ok(()) => return Ok(()),
                Err(e) => {
                    if attempts >= cfg.retry.max_retries {
                        return Err(Error::PeerUnreachable(format!(
                            "coordinator {addr}: link failed ({e}) with the reconnect budget spent"
                        )));
                    }
                }
            },
            Err(e) => {
                if attempts >= cfg.retry.max_retries {
                    return Err(Error::PeerUnreachable(format!(
                        "coordinator {addr}: {e} after {attempts} reconnect attempts"
                    )));
                }
            }
        }
        thread::sleep(cfg.retry.backoff(attempts));
        attempts += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(f: &Frame) -> Frame {
        let mut wire = Vec::new();
        write_net_frame(&mut wire, f, 1 << 20).unwrap();
        let got = read_net_frame(&mut wire.as_slice(), 1 << 20).unwrap();
        assert_eq!(&got, f);
        got
    }

    #[test]
    fn every_frame_kind_roundtrips() {
        roundtrip(&Frame::Hello {
            version: NET_PROTOCOL_VERSION,
            fingerprint: 0xDEAD_BEEF,
        });
        roundtrip(&Frame::Heartbeat);
        roundtrip(&Frame::MapTask { epoch: 3, task: 7 });
        roundtrip(&Frame::MapOut {
            epoch: 3,
            task: 7,
            emitted: 100,
            shuffled: 10,
            payloads: 4,
            task_nanos: 123_456,
            buckets: vec![vec![], vec![1, 2, 3], vec![0xFF; 70]],
        });
        roundtrip(&Frame::ReduceTask {
            epoch: 4,
            task: 0,
            chunks: vec![vec![9; 5], vec![]],
        });
        roundtrip(&Frame::ReduceOut {
            epoch: 4,
            task: 0,
            task_nanos: 1,
            out: vec![1, 0, 255],
        });
        for error in [
            Error::Decode("bad".into()),
            Error::ResourceExhausted("mem".into()),
            Error::DeadlineExceeded("2s".into()),
            Error::Cancelled("drain".into()),
            Error::WorkerPanicked("boom".into()),
            Error::Worker("other".into()),
            Error::PeerUnreachable("10.0.0.1:1".into()),
            Error::PeerTimedOut("w3".into()),
        ] {
            roundtrip(&Frame::TaskErr {
                epoch: 9,
                task: 2,
                error,
            });
        }
        roundtrip(&Frame::End);
    }

    #[test]
    fn oversized_frames_are_rejected_on_both_sides() {
        let fat = Frame::ReduceOut {
            epoch: 1,
            task: 0,
            task_nanos: 0,
            out: vec![0; 4096],
        };
        // Write side: refuses to transmit.
        let mut sink = Vec::new();
        let err = write_net_frame(&mut sink, &fat, 64).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(sink.is_empty(), "nothing may hit the wire");
        // Read side: a hostile length prefix is rejected before allocation.
        let mut wire = Vec::new();
        write_varint(&mut wire, u64::MAX);
        let err = read_net_frame(&mut wire.as_slice(), 64).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut payload = Vec::new();
        Frame::Heartbeat.encode(&mut payload);
        payload.push(0);
        assert!(matches!(
            Frame::decode(&payload),
            Err(Error::Decode(m)) if m.contains("trailing")
        ));
    }
}
