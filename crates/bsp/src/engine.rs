//! The BSP engine: parallel map, optional combine, byte shuffle, parallel
//! reduce — one round of communication (Alg. 1 of the paper).

use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use parking_lot::Mutex;

use crate::codec::Codec;
use crate::error::{Error, Result};
use crate::metrics::JobMetrics;

/// Engine configuration: degree of parallelism.
///
/// `workers` is the number of threads running map/reduce tasks (the paper's
/// executor cores); `reducers` the number of shuffle buckets (reduce tasks).
#[derive(Debug, Clone, Copy)]
pub struct Engine {
    workers: usize,
    reducers: usize,
}

/// Multiply-xor hash (Fx-style) used for shuffle routing.
#[derive(Default)]
struct RouteHasher {
    h: u64,
}

impl Hasher for RouteHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.h = (self.h.rotate_left(5) ^ u64::from(b)).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
        }
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.h = (self.h.rotate_left(5) ^ u64::from(v)).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.h = (self.h.rotate_left(5) ^ v).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // Final avalanche so that low bits depend on high bits (we bucket by
        // modulus).
        let mut x = self.h;
        x ^= x >> 33;
        x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
        x ^= x >> 33;
        x
    }
}

/// Shuffle bucket of a key.
#[inline]
pub fn bucket_of<K: Hash>(key: &K, buckets: usize) -> usize {
    let mut h = RouteHasher::default();
    key.hash(&mut h);
    (h.finish() % buckets as u64) as usize
}

type CombineMap<K, CK> =
    std::collections::HashMap<(K, CK), u64, std::hash::BuildHasherDefault<RouteHasher>>;
type GroupMap<K, V> =
    std::collections::HashMap<K, Vec<V>, std::hash::BuildHasherDefault<RouteHasher>>;

struct MapTaskOut {
    buckets: Vec<Vec<u8>>,
    emitted: u64,
    shuffled: u64,
}

impl Engine {
    /// An engine with `workers` threads and as many reduce buckets.
    pub fn new(workers: usize) -> Engine {
        let workers = workers.max(1);
        Engine {
            workers,
            reducers: workers,
        }
    }

    /// Overrides the number of reduce buckets.
    pub fn with_reducers(mut self, reducers: usize) -> Engine {
        self.reducers = reducers.max(1);
        self
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Number of reduce buckets.
    pub fn reducers(&self) -> usize {
        self.reducers
    }

    /// Runs a map → shuffle → reduce job without a combiner.
    ///
    /// The mapper is invoked once per input record and emits `(key, value)`
    /// pairs; the reducer is invoked once per distinct key with all its
    /// values. Output order is unspecified.
    pub fn map_reduce<I, K, V, O, MF, RF>(
        &self,
        parts: &[&[I]],
        map: MF,
        reduce: RF,
    ) -> Result<(Vec<O>, JobMetrics)>
    where
        I: Sync,
        K: Codec + Hash + Eq + Send,
        V: Codec + Send,
        O: Send,
        MF: Fn(&I, &mut dyn FnMut(K, V)) -> Result<()> + Sync,
        RF: Fn(&K, Vec<V>, &mut dyn FnMut(O)) -> Result<()> + Sync,
    {
        let mut metrics = JobMetrics::default();

        // ---- map phase ----
        let t0 = Instant::now();
        let reducers = self.reducers;
        let outs = self.run_tasks(parts.len(), |t| {
            let mut out = MapTaskOut {
                buckets: vec![Vec::new(); reducers],
                emitted: 0,
                shuffled: 0,
            };
            for item in parts[t] {
                let mut emit = |k: K, v: V| {
                    let b = bucket_of(&k, reducers);
                    k.encode(&mut out.buckets[b]);
                    v.encode(&mut out.buckets[b]);
                    out.emitted += 1;
                    out.shuffled += 1;
                };
                map(item, &mut emit)?;
            }
            Ok(out)
        })?;
        metrics.map_nanos = t0.elapsed().as_nanos() as u64;

        let chunks = self.regroup(outs, &mut metrics);

        // ---- reduce phase ----
        let t1 = Instant::now();
        let decode_group = |t: usize| -> Result<GroupMap<K, V>> {
            let mut groups: GroupMap<K, V> = GroupMap::default();
            for chunk in &chunks[t] {
                let mut slice = chunk.as_slice();
                while !slice.is_empty() {
                    let k = K::decode(&mut slice)?;
                    let v = V::decode(&mut slice)?;
                    groups.entry(k).or_default().push(v);
                }
            }
            Ok(groups)
        };
        let outputs = self.run_tasks(self.reducers, |t| {
            let groups = decode_group(t)?;
            let mut out: Vec<O> = Vec::new();
            for (k, vs) in groups {
                let mut emit = |o: O| out.push(o);
                reduce(&k, vs, &mut emit)?;
            }
            Ok(out)
        })?;
        metrics.reduce_nanos = t1.elapsed().as_nanos() as u64;

        let mut flat = Vec::new();
        for o in outputs {
            flat.extend(o);
        }
        metrics.output_records = flat.len() as u64;
        Ok((flat, metrics))
    }

    /// Runs a map → combine → shuffle → reduce job.
    ///
    /// The combiner is MapReduce-style *weighted deduplication*: the mapper
    /// emits `(key, payload, weight)` triples, and triples with identical
    /// `(key, payload)` within one map task are merged by summing weights
    /// before serialization. The reducer receives, per key, all distinct
    /// payloads with their total weights (payloads from different map tasks
    /// are merged reduce-side as well).
    ///
    /// This is exactly the aggregation D-CAND applies to identical NFAs
    /// (Sec. VI-A) and MG-FSM/LASH apply to identical rewritten sequences.
    pub fn map_combine_reduce<I, K, CK, O, MF, RF>(
        &self,
        parts: &[&[I]],
        map: MF,
        reduce: RF,
    ) -> Result<(Vec<O>, JobMetrics)>
    where
        I: Sync,
        K: Codec + Hash + Eq + Send,
        CK: Codec + Hash + Eq + Send,
        O: Send,
        MF: Fn(&I, &mut dyn FnMut(K, CK, u64)) -> Result<()> + Sync,
        RF: Fn(&K, Vec<(CK, u64)>, &mut dyn FnMut(O)) -> Result<()> + Sync,
    {
        let mut metrics = JobMetrics::default();

        // ---- map + combine phase ----
        let t0 = Instant::now();
        let reducers = self.reducers;
        let outs = self.run_tasks(parts.len(), |t| {
            let mut agg: CombineMap<K, CK> = CombineMap::default();
            let mut emitted = 0u64;
            for item in parts[t] {
                let mut emit = |k: K, ck: CK, w: u64| {
                    emitted += 1;
                    *agg.entry((k, ck)).or_insert(0) += w;
                };
                map(item, &mut emit)?;
            }
            let mut out = MapTaskOut {
                buckets: vec![Vec::new(); reducers],
                emitted,
                shuffled: 0,
            };
            for ((k, ck), w) in agg {
                let b = bucket_of(&k, reducers);
                let buf = &mut out.buckets[b];
                k.encode(buf);
                ck.encode(buf);
                w.encode(buf);
                out.shuffled += 1;
            }
            Ok(out)
        })?;
        metrics.map_nanos = t0.elapsed().as_nanos() as u64;

        let chunks = self.regroup(outs, &mut metrics);

        // ---- reduce phase ----
        let t1 = Instant::now();
        let outputs = self.run_tasks(self.reducers, |t| {
            // Merge duplicates across map tasks, then group by key.
            let mut agg: CombineMap<K, CK> = CombineMap::default();
            for chunk in &chunks[t] {
                let mut slice = chunk.as_slice();
                while !slice.is_empty() {
                    let k = K::decode(&mut slice)?;
                    let ck = CK::decode(&mut slice)?;
                    let w = u64::decode(&mut slice)?;
                    *agg.entry((k, ck)).or_insert(0) += w;
                }
            }
            let mut groups: GroupMap<K, (CK, u64)> = GroupMap::default();
            for ((k, ck), w) in agg {
                groups.entry(k).or_default().push((ck, w));
            }
            let mut out: Vec<O> = Vec::new();
            for (k, vs) in groups {
                let mut emit = |o: O| out.push(o);
                reduce(&k, vs, &mut emit)?;
            }
            Ok(out)
        })?;
        metrics.reduce_nanos = t1.elapsed().as_nanos() as u64;

        let mut flat = Vec::new();
        for o in outputs {
            flat.extend(o);
        }
        metrics.output_records = flat.len() as u64;
        Ok((flat, metrics))
    }

    /// Runs `n` independent tasks on the worker pool, collecting results.
    /// The first error aborts the job.
    fn run_tasks<T, F>(&self, n: usize, task: F) -> Result<Vec<T>>
    where
        T: Send,
        F: Fn(usize) -> Result<T> + Sync,
    {
        let next = AtomicUsize::new(0);
        let results: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(n));
        let failure: Mutex<Option<Error>> = Mutex::new(None);
        crossbeam::thread::scope(|s| {
            for _ in 0..self.workers.min(n.max(1)) {
                s.spawn(|_| loop {
                    if failure.lock().is_some() {
                        return;
                    }
                    let t = next.fetch_add(1, Ordering::Relaxed);
                    if t >= n {
                        return;
                    }
                    match task(t) {
                        Ok(out) => results.lock().push((t, out)),
                        Err(e) => {
                            let mut f = failure.lock();
                            if f.is_none() {
                                *f = Some(e);
                            }
                            return;
                        }
                    }
                });
            }
        })
        .expect("worker thread panicked");
        if let Some(e) = failure.into_inner() {
            return Err(e);
        }
        let mut rs = results.into_inner();
        rs.sort_by_key(|(t, _)| *t);
        Ok(rs.into_iter().map(|(_, t)| t).collect())
    }

    /// Transposes map-task outputs into per-reducer chunk lists and fills in
    /// shuffle metrics.
    fn regroup(&self, outs: Vec<MapTaskOut>, metrics: &mut JobMetrics) -> Vec<Vec<Vec<u8>>> {
        let mut chunks: Vec<Vec<Vec<u8>>> = (0..self.reducers).map(|_| Vec::new()).collect();
        let mut reducer_bytes = vec![0u64; self.reducers];
        for out in outs {
            metrics.emitted_records += out.emitted;
            metrics.shuffle_records += out.shuffled;
            for (r, buf) in out.buckets.into_iter().enumerate() {
                reducer_bytes[r] += buf.len() as u64;
                if !buf.is_empty() {
                    chunks[r].push(buf);
                }
            }
        }
        metrics.shuffle_bytes = reducer_bytes.iter().sum();
        metrics.reducer_bytes = reducer_bytes;
        chunks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Distributed word count: the "hello world" of the model.
    #[test]
    fn word_count() {
        let data: Vec<Vec<u32>> = vec![vec![1, 2, 2], vec![2, 3], vec![1, 1, 1]];
        let parts: Vec<&[Vec<u32>]> = vec![&data[0..2], &data[2..3]];
        let engine = Engine::new(4);
        let (mut out, metrics) = engine
            .map_reduce(
                &parts,
                |seq: &Vec<u32>, emit: &mut dyn FnMut(u32, u64)| {
                    for &w in seq {
                        emit(w, 1);
                    }
                    Ok(())
                },
                |&k, vs: Vec<u64>, emit: &mut dyn FnMut((u32, u64))| {
                    emit((k, vs.into_iter().sum()));
                    Ok(())
                },
            )
            .unwrap();
        out.sort();
        assert_eq!(out, vec![(1, 4), (2, 3), (3, 1)]);
        assert_eq!(metrics.emitted_records, 8);
        assert_eq!(metrics.shuffle_records, 8);
        assert!(metrics.shuffle_bytes > 0);
        assert_eq!(metrics.output_records, 3);
    }

    #[test]
    fn combiner_reduces_shuffle_volume() {
        let data: Vec<Vec<u32>> = vec![vec![7; 100], vec![7; 100]];
        let parts: Vec<&[Vec<u32>]> = vec![&data[0..1], &data[1..2]];
        let engine = Engine::new(2);

        let map = |seq: &Vec<u32>, emit: &mut dyn FnMut(u32, u32, u64)| {
            for &w in seq {
                emit(w, w, 1);
            }
            Ok(())
        };
        let reduce = |&k: &u32, vs: Vec<(u32, u64)>, emit: &mut dyn FnMut((u32, u64))| {
            let total = vs.iter().map(|(_, w)| w).sum();
            emit((k, total));
            Ok(())
        };
        let (out, metrics) = engine.map_combine_reduce(&parts, map, reduce).unwrap();
        assert_eq!(out, vec![(7, 200)]);
        assert_eq!(metrics.emitted_records, 200);
        // Each map task combines its 100 identical records into one.
        assert_eq!(metrics.shuffle_records, 2);
        assert!(metrics.combine_ratio() > 99.0);
    }

    #[test]
    fn reducer_sees_all_values_of_a_key_exactly_once() {
        let data: Vec<u32> = (0..1000).collect();
        let parts: Vec<&[u32]> = data.chunks(37).collect();
        let engine = Engine::new(3).with_reducers(5);
        let (mut out, metrics) = engine
            .map_reduce(
                &parts,
                |&x: &u32, emit: &mut dyn FnMut(u32, u32)| {
                    emit(x % 10, x);
                    Ok(())
                },
                |&k, vs: Vec<u32>, emit: &mut dyn FnMut((u32, usize, u64))| {
                    emit((k, vs.len(), vs.iter().map(|&v| u64::from(v)).sum()));
                    Ok(())
                },
            )
            .unwrap();
        out.sort();
        assert_eq!(out.len(), 10);
        for (k, n, sum) in out {
            assert_eq!(n, 100);
            // sum of k, k+10, ..., k+990
            let expect: u64 = (0..100).map(|i| u64::from(k) + 10 * i).sum();
            assert_eq!(sum, expect);
        }
        assert_eq!(metrics.reducer_bytes.len(), 5);
    }

    #[test]
    fn mapper_error_aborts_job() {
        let data = vec![1u32, 2, 3];
        let parts: Vec<&[u32]> = vec![&data];
        let engine = Engine::new(2);
        let err = engine
            .map_reduce(
                &parts,
                |&x: &u32, _emit: &mut dyn FnMut(u32, u32)| {
                    if x == 2 {
                        Err(Error::ResourceExhausted("boom".into()))
                    } else {
                        Ok(())
                    }
                },
                |_k: &u32, _vs: Vec<u32>, _emit: &mut dyn FnMut(u32)| Ok(()),
            )
            .unwrap_err();
        assert!(matches!(err, Error::ResourceExhausted(_)));
    }

    #[test]
    fn reducer_error_aborts_job() {
        let data = vec![1u32];
        let parts: Vec<&[u32]> = vec![&data];
        let engine = Engine::new(2);
        let err = engine
            .map_reduce(
                &parts,
                |&x: &u32, emit: &mut dyn FnMut(u32, u32)| {
                    emit(x, x);
                    Ok(())
                },
                |_k: &u32, _vs: Vec<u32>, _emit: &mut dyn FnMut(u32)| {
                    Err(Error::Worker("reduce failed".into()))
                },
            )
            .unwrap_err();
        assert!(matches!(err, Error::Worker(_)));
    }

    #[test]
    fn empty_input() {
        let parts: Vec<&[u32]> = vec![];
        let engine = Engine::new(2);
        let (out, metrics) = engine
            .map_reduce(
                &parts,
                |&x: &u32, emit: &mut dyn FnMut(u32, u32)| {
                    emit(x, x);
                    Ok(())
                },
                |&k: &u32, _vs: Vec<u32>, emit: &mut dyn FnMut(u32)| {
                    emit(k);
                    Ok(())
                },
            )
            .unwrap();
        assert!(out.is_empty());
        assert_eq!(metrics.shuffle_bytes, 0);
    }

    #[test]
    fn bucket_routing_is_stable_and_spread() {
        let b1 = bucket_of(&42u32, 8);
        let b2 = bucket_of(&42u32, 8);
        assert_eq!(b1, b2);
        let mut seen = std::collections::HashSet::new();
        for k in 0u32..64 {
            seen.insert(bucket_of(&k, 8));
        }
        assert!(
            seen.len() >= 6,
            "keys should spread over most buckets: {seen:?}"
        );
    }

    #[test]
    fn results_identical_across_worker_counts() {
        let data: Vec<u32> = (0..500).collect();
        let parts: Vec<&[u32]> = data.chunks(23).collect();
        let run = |workers| {
            let engine = Engine::new(workers);
            let (mut out, _) = engine
                .map_reduce(
                    &parts,
                    |&x: &u32, emit: &mut dyn FnMut(u32, u64)| {
                        emit(x % 7, u64::from(x));
                        Ok(())
                    },
                    |&k, vs: Vec<u64>, emit: &mut dyn FnMut((u32, u64))| {
                        emit((k, vs.into_iter().sum()));
                        Ok(())
                    },
                )
                .unwrap();
            out.sort();
            out
        };
        assert_eq!(run(1), run(8));
    }
}
