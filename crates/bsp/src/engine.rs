//! The BSP engine: parallel map, optional combine, byte shuffle, parallel
//! reduce — one round of communication (Alg. 1 of the paper).
//!
//! # Hot-path layout
//!
//! Both job shapes hand the mapper a whole partition (`Fn(&[I], …)`), so
//! per-partition scratch (pivot-search tables, encode buffers) is created
//! once per map task instead of once per record. Keys are *encoded once*
//! and everything downstream works on the encoded bytes: the routing
//! bucket comes from a word-at-a-time hash of the key bytes reduced by a
//! multiply-shift (no modulo bias, no re-hash), and the combiner keys its
//! open-addressing table on `(key bytes, payload)` with that same hash
//! mixed once — never a byte-at-a-time `Hasher` walk per probe.
//!
//! The combining shuffle additionally *interns payloads*: each map task's
//! bucket chunk starts with a dictionary of distinct payload byte strings,
//! and records reference payloads by local index. D-SEQ ships one
//! rewritten sequence to every pivot partition — within a bucket the
//! payload bytes are written once, not once per pivot — and D-CAND's
//! aggregated NFAs dedup the same way. Output buffers are sized exactly
//! before writing (one counting pass over a linear bucket scatter, then
//! one copy pass), so the map side performs no growth reallocation.

use std::marker::PhantomData;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

use crossbeam::deque::{Injector, Stealer, Worker as DequeWorker};
use desq_core::mining::{panic_message, CancelToken};
use parking_lot::Mutex;

use crate::codec::{read_varint, varint_len, write_varint, Codec};
use crate::error::{Error, Result};
use crate::metrics::JobMetrics;
use crate::transport::{NetConfig, PhaseStats, ShuffleTransport};

/// Engine configuration: degree of parallelism plus an optional
/// cancellation token.
///
/// `workers` is the number of threads running map/reduce tasks (the paper's
/// executor cores); `reducers` the number of shuffle buckets (reduce tasks).
///
/// # Failure domains
///
/// Every map and reduce task body runs under `catch_unwind`: a panicking
/// task marks the job's [`CancelToken`] (when one is attached), the
/// remaining workers stop at their next task boundary, and the job returns
/// [`Error::WorkerPanicked`] instead of killing the process. A token
/// attached with [`with_cancel`](Engine::with_cancel) is polled between
/// tasks; an expired deadline or external cancellation aborts the job with
/// the token's [`stop_reason`](CancelToken::stop_reason).
#[derive(Debug, Clone)]
pub struct Engine {
    workers: usize,
    reducers: usize,
    cancel: Option<CancelToken>,
}

use desq_core::fx::{mix_hashes as mix, ProbeTable};

// The canonical homes of the byte-hashing primitives are in
// `desq_core::fx` since PR 5 (the flat candidate-counting sink shares
// them); these re-exports keep the historical `desq_bsp` paths working.
pub use desq_core::fx::{bucket_of, hash_bytes};

/// One combined map-side record: its mixed hash, routing bucket, interned
/// payload id, key bytes (an arena range) and accumulated weight.
struct CombineEntry {
    hash: u64,
    bucket: u32,
    payload: u32,
    key_start: u32,
    key_end: u32,
    weight: u64,
}

/// Map-side emitter of [`Engine::map_combine_reduce`].
///
/// [`emit`](Combiner::emit) performs MapReduce-style *weighted
/// deduplication*: triples with identical `(key, payload)` within one map
/// task are merged by summing weights before serialization. The payload is
/// an opaque pre-encoded byte string — callers serialize it **once** per
/// logical value (e.g. one rewritten sequence shared by many pivot keys)
/// and pass the same slice to every `emit`; the combiner interns it so
/// each bucket chunk stores the bytes at most once.
pub struct Combiner<K> {
    reducers: usize,
    /// Payload intern table: hash → payload id.
    payload_table: ProbeTable,
    payload_hashes: Vec<u64>,
    /// Payload `i` occupies `payload_data[payload_ends[i - 1]..payload_ends[i]]`.
    payload_ends: Vec<u32>,
    payload_data: Vec<u8>,
    /// Combine table: mixed hash → entry index.
    entry_table: ProbeTable,
    entries: Vec<CombineEntry>,
    key_data: Vec<u8>,
    key_buf: Vec<u8>,
    emitted: u64,
    _key: PhantomData<K>,
}

impl<K: Codec> Combiner<K> {
    fn new(reducers: usize) -> Combiner<K> {
        Combiner {
            reducers,
            payload_table: ProbeTable::new(),
            payload_hashes: Vec::new(),
            payload_ends: Vec::new(),
            payload_data: Vec::new(),
            entry_table: ProbeTable::new(),
            entries: Vec::new(),
            key_data: Vec::new(),
            key_buf: Vec::new(),
            emitted: 0,
            _key: PhantomData,
        }
    }

    #[inline]
    fn payload_bytes(&self, id: u32) -> &[u8] {
        let start = if id == 0 {
            0
        } else {
            self.payload_ends[id as usize - 1] as usize
        };
        &self.payload_data[start..self.payload_ends[id as usize] as usize]
    }

    /// Emits one `(key, payload, weight)` triple. The key is encoded and
    /// hashed exactly once; the payload bytes are interned by content.
    pub fn emit(&mut self, key: &K, payload: &[u8], weight: u64) {
        self.emitted += 1;
        self.key_buf.clear();
        key.encode(&mut self.key_buf);
        let khash = hash_bytes(&self.key_buf);
        let bucket = bucket_of(khash, self.reducers) as u32;

        // Intern the payload.
        let phash = hash_bytes(payload);
        let (table, hashes) = (&mut self.payload_table, &self.payload_hashes);
        table.grow_if_needed(hashes.len(), |i| hashes[i as usize]);
        let payload_id = {
            let ends = &self.payload_ends;
            let data = &self.payload_data;
            let slice_of = |i: u32| {
                let start = if i == 0 {
                    0
                } else {
                    ends[i as usize - 1] as usize
                };
                &data[start..ends[i as usize] as usize]
            };
            match table.find(phash, |i| {
                hashes[i as usize] == phash && slice_of(i) == payload
            }) {
                Ok(i) => i,
                Err(slot) => {
                    // The u32 arena offsets and ids must not wrap (a map
                    // task would need > 4 GiB of distinct payload bytes).
                    assert!(
                        self.payload_data.len() + payload.len() <= u32::MAX as usize
                            && self.payload_hashes.len() < u32::MAX as usize,
                        "combiner payload arena exceeds the u32 offset range"
                    );
                    let id = self.payload_hashes.len() as u32;
                    self.payload_hashes.push(phash);
                    self.payload_data.extend_from_slice(payload);
                    self.payload_ends.push(self.payload_data.len() as u32);
                    table.insert(slot, id);
                    id
                }
            }
        };

        // Combine on (key bytes, payload id).
        let ehash = mix(khash, phash);
        let (table, entries) = (&mut self.entry_table, &mut self.entries);
        table.grow_if_needed(entries.len(), |i| entries[i as usize].hash);
        let key_buf = &self.key_buf;
        let key_data = &self.key_data;
        match table.find(ehash, |i| {
            let e = &entries[i as usize];
            e.hash == ehash
                && e.payload == payload_id
                && &key_data[e.key_start as usize..e.key_end as usize] == key_buf.as_slice()
        }) {
            Ok(i) => entries[i as usize].weight += weight,
            Err(slot) => {
                assert!(
                    self.key_data.len() + self.key_buf.len() <= u32::MAX as usize
                        && entries.len() < u32::MAX as usize,
                    "combiner key arena exceeds the u32 offset range"
                );
                let key_start = self.key_data.len() as u32;
                self.key_data.extend_from_slice(&self.key_buf);
                entries.push(CombineEntry {
                    hash: ehash,
                    bucket,
                    payload: payload_id,
                    key_start,
                    key_end: self.key_data.len() as u32,
                    weight,
                });
                table.insert(slot, entries.len() as u32 - 1);
            }
        }
    }

    /// Serializes the combined records into per-bucket chunks.
    ///
    /// Per bucket, a linear scatter groups the entries, a counting pass
    /// assigns bucket-local payload ids (first-use order) and sums the
    /// exact byte size, and a copy pass writes the chunk into a buffer of
    /// exactly that capacity:
    /// `varint(#payloads), (varint(len), bytes)*, (key bytes,
    /// varint(payload id), varint(weight))*`.
    fn into_task_out(self) -> MapTaskOut {
        let reducers = self.reducers;
        // Linear bucket scatter (stable: preserves emit order per bucket).
        let mut counts = vec![0u32; reducers];
        for e in &self.entries {
            counts[e.bucket as usize] += 1;
        }
        let mut starts = vec![0u32; reducers + 1];
        for b in 0..reducers {
            starts[b + 1] = starts[b] + counts[b];
        }
        let mut order = vec![0u32; self.entries.len()];
        let mut cursor = starts.clone();
        for (i, e) in self.entries.iter().enumerate() {
            let c = &mut cursor[e.bucket as usize];
            order[*c as usize] = i as u32;
            *c += 1;
        }

        // Bucket-local payload ids, reset per bucket via epochs.
        let mut local_id = vec![0u32; self.payload_hashes.len()];
        let mut local_epoch = vec![u32::MAX; self.payload_hashes.len()];
        let mut plist: Vec<u32> = Vec::new();

        let mut buckets: Vec<Vec<u8>> = Vec::with_capacity(reducers);
        let mut payloads_written = 0u64;
        for b in 0..reducers {
            let entries = &order[starts[b] as usize..starts[b + 1] as usize];
            if entries.is_empty() {
                buckets.push(Vec::new());
                continue;
            }
            // Counting pass: local payload directory + exact chunk size.
            plist.clear();
            let mut dict_bytes = 0usize;
            let mut rec_bytes = 0usize;
            for &i in entries {
                let e = &self.entries[i as usize];
                let p = e.payload as usize;
                if local_epoch[p] != b as u32 {
                    local_epoch[p] = b as u32;
                    local_id[p] = plist.len() as u32;
                    plist.push(e.payload);
                    let len = self.payload_bytes(e.payload).len();
                    dict_bytes += varint_len(len as u64) + len;
                }
                rec_bytes += (e.key_end - e.key_start) as usize
                    + varint_len(u64::from(local_id[p]))
                    + varint_len(e.weight);
            }
            let total = varint_len(plist.len() as u64) + dict_bytes + rec_bytes;
            let mut buf = Vec::with_capacity(total);
            write_varint(&mut buf, plist.len() as u64);
            for &p in &plist {
                let bytes = self.payload_bytes(p);
                write_varint(&mut buf, bytes.len() as u64);
                buf.extend_from_slice(bytes);
            }
            for &i in entries {
                let e = &self.entries[i as usize];
                buf.extend_from_slice(&self.key_data[e.key_start as usize..e.key_end as usize]);
                write_varint(&mut buf, u64::from(local_id[e.payload as usize]));
                write_varint(&mut buf, e.weight);
            }
            debug_assert_eq!(buf.len(), total, "combine chunk size miscounted");
            payloads_written += plist.len() as u64;
            buckets.push(buf);
        }
        MapTaskOut {
            buckets,
            emitted: self.emitted,
            shuffled: self.entries.len() as u64,
            payloads: payloads_written,
        }
    }
}

/// The byte-space output of one map task: one serialized chunk per reduce
/// bucket plus the combine accounting. This is the unit that crosses a
/// [`ShuffleTransport`] — already fully encoded, so shipping it over a
/// socket is a plain byte copy.
pub struct MapTaskOut {
    /// One encoded chunk per reduce bucket (an empty bucket is an empty
    /// chunk). Always exactly [`Engine::reducers`] entries.
    pub buckets: Vec<Vec<u8>>,
    /// Records emitted by the mapper, before combining.
    pub emitted: u64,
    /// Records written to the shuffle, after combining.
    pub shuffled: u64,
    /// Distinct payload byte strings interned across the bucket chunks
    /// (0 for the plain map-reduce shape).
    pub payloads: u64,
}

/// One decoded (still borrowed) combine record during reduce-side merging.
struct ReduceRec<'c> {
    /// Mixed (key, payload) hash — the merge-table key.
    hash: u64,
    /// Key-bytes hash, kept so grouping can sort on a `u64` first and only
    /// fall back to byte comparison for equal hashes.
    khash: u64,
    key: &'c [u8],
    payload: &'c [u8],
    weight: u64,
}

/// Decodes one reduce bucket's shuffle chunks, merges duplicate
/// `(key, payload)` records across map tasks on the raw bytes, and sorts
/// the result into key groups — the reduce-side merge step, shared by the
/// in-process scheduler and the networked per-bucket reduce.
fn merge_bucket_recs<'c, K: Codec>(chunks: &'c [Vec<u8>]) -> Result<Vec<ReduceRec<'c>>> {
    let mut recs: Vec<ReduceRec<'c>> = Vec::new();
    let mut table = ProbeTable::new();
    let mut payloads: Vec<&[u8]> = Vec::new();
    for chunk in chunks {
        let mut slice = chunk.as_slice();
        // Payload dictionary of this chunk.
        let np = read_varint(&mut slice)? as usize;
        if np > slice.len() {
            return Err(Error::Decode(format!(
                "payload dictionary: count {np} exceeds input"
            )));
        }
        payloads.clear();
        for _ in 0..np {
            let len = read_varint(&mut slice)? as usize;
            if len > slice.len() {
                return Err(Error::Decode(format!(
                    "payload: length {len} exceeds input"
                )));
            }
            let (head, rest) = slice.split_at(len);
            payloads.push(head);
            slice = rest;
        }
        while !slice.is_empty() {
            let before = slice;
            K::decode(&mut slice)?;
            let key = &before[..before.len() - slice.len()];
            let pid = read_varint(&mut slice)? as usize;
            let payload = *payloads
                .get(pid)
                .ok_or_else(|| Error::Decode(format!("payload id {pid} out of range")))?;
            let weight = read_varint(&mut slice)?;
            let khash = hash_bytes(key);
            let hash = mix(khash, hash_bytes(payload));
            table.grow_if_needed(recs.len(), |i| recs[i as usize].hash);
            match table.find(hash, |i| {
                let r = &recs[i as usize];
                r.hash == hash && r.key == key && r.payload == payload
            }) {
                Ok(i) => recs[i as usize].weight += weight,
                Err(slot) => {
                    recs.push(ReduceRec {
                        hash,
                        khash,
                        key,
                        payload,
                        weight,
                    });
                    table.insert(slot, recs.len() as u32 - 1);
                }
            }
        }
    }
    // Deterministic grouping: order by (key, payload), resolving most
    // comparisons on the precomputed key hash instead of the byte slices.
    recs.sort_unstable_by(|a, b| {
        a.khash
            .cmp(&b.khash)
            .then_with(|| a.key.cmp(b.key))
            .then_with(|| a.payload.cmp(b.payload))
    });
    Ok(recs)
}

/// Reduces one whole merged bucket to encoded output bytes — the
/// worker-side unit of the networked reduce phase: `varint(#outputs)`
/// followed by each output's encoding.
///
/// The per-bucket `state` is created fresh here and dropped with the call:
/// the payload slices handed to `reduce` borrow from *this call's* chunks,
/// so caches keyed on slice identity (D-SEQ's simulation-core cache) must
/// not outlive them.
pub(crate) fn reduce_bucket_bytes<K, O, S, IF, RF>(
    chunks: &[Vec<u8>],
    init: &IF,
    reduce: &RF,
) -> Result<Vec<u8>>
where
    K: Codec,
    O: Codec,
    IF: Fn() -> S,
    RF: Fn(&mut S, &K, &[(&[u8], u64)], &mut dyn FnMut(O)) -> Result<()>,
{
    #[cfg(feature = "failpoints")]
    desq_core::fault::point("bsp::reduce_merge")?;
    let recs = merge_bucket_recs::<K>(chunks)?;
    let mut out: Vec<O> = Vec::new();
    let mut state = init();
    let mut group_buf: Vec<(&[u8], u64)> = Vec::new();
    let mut i = 0;
    while i < recs.len() {
        let key = recs[i].key;
        let start = i;
        while i < recs.len() && recs[i].key == key {
            i += 1;
        }
        group_buf.clear();
        group_buf.extend(recs[start..i].iter().map(|r| (r.payload, r.weight)));
        let k = K::decode(&mut &key[..])?;
        let mut emit = |o: O| out.push(o);
        reduce(&mut state, &k, &group_buf, &mut emit)?;
    }
    let mut buf = Vec::new();
    write_varint(&mut buf, out.len() as u64);
    for o in &out {
        o.encode(&mut buf);
    }
    Ok(buf)
}

/// Decodes one bucket's [`reduce_bucket_bytes`] output, appending to `out`.
/// Rejects hostile counts before any allocation and trailing garbage after
/// the last output.
pub(crate) fn decode_bucket_outputs<O: Codec>(bytes: &[u8], out: &mut Vec<O>) -> Result<()> {
    let mut slice = bytes;
    let n = read_varint(&mut slice)? as usize;
    if n > slice.len() {
        return Err(Error::Decode(format!(
            "bucket output: count {n} exceeds input"
        )));
    }
    for _ in 0..n {
        out.push(O::decode(&mut slice)?);
    }
    if !slice.is_empty() {
        return Err(Error::Decode(format!(
            "bucket output: {} trailing bytes",
            slice.len()
        )));
    }
    Ok(())
}

impl Engine {
    /// An engine with `workers` threads and as many reduce buckets.
    pub fn new(workers: usize) -> Engine {
        let workers = workers.max(1);
        Engine {
            workers,
            reducers: workers,
            cancel: None,
        }
    }

    /// Overrides the number of reduce buckets.
    pub fn with_reducers(mut self, reducers: usize) -> Engine {
        self.reducers = reducers.max(1);
        self
    }

    /// Attaches a cancellation token: every job run on this engine polls it
    /// at task granularity and aborts with its stop reason once it trips.
    pub fn with_cancel(mut self, token: CancelToken) -> Engine {
        self.cancel = Some(token);
        self
    }

    /// Polls the attached token (if any), converting its stop reason.
    pub(crate) fn checkpoint(&self) -> Result<()> {
        match &self.cancel {
            Some(token) => token.checkpoint().map_err(Error::from),
            None => Ok(()),
        }
    }

    /// Records a caught panic on the attached token so co-operating layers
    /// observe the failure, and converts it into the job error.
    fn panicked(&self, payload: &(dyn std::any::Any + Send)) -> Error {
        let msg = panic_message(payload);
        if let Some(token) = &self.cancel {
            token.mark_panicked(&msg);
        }
        Error::WorkerPanicked(msg)
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Number of reduce buckets.
    pub fn reducers(&self) -> usize {
        self.reducers
    }

    /// Runs a map → shuffle → reduce job without a combiner.
    ///
    /// The mapper is invoked once per input *partition* (so per-task
    /// scratch hoists out of the per-record loop) and emits `(key, value)`
    /// pairs; the reducer is invoked once per distinct key with all its
    /// values, in a deterministic order (encoded-key lexicographic, values
    /// in map-task emission order). Output order across keys is
    /// unspecified.
    pub fn map_reduce<I, K, V, O, MF, RF>(
        &self,
        parts: &[&[I]],
        map: MF,
        reduce: RF,
    ) -> Result<(Vec<O>, JobMetrics)>
    where
        I: Sync,
        K: Codec + Send,
        V: Codec + Send,
        O: Send,
        MF: Fn(&[I], &mut dyn FnMut(K, V)) -> Result<()> + Sync,
        RF: Fn(&K, Vec<V>, &mut dyn FnMut(O)) -> Result<()> + Sync,
    {
        let mut metrics = JobMetrics::default();
        let max_task = AtomicU64::new(0);

        // ---- map phase ----
        let t0 = Instant::now();
        let reducers = self.reducers;
        let outs = self.run_tasks(
            parts.len(),
            |t| {
                let mut out = MapTaskOut {
                    buckets: vec![Vec::new(); reducers],
                    emitted: 0,
                    shuffled: 0,
                    payloads: 0,
                };
                let mut key_buf: Vec<u8> = Vec::new();
                let mut emit = |k: K, v: V| {
                    key_buf.clear();
                    k.encode(&mut key_buf);
                    let b = bucket_of(hash_bytes(&key_buf), reducers);
                    out.buckets[b].extend_from_slice(&key_buf);
                    v.encode(&mut out.buckets[b]);
                    out.emitted += 1;
                    out.shuffled += 1;
                };
                map(parts[t], &mut emit)?;
                Ok(out)
            },
            &max_task,
        )?;
        metrics.map_nanos = t0.elapsed().as_nanos() as u64;

        let chunks = self.regroup(outs, &mut metrics);

        // ---- reduce phase ----
        let t1 = Instant::now();
        let outputs = self.run_tasks(
            self.reducers,
            |t| {
                #[cfg(feature = "failpoints")]
                desq_core::fault::point("bsp::reduce_merge")?;
                // Decode records keeping the raw key bytes; group by them
                // (equal keys ⇔ equal encodings).
                let mut items: Vec<(&[u8], V)> = Vec::new();
                for chunk in &chunks[t] {
                    let mut slice = chunk.as_slice();
                    while !slice.is_empty() {
                        let before = slice;
                        K::decode(&mut slice)?;
                        let key = &before[..before.len() - slice.len()];
                        let v = V::decode(&mut slice)?;
                        items.push((key, v));
                    }
                }
                // Stable: values of one key stay in map-task emission order.
                items.sort_by(|a, b| a.0.cmp(b.0));
                let mut out: Vec<O> = Vec::new();
                let mut iter = items.into_iter().peekable();
                while let Some((key, v)) = iter.next() {
                    let mut vs = vec![v];
                    while let Some((k2, _)) = iter.peek() {
                        if *k2 != key {
                            break;
                        }
                        vs.push(iter.next().expect("peeked").1);
                    }
                    let k = K::decode(&mut &key[..])?;
                    let mut emit = |o: O| out.push(o);
                    reduce(&k, vs, &mut emit)?;
                }
                Ok(out)
            },
            &max_task,
        )?;
        metrics.reduce_nanos = t1.elapsed().as_nanos() as u64;
        metrics.max_task_nanos = max_task.into_inner();

        let mut flat = Vec::new();
        for o in outputs {
            flat.extend(o);
        }
        metrics.output_records = flat.len() as u64;
        metrics.cancelled = self.cancel.as_ref().is_some_and(CancelToken::is_stopped);
        Ok((flat, metrics))
    }

    /// Runs a map → combine → shuffle → reduce job.
    ///
    /// The mapper receives one input partition and a [`Combiner`]: it emits
    /// `(key, payload bytes, weight)` triples, where the payload is
    /// pre-encoded **once** by the caller (use the [`crate::codec`]
    /// helpers) and shared across emissions. Triples with identical
    /// `(key, payload)` within one map task are merged by summing weights
    /// before serialization, and payload byte strings are interned per
    /// bucket chunk.
    ///
    /// The reducer is invoked once per distinct key with all distinct
    /// payloads and their total weights (merged across map tasks), each
    /// payload a slice *borrowed from the shuffle buffers* — reducers
    /// decode without re-materializing owned records. Per key, payloads
    /// arrive in a deterministic (byte-lexicographic) order.
    ///
    /// This is exactly the aggregation D-CAND applies to identical NFAs
    /// (Sec. VI-A) and D-SEQ/LASH apply to identical rewritten sequences.
    pub fn map_combine_reduce<I, K, O, MF, RF>(
        &self,
        parts: &[&[I]],
        map: MF,
        reduce: RF,
    ) -> Result<(Vec<O>, JobMetrics)>
    where
        I: Sync,
        K: Codec + Send,
        O: Send,
        MF: Fn(&[I], &mut Combiner<K>) -> Result<()> + Sync,
        RF: Fn(&K, &[(&[u8], u64)], &mut dyn FnMut(O)) -> Result<()> + Sync,
    {
        self.map_combine_reduce_with(parts, map, || (), |(), k, vs, emit| reduce(k, vs, emit))
    }

    /// Like [`map_combine_reduce`](Self::map_combine_reduce), with
    /// *per-reduce-worker state*: `init` runs once per reduce worker thread
    /// (the MapReduce `setup()` analog) and the resulting state is threaded
    /// through every key group that worker executes.
    ///
    /// The reduce phase runs in two steps: buckets are decoded, merged and
    /// sorted in parallel, then the key groups of *all* buckets are batched
    /// into tasks scheduled by work stealing across the workers — one
    /// expensive key (a hot D-SEQ pivot) no longer pins a whole bucket to
    /// one thread. Output order is deterministic (identical to reducing
    /// each bucket sequentially) regardless of worker count or steal
    /// schedule; the task and steal counters land in
    /// [`JobMetrics::reduce_tasks`]/[`reduce_steals`](JobMetrics::reduce_steals).
    ///
    /// Use the state for caches that amortize work across key groups —
    /// D-SEQ keys its simulation-core cache on the identity of the borrowed
    /// payload slices, which are stable for the whole reduce phase (they
    /// borrow from the shuffle buffers, not from any per-task arena).
    pub fn map_combine_reduce_with<I, K, O, S, MF, IF, RF>(
        &self,
        parts: &[&[I]],
        map: MF,
        init: IF,
        reduce: RF,
    ) -> Result<(Vec<O>, JobMetrics)>
    where
        I: Sync,
        K: Codec + Send,
        O: Send,
        MF: Fn(&[I], &mut Combiner<K>) -> Result<()> + Sync,
        IF: Fn() -> S + Sync,
        RF: Fn(&mut S, &K, &[(&[u8], u64)], &mut dyn FnMut(O)) -> Result<()> + Sync,
    {
        let mut metrics = JobMetrics::default();
        let max_task = AtomicU64::new(0);

        // ---- map + combine phase ----
        let t0 = Instant::now();
        let reducers = self.reducers;
        let outs = self.run_tasks(
            parts.len(),
            |t| {
                let mut combiner = Combiner::new(reducers);
                map(parts[t], &mut combiner)?;
                Ok(combiner.into_task_out())
            },
            &max_task,
        )?;
        metrics.map_nanos = t0.elapsed().as_nanos() as u64;

        let chunks = self.regroup(outs, &mut metrics);

        // ---- reduce phase ----
        let t1 = Instant::now();
        // Step 1 (parallel, one task per bucket): decode the shuffle
        // chunks, merge duplicates across map tasks on the raw bytes, sort
        // into key groups.
        let buckets: Vec<Vec<ReduceRec<'_>>> = self.run_tasks(
            self.reducers,
            |t| {
                #[cfg(feature = "failpoints")]
                desq_core::fault::point("bsp::reduce_merge")?;
                merge_bucket_recs::<K>(&chunks[t])
            },
            &max_task,
        )?;

        // Step 2: cut every bucket into key groups, batch adjacent light
        // groups into tasks, and run the tasks under work stealing so a
        // heavy key group (a hot D-SEQ pivot) is balanced across workers
        // instead of pinning its whole bucket to one thread.
        let mut groups: Vec<(u32, u32, u32)> = Vec::new(); // (bucket, start, end)
        for (b, recs) in buckets.iter().enumerate() {
            let mut i = 0;
            while i < recs.len() {
                let key = recs[i].key;
                let start = i;
                while i < recs.len() && recs[i].key == key {
                    i += 1;
                }
                groups.push((b as u32, start as u32, i as u32));
            }
        }
        // A task closes at a bucket boundary (keeps output bookkeeping
        // simple), once it holds enough records to amortize a deque round
        // trip, or at a group-count cap so huge flocks of trivial keys
        // still split; a single heavy group always gets its own task.
        const RECS_PER_TASK: usize = 256;
        const GROUPS_PER_TASK: usize = 64;
        let mut tasks: Vec<std::ops::Range<usize>> = Vec::new();
        let mut start = 0usize;
        let mut recs_in = 0usize;
        for i in 0..groups.len() {
            let g = groups[i];
            recs_in += (g.2 - g.1) as usize;
            let bucket_ends = i + 1 == groups.len() || groups[i + 1].0 != g.0;
            if bucket_ends || recs_in >= RECS_PER_TASK || i + 1 - start >= GROUPS_PER_TASK {
                tasks.push(start..i + 1);
                start = i + 1;
                recs_in = 0;
            }
        }

        let nworkers = self.workers.min(tasks.len()).max(1);
        let injector: Injector<(usize, std::ops::Range<usize>)> = Injector::new();
        for (i, t) in tasks.into_iter().enumerate() {
            injector.push((i, t));
        }
        let locals: Vec<DequeWorker<(usize, std::ops::Range<usize>)>> =
            (0..nworkers).map(|_| DequeWorker::new_lifo()).collect();
        let stealers: Vec<Stealer<(usize, std::ops::Range<usize>)>> =
            locals.iter().map(DequeWorker::stealer).collect();
        let results: Mutex<Vec<(usize, Vec<O>)>> = Mutex::new(Vec::new());
        let failure: Mutex<Option<Error>> = Mutex::new(None);
        let counters: Mutex<(u64, u64)> = Mutex::new((0, 0)); // (tasks, steals)
        crossbeam::thread::scope(|s| {
            let (injector, stealers) = (&injector, &stealers);
            let (results, failure, counters) = (&results, &failure, &counters);
            let max_task = &max_task;
            let (buckets, groups, init, reduce) = (&buckets, &groups, &init, &reduce);
            for (wid, local) in locals.into_iter().enumerate() {
                s.spawn(move |_| {
                    let mut state = init();
                    let (mut ran, mut stole) = (0u64, 0u64);
                    let mut group_buf: Vec<(&[u8], u64)> = Vec::new();
                    loop {
                        if failure.lock().is_some() {
                            break;
                        }
                        if let Err(e) = self.checkpoint() {
                            let mut f = failure.lock();
                            if f.is_none() {
                                *f = Some(e);
                            }
                            break;
                        }
                        let next = local
                            .pop()
                            .or_else(|| injector.steal_batch_and_pop(&local).success())
                            .or_else(|| {
                                (1..nworkers).find_map(|i| {
                                    let got = stealers[(wid + i) % nworkers]
                                        .steal_batch_and_pop(&local)
                                        .success();
                                    stole += u64::from(got.is_some());
                                    got
                                })
                            });
                        // The task list is fixed (tasks never spawn tasks):
                        // finding nothing anywhere means every remaining
                        // task is already running on some worker — done.
                        let Some((ti, range)) = next else { break };
                        ran += 1;
                        let started = Instant::now();
                        let mut out: Vec<O> = Vec::new();
                        // The task body (user reduce code) runs under
                        // catch_unwind: one poisoned key group aborts the
                        // job instead of tearing the process down.
                        let run = catch_unwind(AssertUnwindSafe(|| -> Result<()> {
                            for &(b, gs, ge) in &groups[range] {
                                let recs = &buckets[b as usize][gs as usize..ge as usize];
                                group_buf.clear();
                                group_buf.extend(recs.iter().map(|r| (r.payload, r.weight)));
                                let k = K::decode(&mut &recs[0].key[..])?;
                                let mut emit = |o: O| out.push(o);
                                reduce(&mut state, &k, &group_buf, &mut emit)?;
                            }
                            Ok(())
                        }))
                        .unwrap_or_else(|payload| Err(self.panicked(payload.as_ref())));
                        max_task.fetch_max(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
                        match run {
                            Ok(()) => results.lock().push((ti, out)),
                            Err(e) => {
                                let mut f = failure.lock();
                                if f.is_none() {
                                    *f = Some(e);
                                }
                                break;
                            }
                        }
                    }
                    let mut c = counters.lock();
                    c.0 += ran;
                    c.1 += stole;
                });
            }
        })
        .map_err(|p| self.panicked(p.as_ref()))?;
        if let Some(e) = failure.into_inner() {
            return Err(e);
        }
        let (rtasks, rsteals) = counters.into_inner();
        metrics.reduce_tasks = rtasks;
        metrics.reduce_steals = rsteals;
        metrics.reduce_nanos = t1.elapsed().as_nanos() as u64;
        metrics.max_task_nanos = max_task.into_inner();

        // Deterministic output: tasks are numbered in (bucket, key) order,
        // so sorting by task index reproduces the sequential per-bucket
        // iteration exactly.
        let mut results = results.into_inner();
        results.sort_by_key(|&(ti, _)| ti);
        let mut flat = Vec::new();
        for (_, o) in results {
            flat.extend(o);
        }
        metrics.output_records = flat.len() as u64;
        metrics.cancelled = self.cancel.as_ref().is_some_and(CancelToken::is_stopped);
        Ok((flat, metrics))
    }

    /// Runs a map → combine → shuffle → reduce job over an explicit
    /// [`ShuffleTransport`] — the entry point for multi-process execution.
    ///
    /// Task *scheduling* moves behind the transport; task *semantics* stay
    /// here. [`transport::InProcess`](crate::transport::InProcess)
    /// reproduces the single-process result; a
    /// [`transport::NetCoordinator`](crate::transport::NetCoordinator)
    /// farms the same tasks out to worker processes running
    /// [`run_worker`](Self::run_worker) over the same partition list.
    ///
    /// Differences from [`map_combine_reduce_with`](Self::map_combine_reduce_with):
    /// outputs must be [`Codec`] (they cross a process boundary), and the
    /// reduce state is created *fresh per bucket* instead of once per
    /// worker thread — a remote bucket's payload slices borrow from chunk
    /// buffers that die with the task, so slice-identity caches must not
    /// outlive them. Output order is deterministic: buckets in order, key
    /// groups in the same (key, payload) order as the in-process path.
    pub fn map_combine_reduce_via<I, K, O, S, MF, IF, RF>(
        &self,
        transport: &dyn ShuffleTransport,
        parts: &[&[I]],
        map: MF,
        init: IF,
        reduce: RF,
    ) -> Result<(Vec<O>, JobMetrics)>
    where
        I: Sync,
        K: Codec + Send,
        O: Codec + Send,
        MF: Fn(&[I], &mut Combiner<K>) -> Result<()> + Sync,
        IF: Fn() -> S + Sync,
        RF: Fn(&mut S, &K, &[(&[u8], u64)], &mut dyn FnMut(O)) -> Result<()> + Sync,
    {
        let mut metrics = JobMetrics::default();
        let merge_stats = |metrics: &mut JobMetrics, s: &PhaseStats| {
            metrics.retried_tasks += s.retried_tasks;
            metrics.peer_timeouts += s.peer_timeouts;
            metrics.max_task_nanos = metrics.max_task_nanos.max(s.max_task_nanos);
        };

        // ---- map + combine phase ----
        let t0 = Instant::now();
        let reducers = self.reducers;
        let map_local = |t: usize| -> Result<MapTaskOut> {
            let mut combiner = Combiner::new(reducers);
            map(parts[t], &mut combiner)?;
            Ok(combiner.into_task_out())
        };
        let (outs, stats) = transport.map_phase(self, parts.len(), &map_local)?;
        metrics.map_nanos = t0.elapsed().as_nanos() as u64;
        merge_stats(&mut metrics, &stats);

        let chunks = self.regroup(outs, &mut metrics);

        // ---- reduce phase (one task per bucket) ----
        let t1 = Instant::now();
        let reduce_local = |_b: usize, chunks: &[Vec<u8>]| -> Result<Vec<u8>> {
            reduce_bucket_bytes::<K, O, S, IF, RF>(chunks, &init, &reduce)
        };
        let bucket_outs = {
            let (outs, stats) = transport.reduce_phase(self, chunks, &reduce_local)?;
            metrics.reduce_nanos = t1.elapsed().as_nanos() as u64;
            metrics.reduce_tasks = outs.len() as u64;
            merge_stats(&mut metrics, &stats);
            outs
        };

        let mut flat: Vec<O> = Vec::new();
        for bytes in &bucket_outs {
            decode_bucket_outputs::<O>(bytes, &mut flat)?;
        }
        metrics.output_records = flat.len() as u64;
        metrics.cancelled = self.cancel.as_ref().is_some_and(CancelToken::is_stopped);
        Ok((flat, metrics))
    }

    /// Serves one distributed job as a worker process: connects to the
    /// coordinator at `addr` (under `cfg.retry`), executes the map and
    /// reduce tasks it is assigned against this process's own copy of
    /// `parts` and the job closures, and returns when the coordinator ends
    /// the job.
    ///
    /// Every process in the job must derive the *same* partition list and
    /// closures (same corpus, same configuration) — only task ids and
    /// encoded bytes cross the wire. Returns [`Error::PeerUnreachable`]
    /// once the reconnect budget is spent.
    pub fn run_worker<I, K, O, S, MF, IF, RF>(
        &self,
        addr: std::net::SocketAddr,
        cfg: &NetConfig,
        parts: &[&[I]],
        map: MF,
        init: IF,
        reduce: RF,
    ) -> Result<()>
    where
        K: Codec,
        O: Codec,
        MF: Fn(&[I], &mut Combiner<K>) -> Result<()>,
        IF: Fn() -> S,
        RF: Fn(&mut S, &K, &[(&[u8], u64)], &mut dyn FnMut(O)) -> Result<()>,
    {
        let reducers = self.reducers;
        let on_map = |task: u64| -> Result<MapTaskOut> {
            let part = parts.get(task as usize).ok_or_else(|| {
                Error::Worker(format!(
                    "map task {task} out of range ({} partitions)",
                    parts.len()
                ))
            })?;
            let mut combiner = Combiner::new(reducers);
            map(part, &mut combiner)?;
            Ok(combiner.into_task_out())
        };
        let on_reduce = |_task: u64, chunks: &[Vec<u8>]| -> Result<Vec<u8>> {
            reduce_bucket_bytes::<K, O, S, IF, RF>(chunks, &init, &reduce)
        };
        crate::transport::worker_loop(addr, cfg, &on_map, &on_reduce)
    }

    /// Runs `n` independent tasks on the worker pool, collecting results.
    /// The first error (or caught panic, or cancellation) aborts the job;
    /// later tasks are abandoned cooperatively at task boundaries. The
    /// wall time of the slowest single task accumulates into `max_nanos`
    /// (the straggler that bounds the phase barrier).
    pub(crate) fn run_tasks<T, F>(&self, n: usize, task: F, max_nanos: &AtomicU64) -> Result<Vec<T>>
    where
        T: Send,
        F: Fn(usize) -> Result<T> + Sync,
    {
        let next = AtomicUsize::new(0);
        let results: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(n));
        let failure: Mutex<Option<Error>> = Mutex::new(None);
        let fail = |e: Error| {
            let mut f = failure.lock();
            if f.is_none() {
                *f = Some(e);
            }
        };
        crossbeam::thread::scope(|s| {
            for _ in 0..self.workers.min(n.max(1)) {
                s.spawn(|_| loop {
                    if failure.lock().is_some() {
                        return;
                    }
                    if let Err(e) = self.checkpoint() {
                        fail(e);
                        return;
                    }
                    let t = next.fetch_add(1, Ordering::Relaxed);
                    if t >= n {
                        return;
                    }
                    let started = Instant::now();
                    let run = catch_unwind(AssertUnwindSafe(|| task(t)));
                    max_nanos.fetch_max(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    match run {
                        Ok(Ok(out)) => results.lock().push((t, out)),
                        Ok(Err(e)) => {
                            fail(e);
                            return;
                        }
                        Err(payload) => {
                            fail(self.panicked(payload.as_ref()));
                            return;
                        }
                    }
                });
            }
        })
        .map_err(|p| self.panicked(p.as_ref()))?;
        if let Some(e) = failure.into_inner() {
            return Err(e);
        }
        let mut rs = results.into_inner();
        rs.sort_by_key(|(t, _)| *t);
        Ok(rs.into_iter().map(|(_, t)| t).collect())
    }

    /// Transposes map-task outputs into per-reducer chunk lists and fills in
    /// shuffle metrics.
    fn regroup(&self, outs: Vec<MapTaskOut>, metrics: &mut JobMetrics) -> Vec<Vec<Vec<u8>>> {
        let mut chunks: Vec<Vec<Vec<u8>>> = (0..self.reducers).map(|_| Vec::new()).collect();
        let mut reducer_bytes = vec![0u64; self.reducers];
        for out in outs {
            metrics.emitted_records += out.emitted;
            metrics.shuffle_records += out.shuffled;
            metrics.shuffle_payloads += out.payloads;
            for (r, buf) in out.buckets.into_iter().enumerate() {
                reducer_bytes[r] += buf.len() as u64;
                if !buf.is_empty() {
                    chunks[r].push(buf);
                }
            }
        }
        metrics.shuffle_bytes = reducer_bytes.iter().sum();
        metrics.reducer_bytes = reducer_bytes;
        chunks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Distributed word count: the "hello world" of the model.
    #[test]
    fn word_count() {
        let data: Vec<Vec<u32>> = vec![vec![1, 2, 2], vec![2, 3], vec![1, 1, 1]];
        let parts: Vec<&[Vec<u32>]> = vec![&data[0..2], &data[2..3]];
        let engine = Engine::new(4);
        let (mut out, metrics) = engine
            .map_reduce(
                &parts,
                |part: &[Vec<u32>], emit: &mut dyn FnMut(u32, u64)| {
                    for seq in part {
                        for &w in seq {
                            emit(w, 1);
                        }
                    }
                    Ok(())
                },
                |&k, vs: Vec<u64>, emit: &mut dyn FnMut((u32, u64))| {
                    emit((k, vs.into_iter().sum()));
                    Ok(())
                },
            )
            .unwrap();
        out.sort();
        assert_eq!(out, vec![(1, 4), (2, 3), (3, 1)]);
        assert_eq!(metrics.emitted_records, 8);
        assert_eq!(metrics.shuffle_records, 8);
        assert!(metrics.shuffle_bytes > 0);
        assert_eq!(metrics.output_records, 3);
    }

    #[test]
    fn combiner_reduces_shuffle_volume() {
        let data: Vec<Vec<u32>> = vec![vec![7; 100], vec![7; 100]];
        let parts: Vec<&[Vec<u32>]> = vec![&data[0..1], &data[1..2]];
        let engine = Engine::new(2);

        let map = |part: &[Vec<u32>], out: &mut Combiner<u32>| {
            for seq in part {
                for &w in seq {
                    out.emit(&w, &w.to_le_bytes(), 1);
                }
            }
            Ok(())
        };
        let reduce = |&k: &u32, vs: &[(&[u8], u64)], emit: &mut dyn FnMut((u32, u64))| {
            let total = vs.iter().map(|(_, w)| w).sum();
            emit((k, total));
            Ok(())
        };
        let (out, metrics) = engine.map_combine_reduce(&parts, map, reduce).unwrap();
        assert_eq!(out, vec![(7, 200)]);
        assert_eq!(metrics.emitted_records, 200);
        // Each map task combines its 100 identical records into one.
        assert_eq!(metrics.shuffle_records, 2);
        assert_eq!(metrics.shuffle_payloads, 2);
        assert!(metrics.combine_ratio() > 99.0);
    }

    #[test]
    fn payload_interning_dedups_across_keys() {
        // One map task, many keys sharing one payload, one reducer: the
        // payload bytes must hit the wire exactly once.
        let data: Vec<u32> = (0..64).collect();
        let parts: Vec<&[u32]> = vec![&data];
        let engine = Engine::new(1).with_reducers(1);
        let payload: Vec<u8> = vec![0xAB; 100];
        let (mut out, metrics) = engine
            .map_combine_reduce(
                &parts,
                |part: &[u32], c: &mut Combiner<u32>| {
                    for &k in part {
                        c.emit(&k, &payload, 1);
                    }
                    Ok(())
                },
                |&k: &u32, vs: &[(&[u8], u64)], emit: &mut dyn FnMut(u32)| {
                    assert_eq!(vs.len(), 1);
                    assert_eq!(vs[0].0.len(), 100);
                    emit(k);
                    Ok(())
                },
            )
            .unwrap();
        out.sort();
        assert_eq!(out.len(), 64);
        assert_eq!(metrics.shuffle_records, 64);
        assert_eq!(metrics.shuffle_payloads, 1);
        // 64 records reference one 100-byte payload: far below 64 copies.
        assert!(
            metrics.shuffle_bytes < 64 * 100 / 4,
            "shuffle {} bytes",
            metrics.shuffle_bytes
        );
    }

    #[test]
    fn combine_merges_weights_across_map_tasks() {
        let data: Vec<u32> = vec![5, 5, 5, 5];
        let parts: Vec<&[u32]> = data.chunks(1).collect(); // 4 map tasks
        let engine = Engine::new(2).with_reducers(3);
        let (out, metrics) = engine
            .map_combine_reduce(
                &parts,
                |part: &[u32], c: &mut Combiner<u32>| {
                    for &k in part {
                        c.emit(&k, b"payload", 2);
                    }
                    Ok(())
                },
                |&k: &u32, vs: &[(&[u8], u64)], emit: &mut dyn FnMut((u32, u64))| {
                    assert_eq!(vs.len(), 1, "duplicates must merge reduce-side");
                    emit((k, vs[0].1));
                    Ok(())
                },
            )
            .unwrap();
        assert_eq!(out, vec![(5, 8)]);
        assert_eq!(metrics.shuffle_records, 4); // one per map task
    }

    #[test]
    fn reducer_sees_all_values_of_a_key_exactly_once() {
        let data: Vec<u32> = (0..1000).collect();
        let parts: Vec<&[u32]> = data.chunks(37).collect();
        let engine = Engine::new(3).with_reducers(5);
        let (mut out, metrics) = engine
            .map_reduce(
                &parts,
                |part: &[u32], emit: &mut dyn FnMut(u32, u32)| {
                    for &x in part {
                        emit(x % 10, x);
                    }
                    Ok(())
                },
                |&k, vs: Vec<u32>, emit: &mut dyn FnMut((u32, usize, u64))| {
                    emit((k, vs.len(), vs.iter().map(|&v| u64::from(v)).sum()));
                    Ok(())
                },
            )
            .unwrap();
        out.sort();
        assert_eq!(out.len(), 10);
        for (k, n, sum) in out {
            assert_eq!(n, 100);
            // sum of k, k+10, ..., k+990
            let expect: u64 = (0..100).map(|i| u64::from(k) + 10 * i).sum();
            assert_eq!(sum, expect);
        }
        assert_eq!(metrics.reducer_bytes.len(), 5);
    }

    #[test]
    fn mapper_error_aborts_job() {
        let data = vec![1u32, 2, 3];
        let parts: Vec<&[u32]> = vec![&data];
        let engine = Engine::new(2);
        let err = engine
            .map_reduce(
                &parts,
                |part: &[u32], _emit: &mut dyn FnMut(u32, u32)| {
                    if part.contains(&2) {
                        Err(Error::ResourceExhausted("boom".into()))
                    } else {
                        Ok(())
                    }
                },
                |_k: &u32, _vs: Vec<u32>, _emit: &mut dyn FnMut(u32)| Ok(()),
            )
            .unwrap_err();
        assert!(matches!(err, Error::ResourceExhausted(_)));
    }

    #[test]
    fn reducer_error_aborts_job() {
        let data = vec![1u32];
        let parts: Vec<&[u32]> = vec![&data];
        let engine = Engine::new(2);
        let err = engine
            .map_reduce(
                &parts,
                |part: &[u32], emit: &mut dyn FnMut(u32, u32)| {
                    for &x in part {
                        emit(x, x);
                    }
                    Ok(())
                },
                |_k: &u32, _vs: Vec<u32>, _emit: &mut dyn FnMut(u32)| {
                    Err(Error::Worker("reduce failed".into()))
                },
            )
            .unwrap_err();
        assert!(matches!(err, Error::Worker(_)));
    }

    #[test]
    fn empty_input() {
        let parts: Vec<&[u32]> = vec![];
        let engine = Engine::new(2);
        let (out, metrics) = engine
            .map_reduce(
                &parts,
                |part: &[u32], emit: &mut dyn FnMut(u32, u32)| {
                    for &x in part {
                        emit(x, x);
                    }
                    Ok(())
                },
                |&k: &u32, _vs: Vec<u32>, emit: &mut dyn FnMut(u32)| {
                    emit(k);
                    Ok(())
                },
            )
            .unwrap();
        assert!(out.is_empty());
        assert_eq!(metrics.shuffle_bytes, 0);
    }

    #[test]
    fn bucket_routing_is_stable_and_spread() {
        // (The in-range and tail-distinction properties of the re-exported
        // primitives are tested at their home, `desq_core::fx`.)
        let h = hash_bytes(&42u32.to_le_bytes());
        assert_eq!(bucket_of(h, 8), bucket_of(h, 8));
        let mut seen = std::collections::HashSet::new();
        for k in 0u32..64 {
            seen.insert(bucket_of(hash_bytes(&k.to_le_bytes()), 8));
        }
        assert!(
            seen.len() >= 6,
            "keys should spread over most buckets: {seen:?}"
        );
    }

    #[test]
    fn results_identical_across_worker_counts() {
        let data: Vec<u32> = (0..500).collect();
        let parts: Vec<&[u32]> = data.chunks(23).collect();
        let run = |workers| {
            let engine = Engine::new(workers);
            let (mut out, _) = engine
                .map_reduce(
                    &parts,
                    |part: &[u32], emit: &mut dyn FnMut(u32, u64)| {
                        for &x in part {
                            emit(x % 7, u64::from(x));
                        }
                        Ok(())
                    },
                    |&k, vs: Vec<u64>, emit: &mut dyn FnMut((u32, u64))| {
                        emit((k, vs.into_iter().sum()));
                        Ok(())
                    },
                )
                .unwrap();
            out.sort();
            out
        };
        assert_eq!(run(1), run(8));
    }

    #[test]
    fn combine_reduce_output_is_deterministic_across_worker_counts() {
        // The work-stealing reduce must reproduce the sequential per-bucket
        // output order exactly — compare *unsorted* outputs.
        let data: Vec<u32> = (0..300).collect();
        let run = |workers| {
            let parts: Vec<&[u32]> = data.chunks(37).collect();
            let engine = Engine::new(workers).with_reducers(4);
            engine
                .map_combine_reduce(
                    &parts,
                    |part: &[u32], c: &mut Combiner<u32>| {
                        for &x in part {
                            c.emit(&(x % 50), &x.to_le_bytes()[..1], 1);
                        }
                        Ok(())
                    },
                    |&k: &u32, vs: &[(&[u8], u64)], emit: &mut dyn FnMut((u32, u64))| {
                        emit((k, vs.iter().map(|&(_, w)| w).sum()));
                        Ok(())
                    },
                )
                .unwrap()
        };
        let (seq, seq_metrics) = run(1);
        assert_eq!(seq.len(), 50);
        assert!(seq_metrics.reduce_tasks > 0);
        for workers in [2, 4, 8] {
            let (par, metrics) = run(workers);
            assert_eq!(par, seq, "workers={workers}");
            assert!(metrics.reduce_tasks > 0);
        }
    }

    #[test]
    fn reduce_state_initializes_once_per_worker() {
        // 8 buckets but 3 workers: `init` used to run once per bucket; it
        // must now run at most once per reduce worker thread.
        let data: Vec<u32> = (0..200).collect();
        let parts: Vec<&[u32]> = data.chunks(29).collect();
        let inits = AtomicUsize::new(0);
        let engine = Engine::new(3).with_reducers(8);
        let (out, _) = engine
            .map_combine_reduce_with(
                &parts,
                |part: &[u32], c: &mut Combiner<u32>| {
                    for &x in part {
                        c.emit(&x, b"", 1);
                    }
                    Ok(())
                },
                || inits.fetch_add(1, Ordering::Relaxed),
                |_state, &k: &u32, _vs, emit: &mut dyn FnMut(u32)| {
                    emit(k);
                    Ok(())
                },
            )
            .unwrap();
        assert_eq!(out.len(), 200);
        assert!(
            inits.into_inner() <= 3,
            "init must be per worker, not per bucket"
        );
    }

    #[test]
    fn a_panicking_mapper_aborts_the_job_not_the_process() {
        let data = [1u32, 2, 3];
        let parts: Vec<&[u32]> = data.chunks(1).collect();
        let token = CancelToken::new();
        let engine = Engine::new(2).with_cancel(token.clone());
        let err = engine
            .map_reduce(
                &parts,
                |part: &[u32], emit: &mut dyn FnMut(u32, u32)| {
                    if part.contains(&2) {
                        panic!("mapper blew up on {part:?}");
                    }
                    for &x in part {
                        emit(x, x);
                    }
                    Ok(())
                },
                |&k: &u32, _vs: Vec<u32>, emit: &mut dyn FnMut(u32)| {
                    emit(k);
                    Ok(())
                },
            )
            .unwrap_err();
        match err {
            Error::WorkerPanicked(m) => assert!(m.contains("blew up"), "{m}"),
            other => panic!("expected WorkerPanicked, got {other}"),
        }
        // The token tripped so co-operating layers observe the failure.
        assert!(token.is_stopped());
    }

    #[test]
    fn a_panicking_reducer_aborts_the_combine_job() {
        let data = vec![1u32, 2, 3, 4];
        let parts: Vec<&[u32]> = vec![&data];
        let engine = Engine::new(2).with_reducers(2);
        let err = engine
            .map_combine_reduce(
                &parts,
                |part: &[u32], c: &mut Combiner<u32>| {
                    for &x in part {
                        c.emit(&x, b"", 1);
                    }
                    Ok(())
                },
                |_k: &u32, _vs: &[(&[u8], u64)], _emit: &mut dyn FnMut(u32)| {
                    panic!("reducer blew up")
                },
            )
            .unwrap_err();
        assert!(matches!(err, Error::WorkerPanicked(_)), "{err}");
    }

    #[test]
    fn a_cancelled_token_aborts_the_job_with_cancelled() {
        let token = CancelToken::new();
        token.cancel();
        let data = vec![1u32];
        let parts: Vec<&[u32]> = vec![&data];
        let engine = Engine::new(2).with_cancel(token);
        let err = engine
            .map_reduce(
                &parts,
                |part: &[u32], emit: &mut dyn FnMut(u32, u32)| {
                    for &x in part {
                        emit(x, x);
                    }
                    Ok(())
                },
                |&k: &u32, _vs: Vec<u32>, emit: &mut dyn FnMut(u32)| {
                    emit(k);
                    Ok(())
                },
            )
            .unwrap_err();
        assert!(matches!(err, Error::Cancelled(_)), "{err}");
    }

    #[test]
    fn an_expired_deadline_aborts_the_job_with_deadline_exceeded() {
        let token = CancelToken::with_deadline(std::time::Duration::ZERO);
        let data = vec![1u32];
        let parts: Vec<&[u32]> = vec![&data];
        let engine = Engine::new(1).with_cancel(token);
        let err = engine
            .map_combine_reduce(
                &parts,
                |part: &[u32], c: &mut Combiner<u32>| {
                    for &x in part {
                        c.emit(&x, b"", 1);
                    }
                    Ok(())
                },
                |&k: &u32, _vs: &[(&[u8], u64)], emit: &mut dyn FnMut(u32)| {
                    emit(k);
                    Ok(())
                },
            )
            .unwrap_err();
        assert!(matches!(err, Error::DeadlineExceeded(_)), "{err}");
    }

    #[test]
    fn large_weights_survive_the_combine_wire_format() {
        let data = vec![1u32];
        let parts: Vec<&[u32]> = vec![&data];
        let engine = Engine::new(1);
        let big = u64::from(u32::MAX) + 17;
        let (out, _) = engine
            .map_combine_reduce(
                &parts,
                |_part: &[u32], c: &mut Combiner<u32>| {
                    c.emit(&9, b"", big);
                    c.emit(&9, b"", 1);
                    Ok(())
                },
                |&k: &u32, vs: &[(&[u8], u64)], emit: &mut dyn FnMut((u32, u64))| {
                    assert_eq!(vs.len(), 1);
                    assert!(vs[0].0.is_empty());
                    emit((k, vs[0].1));
                    Ok(())
                },
            )
            .unwrap();
        assert_eq!(out, vec![(9, big + 1)]);
    }
}
