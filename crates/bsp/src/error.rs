//! Engine errors.

use std::fmt;

/// Errors surfaced by a BSP job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Malformed bytes in the shuffle stream.
    Decode(String),
    /// A worker exceeded a configured resource budget (the paper's
    /// out-of-memory failures map to this).
    ResourceExhausted(String),
    /// Any other worker failure.
    Worker(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Decode(m) => write!(f, "shuffle decode error: {m}"),
            Error::ResourceExhausted(m) => write!(f, "resource budget exhausted: {m}"),
            Error::Worker(m) => write!(f, "worker failed: {m}"),
        }
    }
}

impl std::error::Error for Error {}

/// Result alias for BSP jobs.
pub type Result<T> = std::result::Result<T, Error>;
