//! Engine errors.

use std::fmt;

/// Errors surfaced by a BSP job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Malformed bytes in the shuffle stream.
    Decode(String),
    /// A worker exceeded a configured resource budget (the paper's
    /// out-of-memory failures map to this).
    ResourceExhausted(String),
    /// The job's cancellation token expired its wall-clock deadline.
    DeadlineExceeded(String),
    /// The job's cancellation token was cancelled externally.
    Cancelled(String),
    /// A map or reduce task panicked; the panic was caught at the task
    /// boundary and the job aborted cooperatively.
    WorkerPanicked(String),
    /// Any other worker failure.
    Worker(String),
    /// A networked peer never became reachable: reconnect attempts
    /// exhausted their retry budget, or no worker joined within the job's
    /// grace window. Permanent for this job.
    PeerUnreachable(String),
    /// A connected peer went silent past its liveness window. The engine
    /// re-executes its in-flight tasks elsewhere when it can; this error
    /// surfaces when it cannot.
    PeerTimedOut(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Decode(m) => write!(f, "shuffle decode error: {m}"),
            Error::ResourceExhausted(m) => write!(f, "resource budget exhausted: {m}"),
            Error::DeadlineExceeded(m) => write!(f, "deadline exceeded: {m}"),
            Error::Cancelled(m) => write!(f, "cancelled: {m}"),
            Error::WorkerPanicked(m) => write!(f, "worker panicked: {m}"),
            Error::Worker(m) => write!(f, "worker failed: {m}"),
            Error::PeerUnreachable(m) => write!(f, "peer unreachable: {m}"),
            Error::PeerTimedOut(m) => write!(f, "peer timed out: {m}"),
        }
    }
}

impl std::error::Error for Error {}

/// Core errors surface in BSP jobs wherever the engine calls into shared
/// `desq-core` codecs; the mapping mirrors `desq_dist`'s `to_bsp`.
impl From<desq_core::Error> for Error {
    fn from(e: desq_core::Error) -> Error {
        match e {
            desq_core::Error::Decode(m) => Error::Decode(m),
            desq_core::Error::ResourceExhausted(m) => Error::ResourceExhausted(m),
            desq_core::Error::DeadlineExceeded(m) => Error::DeadlineExceeded(m),
            desq_core::Error::Cancelled(m) => Error::Cancelled(m),
            desq_core::Error::WorkerPanicked(m) => Error::WorkerPanicked(m),
            desq_core::Error::PeerUnreachable(m) => Error::PeerUnreachable(m),
            desq_core::Error::PeerTimedOut(m) => Error::PeerTimedOut(m),
            other => Error::Worker(other.to_string()),
        }
    }
}

/// Result alias for BSP jobs.
pub type Result<T> = std::result::Result<T, Error>;
