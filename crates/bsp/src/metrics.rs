//! Per-job measurements.

/// Measurements of one BSP job, the analog of the Spark metrics the paper
//  reports (end-to-end run time split into map and mine stages, and
/// `shuffleWriteBytes` as shuffle size).
#[derive(Debug, Clone, Default)]
pub struct JobMetrics {
    /// Wall-clock nanoseconds of the map (+ combine + serialize) phase.
    pub map_nanos: u64,
    /// Wall-clock nanoseconds of the reduce ("mine") phase.
    pub reduce_nanos: u64,
    /// Records emitted by mappers, before combining.
    pub emitted_records: u64,
    /// Records written to the shuffle, after combining.
    pub shuffle_records: u64,
    /// Distinct payload byte strings written to the shuffle (per bucket
    /// chunk, post-interning) by combining jobs; 0 for plain map-reduce.
    pub shuffle_payloads: u64,
    /// Total serialized shuffle volume in bytes.
    pub shuffle_bytes: u64,
    /// Shuffle bytes received per reducer (for partition-balance analysis).
    pub reducer_bytes: Vec<u64>,
    /// Records produced by reducers.
    pub output_records: u64,
    /// Key-group tasks executed by the work-stealing reduce scheduler
    /// (0 for job shapes that still reduce one whole bucket per task).
    pub reduce_tasks: u64,
    /// Successful task steals between reduce workers (0 when every worker
    /// drained its own share, or for non-scheduled job shapes).
    pub reduce_steals: u64,
    /// Tasks re-executed after a networked peer died or timed out with
    /// them in flight (0 for in-process transports: their tasks never
    /// need a second run).
    pub retried_tasks: u64,
    /// Networked peers declared dead because they went silent past the
    /// liveness window (0 in process, and 0 when peers only fail by
    /// closing their connection).
    pub peer_timeouts: u64,
    /// Wall-clock nanoseconds of the single slowest map or reduce task —
    /// the straggler that bounds the superstep barrier.
    pub max_task_nanos: u64,
    /// True when the job's cancellation token had tripped by the time the
    /// job finished — the results are complete and valid, but the caller
    /// asked for a stop (e.g. a drain-mode shutdown) concurrently with the
    /// final phase.
    pub cancelled: bool,
}

impl JobMetrics {
    /// Map-phase wall time in seconds.
    pub fn map_secs(&self) -> f64 {
        self.map_nanos as f64 / 1e9
    }

    /// Reduce-phase wall time in seconds.
    pub fn reduce_secs(&self) -> f64 {
        self.reduce_nanos as f64 / 1e9
    }

    /// Total job wall time in seconds.
    pub fn total_secs(&self) -> f64 {
        self.map_secs() + self.reduce_secs()
    }

    /// Ratio of the largest reducer's byte volume to the mean — 1.0 is a
    /// perfectly balanced shuffle.
    pub fn balance(&self) -> f64 {
        if self.reducer_bytes.is_empty() || self.shuffle_bytes == 0 {
            return 1.0;
        }
        let max = *self.reducer_bytes.iter().max().unwrap() as f64;
        let mean = self.shuffle_bytes as f64 / self.reducer_bytes.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// Combine effectiveness: emitted records per shuffled record.
    pub fn combine_ratio(&self) -> f64 {
        if self.shuffle_records == 0 {
            1.0
        } else {
            self.emitted_records as f64 / self.shuffle_records as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_quantities() {
        let m = JobMetrics {
            map_nanos: 2_000_000_000,
            reduce_nanos: 500_000_000,
            emitted_records: 100,
            shuffle_records: 25,
            shuffle_payloads: 10,
            shuffle_bytes: 40,
            reducer_bytes: vec![10, 10, 20],
            output_records: 7,
            reduce_tasks: 0,
            reduce_steals: 0,
            retried_tasks: 0,
            peer_timeouts: 0,
            max_task_nanos: 0,
            cancelled: false,
        };
        assert!((m.map_secs() - 2.0).abs() < 1e-9);
        assert!((m.total_secs() - 2.5).abs() < 1e-9);
        assert!((m.combine_ratio() - 4.0).abs() < 1e-9);
        // max 20 vs mean 40/3
        assert!((m.balance() - 20.0 / (40.0 / 3.0)).abs() < 1e-9);
    }

    #[test]
    fn degenerate_metrics_do_not_divide_by_zero() {
        let m = JobMetrics::default();
        assert_eq!(m.balance(), 1.0);
        assert_eq!(m.combine_ratio(), 1.0);
        assert_eq!(m.total_secs(), 0.0);
    }
}
