//! Byte-level serialization for shuffle data.
//!
//! Shuffle volume is a *measured quantity* in the paper's evaluation, so the
//! engine serializes every record for real. The format is LEB128 varints for
//! integers and length-prefixed payloads for containers — compact for the
//! small item ids that dominate mining workloads (frequency-ranked encoding
//! makes frequent items small numbers, which is precisely why the paper's
//! preprocessing recodes items by frequency).
//!
//! Item *sequences* (rewritten inputs, projected suffixes) additionally get
//! a delta codec ([`encode_item_seq`] / [`decode_item_seq`]): varint count,
//! varint first item, then zigzag-varint deltas between neighbors. Natural
//! text clusters items of similar frequency rank, so deltas are usually
//! smaller than the absolute ids; ids themselves never exceed `u32`, so a
//! delta fits `i64` exactly.

use crate::error::{Error, Result};

/// Encodes `v` as a LEB128 varint.
#[inline]
pub fn write_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Decodes a LEB128 varint, advancing `buf`.
#[inline]
pub fn read_varint(buf: &mut &[u8]) -> Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let (&byte, rest) = buf
            .split_first()
            .ok_or_else(|| Error::Decode("varint: unexpected end of input".into()))?;
        *buf = rest;
        if shift >= 64 {
            return Err(Error::Decode("varint: overflow".into()));
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Zigzag-encodes a signed delta (small magnitudes → small varints).
#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Encoded varint byte length of `v` (`⌈significant bits / 7⌉`, min 1).
#[inline]
pub(crate) fn varint_len(v: u64) -> usize {
    let bits = 64 - (v | 1).leading_zeros() as usize;
    bits.div_ceil(7)
}

/// Appends the adaptive varint/delta encoding of an item sequence to
/// `buf`.
///
/// Wire format: `varint(len << 1 | mode)`, then the items — mode 0 encodes
/// every item as a plain varint, mode 1 encodes `varint(items[0])`
/// followed by `zigzag_varint(items[i] - items[i-1])` per remaining item.
/// The encoder counts both sizes and picks the smaller one: neighbors of
/// similar frequency rank compress under deltas, while uncorrelated
/// (e.g. Zipf-random) ids stay at their plain-varint size instead of
/// paying the zigzag sign bit. The empty sequence encodes as the single
/// byte `0`.
pub fn encode_item_seq(items: &[u32], buf: &mut Vec<u8>) {
    let mut plain = 0usize;
    let mut delta = 0usize;
    let mut prev = 0i64;
    for (i, &w) in items.iter().enumerate() {
        plain += varint_len(u64::from(w));
        delta += if i == 0 {
            varint_len(u64::from(w))
        } else {
            varint_len(zigzag(i64::from(w) - prev))
        };
        prev = i64::from(w);
    }
    let mode = u64::from(delta < plain);
    write_varint(buf, (items.len() as u64) << 1 | mode);
    let mut prev = 0i64;
    for (i, &w) in items.iter().enumerate() {
        if mode == 0 || i == 0 {
            write_varint(buf, u64::from(w));
        } else {
            write_varint(buf, zigzag(i64::from(w) - prev));
        }
        prev = i64::from(w);
    }
}

/// Decodes one [`encode_item_seq`] record, *appending* the items to `out`
/// (arena-style — callers accumulate many sequences into one flat buffer).
/// Returns the number of items decoded. Rejects truncated input, hostile
/// lengths and deltas leaving the `u32` item range.
pub fn decode_item_seq(buf: &mut &[u8], out: &mut Vec<u32>) -> Result<usize> {
    let head = read_varint(buf)?;
    let len = (head >> 1) as usize;
    let delta_mode = head & 1 == 1;
    // Never pre-allocate more than the remaining input could encode
    // (1 byte per item minimum).
    if len > buf.len() {
        return Err(Error::Decode(format!(
            "item sequence: length {len} exceeds input"
        )));
    }
    out.reserve(len);
    let mut prev = 0i64;
    for i in 0..len {
        let raw = read_varint(buf)?;
        let v = if delta_mode && i > 0 {
            prev.checked_add(unzigzag(raw))
                .ok_or_else(|| Error::Decode("item sequence: delta overflow".into()))?
        } else {
            i64::try_from(raw).map_err(|_| Error::Decode("item sequence: item".into()))?
        };
        let item =
            u32::try_from(v).map_err(|_| Error::Decode(format!("item out of range: {v}")))?;
        out.push(item);
        prev = v;
    }
    Ok(len)
}

/// A type that can be serialized into / deserialized from a shuffle stream.
pub trait Codec: Sized {
    /// Appends the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);
    /// Decodes a value, advancing `buf` past it.
    fn decode(buf: &mut &[u8]) -> Result<Self>;
}

impl Codec for u32 {
    fn encode(&self, buf: &mut Vec<u8>) {
        write_varint(buf, u64::from(*self));
    }

    fn decode(buf: &mut &[u8]) -> Result<Self> {
        let v = read_varint(buf)?;
        u32::try_from(v).map_err(|_| Error::Decode(format!("u32 out of range: {v}")))
    }
}

impl Codec for u64 {
    fn encode(&self, buf: &mut Vec<u8>) {
        write_varint(buf, *self);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self> {
        read_varint(buf)
    }
}

impl Codec for bool {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(u8::from(*self));
    }

    fn decode(buf: &mut &[u8]) -> Result<Self> {
        let (&b, rest) = buf
            .split_first()
            .ok_or_else(|| Error::Decode("bool: unexpected end of input".into()))?;
        *buf = rest;
        match b {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(Error::Decode(format!("bool: invalid byte {other}"))),
        }
    }
}

impl Codec for Vec<u32> {
    fn encode(&self, buf: &mut Vec<u8>) {
        write_varint(buf, self.len() as u64);
        for &v in self {
            write_varint(buf, u64::from(v));
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<Self> {
        let len = read_varint(buf)? as usize;
        // Guard against hostile lengths: never pre-allocate more than the
        // remaining input could possibly encode (1 byte per element minimum).
        if len > buf.len() {
            return Err(Error::Decode(format!(
                "Vec<u32>: length {len} exceeds input"
            )));
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(u32::decode(buf)?);
        }
        Ok(out)
    }
}

impl Codec for Vec<u8> {
    fn encode(&self, buf: &mut Vec<u8>) {
        write_varint(buf, self.len() as u64);
        buf.extend_from_slice(self);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self> {
        let len = read_varint(buf)? as usize;
        if len > buf.len() {
            return Err(Error::Decode(format!(
                "Vec<u8>: length {len} exceeds input"
            )));
        }
        let (head, rest) = buf.split_at(len);
        *buf = rest;
        Ok(head.to_vec())
    }
}

impl Codec for String {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.as_bytes().to_vec().encode(buf);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self> {
        let bytes = Vec::<u8>::decode(buf)?;
        String::from_utf8(bytes).map_err(|e| Error::Decode(format!("String: {e}")))
    }
}

impl<A: Codec, B: Codec> Codec for (A, B) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self> {
        Ok((A::decode(buf)?, B::decode(buf)?))
    }
}

impl<A: Codec, B: Codec, C: Codec> Codec for (A, B, C) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
        self.2.encode(buf);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self> {
        Ok((A::decode(buf)?, B::decode(buf)?, C::decode(buf)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Codec + PartialEq + std::fmt::Debug>(v: T) {
        let mut buf = Vec::new();
        v.encode(&mut buf);
        let mut slice = buf.as_slice();
        let back = T::decode(&mut slice).unwrap();
        assert_eq!(back, v);
        assert!(slice.is_empty(), "decode must consume everything");
    }

    #[test]
    fn varint_boundaries() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut s = buf.as_slice();
            assert_eq!(read_varint(&mut s).unwrap(), v);
            assert!(s.is_empty());
        }
    }

    #[test]
    fn varint_is_compact_for_small_values() {
        let mut buf = Vec::new();
        write_varint(&mut buf, 5);
        assert_eq!(buf.len(), 1);
        buf.clear();
        write_varint(&mut buf, 300);
        assert_eq!(buf.len(), 2);
    }

    #[test]
    fn primitive_roundtrips() {
        roundtrip(0u32);
        roundtrip(u32::MAX);
        roundtrip(u64::MAX);
        roundtrip(true);
        roundtrip(false);
        roundtrip(vec![1u32, 2, 3, 1_000_000]);
        roundtrip(Vec::<u32>::new());
        roundtrip(vec![0u8, 255, 7]);
        roundtrip("hello Σ sequences".to_string());
        roundtrip((42u32, vec![1u32, 2]));
        roundtrip((1u32, 2u64, vec![3u8]));
    }

    #[test]
    fn truncated_input_rejected() {
        let mut buf = Vec::new();
        vec![1u32, 2, 3].encode(&mut buf);
        for cut in 0..buf.len() {
            let mut s = &buf[..cut];
            assert!(Vec::<u32>::decode(&mut s).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn hostile_length_rejected() {
        // Claimed length far beyond the buffer must not allocate/panic.
        let mut buf = Vec::new();
        write_varint(&mut buf, u64::MAX / 2);
        let mut s = buf.as_slice();
        assert!(Vec::<u32>::decode(&mut s).is_err());
        let mut s2 = buf.as_slice();
        assert!(Vec::<u8>::decode(&mut s2).is_err());
    }

    #[test]
    fn invalid_bool_rejected() {
        let buf = [7u8];
        let mut s = &buf[..];
        assert!(bool::decode(&mut s).is_err());
    }

    #[test]
    fn varint_overflow_rejected() {
        let buf = [0xffu8; 11];
        let mut s = &buf[..];
        assert!(read_varint(&mut s).is_err());
    }

    fn item_seq_roundtrip(items: &[u32]) {
        let mut buf = Vec::new();
        encode_item_seq(items, &mut buf);
        let mut s = buf.as_slice();
        let mut out = Vec::new();
        let n = decode_item_seq(&mut s, &mut out).unwrap();
        assert_eq!(n, items.len());
        assert_eq!(out, items);
        assert!(s.is_empty());
    }

    #[test]
    fn item_seq_roundtrips() {
        item_seq_roundtrip(&[]);
        item_seq_roundtrip(&[0]);
        item_seq_roundtrip(&[7, 7, 7]);
        item_seq_roundtrip(&[1, 1000, 3, u32::MAX, 0, u32::MAX]);
        item_seq_roundtrip(&(0..200).collect::<Vec<u32>>());
    }

    #[test]
    fn item_seq_deltas_beat_absolute_ids_on_clustered_items() {
        // Neighboring items of similar rank: deltas fit one byte where the
        // absolute ids need two or three.
        let items: Vec<u32> = (0..64u32).map(|i| 10_000 + (i % 7)).collect();
        let mut delta = Vec::new();
        encode_item_seq(&items, &mut delta);
        let mut plain = Vec::new();
        items.to_vec().encode(&mut plain);
        assert!(
            delta.len() < plain.len() * 6 / 10,
            "{} vs {}",
            delta.len(),
            plain.len()
        );
    }

    #[test]
    fn item_seq_decode_appends_arena_style() {
        let mut buf = Vec::new();
        encode_item_seq(&[5, 6], &mut buf);
        encode_item_seq(&[9], &mut buf);
        let mut s = buf.as_slice();
        let mut arena = vec![1u32];
        assert_eq!(decode_item_seq(&mut s, &mut arena).unwrap(), 2);
        assert_eq!(decode_item_seq(&mut s, &mut arena).unwrap(), 1);
        assert_eq!(arena, vec![1, 5, 6, 9]);
        assert!(s.is_empty());
    }

    #[test]
    fn item_seq_truncation_and_hostile_lengths_rejected() {
        let mut buf = Vec::new();
        encode_item_seq(&[3, 900, 12], &mut buf);
        for cut in 0..buf.len() {
            let mut s = &buf[..cut];
            let mut out = Vec::new();
            assert!(decode_item_seq(&mut s, &mut out).is_err(), "cut at {cut}");
        }
        let mut hostile = Vec::new();
        write_varint(&mut hostile, u64::MAX / 2);
        let mut s = hostile.as_slice();
        assert!(decode_item_seq(&mut s, &mut Vec::new()).is_err());
    }

    #[test]
    fn item_seq_out_of_range_delta_rejected() {
        // Delta mode, len 2, first item u32::MAX, delta +2 → leaves the
        // item range.
        let mut buf = Vec::new();
        write_varint(&mut buf, 2 << 1 | 1);
        write_varint(&mut buf, u64::from(u32::MAX));
        write_varint(&mut buf, super::zigzag(2));
        let mut s = buf.as_slice();
        assert!(decode_item_seq(&mut s, &mut Vec::new()).is_err());
    }

    #[test]
    fn item_seq_picks_the_smaller_mode() {
        // Clustered ranks → delta mode; uncorrelated large ids → plain.
        let clustered: Vec<u32> = (0..32u32).map(|i| 50_000 + i).collect();
        let mut buf = Vec::new();
        encode_item_seq(&clustered, &mut buf);
        assert_eq!(buf[0] & 1, 1, "clustered ids should use delta mode");
        let jumpy: Vec<u32> = (0..32u32)
            .map(|i| if i % 2 == 0 { 3 } else { 1_000_000 })
            .collect();
        let mut plain_buf = Vec::new();
        encode_item_seq(&jumpy, &mut plain_buf);
        assert_eq!(plain_buf[0] & 1, 0, "alternating ids should stay plain");
        // Adaptive never exceeds the pure-plain encoding by more than the
        // mode bit's occasional extra length byte.
        let mut as_vec = Vec::new();
        jumpy.to_vec().encode(&mut as_vec);
        assert!(plain_buf.len() <= as_vec.len() + 1);
    }
}
