//! Byte-level serialization for shuffle data.
//!
//! Shuffle volume is a *measured quantity* in the paper's evaluation, so the
//! engine serializes every record for real. The format is LEB128 varints for
//! integers and length-prefixed payloads for containers — compact for the
//! small item ids that dominate mining workloads (frequency-ranked encoding
//! makes frequent items small numbers, which is precisely why the paper's
//! preprocessing recodes items by frequency).
//!
//! The varint and item-sequence primitives ([`write_varint`],
//! [`read_varint`], [`encode_item_seq`], [`decode_item_seq`]) live in
//! [`desq_core::codec`] since PR 5 — the flat candidate-counting sink
//! shares the exact wire format — and are re-exported here for
//! compatibility. Their decode halves return [`desq_core::Error`], which
//! converts into [`Error`] via `From` (so `?` keeps working in engine
//! code).

use crate::error::{Error, Result};

pub use desq_core::codec::{
    decode_item_seq, encode_item_seq, read_varint, varint_len, write_varint,
};

/// A type that can be serialized into / deserialized from a shuffle stream.
pub trait Codec: Sized {
    /// Appends the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);
    /// Decodes a value, advancing `buf` past it.
    fn decode(buf: &mut &[u8]) -> Result<Self>;
}

impl Codec for u32 {
    fn encode(&self, buf: &mut Vec<u8>) {
        write_varint(buf, u64::from(*self));
    }

    fn decode(buf: &mut &[u8]) -> Result<Self> {
        let v = read_varint(buf)?;
        u32::try_from(v).map_err(|_| Error::Decode(format!("u32 out of range: {v}")))
    }
}

impl Codec for u64 {
    fn encode(&self, buf: &mut Vec<u8>) {
        write_varint(buf, *self);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self> {
        Ok(read_varint(buf)?)
    }
}

impl Codec for bool {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(u8::from(*self));
    }

    fn decode(buf: &mut &[u8]) -> Result<Self> {
        let (&b, rest) = buf
            .split_first()
            .ok_or_else(|| Error::Decode("bool: unexpected end of input".into()))?;
        *buf = rest;
        match b {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(Error::Decode(format!("bool: invalid byte {other}"))),
        }
    }
}

impl Codec for Vec<u32> {
    fn encode(&self, buf: &mut Vec<u8>) {
        write_varint(buf, self.len() as u64);
        for &v in self {
            write_varint(buf, u64::from(v));
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<Self> {
        let len = read_varint(buf)? as usize;
        // Guard against hostile lengths: never pre-allocate more than the
        // remaining input could possibly encode (1 byte per element minimum).
        if len > buf.len() {
            return Err(Error::Decode(format!(
                "Vec<u32>: length {len} exceeds input"
            )));
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(u32::decode(buf)?);
        }
        Ok(out)
    }
}

impl Codec for Vec<u8> {
    fn encode(&self, buf: &mut Vec<u8>) {
        write_varint(buf, self.len() as u64);
        buf.extend_from_slice(self);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self> {
        let len = read_varint(buf)? as usize;
        if len > buf.len() {
            return Err(Error::Decode(format!(
                "Vec<u8>: length {len} exceeds input"
            )));
        }
        let (head, rest) = buf.split_at(len);
        *buf = rest;
        Ok(head.to_vec())
    }
}

impl Codec for String {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.as_bytes().to_vec().encode(buf);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self> {
        let bytes = Vec::<u8>::decode(buf)?;
        String::from_utf8(bytes).map_err(|e| Error::Decode(format!("String: {e}")))
    }
}

impl<A: Codec, B: Codec> Codec for (A, B) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self> {
        Ok((A::decode(buf)?, B::decode(buf)?))
    }
}

impl<A: Codec, B: Codec, C: Codec> Codec for (A, B, C) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
        self.2.encode(buf);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self> {
        Ok((A::decode(buf)?, B::decode(buf)?, C::decode(buf)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Codec + PartialEq + std::fmt::Debug>(v: T) {
        let mut buf = Vec::new();
        v.encode(&mut buf);
        let mut slice = buf.as_slice();
        let back = T::decode(&mut slice).unwrap();
        assert_eq!(back, v);
        assert!(slice.is_empty(), "decode must consume everything");
    }

    #[test]
    fn primitive_roundtrips() {
        roundtrip(0u32);
        roundtrip(u32::MAX);
        roundtrip(u64::MAX);
        roundtrip(true);
        roundtrip(false);
        roundtrip(vec![1u32, 2, 3, 1_000_000]);
        roundtrip(Vec::<u32>::new());
        roundtrip(vec![0u8, 255, 7]);
        roundtrip("hello Σ sequences".to_string());
        roundtrip((42u32, vec![1u32, 2]));
        roundtrip((1u32, 2u64, vec![3u8]));
    }

    #[test]
    fn truncated_input_rejected() {
        let mut buf = Vec::new();
        vec![1u32, 2, 3].encode(&mut buf);
        for cut in 0..buf.len() {
            let mut s = &buf[..cut];
            assert!(Vec::<u32>::decode(&mut s).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn hostile_length_rejected() {
        // Claimed length far beyond the buffer must not allocate/panic.
        let mut buf = Vec::new();
        write_varint(&mut buf, u64::MAX / 2);
        let mut s = buf.as_slice();
        assert!(Vec::<u32>::decode(&mut s).is_err());
        let mut s2 = buf.as_slice();
        assert!(Vec::<u8>::decode(&mut s2).is_err());
    }

    #[test]
    fn invalid_bool_rejected() {
        let buf = [7u8];
        let mut s = &buf[..];
        assert!(bool::decode(&mut s).is_err());
    }

    #[test]
    fn item_seq_reexports_roundtrip_through_bsp_paths() {
        // The canonical codec lives in desq-core; the historical desq_bsp
        // paths must keep encoding byte-identically.
        let items = [1u32, 1000, 3, 7];
        let mut via_bsp = Vec::new();
        encode_item_seq(&items, &mut via_bsp);
        let mut via_core = Vec::new();
        desq_core::codec::encode_item_seq(&items, &mut via_core);
        assert_eq!(via_bsp, via_core);
        let mut out = Vec::new();
        let mut s = via_bsp.as_slice();
        assert_eq!(decode_item_seq(&mut s, &mut out).unwrap(), items.len());
        assert_eq!(out, items);
    }
}
