//! # desq-bsp
//!
//! A small, thread-backed **bulk-synchronous-parallel engine** with exactly
//! one round of communication — the computational model of the paper
//! (Sec. III, Alg. 1), as provided by MapReduce or Spark on a cluster.
//!
//! A job consists of three phases:
//!
//! 1. **map**: every input partition is processed independently by a worker;
//!    the mapper emits `(key, value)` records;
//! 2. **shuffle**: records are *serialized to bytes* (via [`Codec`]) and
//!    routed to `R` reducer buckets by key hash. The byte volume is the
//!    `shuffle_bytes` metric — the analog of Spark's `shuffleWriteBytes`
//!    that the paper reports (Fig. 9c);
//! 3. **reduce**: every bucket is decoded, grouped by key, and processed
//!    independently by a worker.
//!
//! An optional **combiner** aggregates map-side records with equal keys
//! before serialization (MapReduce `combine`), which D-CAND uses to collapse
//! identical NFAs into weighted ones (Sec. VI-A "Aggregation").
//!
//! The engine is deliberately faithful to the cost model rather than to any
//! particular cluster API: communication really passes through byte buffers,
//! workers really run in parallel (scoped threads), and per-phase wall times
//! and per-reducer byte volumes are recorded in [`JobMetrics`] — including
//! the task/steal counters of the work-stealing reduce phase
//! ([`JobMetrics::reduce_tasks`] / [`JobMetrics::reduce_steals`]). See
//! `docs/ARCHITECTURE.md` in the repository root for how the engine fits
//! into the overall data flow of each distributed algorithm.

pub mod codec;
pub mod engine;
pub mod error;
pub mod metrics;
pub mod transport;

pub use codec::{decode_item_seq, encode_item_seq, read_varint, write_varint, Codec};
pub use engine::{bucket_of, hash_bytes, Combiner, Engine, MapTaskOut};
pub use error::{Error, Result};
pub use metrics::JobMetrics;
pub use transport::{InProcess, NetConfig, NetCoordinator, PhaseStats, ShuffleTransport};
