//! Property tests for the shuffle wire codec: arbitrary frames survive
//! encode → write → read → decode unchanged, **every** strict payload
//! prefix is rejected (no panic, no partial decode), and hostile length
//! prefixes are refused before the payload buffer is allocated.

use desq_bsp::transport::{read_net_frame, write_net_frame, Frame, NET_PROTOCOL_VERSION};
use desq_bsp::Error;
use proptest::collection;
use proptest::prelude::*;

/// Frames on real links carry payloads up to tens of megabytes; for codec
/// coverage small byte strings exercise the same varint boundaries.
const MAX_FRAME: usize = 1 << 20;

fn any_bytes() -> impl Strategy<Value = Vec<u8>> {
    collection::vec(0u8..=u8::MAX, 0..12)
}

fn any_byte_list() -> impl Strategy<Value = Vec<Vec<u8>>> {
    collection::vec(any_bytes(), 0..4)
}

/// Varint-relevant magnitudes: small values, values around the 7-bit group
/// boundaries, and the extremes.
fn any_u64() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..3,
        100u64..200,
        (1u64 << 28) - 2..(1 << 28) + 2,
        u64::MAX - 2..=u64::MAX,
    ]
}

/// Short strings including multi-byte code points, so the UTF-8 check of
/// the error codec is exercised.
fn any_string() -> impl Strategy<Value = String> {
    collection::vec(
        prop_oneof![
            (32u32..127).prop_map(|c| char::from_u32(c).unwrap()),
            Just('σ'),
            Just('→'),
        ],
        0..10,
    )
    .prop_map(|chars| chars.into_iter().collect())
}

/// All eight wire error kinds.
fn any_error() -> impl Strategy<Value = Error> {
    (0u8..8, any_string()).prop_map(|(kind, msg)| match kind {
        0 => Error::Decode(msg),
        1 => Error::ResourceExhausted(msg),
        2 => Error::DeadlineExceeded(msg),
        3 => Error::Cancelled(msg),
        4 => Error::WorkerPanicked(msg),
        5 => Error::Worker(msg),
        6 => Error::PeerUnreachable(msg),
        _ => Error::PeerTimedOut(msg),
    })
}

fn any_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        any_u64().prop_map(|fingerprint| Frame::Hello {
            version: NET_PROTOCOL_VERSION,
            fingerprint,
        }),
        Just(Frame::Heartbeat),
        (any_u64(), any_u64()).prop_map(|(epoch, task)| Frame::MapTask { epoch, task }),
        (
            (any_u64(), any_u64(), any_u64()),
            (any_u64(), any_u64(), any_u64()),
            any_byte_list(),
        )
            .prop_map(
                |((epoch, task, emitted), (shuffled, payloads, task_nanos), buckets)| {
                    Frame::MapOut {
                        epoch,
                        task,
                        emitted,
                        shuffled,
                        payloads,
                        task_nanos,
                        buckets,
                    }
                }
            ),
        (any_u64(), any_u64(), any_byte_list()).prop_map(|(epoch, task, chunks)| {
            Frame::ReduceTask {
                epoch,
                task,
                chunks,
            }
        }),
        (any_u64(), any_u64(), any_u64(), any_bytes()).prop_map(
            |(epoch, task, task_nanos, out)| Frame::ReduceOut {
                epoch,
                task,
                task_nanos,
                out,
            }
        ),
        (any_u64(), any_u64(), any_error()).prop_map(|(epoch, task, error)| Frame::TaskErr {
            epoch,
            task,
            error
        }),
        Just(Frame::End),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode → length-prefixed write → read → decode is the identity, and
    /// the reader consumes the stream exactly.
    #[test]
    fn frames_roundtrip_through_wire(frame in any_frame()) {
        let mut wire = Vec::new();
        write_net_frame(&mut wire, &frame, MAX_FRAME).expect("write");
        let mut stream = wire.as_slice();
        let decoded = read_net_frame(&mut stream, MAX_FRAME).expect("read");
        prop_assert!(stream.is_empty(), "reader left {} bytes", stream.len());
        prop_assert_eq!(decoded, frame);
    }

    /// A payload either decodes completely or errors: every strict prefix
    /// of every frame encoding is rejected — a cut always lands inside a
    /// field or removes one, and partial decodes must never pass.
    #[test]
    fn every_strict_payload_prefix_is_rejected(frame in any_frame()) {
        let mut payload = Vec::new();
        frame.encode(&mut payload);
        for cut in 0..payload.len() {
            prop_assert!(
                Frame::decode(&payload[..cut]).is_err(),
                "prefix of {cut}/{} bytes decoded",
                payload.len()
            );
        }
    }

    /// Appending any byte to a valid payload is rejected (frames carry
    /// exactly one message; trailing garbage means a framing bug).
    #[test]
    fn trailing_bytes_are_rejected(frame in any_frame(), extra in 0u8..=u8::MAX) {
        let mut payload = Vec::new();
        frame.encode(&mut payload);
        payload.push(extra);
        prop_assert!(Frame::decode(&payload).is_err());
    }

    /// Hostile length prefixes above the frame cap — all the way to
    /// `u64::MAX` — are rejected before the payload allocation, so a
    /// malicious or corrupted peer cannot OOM the reader.
    #[test]
    fn oversized_length_prefixes_are_rejected(len in MAX_FRAME as u64 + 1..=u64::MAX) {
        let mut wire = Vec::new();
        desq_bsp::write_varint(&mut wire, len);
        wire.extend_from_slice(&[0u8; 64]); // even with bytes behind it
        let err = read_net_frame(&mut wire.as_slice(), MAX_FRAME)
            .expect_err("oversized length must error");
        prop_assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    /// A length varint longer than ten groups (shift ≥ 64) is an overflow
    /// error, not a silent wrap.
    #[test]
    fn overlong_length_varints_are_rejected(fill in 0u8..0x80) {
        let mut wire = vec![0xFFu8; 10];
        wire.push(fill | 0x01); // terminate the varint after >64 bits
        let err = read_net_frame(&mut wire.as_slice(), MAX_FRAME)
            .expect_err("overlong varint must error");
        prop_assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    /// Unknown frame tags are decode errors, so new frame kinds require a
    /// protocol version bump instead of silent misinterpretation.
    #[test]
    fn unknown_tags_are_rejected(frame in any_frame(), tag in 9u8..=u8::MAX) {
        let mut payload = Vec::new();
        frame.encode(&mut payload);
        payload[0] = tag;
        prop_assert!(Frame::decode(&payload).is_err());
        payload[0] = 0; // tag 0 is reserved / invalid too
        prop_assert!(Frame::decode(&payload).is_err());
    }
}
