//! The subsequence-constraint library of Tab. III.
//!
//! Constraint expressions are written exactly as the paper prints them; the
//! paper's semantics match them *within* an input sequence, so
//! [`Constraint::compile`] wraps them in uncaptured `.*` context
//! ([`desq_core::PatEx::unanchored`]) before FST compilation. The `N`
//! constraints target the NYT-like corpus (relational phrases, typed
//! relations, copular relations, generalized n-grams), the `A` constraints
//! the AMZN-like purchase sequences, and [`t1`] / [`t2`] / [`t3`] are the
//! traditional constraint families (max length, max gap, hierarchy) used in
//! the LASH / MG-FSM / MLlib comparisons.

use desq_core::{Dictionary, Fst, PatEx, Result};

/// A named subsequence constraint with its pattern expression.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// Display name (`N1`..`N5`, `A1`..`A4`, `T1(λ)`, ...).
    pub name: String,
    /// The pattern expression as printed in Tab. III (unanchored form).
    pub expr: String,
}

impl Constraint {
    /// Creates a constraint from a name and its printed expression.
    pub fn new(name: impl Into<String>, expr: impl Into<String>) -> Constraint {
        Constraint {
            name: name.into(),
            expr: expr.into(),
        }
    }

    /// Compiles the constraint against `dict`, with unanchored `.*` context.
    pub fn compile(&self, dict: &Dictionary) -> Result<Fst> {
        compile_unanchored(&self.expr, dict)
    }
}

/// Parses `expr`, wraps it in uncaptured `.*` context on both sides, and
/// compiles it to an FST.
pub fn compile_unanchored(expr: &str, dict: &Dictionary) -> Result<Fst> {
    Fst::compile(&PatEx::parse(expr)?.unanchored(), dict)
}

/// N1 — relational phrases between entities.
pub fn n1() -> Constraint {
    Constraint::new("N1", "ENTITY (VERB+ NOUN+? PREP?) ENTITY")
}

/// N2 — typed relational phrases (entities generalized).
pub fn n2() -> Constraint {
    Constraint::new("N2", "(ENTITY^ VERB+ NOUN+? PREP? ENTITY^)")
}

/// N3 — copular relations ("X is a Y"), with the copula generalized to its
/// lemma.
pub fn n3() -> Constraint {
    Constraint::new("N3", "(ENTITY^ be^=) DET? [ADV? ADJ? NOUN]")
}

/// N4 — generalized 3-grams before a noun.
pub fn n4() -> Constraint {
    Constraint::new("N4", "(.^){3} NOUN")
}

/// N5 — generalized items in a 3-item window.
pub fn n5() -> Constraint {
    Constraint::new("N5", "[(.^). .]|[. (.^).]|[. .(.^)]")
}

/// The five NYT constraints of Tab. III.
pub fn nyt_constraints() -> Vec<Constraint> {
    vec![n1(), n2(), n3(), n4(), n5()]
}

/// A1 — electronics bought in short succession, generalized within the
/// `Electr` department.
pub fn a1() -> Constraint {
    Constraint::new("A1", "(Electr^)[.{0,2}(Electr^)]{1,4}")
}

/// A2 — books bought in short succession (no generalization).
pub fn a2() -> Constraint {
    Constraint::new("A2", "(Book)[.{0,2}(Book)]{1,4}")
}

/// A3 — what follows a digital-camera purchase, generalized.
pub fn a3() -> Constraint {
    Constraint::new("A3", "DigitalCamera[.{0,3}(.^)]{1,4}")
}

/// A4 — musical instruments bought in short succession, generalized within
/// the `MusicInstr` department.
pub fn a4() -> Constraint {
    Constraint::new("A4", "(MusicInstr^)[.{0,2}(MusicInstr^)]{1,4}")
}

/// The four AMZN constraints of Tab. III.
pub fn amzn_constraints() -> Vec<Constraint> {
    vec![a1(), a2(), a3(), a4()]
}

/// T1(λ) — all subsequences of length ≤ λ, arbitrary gaps (the MLlib
/// setting). `lambda ≥ 1`.
pub fn t1(lambda: usize) -> Constraint {
    assert!(lambda >= 1, "T1 needs λ >= 1");
    Constraint::new(
        format!("T1({lambda})"),
        format!("(.)[.*(.)]{{,{}}}", lambda - 1),
    )
}

/// T2(γ, λ) — n-grams of length 2..=λ with gaps ≤ γ, no hierarchy (the
/// MG-FSM setting). `lambda ≥ 2`.
pub fn t2(gamma: usize, lambda: usize) -> Constraint {
    assert!(lambda >= 2, "T2 needs λ >= 2");
    Constraint::new(
        format!("T2({gamma},{lambda})"),
        format!("(.)[.{{0,{gamma}}}(.)]{{1,{}}}", lambda - 1),
    )
}

/// T3(γ, λ) — like [`t2`] but with hierarchy generalization (the LASH
/// setting). `lambda ≥ 2`.
pub fn t3(gamma: usize, lambda: usize) -> Constraint {
    assert!(lambda >= 2, "T3 needs λ >= 2");
    Constraint::new(
        format!("T3({gamma},{lambda})"),
        format!("(.^)[.{{0,{gamma}}}(.^)]{{1,{}}}", lambda - 1),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use desq_core::mining::{Miner, MiningContext};
    use desq_core::toy;

    /// Sequential DESQ-DFS through the Miner trait.
    fn dfs(fx: &toy::Toy, fst: &Fst, sigma: u64) -> Vec<(desq_core::Sequence, u64)> {
        desq_miner::algo::DesqDfs
            .mine(&MiningContext::sequential(&fx.db, &fx.dict, sigma).with_fst(fst))
            .unwrap()
            .patterns
    }

    #[test]
    fn traditional_constraints_compile_on_toy() {
        let fx = toy::fixture();
        for c in [t1(1), t1(4), t2(0, 2), t2(2, 5), t3(0, 2), t3(1, 4)] {
            let fst = c
                .compile(&fx.dict)
                .unwrap_or_else(|e| panic!("{}: {e}", c.name));
            assert!(fst.num_states() > 0);
        }
    }

    #[test]
    fn t1_mines_bounded_length_subsequences() {
        let fx = toy::fixture();
        let fst = t1(2).compile(&fx.dict).unwrap();
        let out = dfs(&fx, &fst, 3);
        // Every pattern has length <= 2; singletons include frequent items.
        assert!(out.iter().all(|(s, _)| !s.is_empty() && s.len() <= 2));
        assert!(out.iter().any(|(s, _)| s == &vec![fx.b]));
        // b occurs in all 5 sequences.
        let b_freq = out.iter().find(|(s, _)| s == &vec![fx.b]).unwrap().1;
        assert_eq!(b_freq, 5);
    }

    #[test]
    fn t2_respects_gap_constraint() {
        let fx = toy::fixture();
        // γ = 0: only adjacent pairs. "c d" and "d c" are adjacent in T1/T3;
        // "a1 b" is adjacent only in T5.
        let fst = t2(0, 2).compile(&fx.dict).unwrap();
        let out = dfs(&fx, &fst, 2);
        assert!(out.contains(&(vec![fx.c, fx.d], 2)), "{out:?}");
        assert!(!out.contains(&(vec![fx.a1, fx.b], 2)), "{out:?}");
    }

    #[test]
    fn t3_generalizes_along_hierarchy() {
        let fx = toy::fixture();
        // γ = 1 admits one skipped item: a1..b in T2 (a1 e b), T4 (a2 d b,
        // generalized) and T5, so the generalized pair "A b" has support 3
        // while the concrete "a1 b" has support 2.
        let fst = t3(1, 2).compile(&fx.dict).unwrap();
        let out = dfs(&fx, &fst, 2);
        assert!(out.contains(&(vec![fx.big_a, fx.b], 3)), "{out:?}");
        assert!(out.contains(&(vec![fx.a1, fx.b], 2)), "{out:?}");
    }

    #[test]
    fn unknown_items_surface_cleanly() {
        let fx = toy::fixture();
        let c = Constraint::new("X", "(NOPE)");
        assert!(matches!(
            c.compile(&fx.dict),
            Err(desq_core::Error::UnknownItem(_))
        ));
    }

    #[test]
    fn nyt_constraints_stay_step_table_eligible_after_optimization() {
        // The flat walker's fast path requires ≤ 32 states and ≤ 64
        // transitions; the optimizer must keep (or put) every compiled NYT
        // constraint inside that envelope.
        let (dict, _) = desq_datagen::nyt_like(&desq_datagen::NytConfig::new(8));
        for c in nyt_constraints() {
            let fst = c.compile(&dict).unwrap();
            let ix = desq_core::fst::index::FstIndex::new(&fst);
            assert!(
                ix.step_table_eligible(),
                "{}: {} states / {} transitions miss the fast path",
                c.name,
                fst.num_states(),
                fst.num_transitions()
            );
            // Full optimization never makes an eligible machine ineligible.
            assert!(
                !ix.step_table_eligible_before_opt() || ix.step_table_eligible(),
                "{}: optimizer pushed an eligible FST out of the fast path",
                c.name
            );
        }
    }

    #[test]
    fn constraint_names_are_stable() {
        assert_eq!(t1(5).name, "T1(5)");
        assert_eq!(t2(1, 5).name, "T2(1,5)");
        assert_eq!(t3(2, 6).name, "T3(2,6)");
        let names: Vec<String> = nyt_constraints().into_iter().map(|c| c.name).collect();
        assert_eq!(names, ["N1", "N2", "N3", "N4", "N5"]);
        let names: Vec<String> = amzn_constraints().into_iter().map(|c| c.name).collect();
        assert_eq!(names, ["A1", "A2", "A3", "A4"]);
    }
}
