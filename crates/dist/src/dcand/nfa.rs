//! Compact candidate NFAs — now hosted in `desq_core::fst::nfa`.
//!
//! The trie/DAWG machinery originally lived here; it was hoisted into the
//! core crate so the FST optimizer's suffix-sharing pass and D-CAND's
//! shuffle-serialized NFAs share one minimization implementation (the
//! `desq_core::fst::minim` signature-hashing core). This module re-exports
//! the moved types so existing `desq_dist::dcand::nfa` paths keep working.

pub use desq_core::fst::nfa::{Nfa, TrieBuilder};
